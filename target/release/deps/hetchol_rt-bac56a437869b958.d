/root/repo/target/release/deps/hetchol_rt-bac56a437869b958.d: crates/rt/src/lib.rs crates/rt/src/calibrate.rs crates/rt/src/runtime.rs crates/rt/src/storage.rs

/root/repo/target/release/deps/libhetchol_rt-bac56a437869b958.rlib: crates/rt/src/lib.rs crates/rt/src/calibrate.rs crates/rt/src/runtime.rs crates/rt/src/storage.rs

/root/repo/target/release/deps/libhetchol_rt-bac56a437869b958.rmeta: crates/rt/src/lib.rs crates/rt/src/calibrate.rs crates/rt/src/runtime.rs crates/rt/src/storage.rs

crates/rt/src/lib.rs:
crates/rt/src/calibrate.rs:
crates/rt/src/runtime.rs:
crates/rt/src/storage.rs:
