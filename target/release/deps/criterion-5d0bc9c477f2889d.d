/root/repo/target/release/deps/criterion-5d0bc9c477f2889d.d: crates/compat/criterion/src/lib.rs

/root/repo/target/release/deps/criterion-5d0bc9c477f2889d: crates/compat/criterion/src/lib.rs

crates/compat/criterion/src/lib.rs:
