/root/repo/target/release/deps/ablation_priorities-41c34c7eded7f095.d: crates/bench/benches/ablation_priorities.rs

/root/repo/target/release/deps/ablation_priorities-41c34c7eded7f095: crates/bench/benches/ablation_priorities.rs

crates/bench/benches/ablation_priorities.rs:
