/root/repo/target/release/deps/hetchol_bench-d920c4510f07e127.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libhetchol_bench-d920c4510f07e127.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libhetchol_bench-d920c4510f07e127.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
