/root/repo/target/release/deps/hetchol_linalg-192bc988e5eb6d62.d: crates/linalg/src/lib.rs crates/linalg/src/cholesky.rs crates/linalg/src/full.rs crates/linalg/src/generate.rs crates/linalg/src/kernels.rs crates/linalg/src/lu.rs crates/linalg/src/matrix.rs crates/linalg/src/qr.rs crates/linalg/src/verify.rs

/root/repo/target/release/deps/libhetchol_linalg-192bc988e5eb6d62.rlib: crates/linalg/src/lib.rs crates/linalg/src/cholesky.rs crates/linalg/src/full.rs crates/linalg/src/generate.rs crates/linalg/src/kernels.rs crates/linalg/src/lu.rs crates/linalg/src/matrix.rs crates/linalg/src/qr.rs crates/linalg/src/verify.rs

/root/repo/target/release/deps/libhetchol_linalg-192bc988e5eb6d62.rmeta: crates/linalg/src/lib.rs crates/linalg/src/cholesky.rs crates/linalg/src/full.rs crates/linalg/src/generate.rs crates/linalg/src/kernels.rs crates/linalg/src/lu.rs crates/linalg/src/matrix.rs crates/linalg/src/qr.rs crates/linalg/src/verify.rs

crates/linalg/src/lib.rs:
crates/linalg/src/cholesky.rs:
crates/linalg/src/full.rs:
crates/linalg/src/generate.rs:
crates/linalg/src/kernels.rs:
crates/linalg/src/lu.rs:
crates/linalg/src/matrix.rs:
crates/linalg/src/qr.rs:
crates/linalg/src/verify.rs:
