/root/repo/target/release/deps/hetchol-de455aa95c170b37.d: src/lib.rs

/root/repo/target/release/deps/libhetchol-de455aa95c170b37.rlib: src/lib.rs

/root/repo/target/release/deps/libhetchol-de455aa95c170b37.rmeta: src/lib.rs

src/lib.rs:
