/root/repo/target/release/deps/repro-e92bfbfe3b70ab20.d: crates/bench/src/bin/repro.rs

/root/repo/target/release/deps/repro-e92bfbfe3b70ab20: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
