/root/repo/target/release/deps/hetchol_bounds-16622acb47df0b96.d: crates/bounds/src/lib.rs crates/bounds/src/bounds.rs crates/bounds/src/ilp.rs crates/bounds/src/simplex.rs

/root/repo/target/release/deps/hetchol_bounds-16622acb47df0b96: crates/bounds/src/lib.rs crates/bounds/src/bounds.rs crates/bounds/src/ilp.rs crates/bounds/src/simplex.rs

crates/bounds/src/lib.rs:
crates/bounds/src/bounds.rs:
crates/bounds/src/ilp.rs:
crates/bounds/src/simplex.rs:
