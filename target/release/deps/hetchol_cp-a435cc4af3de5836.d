/root/repo/target/release/deps/hetchol_cp-a435cc4af3de5836.d: crates/cp/src/lib.rs crates/cp/src/anneal.rs crates/cp/src/list.rs crates/cp/src/search.rs

/root/repo/target/release/deps/libhetchol_cp-a435cc4af3de5836.rlib: crates/cp/src/lib.rs crates/cp/src/anneal.rs crates/cp/src/list.rs crates/cp/src/search.rs

/root/repo/target/release/deps/libhetchol_cp-a435cc4af3de5836.rmeta: crates/cp/src/lib.rs crates/cp/src/anneal.rs crates/cp/src/list.rs crates/cp/src/search.rs

crates/cp/src/lib.rs:
crates/cp/src/anneal.rs:
crates/cp/src/list.rs:
crates/cp/src/search.rs:
