/root/repo/target/release/deps/repro-908022795e0d04a7.d: crates/bench/src/bin/repro.rs

/root/repo/target/release/deps/repro-908022795e0d04a7: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
