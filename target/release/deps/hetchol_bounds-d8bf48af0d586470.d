/root/repo/target/release/deps/hetchol_bounds-d8bf48af0d586470.d: crates/bounds/src/lib.rs crates/bounds/src/bounds.rs crates/bounds/src/ilp.rs crates/bounds/src/simplex.rs

/root/repo/target/release/deps/libhetchol_bounds-d8bf48af0d586470.rlib: crates/bounds/src/lib.rs crates/bounds/src/bounds.rs crates/bounds/src/ilp.rs crates/bounds/src/simplex.rs

/root/repo/target/release/deps/libhetchol_bounds-d8bf48af0d586470.rmeta: crates/bounds/src/lib.rs crates/bounds/src/bounds.rs crates/bounds/src/ilp.rs crates/bounds/src/simplex.rs

crates/bounds/src/lib.rs:
crates/bounds/src/bounds.rs:
crates/bounds/src/ilp.rs:
crates/bounds/src/simplex.rs:
