/root/repo/target/release/deps/rand_chacha-5667358bf021a323.d: crates/compat/rand_chacha/src/lib.rs

/root/repo/target/release/deps/rand_chacha-5667358bf021a323: crates/compat/rand_chacha/src/lib.rs

crates/compat/rand_chacha/src/lib.rs:
