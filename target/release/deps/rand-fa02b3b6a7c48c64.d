/root/repo/target/release/deps/rand-fa02b3b6a7c48c64.d: crates/compat/rand/src/lib.rs

/root/repo/target/release/deps/librand-fa02b3b6a7c48c64.rlib: crates/compat/rand/src/lib.rs

/root/repo/target/release/deps/librand-fa02b3b6a7c48c64.rmeta: crates/compat/rand/src/lib.rs

crates/compat/rand/src/lib.rs:
