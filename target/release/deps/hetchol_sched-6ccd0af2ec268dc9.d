/root/repo/target/release/deps/hetchol_sched-6ccd0af2ec268dc9.d: crates/sched/src/lib.rs crates/sched/src/dm.rs crates/sched/src/eager.rs crates/sched/src/heft.rs crates/sched/src/hints.rs crates/sched/src/inject.rs crates/sched/src/random.rs

/root/repo/target/release/deps/libhetchol_sched-6ccd0af2ec268dc9.rlib: crates/sched/src/lib.rs crates/sched/src/dm.rs crates/sched/src/eager.rs crates/sched/src/heft.rs crates/sched/src/hints.rs crates/sched/src/inject.rs crates/sched/src/random.rs

/root/repo/target/release/deps/libhetchol_sched-6ccd0af2ec268dc9.rmeta: crates/sched/src/lib.rs crates/sched/src/dm.rs crates/sched/src/eager.rs crates/sched/src/heft.rs crates/sched/src/hints.rs crates/sched/src/inject.rs crates/sched/src/random.rs

crates/sched/src/lib.rs:
crates/sched/src/dm.rs:
crates/sched/src/eager.rs:
crates/sched/src/heft.rs:
crates/sched/src/hints.rs:
crates/sched/src/inject.rs:
crates/sched/src/random.rs:
