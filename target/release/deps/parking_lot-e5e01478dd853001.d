/root/repo/target/release/deps/parking_lot-e5e01478dd853001.d: crates/compat/parking_lot/src/lib.rs

/root/repo/target/release/deps/parking_lot-e5e01478dd853001: crates/compat/parking_lot/src/lib.rs

crates/compat/parking_lot/src/lib.rs:
