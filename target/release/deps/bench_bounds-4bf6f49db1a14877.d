/root/repo/target/release/deps/bench_bounds-4bf6f49db1a14877.d: crates/bench/benches/bench_bounds.rs

/root/repo/target/release/deps/bench_bounds-4bf6f49db1a14877: crates/bench/benches/bench_bounds.rs

crates/bench/benches/bench_bounds.rs:
