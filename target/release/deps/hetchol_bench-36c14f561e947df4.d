/root/repo/target/release/deps/hetchol_bench-36c14f561e947df4.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/hetchol_bench-36c14f561e947df4: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
