/root/repo/target/release/deps/hetchol_sched-4bd5b97c7d223470.d: crates/sched/src/lib.rs crates/sched/src/dm.rs crates/sched/src/eager.rs crates/sched/src/heft.rs crates/sched/src/hints.rs crates/sched/src/inject.rs crates/sched/src/random.rs

/root/repo/target/release/deps/hetchol_sched-4bd5b97c7d223470: crates/sched/src/lib.rs crates/sched/src/dm.rs crates/sched/src/eager.rs crates/sched/src/heft.rs crates/sched/src/hints.rs crates/sched/src/inject.rs crates/sched/src/random.rs

crates/sched/src/lib.rs:
crates/sched/src/dm.rs:
crates/sched/src/eager.rs:
crates/sched/src/heft.rs:
crates/sched/src/hints.rs:
crates/sched/src/inject.rs:
crates/sched/src/random.rs:
