/root/repo/target/release/deps/rand-25f0efb4f4db96dd.d: crates/compat/rand/src/lib.rs

/root/repo/target/release/deps/rand-25f0efb4f4db96dd: crates/compat/rand/src/lib.rs

crates/compat/rand/src/lib.rs:
