/root/repo/target/release/deps/bench_dag-323cf7d8d6edd857.d: crates/bench/benches/bench_dag.rs

/root/repo/target/release/deps/bench_dag-323cf7d8d6edd857: crates/bench/benches/bench_dag.rs

crates/bench/benches/bench_dag.rs:
