/root/repo/target/release/deps/hetchol_rt-e3f4b2d4cb322ffd.d: crates/rt/src/lib.rs crates/rt/src/calibrate.rs crates/rt/src/runtime.rs crates/rt/src/storage.rs

/root/repo/target/release/deps/hetchol_rt-e3f4b2d4cb322ffd: crates/rt/src/lib.rs crates/rt/src/calibrate.rs crates/rt/src/runtime.rs crates/rt/src/storage.rs

crates/rt/src/lib.rs:
crates/rt/src/calibrate.rs:
crates/rt/src/runtime.rs:
crates/rt/src/storage.rs:
