/root/repo/target/release/deps/ablation_comm-202606d070ca2655.d: crates/bench/benches/ablation_comm.rs

/root/repo/target/release/deps/ablation_comm-202606d070ca2655: crates/bench/benches/ablation_comm.rs

crates/bench/benches/ablation_comm.rs:
