/root/repo/target/release/deps/bench_kernels-1c8eceeef98eed17.d: crates/bench/benches/bench_kernels.rs

/root/repo/target/release/deps/bench_kernels-1c8eceeef98eed17: crates/bench/benches/bench_kernels.rs

crates/bench/benches/bench_kernels.rs:
