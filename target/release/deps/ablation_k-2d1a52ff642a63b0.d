/root/repo/target/release/deps/ablation_k-2d1a52ff642a63b0.d: crates/bench/benches/ablation_k.rs

/root/repo/target/release/deps/ablation_k-2d1a52ff642a63b0: crates/bench/benches/ablation_k.rs

crates/bench/benches/ablation_k.rs:
