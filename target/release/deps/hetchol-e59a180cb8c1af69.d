/root/repo/target/release/deps/hetchol-e59a180cb8c1af69.d: src/lib.rs

/root/repo/target/release/deps/hetchol-e59a180cb8c1af69: src/lib.rs

src/lib.rs:
