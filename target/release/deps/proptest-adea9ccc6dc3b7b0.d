/root/repo/target/release/deps/proptest-adea9ccc6dc3b7b0.d: crates/compat/proptest/src/lib.rs

/root/repo/target/release/deps/proptest-adea9ccc6dc3b7b0: crates/compat/proptest/src/lib.rs

crates/compat/proptest/src/lib.rs:
