/root/repo/target/release/deps/rand_chacha-f990532be4f28963.d: crates/compat/rand_chacha/src/lib.rs

/root/repo/target/release/deps/librand_chacha-f990532be4f28963.rlib: crates/compat/rand_chacha/src/lib.rs

/root/repo/target/release/deps/librand_chacha-f990532be4f28963.rmeta: crates/compat/rand_chacha/src/lib.rs

crates/compat/rand_chacha/src/lib.rs:
