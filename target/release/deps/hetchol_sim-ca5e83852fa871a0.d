/root/repo/target/release/deps/hetchol_sim-ca5e83852fa871a0.d: crates/sim/src/lib.rs crates/sim/src/data.rs crates/sim/src/engine.rs crates/sim/src/jitter.rs

/root/repo/target/release/deps/hetchol_sim-ca5e83852fa871a0: crates/sim/src/lib.rs crates/sim/src/data.rs crates/sim/src/engine.rs crates/sim/src/jitter.rs

crates/sim/src/lib.rs:
crates/sim/src/data.rs:
crates/sim/src/engine.rs:
crates/sim/src/jitter.rs:
