/root/repo/target/release/deps/bench_sim_speed-bfeb94132628bc15.d: crates/bench/benches/bench_sim_speed.rs

/root/repo/target/release/deps/bench_sim_speed-bfeb94132628bc15: crates/bench/benches/bench_sim_speed.rs

crates/bench/benches/bench_sim_speed.rs:
