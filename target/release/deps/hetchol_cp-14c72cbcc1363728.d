/root/repo/target/release/deps/hetchol_cp-14c72cbcc1363728.d: crates/cp/src/lib.rs crates/cp/src/anneal.rs crates/cp/src/list.rs crates/cp/src/search.rs

/root/repo/target/release/deps/hetchol_cp-14c72cbcc1363728: crates/cp/src/lib.rs crates/cp/src/anneal.rs crates/cp/src/list.rs crates/cp/src/search.rs

crates/cp/src/lib.rs:
crates/cp/src/anneal.rs:
crates/cp/src/list.rs:
crates/cp/src/search.rs:
