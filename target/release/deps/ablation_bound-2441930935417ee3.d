/root/repo/target/release/deps/ablation_bound-2441930935417ee3.d: crates/bench/benches/ablation_bound.rs

/root/repo/target/release/deps/ablation_bound-2441930935417ee3: crates/bench/benches/ablation_bound.rs

crates/bench/benches/ablation_bound.rs:
