/root/repo/target/release/deps/proptest-ec56f4ab01c749ab.d: crates/compat/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-ec56f4ab01c749ab.rlib: crates/compat/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-ec56f4ab01c749ab.rmeta: crates/compat/proptest/src/lib.rs

crates/compat/proptest/src/lib.rs:
