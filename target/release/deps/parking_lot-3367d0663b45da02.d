/root/repo/target/release/deps/parking_lot-3367d0663b45da02.d: crates/compat/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-3367d0663b45da02.rlib: crates/compat/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-3367d0663b45da02.rmeta: crates/compat/parking_lot/src/lib.rs

crates/compat/parking_lot/src/lib.rs:
