/root/repo/target/release/deps/hetchol_sim-8134afc034cc20e0.d: crates/sim/src/lib.rs crates/sim/src/data.rs crates/sim/src/engine.rs crates/sim/src/jitter.rs

/root/repo/target/release/deps/libhetchol_sim-8134afc034cc20e0.rlib: crates/sim/src/lib.rs crates/sim/src/data.rs crates/sim/src/engine.rs crates/sim/src/jitter.rs

/root/repo/target/release/deps/libhetchol_sim-8134afc034cc20e0.rmeta: crates/sim/src/lib.rs crates/sim/src/data.rs crates/sim/src/engine.rs crates/sim/src/jitter.rs

crates/sim/src/lib.rs:
crates/sim/src/data.rs:
crates/sim/src/engine.rs:
crates/sim/src/jitter.rs:
