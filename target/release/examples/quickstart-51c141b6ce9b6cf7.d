/root/repo/target/release/examples/quickstart-51c141b6ce9b6cf7.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-51c141b6ce9b6cf7: examples/quickstart.rs

examples/quickstart.rs:
