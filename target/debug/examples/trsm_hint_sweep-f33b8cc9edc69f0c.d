/root/repo/target/debug/examples/trsm_hint_sweep-f33b8cc9edc69f0c.d: examples/trsm_hint_sweep.rs Cargo.toml

/root/repo/target/debug/examples/libtrsm_hint_sweep-f33b8cc9edc69f0c.rmeta: examples/trsm_hint_sweep.rs Cargo.toml

examples/trsm_hint_sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
