/root/repo/target/debug/examples/trace_gantt-260fa54b61934ac8.d: examples/trace_gantt.rs

/root/repo/target/debug/examples/trace_gantt-260fa54b61934ac8: examples/trace_gantt.rs

examples/trace_gantt.rs:
