/root/repo/target/debug/examples/scheduler_shootout-fb3fcc51e2e26815.d: examples/scheduler_shootout.rs Cargo.toml

/root/repo/target/debug/examples/libscheduler_shootout-fb3fcc51e2e26815.rmeta: examples/scheduler_shootout.rs Cargo.toml

examples/scheduler_shootout.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
