/root/repo/target/debug/examples/other_factorizations-83a2e4fd26e8ecfc.d: examples/other_factorizations.rs

/root/repo/target/debug/examples/other_factorizations-83a2e4fd26e8ecfc: examples/other_factorizations.rs

examples/other_factorizations.rs:
