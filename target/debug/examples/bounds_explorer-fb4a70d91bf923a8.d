/root/repo/target/debug/examples/bounds_explorer-fb4a70d91bf923a8.d: examples/bounds_explorer.rs Cargo.toml

/root/repo/target/debug/examples/libbounds_explorer-fb4a70d91bf923a8.rmeta: examples/bounds_explorer.rs Cargo.toml

examples/bounds_explorer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
