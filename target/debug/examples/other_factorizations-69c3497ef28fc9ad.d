/root/repo/target/debug/examples/other_factorizations-69c3497ef28fc9ad.d: examples/other_factorizations.rs Cargo.toml

/root/repo/target/debug/examples/libother_factorizations-69c3497ef28fc9ad.rmeta: examples/other_factorizations.rs Cargo.toml

examples/other_factorizations.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
