/root/repo/target/debug/examples/scheduler_shootout-0a52a2f2b2bd1b51.d: examples/scheduler_shootout.rs

/root/repo/target/debug/examples/scheduler_shootout-0a52a2f2b2bd1b51: examples/scheduler_shootout.rs

examples/scheduler_shootout.rs:
