/root/repo/target/debug/examples/trace_gantt-4ce49daddfdbb963.d: examples/trace_gantt.rs Cargo.toml

/root/repo/target/debug/examples/libtrace_gantt-4ce49daddfdbb963.rmeta: examples/trace_gantt.rs Cargo.toml

examples/trace_gantt.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
