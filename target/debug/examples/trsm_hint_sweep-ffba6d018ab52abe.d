/root/repo/target/debug/examples/trsm_hint_sweep-ffba6d018ab52abe.d: examples/trsm_hint_sweep.rs

/root/repo/target/debug/examples/trsm_hint_sweep-ffba6d018ab52abe: examples/trsm_hint_sweep.rs

examples/trsm_hint_sweep.rs:
