/root/repo/target/debug/examples/quickstart-7cd0a986227da2bf.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-7cd0a986227da2bf.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
