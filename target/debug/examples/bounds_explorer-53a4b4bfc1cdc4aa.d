/root/repo/target/debug/examples/bounds_explorer-53a4b4bfc1cdc4aa.d: examples/bounds_explorer.rs

/root/repo/target/debug/examples/bounds_explorer-53a4b4bfc1cdc4aa: examples/bounds_explorer.rs

examples/bounds_explorer.rs:
