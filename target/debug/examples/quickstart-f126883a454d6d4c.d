/root/repo/target/debug/examples/quickstart-f126883a454d6d4c.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-f126883a454d6d4c: examples/quickstart.rs

examples/quickstart.rs:
