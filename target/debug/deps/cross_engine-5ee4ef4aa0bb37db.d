/root/repo/target/debug/deps/cross_engine-5ee4ef4aa0bb37db.d: tests/cross_engine.rs Cargo.toml

/root/repo/target/debug/deps/libcross_engine-5ee4ef4aa0bb37db.rmeta: tests/cross_engine.rs Cargo.toml

tests/cross_engine.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
