/root/repo/target/debug/deps/ablation_comm-6b3f2cb11e3e8fb1.d: crates/bench/benches/ablation_comm.rs Cargo.toml

/root/repo/target/debug/deps/libablation_comm-6b3f2cb11e3e8fb1.rmeta: crates/bench/benches/ablation_comm.rs Cargo.toml

crates/bench/benches/ablation_comm.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
