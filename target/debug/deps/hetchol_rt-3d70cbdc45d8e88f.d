/root/repo/target/debug/deps/hetchol_rt-3d70cbdc45d8e88f.d: crates/rt/src/lib.rs crates/rt/src/calibrate.rs crates/rt/src/runtime.rs crates/rt/src/storage.rs

/root/repo/target/debug/deps/hetchol_rt-3d70cbdc45d8e88f: crates/rt/src/lib.rs crates/rt/src/calibrate.rs crates/rt/src/runtime.rs crates/rt/src/storage.rs

crates/rt/src/lib.rs:
crates/rt/src/calibrate.rs:
crates/rt/src/runtime.rs:
crates/rt/src/storage.rs:
