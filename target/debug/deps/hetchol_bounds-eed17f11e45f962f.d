/root/repo/target/debug/deps/hetchol_bounds-eed17f11e45f962f.d: crates/bounds/src/lib.rs crates/bounds/src/bounds.rs crates/bounds/src/ilp.rs crates/bounds/src/simplex.rs

/root/repo/target/debug/deps/libhetchol_bounds-eed17f11e45f962f.rlib: crates/bounds/src/lib.rs crates/bounds/src/bounds.rs crates/bounds/src/ilp.rs crates/bounds/src/simplex.rs

/root/repo/target/debug/deps/libhetchol_bounds-eed17f11e45f962f.rmeta: crates/bounds/src/lib.rs crates/bounds/src/bounds.rs crates/bounds/src/ilp.rs crates/bounds/src/simplex.rs

crates/bounds/src/lib.rs:
crates/bounds/src/bounds.rs:
crates/bounds/src/ilp.rs:
crates/bounds/src/simplex.rs:
