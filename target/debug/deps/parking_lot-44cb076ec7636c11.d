/root/repo/target/debug/deps/parking_lot-44cb076ec7636c11.d: crates/compat/parking_lot/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libparking_lot-44cb076ec7636c11.rmeta: crates/compat/parking_lot/src/lib.rs Cargo.toml

crates/compat/parking_lot/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
