/root/repo/target/debug/deps/hetchol_core-c3240680f8d09e38.d: crates/core/src/lib.rs crates/core/src/algorithm.rs crates/core/src/dag.rs crates/core/src/exec.rs crates/core/src/kernel.rs crates/core/src/metrics.rs crates/core/src/platform.rs crates/core/src/profiles.rs crates/core/src/schedule.rs crates/core/src/scheduler.rs crates/core/src/task.rs crates/core/src/time.rs crates/core/src/trace.rs

/root/repo/target/debug/deps/libhetchol_core-c3240680f8d09e38.rlib: crates/core/src/lib.rs crates/core/src/algorithm.rs crates/core/src/dag.rs crates/core/src/exec.rs crates/core/src/kernel.rs crates/core/src/metrics.rs crates/core/src/platform.rs crates/core/src/profiles.rs crates/core/src/schedule.rs crates/core/src/scheduler.rs crates/core/src/task.rs crates/core/src/time.rs crates/core/src/trace.rs

/root/repo/target/debug/deps/libhetchol_core-c3240680f8d09e38.rmeta: crates/core/src/lib.rs crates/core/src/algorithm.rs crates/core/src/dag.rs crates/core/src/exec.rs crates/core/src/kernel.rs crates/core/src/metrics.rs crates/core/src/platform.rs crates/core/src/profiles.rs crates/core/src/schedule.rs crates/core/src/scheduler.rs crates/core/src/task.rs crates/core/src/time.rs crates/core/src/trace.rs

crates/core/src/lib.rs:
crates/core/src/algorithm.rs:
crates/core/src/dag.rs:
crates/core/src/exec.rs:
crates/core/src/kernel.rs:
crates/core/src/metrics.rs:
crates/core/src/platform.rs:
crates/core/src/profiles.rs:
crates/core/src/schedule.rs:
crates/core/src/scheduler.rs:
crates/core/src/task.rs:
crates/core/src/time.rs:
crates/core/src/trace.rs:
