/root/repo/target/debug/deps/hetchol-f3f21029edb44609.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libhetchol-f3f21029edb44609.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
