/root/repo/target/debug/deps/cross_engine-509654a28f43f6ad.d: tests/cross_engine.rs

/root/repo/target/debug/deps/cross_engine-509654a28f43f6ad: tests/cross_engine.rs

tests/cross_engine.rs:
