/root/repo/target/debug/deps/algorithms-b0637a13c1cd5807.d: tests/algorithms.rs Cargo.toml

/root/repo/target/debug/deps/libalgorithms-b0637a13c1cd5807.rmeta: tests/algorithms.rs Cargo.toml

tests/algorithms.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
