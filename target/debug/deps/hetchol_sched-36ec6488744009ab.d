/root/repo/target/debug/deps/hetchol_sched-36ec6488744009ab.d: crates/sched/src/lib.rs crates/sched/src/dm.rs crates/sched/src/eager.rs crates/sched/src/heft.rs crates/sched/src/hints.rs crates/sched/src/inject.rs crates/sched/src/random.rs

/root/repo/target/debug/deps/hetchol_sched-36ec6488744009ab: crates/sched/src/lib.rs crates/sched/src/dm.rs crates/sched/src/eager.rs crates/sched/src/heft.rs crates/sched/src/hints.rs crates/sched/src/inject.rs crates/sched/src/random.rs

crates/sched/src/lib.rs:
crates/sched/src/dm.rs:
crates/sched/src/eager.rs:
crates/sched/src/heft.rs:
crates/sched/src/hints.rs:
crates/sched/src/inject.rs:
crates/sched/src/random.rs:
