/root/repo/target/debug/deps/criterion-fe4e38d010f08822.d: crates/compat/criterion/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcriterion-fe4e38d010f08822.rmeta: crates/compat/criterion/src/lib.rs Cargo.toml

crates/compat/criterion/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
