/root/repo/target/debug/deps/hetchol_bench-bc3a699ec4cd5161.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libhetchol_bench-bc3a699ec4cd5161.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
