/root/repo/target/debug/deps/hetchol_sched-481c9673bf6f7132.d: crates/sched/src/lib.rs crates/sched/src/dm.rs crates/sched/src/eager.rs crates/sched/src/heft.rs crates/sched/src/hints.rs crates/sched/src/inject.rs crates/sched/src/random.rs

/root/repo/target/debug/deps/libhetchol_sched-481c9673bf6f7132.rlib: crates/sched/src/lib.rs crates/sched/src/dm.rs crates/sched/src/eager.rs crates/sched/src/heft.rs crates/sched/src/hints.rs crates/sched/src/inject.rs crates/sched/src/random.rs

/root/repo/target/debug/deps/libhetchol_sched-481c9673bf6f7132.rmeta: crates/sched/src/lib.rs crates/sched/src/dm.rs crates/sched/src/eager.rs crates/sched/src/heft.rs crates/sched/src/hints.rs crates/sched/src/inject.rs crates/sched/src/random.rs

crates/sched/src/lib.rs:
crates/sched/src/dm.rs:
crates/sched/src/eager.rs:
crates/sched/src/heft.rs:
crates/sched/src/hints.rs:
crates/sched/src/inject.rs:
crates/sched/src/random.rs:
