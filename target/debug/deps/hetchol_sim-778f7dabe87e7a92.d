/root/repo/target/debug/deps/hetchol_sim-778f7dabe87e7a92.d: crates/sim/src/lib.rs crates/sim/src/data.rs crates/sim/src/engine.rs crates/sim/src/jitter.rs Cargo.toml

/root/repo/target/debug/deps/libhetchol_sim-778f7dabe87e7a92.rmeta: crates/sim/src/lib.rs crates/sim/src/data.rs crates/sim/src/engine.rs crates/sim/src/jitter.rs Cargo.toml

crates/sim/src/lib.rs:
crates/sim/src/data.rs:
crates/sim/src/engine.rs:
crates/sim/src/jitter.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
