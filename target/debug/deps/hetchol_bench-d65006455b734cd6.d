/root/repo/target/debug/deps/hetchol_bench-d65006455b734cd6.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/hetchol_bench-d65006455b734cd6: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
