/root/repo/target/debug/deps/rand_chacha-cfe94bf67ae758a6.d: crates/compat/rand_chacha/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librand_chacha-cfe94bf67ae758a6.rmeta: crates/compat/rand_chacha/src/lib.rs Cargo.toml

crates/compat/rand_chacha/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
