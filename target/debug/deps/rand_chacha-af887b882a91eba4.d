/root/repo/target/debug/deps/rand_chacha-af887b882a91eba4.d: crates/compat/rand_chacha/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librand_chacha-af887b882a91eba4.rmeta: crates/compat/rand_chacha/src/lib.rs Cargo.toml

crates/compat/rand_chacha/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
