/root/repo/target/debug/deps/rand_chacha-c2f7c8bd689b9aed.d: crates/compat/rand_chacha/src/lib.rs

/root/repo/target/debug/deps/librand_chacha-c2f7c8bd689b9aed.rlib: crates/compat/rand_chacha/src/lib.rs

/root/repo/target/debug/deps/librand_chacha-c2f7c8bd689b9aed.rmeta: crates/compat/rand_chacha/src/lib.rs

crates/compat/rand_chacha/src/lib.rs:
