/root/repo/target/debug/deps/hetchol-79c461d37f3fcf03.d: src/lib.rs

/root/repo/target/debug/deps/hetchol-79c461d37f3fcf03: src/lib.rs

src/lib.rs:
