/root/repo/target/debug/deps/rand_chacha-650dbf18e8fd67fb.d: crates/compat/rand_chacha/src/lib.rs

/root/repo/target/debug/deps/rand_chacha-650dbf18e8fd67fb: crates/compat/rand_chacha/src/lib.rs

crates/compat/rand_chacha/src/lib.rs:
