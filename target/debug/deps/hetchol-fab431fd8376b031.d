/root/repo/target/debug/deps/hetchol-fab431fd8376b031.d: src/lib.rs

/root/repo/target/debug/deps/libhetchol-fab431fd8376b031.rlib: src/lib.rs

/root/repo/target/debug/deps/libhetchol-fab431fd8376b031.rmeta: src/lib.rs

src/lib.rs:
