/root/repo/target/debug/deps/cp_replay-b8c00386809f8182.d: tests/cp_replay.rs

/root/repo/target/debug/deps/cp_replay-b8c00386809f8182: tests/cp_replay.rs

tests/cp_replay.rs:
