/root/repo/target/debug/deps/hetchol_rt-2e78fe93e29c978d.d: crates/rt/src/lib.rs crates/rt/src/calibrate.rs crates/rt/src/runtime.rs crates/rt/src/storage.rs Cargo.toml

/root/repo/target/debug/deps/libhetchol_rt-2e78fe93e29c978d.rmeta: crates/rt/src/lib.rs crates/rt/src/calibrate.rs crates/rt/src/runtime.rs crates/rt/src/storage.rs Cargo.toml

crates/rt/src/lib.rs:
crates/rt/src/calibrate.rs:
crates/rt/src/runtime.rs:
crates/rt/src/storage.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
