/root/repo/target/debug/deps/cp_replay-3e8ca3de4cccd107.d: tests/cp_replay.rs Cargo.toml

/root/repo/target/debug/deps/libcp_replay-3e8ca3de4cccd107.rmeta: tests/cp_replay.rs Cargo.toml

tests/cp_replay.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
