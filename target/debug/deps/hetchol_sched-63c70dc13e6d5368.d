/root/repo/target/debug/deps/hetchol_sched-63c70dc13e6d5368.d: crates/sched/src/lib.rs crates/sched/src/dm.rs crates/sched/src/eager.rs crates/sched/src/heft.rs crates/sched/src/hints.rs crates/sched/src/inject.rs crates/sched/src/random.rs Cargo.toml

/root/repo/target/debug/deps/libhetchol_sched-63c70dc13e6d5368.rmeta: crates/sched/src/lib.rs crates/sched/src/dm.rs crates/sched/src/eager.rs crates/sched/src/heft.rs crates/sched/src/hints.rs crates/sched/src/inject.rs crates/sched/src/random.rs Cargo.toml

crates/sched/src/lib.rs:
crates/sched/src/dm.rs:
crates/sched/src/eager.rs:
crates/sched/src/heft.rs:
crates/sched/src/hints.rs:
crates/sched/src/inject.rs:
crates/sched/src/random.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
