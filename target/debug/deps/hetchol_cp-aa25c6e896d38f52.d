/root/repo/target/debug/deps/hetchol_cp-aa25c6e896d38f52.d: crates/cp/src/lib.rs crates/cp/src/anneal.rs crates/cp/src/list.rs crates/cp/src/search.rs Cargo.toml

/root/repo/target/debug/deps/libhetchol_cp-aa25c6e896d38f52.rmeta: crates/cp/src/lib.rs crates/cp/src/anneal.rs crates/cp/src/list.rs crates/cp/src/search.rs Cargo.toml

crates/cp/src/lib.rs:
crates/cp/src/anneal.rs:
crates/cp/src/list.rs:
crates/cp/src/search.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
