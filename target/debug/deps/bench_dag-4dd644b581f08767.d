/root/repo/target/debug/deps/bench_dag-4dd644b581f08767.d: crates/bench/benches/bench_dag.rs Cargo.toml

/root/repo/target/debug/deps/libbench_dag-4dd644b581f08767.rmeta: crates/bench/benches/bench_dag.rs Cargo.toml

crates/bench/benches/bench_dag.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
