/root/repo/target/debug/deps/hetchol_bounds-264b1c587d034aec.d: crates/bounds/src/lib.rs crates/bounds/src/bounds.rs crates/bounds/src/ilp.rs crates/bounds/src/simplex.rs Cargo.toml

/root/repo/target/debug/deps/libhetchol_bounds-264b1c587d034aec.rmeta: crates/bounds/src/lib.rs crates/bounds/src/bounds.rs crates/bounds/src/ilp.rs crates/bounds/src/simplex.rs Cargo.toml

crates/bounds/src/lib.rs:
crates/bounds/src/bounds.rs:
crates/bounds/src/ilp.rs:
crates/bounds/src/simplex.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
