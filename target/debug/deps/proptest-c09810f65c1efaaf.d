/root/repo/target/debug/deps/proptest-c09810f65c1efaaf.d: crates/compat/proptest/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libproptest-c09810f65c1efaaf.rmeta: crates/compat/proptest/src/lib.rs Cargo.toml

crates/compat/proptest/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
