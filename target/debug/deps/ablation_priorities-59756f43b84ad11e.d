/root/repo/target/debug/deps/ablation_priorities-59756f43b84ad11e.d: crates/bench/benches/ablation_priorities.rs Cargo.toml

/root/repo/target/debug/deps/libablation_priorities-59756f43b84ad11e.rmeta: crates/bench/benches/ablation_priorities.rs Cargo.toml

crates/bench/benches/ablation_priorities.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
