/root/repo/target/debug/deps/hetchol_bench-3550a970b45805f1.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libhetchol_bench-3550a970b45805f1.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
