/root/repo/target/debug/deps/rand-d867c1c6ea506795.d: crates/compat/rand/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librand-d867c1c6ea506795.rmeta: crates/compat/rand/src/lib.rs Cargo.toml

crates/compat/rand/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
