/root/repo/target/debug/deps/hetchol_linalg-70d893bcbefd5991.d: crates/linalg/src/lib.rs crates/linalg/src/cholesky.rs crates/linalg/src/full.rs crates/linalg/src/generate.rs crates/linalg/src/kernels.rs crates/linalg/src/lu.rs crates/linalg/src/matrix.rs crates/linalg/src/qr.rs crates/linalg/src/verify.rs Cargo.toml

/root/repo/target/debug/deps/libhetchol_linalg-70d893bcbefd5991.rmeta: crates/linalg/src/lib.rs crates/linalg/src/cholesky.rs crates/linalg/src/full.rs crates/linalg/src/generate.rs crates/linalg/src/kernels.rs crates/linalg/src/lu.rs crates/linalg/src/matrix.rs crates/linalg/src/qr.rs crates/linalg/src/verify.rs Cargo.toml

crates/linalg/src/lib.rs:
crates/linalg/src/cholesky.rs:
crates/linalg/src/full.rs:
crates/linalg/src/generate.rs:
crates/linalg/src/kernels.rs:
crates/linalg/src/lu.rs:
crates/linalg/src/matrix.rs:
crates/linalg/src/qr.rs:
crates/linalg/src/verify.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
