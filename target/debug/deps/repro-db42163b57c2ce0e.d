/root/repo/target/debug/deps/repro-db42163b57c2ce0e.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/repro-db42163b57c2ce0e: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
