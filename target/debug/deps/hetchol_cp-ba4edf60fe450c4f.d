/root/repo/target/debug/deps/hetchol_cp-ba4edf60fe450c4f.d: crates/cp/src/lib.rs crates/cp/src/anneal.rs crates/cp/src/list.rs crates/cp/src/search.rs

/root/repo/target/debug/deps/libhetchol_cp-ba4edf60fe450c4f.rlib: crates/cp/src/lib.rs crates/cp/src/anneal.rs crates/cp/src/list.rs crates/cp/src/search.rs

/root/repo/target/debug/deps/libhetchol_cp-ba4edf60fe450c4f.rmeta: crates/cp/src/lib.rs crates/cp/src/anneal.rs crates/cp/src/list.rs crates/cp/src/search.rs

crates/cp/src/lib.rs:
crates/cp/src/anneal.rs:
crates/cp/src/list.rs:
crates/cp/src/search.rs:
