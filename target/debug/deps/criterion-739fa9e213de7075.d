/root/repo/target/debug/deps/criterion-739fa9e213de7075.d: crates/compat/criterion/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcriterion-739fa9e213de7075.rmeta: crates/compat/criterion/src/lib.rs Cargo.toml

crates/compat/criterion/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
