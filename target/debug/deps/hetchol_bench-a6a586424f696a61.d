/root/repo/target/debug/deps/hetchol_bench-a6a586424f696a61.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libhetchol_bench-a6a586424f696a61.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libhetchol_bench-a6a586424f696a61.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
