/root/repo/target/debug/deps/hetchol_linalg-2f6ca3b7872769bf.d: crates/linalg/src/lib.rs crates/linalg/src/cholesky.rs crates/linalg/src/full.rs crates/linalg/src/generate.rs crates/linalg/src/kernels.rs crates/linalg/src/lu.rs crates/linalg/src/matrix.rs crates/linalg/src/qr.rs crates/linalg/src/verify.rs

/root/repo/target/debug/deps/libhetchol_linalg-2f6ca3b7872769bf.rlib: crates/linalg/src/lib.rs crates/linalg/src/cholesky.rs crates/linalg/src/full.rs crates/linalg/src/generate.rs crates/linalg/src/kernels.rs crates/linalg/src/lu.rs crates/linalg/src/matrix.rs crates/linalg/src/qr.rs crates/linalg/src/verify.rs

/root/repo/target/debug/deps/libhetchol_linalg-2f6ca3b7872769bf.rmeta: crates/linalg/src/lib.rs crates/linalg/src/cholesky.rs crates/linalg/src/full.rs crates/linalg/src/generate.rs crates/linalg/src/kernels.rs crates/linalg/src/lu.rs crates/linalg/src/matrix.rs crates/linalg/src/qr.rs crates/linalg/src/verify.rs

crates/linalg/src/lib.rs:
crates/linalg/src/cholesky.rs:
crates/linalg/src/full.rs:
crates/linalg/src/generate.rs:
crates/linalg/src/kernels.rs:
crates/linalg/src/lu.rs:
crates/linalg/src/matrix.rs:
crates/linalg/src/qr.rs:
crates/linalg/src/verify.rs:
