/root/repo/target/debug/deps/proptest-27e811af691b1500.d: crates/compat/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-27e811af691b1500.rlib: crates/compat/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-27e811af691b1500.rmeta: crates/compat/proptest/src/lib.rs

crates/compat/proptest/src/lib.rs:
