/root/repo/target/debug/deps/hetchol_core-e6b533f2e54cfc52.d: crates/core/src/lib.rs crates/core/src/algorithm.rs crates/core/src/dag.rs crates/core/src/exec.rs crates/core/src/kernel.rs crates/core/src/metrics.rs crates/core/src/platform.rs crates/core/src/profiles.rs crates/core/src/schedule.rs crates/core/src/scheduler.rs crates/core/src/task.rs crates/core/src/time.rs crates/core/src/trace.rs Cargo.toml

/root/repo/target/debug/deps/libhetchol_core-e6b533f2e54cfc52.rmeta: crates/core/src/lib.rs crates/core/src/algorithm.rs crates/core/src/dag.rs crates/core/src/exec.rs crates/core/src/kernel.rs crates/core/src/metrics.rs crates/core/src/platform.rs crates/core/src/profiles.rs crates/core/src/schedule.rs crates/core/src/scheduler.rs crates/core/src/task.rs crates/core/src/time.rs crates/core/src/trace.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/algorithm.rs:
crates/core/src/dag.rs:
crates/core/src/exec.rs:
crates/core/src/kernel.rs:
crates/core/src/metrics.rs:
crates/core/src/platform.rs:
crates/core/src/profiles.rs:
crates/core/src/schedule.rs:
crates/core/src/scheduler.rs:
crates/core/src/task.rs:
crates/core/src/time.rs:
crates/core/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
