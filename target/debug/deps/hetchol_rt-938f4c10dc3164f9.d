/root/repo/target/debug/deps/hetchol_rt-938f4c10dc3164f9.d: crates/rt/src/lib.rs crates/rt/src/calibrate.rs crates/rt/src/runtime.rs crates/rt/src/storage.rs

/root/repo/target/debug/deps/libhetchol_rt-938f4c10dc3164f9.rlib: crates/rt/src/lib.rs crates/rt/src/calibrate.rs crates/rt/src/runtime.rs crates/rt/src/storage.rs

/root/repo/target/debug/deps/libhetchol_rt-938f4c10dc3164f9.rmeta: crates/rt/src/lib.rs crates/rt/src/calibrate.rs crates/rt/src/runtime.rs crates/rt/src/storage.rs

crates/rt/src/lib.rs:
crates/rt/src/calibrate.rs:
crates/rt/src/runtime.rs:
crates/rt/src/storage.rs:
