/root/repo/target/debug/deps/rand-57bd50ee126cd08e.d: crates/compat/rand/src/lib.rs

/root/repo/target/debug/deps/librand-57bd50ee126cd08e.rlib: crates/compat/rand/src/lib.rs

/root/repo/target/debug/deps/librand-57bd50ee126cd08e.rmeta: crates/compat/rand/src/lib.rs

crates/compat/rand/src/lib.rs:
