/root/repo/target/debug/deps/real_runtime-714cc35e1755f8a9.d: tests/real_runtime.rs Cargo.toml

/root/repo/target/debug/deps/libreal_runtime-714cc35e1755f8a9.rmeta: tests/real_runtime.rs Cargo.toml

tests/real_runtime.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
