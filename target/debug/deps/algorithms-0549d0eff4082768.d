/root/repo/target/debug/deps/algorithms-0549d0eff4082768.d: tests/algorithms.rs

/root/repo/target/debug/deps/algorithms-0549d0eff4082768: tests/algorithms.rs

tests/algorithms.rs:
