/root/repo/target/debug/deps/bench_bounds-63f30db4cd028c0e.d: crates/bench/benches/bench_bounds.rs Cargo.toml

/root/repo/target/debug/deps/libbench_bounds-63f30db4cd028c0e.rmeta: crates/bench/benches/bench_bounds.rs Cargo.toml

crates/bench/benches/bench_bounds.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
