/root/repo/target/debug/deps/hetchol_cp-0bd7c4b2d0d9a93c.d: crates/cp/src/lib.rs crates/cp/src/anneal.rs crates/cp/src/list.rs crates/cp/src/search.rs

/root/repo/target/debug/deps/hetchol_cp-0bd7c4b2d0d9a93c: crates/cp/src/lib.rs crates/cp/src/anneal.rs crates/cp/src/list.rs crates/cp/src/search.rs

crates/cp/src/lib.rs:
crates/cp/src/anneal.rs:
crates/cp/src/list.rs:
crates/cp/src/search.rs:
