/root/repo/target/debug/deps/pipeline-8358ff194c9e4ba9.d: tests/pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libpipeline-8358ff194c9e4ba9.rmeta: tests/pipeline.rs Cargo.toml

tests/pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
