/root/repo/target/debug/deps/hetchol_linalg-787f1cc27983a664.d: crates/linalg/src/lib.rs crates/linalg/src/cholesky.rs crates/linalg/src/full.rs crates/linalg/src/generate.rs crates/linalg/src/kernels.rs crates/linalg/src/lu.rs crates/linalg/src/matrix.rs crates/linalg/src/qr.rs crates/linalg/src/verify.rs

/root/repo/target/debug/deps/hetchol_linalg-787f1cc27983a664: crates/linalg/src/lib.rs crates/linalg/src/cholesky.rs crates/linalg/src/full.rs crates/linalg/src/generate.rs crates/linalg/src/kernels.rs crates/linalg/src/lu.rs crates/linalg/src/matrix.rs crates/linalg/src/qr.rs crates/linalg/src/verify.rs

crates/linalg/src/lib.rs:
crates/linalg/src/cholesky.rs:
crates/linalg/src/full.rs:
crates/linalg/src/generate.rs:
crates/linalg/src/kernels.rs:
crates/linalg/src/lu.rs:
crates/linalg/src/matrix.rs:
crates/linalg/src/qr.rs:
crates/linalg/src/verify.rs:
