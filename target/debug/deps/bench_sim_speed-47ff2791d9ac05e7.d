/root/repo/target/debug/deps/bench_sim_speed-47ff2791d9ac05e7.d: crates/bench/benches/bench_sim_speed.rs Cargo.toml

/root/repo/target/debug/deps/libbench_sim_speed-47ff2791d9ac05e7.rmeta: crates/bench/benches/bench_sim_speed.rs Cargo.toml

crates/bench/benches/bench_sim_speed.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
