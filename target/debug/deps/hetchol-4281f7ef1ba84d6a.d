/root/repo/target/debug/deps/hetchol-4281f7ef1ba84d6a.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libhetchol-4281f7ef1ba84d6a.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
