/root/repo/target/debug/deps/parking_lot-d0e9c1b1a4a3c502.d: crates/compat/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-d0e9c1b1a4a3c502.rlib: crates/compat/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-d0e9c1b1a4a3c502.rmeta: crates/compat/parking_lot/src/lib.rs

crates/compat/parking_lot/src/lib.rs:
