/root/repo/target/debug/deps/ablation_k-bfa4b580d5764908.d: crates/bench/benches/ablation_k.rs Cargo.toml

/root/repo/target/debug/deps/libablation_k-bfa4b580d5764908.rmeta: crates/bench/benches/ablation_k.rs Cargo.toml

crates/bench/benches/ablation_k.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
