/root/repo/target/debug/deps/proptest-f1868c047ea79c04.d: crates/compat/proptest/src/lib.rs

/root/repo/target/debug/deps/proptest-f1868c047ea79c04: crates/compat/proptest/src/lib.rs

crates/compat/proptest/src/lib.rs:
