/root/repo/target/debug/deps/parking_lot-ec25962a75d7519e.d: crates/compat/parking_lot/src/lib.rs

/root/repo/target/debug/deps/parking_lot-ec25962a75d7519e: crates/compat/parking_lot/src/lib.rs

crates/compat/parking_lot/src/lib.rs:
