/root/repo/target/debug/deps/ablation_bound-66b498972d7a8819.d: crates/bench/benches/ablation_bound.rs Cargo.toml

/root/repo/target/debug/deps/libablation_bound-66b498972d7a8819.rmeta: crates/bench/benches/ablation_bound.rs Cargo.toml

crates/bench/benches/ablation_bound.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
