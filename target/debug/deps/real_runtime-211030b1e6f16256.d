/root/repo/target/debug/deps/real_runtime-211030b1e6f16256.d: tests/real_runtime.rs

/root/repo/target/debug/deps/real_runtime-211030b1e6f16256: tests/real_runtime.rs

tests/real_runtime.rs:
