/root/repo/target/debug/deps/proptests-c9c4793a6708df1a.d: tests/proptests.rs

/root/repo/target/debug/deps/proptests-c9c4793a6708df1a: tests/proptests.rs

tests/proptests.rs:
