/root/repo/target/debug/deps/hetchol_sim-302abfe14f1481bf.d: crates/sim/src/lib.rs crates/sim/src/data.rs crates/sim/src/engine.rs crates/sim/src/jitter.rs

/root/repo/target/debug/deps/libhetchol_sim-302abfe14f1481bf.rlib: crates/sim/src/lib.rs crates/sim/src/data.rs crates/sim/src/engine.rs crates/sim/src/jitter.rs

/root/repo/target/debug/deps/libhetchol_sim-302abfe14f1481bf.rmeta: crates/sim/src/lib.rs crates/sim/src/data.rs crates/sim/src/engine.rs crates/sim/src/jitter.rs

crates/sim/src/lib.rs:
crates/sim/src/data.rs:
crates/sim/src/engine.rs:
crates/sim/src/jitter.rs:
