/root/repo/target/debug/deps/hetchol_bounds-78d31688fae509d5.d: crates/bounds/src/lib.rs crates/bounds/src/bounds.rs crates/bounds/src/ilp.rs crates/bounds/src/simplex.rs

/root/repo/target/debug/deps/hetchol_bounds-78d31688fae509d5: crates/bounds/src/lib.rs crates/bounds/src/bounds.rs crates/bounds/src/ilp.rs crates/bounds/src/simplex.rs

crates/bounds/src/lib.rs:
crates/bounds/src/bounds.rs:
crates/bounds/src/ilp.rs:
crates/bounds/src/simplex.rs:
