/root/repo/target/debug/deps/hetchol_sim-b959235d792615dc.d: crates/sim/src/lib.rs crates/sim/src/data.rs crates/sim/src/engine.rs crates/sim/src/jitter.rs

/root/repo/target/debug/deps/hetchol_sim-b959235d792615dc: crates/sim/src/lib.rs crates/sim/src/data.rs crates/sim/src/engine.rs crates/sim/src/jitter.rs

crates/sim/src/lib.rs:
crates/sim/src/data.rs:
crates/sim/src/engine.rs:
crates/sim/src/jitter.rs:
