/root/repo/target/debug/deps/pipeline-e3533ed72129bc7f.d: tests/pipeline.rs

/root/repo/target/debug/deps/pipeline-e3533ed72129bc7f: tests/pipeline.rs

tests/pipeline.rs:
