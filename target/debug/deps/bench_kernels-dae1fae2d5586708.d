/root/repo/target/debug/deps/bench_kernels-dae1fae2d5586708.d: crates/bench/benches/bench_kernels.rs Cargo.toml

/root/repo/target/debug/deps/libbench_kernels-dae1fae2d5586708.rmeta: crates/bench/benches/bench_kernels.rs Cargo.toml

crates/bench/benches/bench_kernels.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
