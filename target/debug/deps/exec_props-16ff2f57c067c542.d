/root/repo/target/debug/deps/exec_props-16ff2f57c067c542.d: crates/core/tests/exec_props.rs

/root/repo/target/debug/deps/exec_props-16ff2f57c067c542: crates/core/tests/exec_props.rs

crates/core/tests/exec_props.rs:
