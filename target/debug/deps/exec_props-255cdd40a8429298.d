/root/repo/target/debug/deps/exec_props-255cdd40a8429298.d: crates/core/tests/exec_props.rs Cargo.toml

/root/repo/target/debug/deps/libexec_props-255cdd40a8429298.rmeta: crates/core/tests/exec_props.rs Cargo.toml

crates/core/tests/exec_props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
