//! Scratch profiling driver: repeatedly simulate the n=32 dmda sweep so a
//! sampling profiler can see the engine's hot path.

use hetchol_bench::SchedKind;
use hetchol_core::dag::TaskGraph;
use hetchol_core::obs::ObsSink;
use hetchol_core::platform::Platform;
use hetchol_core::profiles::TimingProfile;
use hetchol_sim::{simulate_with, SimOptions};

fn main() {
    let kind = if std::env::args().any(|a| a == "dmdas") {
        SchedKind::Dmdas
    } else {
        SchedKind::Dmda
    };
    let platform = Platform::mirage().without_comm();
    let profile = TimingProfile::mirage();
    let graph = TaskGraph::cholesky(32);
    let opts = SimOptions::default();
    let mut total = 0u64;
    for _ in 0..2000 {
        let mut s = kind.build(0);
        let r = simulate_with(
            &graph,
            &platform,
            &profile,
            s.as_mut(),
            &opts,
            ObsSink::disabled(),
        );
        total = total.wrapping_add(r.makespan.as_nanos());
    }
    println!("{total}");
}
