//! Golden + shape tests for the `repro certify` report.

use hetchol_bench::certify_report;

/// The grid report is machine-readable, failure-free, and its first line
/// (mirage / Cholesky / n=4) is locked golden: exact rational bounds are
/// deterministic, so any drift in the LP, the branch-and-bound replay, or
/// the certificate pipeline shows up here as a diff.
#[test]
fn certify_json_report_is_golden_and_failure_free() {
    let (report, failures) = certify_report(true);
    assert_eq!(failures, 0, "{report}");
    let lines: Vec<&str> = report.lines().collect();
    assert_eq!(lines.len(), 24, "2 platforms x 3 algos x 4 sizes");
    assert_eq!(
        lines[0],
        "{\"platform\":\"mirage\",\"algo\":\"cholesky\",\"n\":4,\"status\":\"verified\",\
         \"area\":\"8749819/250000000\",\"mixed\":\"4927229/31250000\",\
         \"area_secs\":0.034999276,\"mixed_secs\":0.157671328,\
         \"leaves\":6,\"tree_complete\":true}"
    );
    for line in &lines {
        let doc = hetchol_core::obs::parse_json(line).expect("each line is valid JSON");
        let obj = match doc {
            hetchol_core::obs::JsonValue::Obj(o) => o,
            other => panic!("line is not an object: {other:?}"),
        };
        assert!(obj.iter().any(|(k, _)| k == "platform"));
        assert!(obj.iter().any(|(k, v)| k == "status"
            && matches!(v, hetchol_core::obs::JsonValue::Str(s) if s == "verified")));
    }
}

/// The text rendering carries the same verdicts in human-readable form.
#[test]
fn certify_text_report_lists_the_grid() {
    let (report, failures) = certify_report(false);
    assert_eq!(failures, 0, "{report}");
    for needle in ["mirage", "cpu-only", "cholesky", "lu", "qr", "verified"] {
        assert!(report.contains(needle), "missing {needle}:\n{report}");
    }
    assert!(!report.contains("FAILED"), "{report}");
}
