//! Detection power of `repro race`: every seeded concurrency mutation
//! must be caught by its analyzer, and the serve-pool deadlock witness
//! must survive a JSON round-trip and replay.
//!
//! The stock full-tree exhaustion (~59k schedules) lives in the CI race
//! job and `crates/serve/tests/model.rs`; here we only pay for the
//! cheap, deterministic mutation runs.

use hetchol_analyze::{ExploreConfig, Witness};
use hetchol_bench as bench;
use hetchol_serve::model;

fn opts(mutate: &str) -> bench::RaceOptions {
    bench::RaceOptions {
        mutate: Some(mutate.to_string()),
        ..Default::default()
    }
}

#[test]
fn drop_store_lock_is_detected_as_a_race() {
    let (report, code) = bench::race(&opts("drop-store-lock"));
    assert_eq!(code, 1, "{report}");
    assert!(report.contains("race-witness"), "{report}");
    assert!(report.contains("serve.store.jobs"), "{report}");
}

#[test]
fn invert_commit_order_is_detected_as_a_cycle() {
    let (report, code) = bench::race(&opts("invert-commit-order"));
    assert_eq!(code, 1, "{report}");
    assert!(report.contains("lock-order cycle"), "{report}");
    assert!(report.contains("serve.cache.results"), "{report}");
}

#[test]
fn unknown_mutation_is_a_usage_error() {
    let (report, code) = bench::race(&opts("no-such-bug"));
    assert_eq!(code, 2, "{report}");
}

#[test]
fn leak_killed_batch_witness_roundtrips_and_replays() {
    let cfg = ExploreConfig {
        max_schedules: 5_000,
        max_steps: 20_000,
        sleep_sets: true,
    };
    let report = model::check_pool(cfg, Some("leak-killed-batch")).expect("known mutation");
    let witness =
        model::pool_witness(&report, Some("leak-killed-batch")).expect("deadlock witness found");
    assert_eq!(witness.model, "serve-pool");

    // JSON round-trip preserves everything replay needs.
    let parsed = Witness::from_json(&witness.to_json()).expect("witness parses back");
    assert_eq!(parsed.model, witness.model);
    assert_eq!(parsed.choices, witness.choices);
    assert_eq!(parsed.invariant, witness.invariant);
    assert_eq!(parsed.mutation, witness.mutation);

    let replay = model::replay_pool(&parsed, cfg).expect("replay runs");
    assert_eq!(
        replay.observed.map(|v| v.invariant),
        Some(witness.invariant),
        "replayed witness must reproduce its recorded invariant"
    );
}
