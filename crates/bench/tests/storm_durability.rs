//! End-to-end durability storm: the disk-fault and kill-restart legs
//! driven through the real `repro` binary — the same `serve --log`
//! child process CI spawns, SIGKILLed mid-storm and restarted on its
//! own log. The keep-alive leg's p99 assertion is timing-sensitive, so
//! it runs in CI's durability job (sequential, release) rather than
//! here under the parallel test harness.

use hetchol_bench::{storm, StormOptions};

#[test]
fn disk_fault_and_kill_restart_legs_pass_against_the_built_binary() {
    let opts = StormOptions {
        jobs: 8,
        disk_fault: true,
        kill_restart: true,
        serve_exe: Some(std::path::PathBuf::from(env!("CARGO_BIN_EXE_repro"))),
        ..StormOptions::full()
    };
    let (report, failures) = storm(&opts);
    assert_eq!(failures, 0, "{report}");
    assert!(report.contains("all assertions passed"), "{report}");
    assert!(
        report.contains("bitwise-identical after restart"),
        "{report}"
    );
}
