//! `repro bench`: the committed performance baseline of the data-oriented
//! execution core (DESIGN.md §13).
//!
//! The harness times three engines over the same Cholesky DAGs:
//!
//! * `sim` — the arena engine ([`hetchol_sim::simulate_with`]): SoA task
//!   arena, ring-buffer worker queues, calendar event queue;
//! * `sim-reference` — the frozen pre-refactor engine
//!   ([`hetchol_sim::reference::simulate_reference`]), kept in-tree as the
//!   *before* leg so both legs of the committed baseline come from the
//!   same harness on the same machine;
//! * `rt` — the threaded runtime retiring no-op tasks, which inherits the
//!   arena layout through the shared `core::exec` structures.
//!
//! Output is the `hetchol-bench/v1` JSON committed as
//! `BENCH_sim_throughput.json`; `repro bench-check` re-validates that file
//! against a fresh run and fails CI when sim tasks/sec regresses by more
//! than 30%.

use std::fmt::Write as _;
use std::time::Instant;

use hetchol_core::dag::TaskGraph;
use hetchol_core::obs::{parse_json, JsonValue, ObsSink};
use hetchol_core::platform::Platform;
use hetchol_core::profiles::TimingProfile;
use hetchol_sim::reference::simulate_reference;
use hetchol_sim::{simulate_with, SimOptions};

use crate::{SchedKind, PAPER_SIZES};

/// Schema tag of the benchmark JSON (validated by [`bench_check`]).
pub const BENCH_SCHEMA: &str = "hetchol-bench/v1";

/// CI regression gate: fail when fresh tasks/sec drops below this fraction
/// of the committed value (ISSUE: "regresses more than 30%").
pub const REGRESSION_FLOOR: f64 = 0.7;

/// One measured (engine, scheduler, size) cell.
#[derive(Clone, Debug)]
pub struct BenchLeg {
    /// `"sim"`, `"sim-reference"` or `"rt"`.
    pub engine: &'static str,
    /// Scheduler label (`"dmda"` / `"dmdas"`).
    pub scheduler: String,
    /// Matrix size in tiles.
    pub n: usize,
    /// Tasks in the DAG (retired once per repetition).
    pub tasks: usize,
    /// Repetitions timed (fresh scheduler per repetition), after one
    /// untimed warm-up run.
    pub reps: u32,
    /// Total wall time over all timed repetitions, seconds.
    pub wall_s: f64,
    /// `tasks / best_rep_s` — the headline metric, computed from the
    /// fastest repetition so scheduler noise and cold caches on a shared
    /// machine don't masquerade as engine regressions.
    pub tasks_per_sec: f64,
    /// Simulated makespan in ns; `None` for the wall-clock `rt` engine.
    /// `sim` and `sim-reference` must agree bit-for-bit — the harness
    /// panics otherwise rather than publish numbers from diverged engines.
    pub makespan_ns: Option<u64>,
}

/// Arena-vs-reference throughput ratio at one (scheduler, n) cell.
#[derive(Clone, Debug)]
pub struct Speedup {
    /// Scheduler label.
    pub scheduler: String,
    /// Matrix size in tiles.
    pub n: usize,
    /// `sim` tasks/sec over `sim-reference` tasks/sec.
    pub factor: f64,
}

/// Wall time of the full paper sweep (every size × dmda/dmdas) per engine.
#[derive(Clone, Debug)]
pub struct SweepTiming {
    /// Sizes swept.
    pub sizes: Vec<usize>,
    /// Arena engine wall time, seconds.
    pub arena_s: f64,
    /// Reference engine wall time, seconds.
    pub reference_s: f64,
}

/// Observability overhead: the same run with hooks disabled vs enabled.
#[derive(Clone, Debug)]
pub struct ObsOverhead {
    /// Matrix size in tiles.
    pub n: usize,
    /// Repetitions per arm.
    pub reps: u32,
    /// Fastest repetition with `ObsSink::disabled()`, seconds.
    pub disabled_s: f64,
    /// Fastest repetition with `ObsSink::enabled()`, seconds.
    pub enabled_s: f64,
    /// `(enabled - disabled) / disabled * 100`.
    pub overhead_pct: f64,
}

/// Everything `repro bench` measures.
#[derive(Clone, Debug)]
pub struct BenchReport {
    /// Whether this was the CI smoke leg (`--quick`).
    pub quick: bool,
    /// The (engine, scheduler, n) matrix.
    pub legs: Vec<BenchLeg>,
    /// Arena-vs-reference ratios derived from `legs`.
    pub speedups: Vec<Speedup>,
    /// Paper-sweep wall time per engine.
    pub sweep: SweepTiming,
    /// Hook-elision cost at the largest sim size.
    pub obs: ObsOverhead,
}

/// Run `f` once untimed (warm-up), then `reps` timed repetitions.
/// Returns `(total_s, best_s)`: the summed wall time and the fastest
/// single repetition.
fn time_reps<F: FnMut()>(reps: u32, mut f: F) -> (f64, f64) {
    f();
    let mut total_s = 0.0;
    let mut best_s = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        f();
        let dt = t0.elapsed().as_secs_f64();
        total_s += dt;
        best_s = best_s.min(dt);
    }
    (total_s, best_s)
}

/// Repetition counts scale down with DAG size so the full matrix stays
/// under a minute while every cell still runs long enough to time.
fn reps_for(engine: &str, n: usize, quick: bool) -> u32 {
    let base: u32 = match (engine, n) {
        ("rt", _) => 3,
        (_, 16) => 40,
        (_, 32) => 20,
        (_, 64) => 5,
        _ => 3,
    };
    if quick {
        base.div_ceil(4).max(1)
    } else {
        base
    }
}

fn sim_leg(
    engine: &'static str,
    kind: SchedKind,
    n: usize,
    platform: &Platform,
    profile: &TimingProfile,
    quick: bool,
) -> BenchLeg {
    let graph = TaskGraph::cholesky(n);
    let opts = SimOptions::default();
    let reps = reps_for(engine, n, quick);
    let mut makespan = None;
    let (wall_s, best_s) = time_reps(reps, || {
        let mut scheduler = kind.build(opts.seed);
        let r = if engine == "sim" {
            simulate_with(
                &graph,
                platform,
                profile,
                scheduler.as_mut(),
                &opts,
                ObsSink::disabled(),
            )
        } else {
            simulate_reference(
                &graph,
                platform,
                profile,
                scheduler.as_mut(),
                &opts,
                ObsSink::disabled(),
            )
        };
        makespan = Some(r.makespan.as_nanos());
    });
    BenchLeg {
        engine,
        scheduler: kind.label(),
        n,
        tasks: graph.len(),
        reps,
        wall_s,
        tasks_per_sec: graph.len() as f64 / best_s,
        makespan_ns: makespan,
    }
}

fn rt_leg(kind: SchedKind, n: usize, quick: bool) -> BenchLeg {
    let graph = TaskGraph::cholesky(n);
    let profile = TimingProfile::mirage_homogeneous();
    let n_workers = 4;
    let reps = reps_for("rt", n, quick);
    let workload = hetchol_rt::FnWorkload(|_| Ok::<(), std::convert::Infallible>(()));
    let (wall_s, best_s) = time_reps(reps, || {
        let mut scheduler = kind.build(0);
        hetchol_rt::execute_workload(
            &workload,
            &graph,
            scheduler.as_mut(),
            &profile,
            n_workers,
            ObsSink::disabled(),
        )
        .expect("no-op tasks cannot fail");
    });
    BenchLeg {
        engine: "rt",
        scheduler: kind.label(),
        n,
        tasks: graph.len(),
        reps,
        wall_s,
        tasks_per_sec: graph.len() as f64 / best_s,
        makespan_ns: None,
    }
}

fn sweep_wall(arena: bool, sizes: &[usize], platform: &Platform, profile: &TimingProfile) -> f64 {
    let (total_s, _) = time_reps(1, || {
        for &n in sizes {
            let graph = TaskGraph::cholesky(n);
            for kind in [SchedKind::Dmda, SchedKind::Dmdas] {
                let mut scheduler = kind.build(0);
                if arena {
                    simulate_with(
                        &graph,
                        platform,
                        profile,
                        scheduler.as_mut(),
                        &SimOptions::default(),
                        ObsSink::disabled(),
                    );
                } else {
                    simulate_reference(
                        &graph,
                        platform,
                        profile,
                        scheduler.as_mut(),
                        &SimOptions::default(),
                        ObsSink::disabled(),
                    );
                }
            }
        }
    });
    total_s
}

/// Run the full measurement matrix. `quick` is the CI smoke leg: fewer
/// repetitions and the small sizes only, but the same schema, so
/// [`bench_check`] can compare it leg-by-leg against the committed file.
pub fn bench_report(quick: bool) -> BenchReport {
    let platform = Platform::mirage().without_comm();
    let profile = TimingProfile::mirage();
    let sim_sizes: &[usize] = if quick { &[16, 32] } else { &[16, 32, 64, 96] };
    let rt_sizes: &[usize] = if quick { &[16] } else { &[16, 32] };

    let mut legs = Vec::new();
    for &n in sim_sizes {
        for kind in [SchedKind::Dmda, SchedKind::Dmdas] {
            let arena = sim_leg("sim", kind, n, &platform, &profile, quick);
            let reference = sim_leg("sim-reference", kind, n, &platform, &profile, quick);
            assert_eq!(
                arena.makespan_ns,
                reference.makespan_ns,
                "arena and reference engines diverged at {} n={n}",
                kind.label()
            );
            legs.push(arena);
            legs.push(reference);
        }
    }
    for &n in rt_sizes {
        legs.push(rt_leg(SchedKind::Dmda, n, quick));
    }

    let speedups = derive_speedups(&legs);

    let sweep_sizes: Vec<usize> = if quick {
        PAPER_SIZES.iter().copied().filter(|&n| n <= 16).collect()
    } else {
        PAPER_SIZES.to_vec()
    };
    let sweep = SweepTiming {
        arena_s: sweep_wall(true, &sweep_sizes, &platform, &profile),
        reference_s: sweep_wall(false, &sweep_sizes, &platform, &profile),
        sizes: sweep_sizes,
    };

    let obs_n = if quick { 16 } else { 32 };
    let obs_reps = if quick { 3 } else { 10 };
    let graph = TaskGraph::cholesky(obs_n);
    let arm = |enabled: bool| {
        let (_, best_s) = time_reps(obs_reps, || {
            let mut scheduler = SchedKind::Dmdas.build(0);
            simulate_with(
                &graph,
                &platform,
                &profile,
                scheduler.as_mut(),
                &SimOptions::default(),
                if enabled {
                    ObsSink::enabled()
                } else {
                    ObsSink::disabled()
                },
            );
        });
        best_s
    };
    let disabled_s = arm(false);
    let enabled_s = arm(true);
    let obs = ObsOverhead {
        n: obs_n,
        reps: obs_reps,
        disabled_s,
        enabled_s,
        overhead_pct: (enabled_s - disabled_s) / disabled_s * 100.0,
    };

    BenchReport {
        quick,
        legs,
        speedups,
        sweep,
        obs,
    }
}

fn derive_speedups(legs: &[BenchLeg]) -> Vec<Speedup> {
    legs.iter()
        .filter(|l| l.engine == "sim")
        .filter_map(|a| {
            legs.iter()
                .find(|r| r.engine == "sim-reference" && r.scheduler == a.scheduler && r.n == a.n)
                .map(|r| Speedup {
                    scheduler: a.scheduler.clone(),
                    n: a.n,
                    factor: a.tasks_per_sec / r.tasks_per_sec,
                })
        })
        .collect()
}

impl BenchReport {
    /// Render as the committed `hetchol-bench/v1` JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{{");
        let _ = writeln!(out, "  \"schema\": \"{BENCH_SCHEMA}\",");
        let _ = writeln!(out, "  \"quick\": {},", self.quick);
        let _ = writeln!(out, "  \"legs\": [");
        for (i, l) in self.legs.iter().enumerate() {
            let _ = writeln!(
                out,
                "    {{\"engine\": \"{}\", \"scheduler\": \"{}\", \"n\": {}, \"tasks\": {}, \
                 \"reps\": {}, \"wall_s\": {:.6}, \"tasks_per_sec\": {:.1}, \"makespan_ns\": {}}}{}",
                l.engine,
                l.scheduler,
                l.n,
                l.tasks,
                l.reps,
                l.wall_s,
                l.tasks_per_sec,
                l.makespan_ns
                    .map_or("null".to_string(), |m| m.to_string()),
                if i + 1 < self.legs.len() { "," } else { "" }
            );
        }
        let _ = writeln!(out, "  ],");
        let _ = writeln!(out, "  \"speedups\": [");
        for (i, s) in self.speedups.iter().enumerate() {
            let _ = writeln!(
                out,
                "    {{\"scheduler\": \"{}\", \"n\": {}, \"factor\": {:.2}}}{}",
                s.scheduler,
                s.n,
                s.factor,
                if i + 1 < self.speedups.len() { "," } else { "" }
            );
        }
        let _ = writeln!(out, "  ],");
        let _ = writeln!(
            out,
            "  \"sweep\": {{\"sizes\": [{}], \"arena_wall_s\": {:.6}, \"reference_wall_s\": {:.6}}},",
            self.sweep
                .sizes
                .iter()
                .map(|n| n.to_string())
                .collect::<Vec<_>>()
                .join(", "),
            self.sweep.arena_s,
            self.sweep.reference_s
        );
        let _ = writeln!(
            out,
            "  \"obs\": {{\"n\": {}, \"reps\": {}, \"disabled_s\": {:.6}, \"enabled_s\": {:.6}, \
             \"overhead_pct\": {:.2}}}",
            self.obs.n,
            self.obs.reps,
            self.obs.disabled_s,
            self.obs.enabled_s,
            self.obs.overhead_pct
        );
        out.push_str("}\n");
        out
    }

    /// Render as an aligned human-readable table.
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "# Execution-core throughput ({})",
            if self.quick {
                "quick smoke leg"
            } else {
                "full matrix"
            }
        );
        let _ = writeln!(
            out,
            "{:>14} {:>6} {:>4} {:>8} {:>5} {:>10} {:>14}",
            "engine", "sched", "n", "tasks", "reps", "wall (s)", "tasks/sec"
        );
        for l in &self.legs {
            let _ = writeln!(
                out,
                "{:>14} {:>6} {:>4} {:>8} {:>5} {:>10.4} {:>14.0}",
                l.engine, l.scheduler, l.n, l.tasks, l.reps, l.wall_s, l.tasks_per_sec
            );
        }
        let _ = writeln!(out, "\n# Arena vs reference speedup (tasks/sec ratio)");
        for s in &self.speedups {
            let _ = writeln!(out, "{:>6} n={:<3} {:>6.1}x", s.scheduler, s.n, s.factor);
        }
        let _ = writeln!(
            out,
            "\n# Paper sweep (sizes {:?} x dmda/dmdas): arena {:.3}s, reference {:.3}s",
            self.sweep.sizes, self.sweep.arena_s, self.sweep.reference_s
        );
        let _ = writeln!(
            out,
            "# Obs overhead at n={}: disabled {:.4}s, enabled {:.4}s ({:+.1}%)",
            self.obs.n, self.obs.disabled_s, self.obs.enabled_s, self.obs.overhead_pct
        );
        out
    }
}

// ---------------------------------------------------------------------------
// bench-check: schema validation + regression gate
// ---------------------------------------------------------------------------

/// A leg as read back from a benchmark JSON file.
#[derive(Clone, Debug, PartialEq)]
pub struct LegView {
    /// Engine tag.
    pub engine: String,
    /// Scheduler label.
    pub scheduler: String,
    /// Matrix size in tiles.
    pub n: usize,
    /// Measured throughput.
    pub tasks_per_sec: f64,
}

fn num(v: &JsonValue, key: &str, ctx: &str) -> Result<f64, String> {
    match v.get(key) {
        Some(JsonValue::Num(x)) => Ok(*x),
        Some(other) => Err(format!("{ctx}: `{key}` is not a number: {other:?}")),
        None => Err(format!("{ctx}: missing `{key}`")),
    }
}

fn string(v: &JsonValue, key: &str, ctx: &str) -> Result<String, String> {
    match v.get(key) {
        Some(JsonValue::Str(s)) => Ok(s.clone()),
        Some(other) => Err(format!("{ctx}: `{key}` is not a string: {other:?}")),
        None => Err(format!("{ctx}: missing `{key}`")),
    }
}

/// Parse and schema-validate a `hetchol-bench/v1` document, returning its
/// legs. Rejects wrong schema tags, missing fields, and wrong field types.
pub fn validate_bench_json(text: &str) -> Result<Vec<LegView>, String> {
    let doc = parse_json(text)?;
    let schema = string(&doc, "schema", "document")?;
    if schema != BENCH_SCHEMA {
        return Err(format!("schema is `{schema}`, expected `{BENCH_SCHEMA}`"));
    }
    let legs = match doc.get("legs") {
        Some(JsonValue::Arr(legs)) => legs,
        _ => return Err("document: missing `legs` array".to_string()),
    };
    if legs.is_empty() {
        return Err("document: `legs` is empty".to_string());
    }
    let mut out = Vec::new();
    for (i, leg) in legs.iter().enumerate() {
        let ctx = format!("legs[{i}]");
        let engine = string(leg, "engine", &ctx)?;
        if !matches!(engine.as_str(), "sim" | "sim-reference" | "rt") {
            return Err(format!("{ctx}: unknown engine `{engine}`"));
        }
        let tps = num(leg, "tasks_per_sec", &ctx)?;
        if !tps.is_finite() || tps <= 0.0 {
            return Err(format!("{ctx}: tasks_per_sec {tps} is not positive"));
        }
        // Required by the schema even though the gate doesn't use them.
        num(leg, "tasks", &ctx)?;
        num(leg, "reps", &ctx)?;
        num(leg, "wall_s", &ctx)?;
        out.push(LegView {
            engine,
            scheduler: string(leg, "scheduler", &ctx)?,
            n: num(leg, "n", &ctx)? as usize,
            tasks_per_sec: tps,
        });
    }
    // The committed baseline must carry both legs of the before/after story.
    for required in ["sim", "sim-reference"] {
        if !out.iter().any(|l| l.engine == required) {
            return Err(format!("document: no `{required}` legs"));
        }
    }
    Ok(out)
}

/// `repro bench-check <fresh> <committed>`: validate both documents
/// against the schema and fail any arena-engine cell whose fresh tasks/sec
/// fell below [`REGRESSION_FLOOR`] of the committed value. Returns the
/// rendered report and the failure count (the binary's exit code).
pub fn bench_check(fresh_text: &str, committed_text: &str) -> (String, usize) {
    let mut out = String::new();
    let fresh = match validate_bench_json(fresh_text) {
        Ok(legs) => legs,
        Err(e) => return (format!("fresh run: INVALID: {e}\n"), 1),
    };
    let committed = match validate_bench_json(committed_text) {
        Ok(legs) => legs,
        Err(e) => return (format!("committed baseline: INVALID: {e}\n"), 1),
    };
    let _ = writeln!(
        out,
        "schema ok: {} fresh leg(s), {} committed leg(s)",
        fresh.len(),
        committed.len()
    );
    let mut failures = 0usize;
    let mut compared = 0usize;
    for f in fresh.iter().filter(|l| l.engine == "sim") {
        let Some(c) = committed
            .iter()
            .find(|c| c.engine == f.engine && c.scheduler == f.scheduler && c.n == f.n)
        else {
            continue;
        };
        compared += 1;
        let ratio = f.tasks_per_sec / c.tasks_per_sec;
        let ok = ratio >= REGRESSION_FLOOR;
        if !ok {
            failures += 1;
        }
        let _ = writeln!(
            out,
            "{:>6} n={:<3} fresh {:>12.0} vs committed {:>12.0} tasks/sec ({:>5.2}x) {}",
            f.scheduler,
            f.n,
            f.tasks_per_sec,
            c.tasks_per_sec,
            ratio,
            if ok { "ok" } else { "REGRESSION" }
        );
    }
    if compared == 0 {
        let _ = writeln!(out, "no comparable sim legs between the two files");
        failures += 1;
    }
    let _ = writeln!(out, "{compared} cell(s) compared, {failures} failure(s)");
    (out, failures)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_report_round_trips_schema() {
        let report = bench_report(true);
        let json = report.to_json();
        let legs = validate_bench_json(&json).expect("fresh JSON validates");
        assert_eq!(legs.len(), report.legs.len());
        assert!(legs.iter().any(|l| l.engine == "sim" && l.n == 32));
        assert!(legs.iter().any(|l| l.engine == "rt"));
        assert!(!report.to_table().is_empty());
        // The harness itself asserts makespan equality per cell; the
        // derived speedups must cover every sim leg.
        assert_eq!(
            report.speedups.len(),
            report.legs.iter().filter(|l| l.engine == "sim").count()
        );
    }

    #[test]
    fn bench_check_flags_regressions_and_bad_schema() {
        let report = bench_report(true);
        let json = report.to_json();
        let (_, failures) = bench_check(&json, &json);
        assert_eq!(failures, 0, "a file never regresses against itself");

        // A committed baseline 10x faster than the fresh run must fail.
        let inflated = json.replace("\"tasks_per_sec\": ", "\"tasks_per_sec\": 1");
        let (out, failures) = bench_check(&json, &inflated);
        assert!(failures > 0, "10x inflation must trip the gate:\n{out}");

        let (_, failures) = bench_check("{\"schema\": \"wrong\"}", &json);
        assert_eq!(failures, 1);
        assert!(validate_bench_json("{}").is_err());
        assert!(validate_bench_json("not json").is_err());
    }
}
