//! `repro` — regenerate every table and figure of the paper.
//!
//! Usage:
//! ```text
//! repro all                  # everything below, in order
//! repro table1               # Table I: GPU/CPU kernel speedups
//! repro kfactors             # Section V-C2 acceleration factors K(n)
//! repro fig1                 # 5x5 Cholesky DAG (DOT)
//! repro fig2                 # theoretical upper bounds
//! repro fig3 .. fig8         # scheduler curves (see DESIGN.md)
//! repro fig9 [n] [k]         # TRSMs forced on CPUs (ASCII triangle)
//! repro fig10 [--cp-budget N]  # static knowledge vs bounds (CP inside)
//! repro fig11                # actual mode with static knowledge
//! repro fig12                # GPU Gantt traces, dmda vs dmdas
//! repro hint-gemmsyrk        # Section V-C3 first experiment
//! repro mapping-only         # Section VI-B experiment
//! repro sweep-k [n]          # makespan vs triangle offset k
//!
//! repro analyze              # lint both engines' traces (exit 1 on errors)
//! repro chaos [--seed N]     # seeded fault-injection matrix over both engines (exit 1 on failures)
//! repro mc [--workers N] [--tiles N] [--faults] [--mutate <bug>] [--compare-pruning]
//!          [--witness-out <file>] [--replay <witness.json>]
//!                            # DPOR model checking of the resilient runtime (exit 1 on violations)
//! repro race [--serve] [--mutate <bug>] [--witness-out <file>]
//!                            # happens-before + lockdep recording and the serve-pool model;
//!                            # stock: exit 1 on findings; --mutate: exit 1 when the bug is caught
//! repro certify              # exact-certify the paper grid's bounds (exit 1 on failures)
//! repro obs-check <file...>  # validate Chrome-trace JSON files (exit 1 on invalid)
//! repro bench [--quick]      # execution-core throughput matrix (BENCH_sim_throughput.json)
//! repro bench-check <fresh> <committed>  # schema + >30% regression gate (exit 1 on failures)
//! repro serve [--addr A] [--shards N] [--log FILE]
//!                            # run the hetchol-serve job API in the foreground; --log makes
//!                            # commits durable (crash recovery + `POST /admin/drain` exits cleanly)
//! repro storm [--addr A] [--jobs N] [--p99-limit MS] [--quick]
//!             [--keep-alive] [--disk-fault] [--kill-restart]
//!                            # load/cache/chaos harness against the job API (exit 1 on failures);
//!                            # the three flags add the durability legs of DESIGN.md §17
//!
//! Add `--csv` to print figures as CSV instead of aligned tables.
//! Add `--obs-out <dir>` to any subcommand to also run one instrumented
//! reference workload per engine and write observability artifacts
//! (Chrome trace, utilization report, summary JSON) into `<dir>`.
//! ```

use hetchol_bench as bench;
use hetchol_core::metrics::Figure;
use hetchol_cp::CpOptions;

struct Args {
    csv: bool,
    json: bool,
    analyze: bool,
    quick: bool,
    cp_budget: usize,
    seed: u64,
    obs_out: Option<std::path::PathBuf>,
    mc: bench::McOptions,
    race: bench::RaceOptions,
    replay: Option<std::path::PathBuf>,
    addr: Option<String>,
    shards: usize,
    jobs: Option<usize>,
    p99_limit_ms: Option<u64>,
    log: Option<std::path::PathBuf>,
    keep_alive: bool,
    disk_fault: bool,
    kill_restart: bool,
    rest: Vec<String>,
}

fn parse_args() -> Args {
    let mut csv = false;
    let mut json = false;
    let mut analyze = false;
    let mut quick = false;
    let mut cp_budget = 30_000usize;
    let mut seed = 42u64;
    let mut obs_out = None;
    let mut mc = bench::McOptions::default();
    let mut race = bench::RaceOptions::default();
    let mut replay = None;
    let mut addr = None;
    let mut shards = 4usize;
    let mut jobs = None;
    let mut p99_limit_ms = None;
    let mut log = None;
    let mut keep_alive = false;
    let mut disk_fault = false;
    let mut kill_restart = false;
    let mut rest = Vec::new();
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--csv" => csv = true,
            "--json" => json = true,
            "--analyze" => analyze = true,
            "--quick" => quick = true,
            "--cp-budget" => {
                cp_budget = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--cp-budget needs an integer"));
            }
            "--seed" => {
                seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--seed needs an integer"));
            }
            "--obs-out" => {
                obs_out = Some(std::path::PathBuf::from(
                    it.next()
                        .unwrap_or_else(|| die("--obs-out needs a directory")),
                ));
            }
            "--workers" => {
                mc.n_workers = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--workers needs an integer"));
            }
            "--tiles" => {
                mc.n_tiles = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--tiles needs an integer"));
            }
            "--faults" => mc.faults = true,
            "--compare-pruning" => mc.compare_pruning = true,
            "--serve" => race.serve_only = true,
            "--mutate" => {
                let name = it.next().unwrap_or_else(|| die("--mutate needs a name"));
                mc.mutate = Some(name.clone());
                race.mutate = Some(name);
            }
            "--witness-out" => {
                let path = std::path::PathBuf::from(
                    it.next()
                        .unwrap_or_else(|| die("--witness-out needs a file")),
                );
                mc.witness_out = Some(path.clone());
                race.witness_out = Some(path);
            }
            "--replay" => {
                replay = Some(std::path::PathBuf::from(
                    it.next().unwrap_or_else(|| die("--replay needs a file")),
                ));
            }
            "--addr" => {
                addr = Some(it.next().unwrap_or_else(|| die("--addr needs host:port")));
            }
            "--shards" => {
                shards = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--shards needs an integer"));
            }
            "--jobs" => {
                jobs = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| die("--jobs needs an integer")),
                );
            }
            "--p99-limit" => {
                p99_limit_ms = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| die("--p99-limit needs milliseconds")),
                );
            }
            "--log" => {
                log = Some(std::path::PathBuf::from(
                    it.next().unwrap_or_else(|| die("--log needs a file path")),
                ));
            }
            "--keep-alive" => keep_alive = true,
            "--disk-fault" => disk_fault = true,
            "--kill-restart" => kill_restart = true,
            _ => rest.push(a),
        }
    }
    mc.json = json;
    race.json = json;
    Args {
        csv,
        json,
        analyze,
        quick,
        cp_budget,
        seed,
        obs_out,
        mc,
        race,
        replay,
        addr,
        shards,
        jobs,
        p99_limit_ms,
        log,
        keep_alive,
        disk_fault,
        kill_restart,
        rest,
    }
}

/// `repro serve`: run the job API in the foreground until killed or
/// drained. With `--log` every commit is durable: startup recovers the
/// longest checksummed prefix (a torn tail is a structured warning, not
/// a crash) and `POST /admin/drain` fsyncs the log and exits cleanly.
fn run_serve(args: &Args) -> ! {
    let addr = args.addr.clone().unwrap_or_else(|| "127.0.0.1:8790".into());
    let mut config = bench::storm::serve_config(&addr, args.shards);
    config.log_path = args.log.clone();
    match hetchol_serve::Server::start(config) {
        Ok(server) => {
            if let Some(report) = server.recovery() {
                if !report.is_clean() {
                    eprintln!("serve: WARNING torn job log tail truncated");
                }
                eprintln!("serve: recovery {}", report.to_json_value().render());
            }
            println!("serve: listening on http://{}", server.addr());
            println!(
                "serve: POST /jobs  GET /jobs/<id>[/trace|/lint]  GET /health  GET /stats  POST /admin/drain"
            );
            server.wait_drained();
            println!("serve: drained; exiting");
            std::process::exit(0)
        }
        Err(e) => die(&format!("serve: cannot bind {addr}: {e}")),
    }
}

/// `repro storm [--quick]`: the load/cache/chaos harness; exit 1 when any
/// assertion fails.
fn run_storm(args: &Args) -> ! {
    let mut opts = if args.quick {
        bench::StormOptions::quick()
    } else {
        bench::StormOptions::full()
    };
    opts.addr = args.addr.clone();
    opts.json = args.json;
    opts.keep_alive = args.keep_alive;
    opts.disk_fault = args.disk_fault;
    opts.kill_restart = args.kill_restart;
    if let Some(jobs) = args.jobs {
        opts.jobs = jobs;
    }
    if let Some(limit) = args.p99_limit_ms {
        opts.p99_limit_ms = limit;
    }
    let (report, failures) = bench::storm(&opts);
    print!("{report}");
    if failures > 0 {
        eprintln!("storm: {failures} failed assertion(s)");
        std::process::exit(1);
    }
    std::process::exit(0)
}

/// `repro --analyze` / `repro analyze`: lint both engines' traces with
/// `hetchol-analyze` and exit nonzero on any error-severity finding.
fn run_analyze(json: bool) -> ! {
    let (report, errors) = bench::analyze(json);
    print!("{report}");
    if errors > 0 {
        eprintln!("analyze: {errors} error-severity finding(s)");
        std::process::exit(1);
    }
    std::process::exit(0)
}

/// `repro chaos`: run the seeded fault-injection matrix through both
/// engines — outcome classification, recovery lint (rule 17) and numeric
/// verification per scenario — and exit nonzero if any scenario fails.
fn run_chaos(seed: u64, json: bool) -> ! {
    let (report, failures) = bench::chaos(seed, json);
    print!("{report}");
    if failures > 0 {
        eprintln!("chaos: {failures} failed scenario(s)");
        std::process::exit(1);
    }
    std::process::exit(0)
}

/// `repro mc`: exhaustively model-check the resilient runtime with the
/// DPOR explorer (DESIGN.md §14) and exit nonzero on any invariant
/// violation; `--replay <witness.json>` re-runs a stored witness instead
/// and exits nonzero when it no longer reproduces.
fn run_mc(opts: &bench::McOptions, replay: Option<&std::path::Path>, json: bool) -> ! {
    let (report, code) = match replay {
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .unwrap_or_else(|e| die(&format!("{}: unreadable: {e}", path.display())));
            bench::mc_replay(&text, json)
        }
        None => bench::mc(opts),
    };
    print!("{report}");
    if code > 0 {
        eprintln!("mc: verification failed");
    }
    std::process::exit(i32::try_from(code.min(2)).expect("code ≤ 2"))
}

/// `repro race`: the concurrency-analysis battery (DESIGN.md §16) —
/// passive happens-before + lockdep recordings over the runtime and the
/// serve layer, then exhaustive DPOR of the serve-pool model. Stock exits
/// 0 when clean; `--mutate <bug>` arms one seeded concurrency bug and
/// exits 1 when the corresponding analyzer catches it.
fn run_race(opts: &bench::RaceOptions) -> ! {
    let (report, code) = bench::race(opts);
    print!("{report}");
    if code == 2 {
        eprintln!("race: usage error");
    }
    std::process::exit(i32::try_from(code.min(2)).expect("code ≤ 2"))
}

/// `repro certify`: build exact rational certificates for every LP/ILP
/// bound on the paper grid, run them through the independent checker, and
/// exit nonzero if any bound could not be certified.
fn run_certify(json: bool) -> ! {
    let (report, failures) = bench::certify_report(json);
    print!("{report}");
    if failures > 0 {
        eprintln!("certify: {failures} bound(s) failed certification");
        std::process::exit(1);
    }
    std::process::exit(0)
}

/// `repro obs-check <file...>`: schema-validate Chrome-trace JSON files
/// (the golden checker CI runs against `--obs-out` artifacts).
fn run_obs_check(files: &[String]) -> ! {
    if files.is_empty() {
        die("obs-check needs at least one trace file");
    }
    let mut bad = 0usize;
    for f in files {
        let text = match std::fs::read_to_string(f) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("{f}: unreadable: {e}");
                bad += 1;
                continue;
            }
        };
        match hetchol_core::obs::validate_chrome_trace(&text) {
            Ok(n) => println!("{f}: ok ({n} events)"),
            Err(e) => {
                eprintln!("{f}: INVALID: {e}");
                bad += 1;
            }
        }
    }
    std::process::exit(if bad > 0 { 1 } else { 0 })
}

/// `repro bench [--quick] [--json]`: run the execution-core throughput
/// matrix (DESIGN.md §13). `--json` emits the `hetchol-bench/v1` document
/// committed as `BENCH_sim_throughput.json`.
fn run_bench(json: bool, quick: bool) -> ! {
    let report = bench::bench_report(quick);
    if json {
        print!("{}", report.to_json());
    } else {
        print!("{}", report.to_table());
    }
    std::process::exit(0)
}

/// `repro bench-check <fresh.json> <committed.json>`: schema-validate both
/// documents and exit nonzero if any arena-engine cell regressed by more
/// than 30% against the committed baseline.
fn run_bench_check(files: &[String]) -> ! {
    let [fresh, committed] = files else {
        die("bench-check needs exactly two files: <fresh.json> <committed.json>");
    };
    let read = |path: &String| {
        std::fs::read_to_string(path).unwrap_or_else(|e| die(&format!("{path}: unreadable: {e}")))
    };
    let (report, failures) = bench::bench_check(&read(fresh), &read(committed));
    print!("{report}");
    if failures > 0 {
        eprintln!("bench-check: {failures} failure(s)");
        std::process::exit(1);
    }
    std::process::exit(0)
}

fn run_obs_dump(dir: &std::path::Path) {
    match bench::obs_dump(dir) {
        Ok(paths) => {
            for p in paths {
                println!("obs: wrote {}", p.display());
            }
        }
        Err(e) => die(&format!("--obs-out {}: {e}", dir.display())),
    }
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2)
}

fn emit(fig: &Figure, args: &Args) {
    if args.json {
        println!("{}", fig.to_json());
    } else if args.csv {
        print!("{}", fig.to_csv());
        println!();
    } else {
        print!("{}", fig.to_table());
        println!();
    }
}

fn main() {
    let args = parse_args();
    let cmd = args.rest.first().map(String::as_str).unwrap_or("help");
    if cmd == "obs-check" {
        run_obs_check(&args.rest[1..]);
    }
    // Observability artifacts ride along with any subcommand.
    if let Some(dir) = &args.obs_out {
        run_obs_dump(dir);
    }
    if args.analyze || cmd == "analyze" {
        run_analyze(args.json);
    }
    if cmd == "certify" {
        run_certify(args.json);
    }
    if cmd == "chaos" {
        run_chaos(args.seed, args.json);
    }
    if cmd == "mc" {
        run_mc(&args.mc, args.replay.as_deref(), args.json);
    }
    if cmd == "race" {
        run_race(&args.race);
    }
    if cmd == "bench" {
        run_bench(args.json, args.quick);
    }
    if cmd == "bench-check" {
        run_bench_check(&args.rest[1..]);
    }
    if cmd == "serve" {
        run_serve(&args);
    }
    if cmd == "storm" {
        run_storm(&args);
    }
    let cp_opts = CpOptions {
        anneal_iters: args.cp_budget,
        node_limit: args.cp_budget,
        seed: 0,
    };

    let run_one = |name: &str| match name {
        "table1" => print!("{}", bench::table1()),
        "kfactors" => print!("{}", bench::kfactors()),
        "fig1" => print!("{}", bench::figure1()),
        "fig2" => emit(&bench::figure2(), &args),
        "fig3" => emit(&bench::figure3(), &args),
        "fig4" => emit(&bench::figure4(), &args),
        "fig5" => emit(&bench::figure5(), &args),
        "fig6" => emit(&bench::figure6(), &args),
        "fig7" => emit(&bench::figure7(), &args),
        "fig8" => emit(&bench::figure8(), &args),
        "fig9" => {
            let n = args
                .rest
                .get(1)
                .and_then(|v| v.parse().ok())
                .unwrap_or(10usize);
            let k = args
                .rest
                .get(2)
                .and_then(|v| v.parse().ok())
                .unwrap_or(3u32);
            print!("{}", bench::figure9(n, k));
        }
        "fig10" => emit(&bench::figure10(&cp_opts, 16), &args),
        "fig11" => emit(&bench::figure11(), &args),
        "fig12" => print!("{}", bench::figure12()),
        "hint-gemmsyrk" => emit(&bench::figure_hint_gemmsyrk(), &args),
        "mapping-only" => emit(&bench::figure_mapping_only(&cp_opts, &[4, 8, 12]), &args),
        "lu" => emit(
            &bench::figure_algo(hetchol_core::algorithm::Algorithm::Lu),
            &args,
        ),
        "qr" => emit(
            &bench::figure_algo(hetchol_core::algorithm::Algorithm::Qr),
            &args,
        ),
        "sweep-k" => {
            let n = args
                .rest
                .get(1)
                .and_then(|v| v.parse().ok())
                .unwrap_or(16usize);
            let platform = hetchol_core::platform::Platform::mirage().without_comm();
            let profile = hetchol_core::profiles::TimingProfile::mirage();
            println!("# Triangle hint sweep at n={n} (simulated, GFLOP/s)");
            println!("{:>6} {:>10}", "k", "GFLOP/s");
            for k in 1..n as u32 {
                let g = bench::sim_gflops(
                    n,
                    &platform,
                    &profile,
                    bench::SchedKind::TriangleTrsm(k),
                    &hetchol_sim::SimOptions::default(),
                );
                println!("{k:>6} {g:>10.2}");
            }
        }
        other => die(&format!("unknown subcommand `{other}`; try `repro help`")),
    };

    match cmd {
        "help" | "--help" | "-h" => {
            println!(
                "repro — regenerate the paper's tables and figures\n\
                 subcommands: all table1 kfactors fig1 fig2 fig3 fig4 fig5 fig6 fig7 fig8\n\
                 \u{20}            fig9 [n k]  fig10  fig11  fig12  hint-gemmsyrk  mapping-only  sweep-k [n]\n\
                 \u{20}            lu  qr   (extension: same methodology on LU / QR)\n\
                 \u{20}            analyze  (lint both engines' traces; exit 1 on errors)\n\
                 \u{20}            chaos [--seed N]  (fault-injection matrix over both engines; exit 1 on failures)\n\
                 \u{20}            mc [--workers N] [--tiles N] [--faults] [--mutate <bug>] [--compare-pruning]\n\
                 \u{20}               [--witness-out <file>] [--replay <witness.json>]\n\
                 \u{20}               (DPOR model checking of the resilient runtime; exit 1 on violations)\n\
                 \u{20}            race [--serve] [--mutate <bug>] [--witness-out <file>]\n\
                 \u{20}               (happens-before + lockdep + serve-pool model; stock exits 1 on\n\
                 \u{20}                findings, --mutate exits 1 when the seeded bug is caught)\n\
                 \u{20}            certify  (exact-certify the paper grid's bounds; exit 1 on failures)\n\
                 \u{20}            obs-check <file...>  (validate Chrome-trace JSON; exit 1 on invalid)\n\
                 \u{20}            bench [--quick]  (execution-core throughput matrix; --json for the committed schema)\n\
                 \u{20}            bench-check <fresh> <committed>  (schema + regression gate; exit 1 on failures)\n\
                 \u{20}            serve [--addr A] [--shards N] [--log FILE]\n\
                 \u{20}               (run the hetchol-serve job API in the foreground; --log makes commits\n\
                 \u{20}                durable with crash recovery, and POST /admin/drain exits cleanly)\n\
                 \u{20}            storm [--addr A] [--jobs N] [--p99-limit MS] [--quick]\n\
                 \u{20}                  [--keep-alive] [--disk-fault] [--kill-restart]\n\
                 \u{20}               (load/cache/chaos harness against the job API; exit 1 on failed\n\
                 \u{20}                assertions; the three flags add the durability legs of DESIGN.md §17)\n\
                 flags: --csv  --json  --analyze  --quick  --cp-budget <iters>  --seed <n>  --obs-out <dir>\n\
                 \u{20}      --addr <host:port>  --shards <n>  --jobs <n>  --p99-limit <ms>  --log <file>\n\
                 conventions:\n\
                 \u{20} exit codes: 0 = success, 1 = findings/failures (analyze, chaos, mc, race,\n\
                 \u{20}             certify, obs-check, bench-check, storm), 2 = usage error\n\
                 \u{20} --json: structured output on every figure/report subcommand (fig2..fig8, fig10,\n\
                 \u{20}         fig11, hint-gemmsyrk, mapping-only, lu, qr, analyze, chaos, mc, certify,\n\
                 \u{20}         bench, storm); fig1, fig9, fig12, table1, kfactors and sweep-k render\n\
                 \u{20}         ASCII art / plain tables only"
            );
        }
        "all" => {
            for name in [
                "table1",
                "kfactors",
                "fig2",
                "fig3",
                "fig4",
                "fig5",
                "fig6",
                "fig7",
                "fig8",
                "fig9",
                "fig10",
                "fig11",
                "fig12",
                "hint-gemmsyrk",
                "mapping-only",
                "lu",
                "qr",
            ] {
                println!("================================================================");
                run_one(name);
                println!();
            }
        }
        name => run_one(name),
    }
}
