//! `repro storm` — a load, cache and chaos harness for `hetchol-serve`.
//!
//! The storm drives one server (in-process by default, `--addr` to aim at
//! an external one) through three legs:
//!
//! 1. **Load** — `jobs` concurrent submissions over a mixed grid of
//!    workloads, sizes, schedulers, actions, seeds and fault plans, with
//!    a deliberately repeated "hot" spec so cache hits happen *during*
//!    the storm. Every connection must come back with a valid HTTP
//!    response — a structured `Degraded` body counts, a dropped
//!    connection fails the storm — and p99 latency is asserted.
//! 2. **Cache** — the hot spec is resubmitted and must answer
//!    `"cache":"hit"`, with the hit visible in `GET /stats`.
//! 3. **Chaos** — shard 0 is killed through the admin API and a spec
//!    deterministically routed to it must answer a structured
//!    `shard-dead` degradation, not a hang or a reset.
//!
//! Three opt-in durability legs ride behind flags (DESIGN.md §17):
//!
//! - `--keep-alive` — the same hot request is timed over one reused
//!   HTTP/1.1 connection and over close-per-connection one-shots; the
//!   kept-alive p99 must strictly improve.
//! - `--disk-fault` — one in-process server per injected write-fault
//!   kind (short write, flush failure, disk full); the commit that hits
//!   the fault still answers, every later submission must shed a
//!   structured `store-unavailable` 503, and a post-hoc [`wal::scan`]
//!   of each log must recover exactly the committed prefix.
//! - `--kill-restart` — a `repro serve --log` child process is
//!   SIGKILLed mid-storm and restarted on the same log; every trace
//!   committed before the kill must re-serve bitwise-identical, and
//!   `POST /admin/drain` must exit the restarted child cleanly.

use hetchol::job::JobSpec;
use hetchol_core::fault::IoFaultPlan;
use hetchol_core::json::{parse_json, JsonValue};
use hetchol_serve::{client, wal, ServeConfig, Server};
use std::net::{SocketAddr, ToSocketAddrs};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// Storm tuning.
pub struct StormOptions {
    /// Aim at an already-running server instead of booting one in-process.
    pub addr: Option<String>,
    /// Concurrent jobs in the load leg.
    pub jobs: usize,
    /// Asserted p99 latency ceiling, milliseconds.
    pub p99_limit_ms: u64,
    /// Emit the report as one JSON object instead of a table.
    pub json: bool,
    /// Run the keep-alive latency leg.
    pub keep_alive: bool,
    /// Run the disk-fault injection leg.
    pub disk_fault: bool,
    /// Run the SIGKILL + restart durability leg.
    pub kill_restart: bool,
    /// Binary spawned as `<exe> serve --log <path>` by the kill-restart
    /// leg. `None` means the current executable (right when the storm
    /// runs inside `repro` itself; tests point this at the built binary).
    pub serve_exe: Option<PathBuf>,
}

impl StormOptions {
    /// The full storm: 1000 concurrent jobs (the acceptance floor).
    pub fn full() -> StormOptions {
        StormOptions {
            addr: None,
            jobs: 1000,
            p99_limit_ms: 20_000,
            json: false,
            keep_alive: false,
            disk_fault: false,
            kill_restart: false,
            serve_exe: None,
        }
    }

    /// CI-sized storm: same legs, fewer jobs.
    pub fn quick() -> StormOptions {
        StormOptions {
            jobs: 64,
            ..StormOptions::full()
        }
    }
}

/// The server configuration `repro serve` and the in-process storm use:
/// queues deep enough that a full storm mostly completes (sheds are still
/// exercised by the chaos leg) and a generous default deadline.
pub fn serve_config(addr: &str, shards: usize) -> ServeConfig {
    ServeConfig {
        addr: addr.into(),
        shards,
        queue_depth: 512,
        default_budget_ms: 60_000,
        ..ServeConfig::default()
    }
}

/// One request's classification.
#[derive(Copy, Clone, PartialEq, Eq)]
enum Class {
    Ok,
    OkCacheHit,
    DegradedQueueFull,
    DegradedDeadline,
    DegradedShardDead,
    DegradedStoreUnavailable,
    DegradedDraining,
    Rejected,
    MalformedBody,
    Dropped,
}

fn classify(result: &std::io::Result<(u16, String)>) -> Class {
    let Ok((status, body)) = result else {
        return Class::Dropped;
    };
    let Ok(v) = parse_json(body) else {
        return Class::MalformedBody;
    };
    let status_field = v.get("status").and_then(|s| s.as_str().ok()).unwrap_or("");
    match (*status, status_field) {
        (200, "ok") => {
            if v.get("cache").and_then(|c| c.as_str().ok()) == Some("hit") {
                Class::OkCacheHit
            } else {
                Class::Ok
            }
        }
        (503, "degraded") => {
            // A shed must carry the simulator's Degraded wire shape.
            let outcome_ok = v
                .get("outcome")
                .and_then(|o| o.get("label"))
                .and_then(|l| l.as_str().ok())
                == Some("degraded");
            if !outcome_ok {
                return Class::MalformedBody;
            }
            match v.get("code").and_then(|c| c.as_str().ok()) {
                Some("queue-full") => Class::DegradedQueueFull,
                Some("deadline") => Class::DegradedDeadline,
                Some("shard-dead") => Class::DegradedShardDead,
                Some("store-unavailable") => Class::DegradedStoreUnavailable,
                Some("draining") => Class::DegradedDraining,
                _ => Class::MalformedBody,
            }
        }
        (400, "error") => Class::Rejected,
        _ => Class::MalformedBody,
    }
}

/// The load-leg spec mix: valid by construction, diverse across every
/// wire field, with index-0-mod-5 repeating the hot spec.
fn mix_spec(i: usize) -> JobSpec {
    if i.is_multiple_of(5) {
        return hot_spec();
    }
    let workloads = ["cholesky", "lu", "qr"];
    let sizes = [4usize, 6, 8, 10, 12];
    let schedulers = [
        "dmda",
        "dmdas",
        "eager",
        "random",
        "triangle:3",
        "gemmsyrk-gpu",
    ];
    let mut spec = JobSpec::new(workloads[i % 3], sizes[i % 5]).expect("known workload");
    spec.scheduler = schedulers[i % 6].into();
    spec.action = match i % 3 {
        0 => hetchol::job::JobAction::Simulate,
        1 => hetchol::job::JobAction::Bounds,
        _ => hetchol::job::JobAction::Lint,
    };
    spec.seed = (i % 4) as u64;
    spec.jitter = i.is_multiple_of(11);
    spec.obs = i.is_multiple_of(2);
    if i % 7 == 3 {
        spec.faults = hetchol_core::fault::FaultPlan::new().kill_worker(1, 6);
    }
    spec
}

fn hot_spec() -> JobSpec {
    let mut spec = JobSpec::new("cholesky", 8).expect("known workload");
    spec.action = hetchol::job::JobAction::Bounds;
    spec
}

/// Post with a few connect retries: a refused *connect* under a thundering
/// herd is client-side backlog pressure, not a server-dropped connection.
/// Once a request is written, there are no retries — a mid-flight failure
/// counts as dropped.
fn post_with_retry(addr: SocketAddr, body: &str) -> std::io::Result<(u16, String)> {
    let mut last_err = None;
    for attempt in 0..3 {
        match client::post_job(addr, body) {
            Ok(ok) => return Ok(ok),
            Err(e) if e.kind() == std::io::ErrorKind::ConnectionRefused => {
                std::thread::sleep(Duration::from_millis(10 << attempt));
                last_err = Some(e);
            }
            Err(e) => return Err(e),
        }
    }
    Err(last_err.expect("retried at least once"))
}

struct Tally {
    ok: usize,
    cache_hits: usize,
    queue_full: usize,
    deadline: usize,
    shard_dead: usize,
    store_unavailable: usize,
    draining: usize,
    rejected: usize,
    malformed: usize,
    dropped: usize,
}

impl Tally {
    fn count(results: &[(Class, Duration)]) -> Tally {
        let of = |c: Class| results.iter().filter(|(r, _)| *r == c).count();
        Tally {
            ok: of(Class::Ok) + of(Class::OkCacheHit),
            cache_hits: of(Class::OkCacheHit),
            queue_full: of(Class::DegradedQueueFull),
            deadline: of(Class::DegradedDeadline),
            shard_dead: of(Class::DegradedShardDead),
            store_unavailable: of(Class::DegradedStoreUnavailable),
            draining: of(Class::DegradedDraining),
            rejected: of(Class::Rejected),
            malformed: of(Class::MalformedBody),
            dropped: of(Class::Dropped),
        }
    }
}

fn percentile(sorted_ms: &[u64], p: f64) -> u64 {
    if sorted_ms.is_empty() {
        return 0;
    }
    let rank = ((sorted_ms.len() as f64 * p).ceil() as usize).max(1) - 1;
    sorted_ms[rank.min(sorted_ms.len() - 1)]
}

// ---------------------------------------------------------------------------
// Durability legs (opt-in; DESIGN.md §17)
// ---------------------------------------------------------------------------

/// One opt-in leg's outcome: human lines for the table report, members
/// for the JSON report, and failures that merge into the storm's own.
struct LegReport {
    name: &'static str,
    lines: Vec<String>,
    json: Vec<(String, JsonValue)>,
    failures: Vec<String>,
}

impl LegReport {
    fn new(name: &'static str) -> LegReport {
        LegReport {
            name,
            lines: Vec::new(),
            json: Vec::new(),
            failures: Vec::new(),
        }
    }

    fn fail(&mut self, what: String) {
        self.failures.push(format!("{}: {what}", self.name));
    }
}

/// A unique scratch directory under the system temp dir.
fn scratch_dir(tag: &str) -> std::io::Result<PathBuf> {
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .expect("clock after the epoch")
        .as_nanos();
    let dir = std::env::temp_dir().join(format!(
        "hetchol-storm-{tag}-{}-{nanos}",
        std::process::id()
    ));
    std::fs::create_dir_all(&dir)?;
    Ok(dir)
}

/// A small obs-enabled spec with a leg-local seed so nothing collides
/// with the result cache of another leg or wave.
fn durable_spec(n: usize, seed: u64) -> JobSpec {
    let mut spec = JobSpec::new("cholesky", n).expect("known workload");
    spec.obs = true;
    spec.seed = seed;
    spec
}

/// The keep-alive leg: time the same hot (cached) request over one
/// persistent connection and over close-per-connection one-shots. The
/// cache-hit answer path is identical, so the delta is pure connection
/// setup — the kept-alive p99 must strictly improve.
fn keep_alive_leg(addr: SocketAddr) -> LegReport {
    const SAMPLES: usize = 300;
    let mut leg = LegReport::new("keep-alive");
    let body = hot_spec().to_json();
    if !matches!(
        classify(&post_with_retry(addr, &body)),
        Class::Ok | Class::OkCacheHit
    ) {
        leg.fail("hot-spec warmup did not complete".into());
        return leg;
    }

    let mut close_us = Vec::with_capacity(SAMPLES);
    let mut dropped = 0usize;
    for _ in 0..SAMPLES {
        let t0 = Instant::now();
        match client::post_job(addr, &body) {
            Ok((200, _)) => close_us.push(t0.elapsed().as_micros() as u64),
            _ => dropped += 1,
        }
    }

    let mut conn = client::Conn::new(addr);
    let mut keep_us = Vec::with_capacity(SAMPLES);
    for _ in 0..SAMPLES {
        let t0 = Instant::now();
        match conn.request("POST", "/jobs", &body) {
            Ok((200, _)) => keep_us.push(t0.elapsed().as_micros() as u64),
            _ => dropped += 1,
        }
    }
    let reused = conn.reused();

    close_us.sort_unstable();
    keep_us.sort_unstable();
    let close_p99 = percentile(&close_us, 0.99);
    let keep_p99 = percentile(&keep_us, 0.99);

    if dropped > 0 {
        leg.fail(format!("{dropped} request(s) failed on a healthy server"));
    }
    if reused + 1 < SAMPLES as u64 {
        leg.fail(format!(
            "connection only reused {reused} of {} exchanges",
            SAMPLES - 1
        ));
    }
    if keep_p99 >= close_p99 {
        leg.fail(format!(
            "kept-alive p99 {keep_p99}us did not improve on close-per-connection p99 {close_p99}us"
        ));
    }
    leg.lines.push(format!(
        "{SAMPLES} hot requests: close-per-connection p99 {close_p99}us, kept-alive p99 {keep_p99}us ({reused} reuses)"
    ));
    leg.json = vec![
        ("samples".into(), JsonValue::uint(SAMPLES as u64)),
        ("reused".into(), JsonValue::uint(reused)),
        ("close_p99_us".into(), JsonValue::uint(close_p99)),
        ("keep_alive_p99_us".into(), JsonValue::uint(keep_p99)),
    ];
    leg
}

/// The disk-fault leg: one in-process server per injected write-fault
/// kind, each with its own log file. The submission that hits the fault
/// still answers (its result is just not durable); the next one must
/// shed a structured `store-unavailable` 503; and a post-hoc scan of
/// the log must recover exactly the durably-committed prefix.
fn disk_fault_leg() -> LegReport {
    let mut leg = LegReport::new("disk-fault");
    let dir = match scratch_dir("disk-fault") {
        Ok(dir) => dir,
        Err(e) => {
            leg.fail(format!("cannot create a scratch dir: {e}"));
            return leg;
        }
    };
    // (kind, plan, records a post-hoc scan must recover, torn tail?).
    // Appends sync per commit, so all three kinds fire on the second
    // committed job: the short write tears its frame (1 recovered, torn
    // tail), the flush failure leaves the full frame on disk (2
    // recovered, clean), disk-full refuses before writing (1, clean).
    let cases: [(&str, IoFaultPlan, usize, bool); 3] = [
        ("short-write", IoFaultPlan::new().short_write(2, 5), 1, true),
        ("flush-fail", IoFaultPlan::new().flush_fail(2), 2, false),
        ("disk-full", IoFaultPlan::new().disk_full(1), 1, false),
    ];
    let mut cases_json = Vec::new();
    for (kind, plan, want_recovered, want_torn) in cases {
        let log = dir.join(format!("{kind}.jlog"));
        let config = ServeConfig {
            log_path: Some(log.clone()),
            io_faults: plan,
            ..serve_config("127.0.0.1:0", 2)
        };
        let server = match Server::start(config) {
            Ok(server) => server,
            Err(e) => {
                leg.fail(format!("{kind}: cannot boot server: {e}"));
                continue;
            }
        };
        let addr = server.addr();

        let mut committed_ids = Vec::new();
        let mut shed_shape_ok = false;
        for i in 0..3u64 {
            match post_with_retry(addr, &durable_spec(6, 1000 + i).to_json()) {
                Ok((200, response)) => {
                    let id = parse_json(&response)
                        .ok()
                        .and_then(|v| v.get("job_id").cloned())
                        .and_then(|id| id.as_u64().ok());
                    match id {
                        Some(id) => committed_ids.push(id),
                        None => leg.fail(format!("{kind}: 200 body without a job_id")),
                    }
                }
                Ok((503, response)) => {
                    // Must be the structured read-only shed, nothing else.
                    if classify(&Ok((503, response.clone()))) == Class::DegradedStoreUnavailable {
                        shed_shape_ok = true;
                    } else {
                        leg.fail(format!("{kind}: 503 without the store-unavailable shape"));
                    }
                }
                Ok((status, _)) => leg.fail(format!("{kind}: unexpected status {status}")),
                Err(e) => leg.fail(format!("{kind}: dropped connection: {e}")),
            }
        }
        if committed_ids.len() != 2 {
            leg.fail(format!(
                "{kind}: expected 2 answered commits before read-only mode, saw {}",
                committed_ids.len()
            ));
        }
        if !shed_shape_ok {
            leg.fail(format!(
                "{kind}: no structured store-unavailable shed after the write fault"
            ));
        }

        // The degradation must be observable in /stats.
        let stats = client::get(addr, "/stats")
            .ok()
            .and_then(|(_, body)| parse_json(&body).ok());
        let log_healthy = stats
            .as_ref()
            .and_then(|v| v.get("log"))
            .and_then(|l| l.get("healthy"))
            .and_then(|h| h.as_bool().ok())
            .unwrap_or(true);
        let shed_count = stats
            .as_ref()
            .and_then(|v| v.get("shed"))
            .and_then(|s| s.get("store_unavailable"))
            .and_then(|n| n.as_u64().ok())
            .unwrap_or(0);
        if log_healthy {
            leg.fail(format!("{kind}: /stats still reports the log healthy"));
        }
        if shed_count == 0 {
            leg.fail(format!("{kind}: shed not counted in /stats"));
        }
        server.shutdown();

        // Post-hoc recovery: the scan must hand back exactly the
        // durable prefix, every recovered id one the server answered.
        let bytes = std::fs::read(&log).unwrap_or_default();
        let (records, report) = wal::scan(&bytes);
        if records.len() != want_recovered {
            leg.fail(format!(
                "{kind}: scan recovered {} record(s), expected {want_recovered}",
                records.len()
            ));
        }
        if report.torn.is_some() != want_torn {
            leg.fail(format!(
                "{kind}: torn tail {} but expected torn={want_torn}",
                if report.torn.is_some() {
                    "present"
                } else {
                    "absent"
                }
            ));
        }
        for scanned in &records {
            if !committed_ids.contains(&scanned.record.id) {
                leg.fail(format!(
                    "{kind}: phantom job {} recovered from the log",
                    scanned.record.id
                ));
            }
        }
        leg.lines.push(format!(
            "{kind}: {} answered commit(s), store-unavailable shed {}, scan recovered {} ({})",
            committed_ids.len(),
            if shed_shape_ok { "ok" } else { "MISSING" },
            records.len(),
            if report.torn.is_some() {
                "torn tail truncated"
            } else {
                "clean"
            }
        ));
        cases_json.push((
            kind.to_string(),
            JsonValue::Obj(vec![
                ("shed_ok".into(), JsonValue::Bool(shed_shape_ok)),
                ("recovered".into(), JsonValue::uint(records.len() as u64)),
                ("torn".into(), JsonValue::Bool(report.torn.is_some())),
            ]),
        ));
    }
    let _ = std::fs::remove_dir_all(&dir);
    leg.json = cases_json;
    leg
}

/// Spawn `<exe> serve --log <log>` and parse the announced address off
/// its stdout. The remaining stdout is drained by a detached thread so
/// the child can never block on a full pipe.
fn spawn_serve(exe: &Path, log: &Path) -> std::io::Result<(std::process::Child, SocketAddr)> {
    use std::io::BufRead;
    let mut child = std::process::Command::new(exe)
        .args(["serve", "--addr", "127.0.0.1:0", "--shards", "2", "--log"])
        .arg(log)
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::null())
        .spawn()?;
    let stdout = child.stdout.take().expect("stdout was piped");
    let mut reader = std::io::BufReader::new(stdout);
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            let _ = child.kill();
            let _ = child.wait();
            return Err(std::io::Error::other(
                "serve child exited before announcing its address",
            ));
        }
        if let Some(rest) = line.trim().strip_prefix("serve: listening on http://") {
            let addr = rest
                .trim()
                .to_socket_addrs()?
                .next()
                .ok_or_else(|| std::io::Error::other("unparseable announced address"))?;
            std::thread::spawn(move || {
                let _ = std::io::copy(&mut reader, &mut std::io::sink());
            });
            return Ok((child, addr));
        }
    }
}

/// The kill-restart leg: SIGKILL a `repro serve --log` child mid-storm,
/// restart it on the same log, and require every pre-kill committed
/// trace to re-serve bitwise-identical. The restarted child must then
/// drain cleanly and leave a log with no torn records.
fn kill_restart_leg(serve_exe: &Path) -> LegReport {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    let mut leg = LegReport::new("kill-restart");
    let dir = match scratch_dir("kill-restart") {
        Ok(dir) => dir,
        Err(e) => {
            leg.fail(format!("cannot create a scratch dir: {e}"));
            return leg;
        }
    };
    let log = dir.join("jobs.jlog");
    let (mut child, addr) = match spawn_serve(serve_exe, &log) {
        Ok(started) => started,
        Err(e) => {
            leg.fail(format!("cannot spawn `serve --log`: {e}"));
            return leg;
        }
    };

    // Wave 1: commits whose traces must survive the kill. Every
    // submission and trace fetch here runs against a healthy server —
    // any failure is a dropped connection and fails the leg.
    let mut traces: Vec<(u64, String)> = Vec::new();
    for i in 0..6u64 {
        match post_with_retry(addr, &durable_spec(6, 2000 + i).to_json()) {
            Ok((200, response)) => {
                let id = parse_json(&response)
                    .ok()
                    .and_then(|v| v.get("job_id").cloned())
                    .and_then(|id| id.as_u64().ok());
                let Some(id) = id else {
                    leg.fail("200 body without a job_id".into());
                    continue;
                };
                match client::get(addr, &format!("/jobs/{id}/trace")) {
                    Ok((200, trace)) => traces.push((id, trace)),
                    Ok((status, _)) => leg.fail(format!("job {id} trace answered {status}")),
                    Err(e) => leg.fail(format!("job {id} trace dropped: {e}")),
                }
            }
            Ok((status, _)) => leg.fail(format!("wave-1 submission answered {status}")),
            Err(e) => leg.fail(format!("wave-1 submission dropped: {e}")),
        }
    }

    // Wave 2: background submitters so the SIGKILL lands mid-storm.
    // Their connections die with the server — that is the point — so
    // errors here end the thread rather than fail the leg.
    let stop = Arc::new(AtomicBool::new(false));
    let workers: Vec<_> = (0..3u64)
        .map(|w| {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut sent = 0u64;
                for i in 0..u64::MAX {
                    if stop.load(Ordering::Relaxed) {
                        break;
                    }
                    let spec = durable_spec(8, 3000 + w * 10_000 + i);
                    if client::post_job(addr, &spec.to_json()).is_err() {
                        break;
                    }
                    sent += 1;
                }
                sent
            })
        })
        .collect();
    std::thread::sleep(Duration::from_millis(80));
    let _ = child.kill();
    let _ = child.wait();
    stop.store(true, Ordering::Relaxed);
    let wave2: u64 = workers.into_iter().map(|h| h.join().unwrap_or(0)).sum();

    // Restart on the same log: every pre-kill trace must come back
    // byte-for-byte, served from the recovered log.
    let (mut child2, addr2) = match spawn_serve(serve_exe, &log) {
        Ok(started) => started,
        Err(e) => {
            leg.fail(format!("cannot restart `serve --log`: {e}"));
            return leg;
        }
    };
    let mut identical = 0usize;
    for (id, want) in &traces {
        match client::get(addr2, &format!("/jobs/{id}/trace")) {
            Ok((200, got)) if got == *want => identical += 1,
            Ok((status, got)) => leg.fail(format!(
                "job {id} trace not bitwise-identical after restart (status {status}, {} vs {} bytes)",
                got.len(),
                want.len()
            )),
            Err(e) => leg.fail(format!("job {id} trace dropped after restart: {e}")),
        }
    }

    // Graceful drain: the restarted child must exit cleanly, and the
    // log it leaves must scan with no torn tail — restart truncated the
    // kill's torn bytes, so only whole committed records remain.
    match client::request(addr2, "POST", "/admin/drain", "") {
        Ok((200, _)) => {}
        Ok((status, _)) => leg.fail(format!("drain answered {status}")),
        Err(e) => leg.fail(format!("drain dropped: {e}")),
    }
    match child2.wait() {
        Ok(status) if status.success() => {}
        Ok(status) => leg.fail(format!("drained child exited with {status}")),
        Err(e) => leg.fail(format!("cannot wait for the drained child: {e}")),
    }
    let bytes = std::fs::read(&log).unwrap_or_default();
    let (records, report) = wal::scan(&bytes);
    if records.len() < traces.len() {
        leg.fail(format!(
            "final log holds {} record(s), fewer than the {} pre-kill commits",
            records.len(),
            traces.len()
        ));
    }
    if report.torn.is_some() {
        leg.fail("final log still has a torn tail after recovery + drain".into());
    }
    let _ = std::fs::remove_dir_all(&dir);

    leg.lines.push(format!(
        "{} pre-kill traces ({identical} bitwise-identical after restart), {wave2} mid-kill submission(s), final log {} record(s) ({})",
        traces.len(),
        records.len(),
        if report.torn.is_some() { "torn" } else { "clean" }
    ));
    leg.json = vec![
        (
            "pre_kill_traces".into(),
            JsonValue::uint(traces.len() as u64),
        ),
        ("identical".into(), JsonValue::uint(identical as u64)),
        ("mid_kill_submissions".into(), JsonValue::uint(wave2)),
        (
            "final_log_records".into(),
            JsonValue::uint(records.len() as u64),
        ),
        ("torn".into(), JsonValue::Bool(report.torn.is_some())),
    ];
    leg
}

/// Run the storm. Returns the report and the number of failed assertions
/// (the process exit code is 1 when nonzero).
pub fn storm(opts: &StormOptions) -> (String, usize) {
    // Resolve or boot the target server.
    let (addr, own_server): (SocketAddr, Option<Server>) = match &opts.addr {
        Some(a) => match a.to_socket_addrs().ok().and_then(|mut i| i.next()) {
            Some(addr) => (addr, None),
            None => return (format!("storm: bad --addr {a:?}\n"), 1),
        },
        None => match Server::start(serve_config("127.0.0.1:0", 4)) {
            Ok(server) => (server.addr(), Some(server)),
            Err(e) => return (format!("storm: cannot boot server: {e}\n"), 1),
        },
    };

    // Prime the hot spec so its in-storm repetitions are deterministic,
    // counted cache hits rather than a race between in-flight twins.
    let warmup = classify(&post_with_retry(addr, &hot_spec().to_json()));
    let warmed = matches!(warmup, Class::Ok | Class::OkCacheHit);

    // Leg 1: concurrent load.
    let started = Instant::now();
    let handles: Vec<_> = (0..opts.jobs)
        .map(|i| {
            let body = mix_spec(i).to_json();
            std::thread::spawn(move || {
                let t0 = Instant::now();
                let result = post_with_retry(addr, &body);
                (classify(&result), t0.elapsed())
            })
        })
        .collect();
    let results: Vec<(Class, Duration)> = handles
        .into_iter()
        .map(|h| h.join().unwrap_or((Class::Dropped, Duration::from_secs(0))))
        .collect();
    let wall = started.elapsed();
    let tally = Tally::count(&results);
    let mut latencies_ms: Vec<u64> = results.iter().map(|(_, d)| d.as_millis() as u64).collect();
    latencies_ms.sort_unstable();
    let p50 = percentile(&latencies_ms, 0.50);
    let p90 = percentile(&latencies_ms, 0.90);
    let p99 = percentile(&latencies_ms, 0.99);
    let max = latencies_ms.last().copied().unwrap_or(0);

    // Leg 2: the hot spec must now be a counted cache hit.
    let cache_leg_hit = matches!(
        classify(&post_with_retry(addr, &hot_spec().to_json())),
        Class::OkCacheHit
    );
    let stats = client::get(addr, "/stats").ok();
    let stats_value = stats.as_ref().and_then(|(_, b)| parse_json(b).ok());
    let observed_hits = stats_value
        .as_ref()
        .and_then(|v| v.get("cache"))
        .and_then(|c| c.get("results"))
        .and_then(|r| r.get("hits"))
        .and_then(|h| h.as_u64().ok())
        .unwrap_or(0);
    let n_shards = stats_value
        .as_ref()
        .and_then(|v| v.get("shards"))
        .and_then(|s| s.as_arr().ok().map(|a| a.len()))
        .unwrap_or(4)
        .max(1);

    // Leg 3: kill shard 0 and submit a spec that provably routes to it.
    let kill_ok = matches!(
        client::request(addr, "POST", "/admin/shards/0/kill", ""),
        Ok((200, _))
    );
    let mut victim = JobSpec::new("cholesky", 13).expect("known workload");
    victim.seed = (0..)
        .find(|&s| {
            let mut probe = JobSpec::new("cholesky", 13).expect("known workload");
            probe.seed = s;
            probe.content_hash().is_multiple_of(n_shards as u64)
        })
        .expect("some seed routes to shard 0");
    let chaos_class = classify(&post_with_retry(addr, &victim.to_json()));
    let chaos_shed = chaos_class == Class::DegradedShardDead;

    // Assertions.
    let mut failures = Vec::new();
    let mut check = |ok: bool, what: String| {
        if !ok {
            failures.push(what);
        }
    };
    check(
        tally.dropped == 0,
        format!(
            "{} dropped connection(s); overload must answer Degraded",
            tally.dropped
        ),
    );
    check(
        tally.malformed == 0,
        format!("{} malformed response body/bodies", tally.malformed),
    );
    check(
        tally.rejected == 0,
        format!(
            "{} rejected job(s); the storm mix is valid by construction",
            tally.rejected
        ),
    );
    check(
        p99 <= opts.p99_limit_ms,
        format!("p99 {p99}ms over the {}ms limit", opts.p99_limit_ms),
    );
    check(warmed, "hot-spec warmup request did not complete".into());
    check(
        tally.cache_hits > 0,
        "no cache hits during the storm (the warmed hot spec repeats)".into(),
    );
    check(
        cache_leg_hit,
        "hot-spec resubmission was not a cache hit".into(),
    );
    check(
        observed_hits > 0,
        "cache hits not observable in GET /stats".into(),
    );
    check(kill_ok, "admin shard kill did not answer 200".into());
    check(
        chaos_shed,
        "job routed to the killed shard did not answer a structured shard-dead".into(),
    );

    // Opt-in durability legs. The keep-alive leg reuses the storm's
    // server (its hot path is a cache hit, so the chaos-killed shard is
    // never routed to); the other two boot their own.
    let mut legs = Vec::new();
    if opts.keep_alive {
        legs.push(keep_alive_leg(addr));
    }
    if opts.disk_fault {
        legs.push(disk_fault_leg());
    }
    if opts.kill_restart {
        match opts
            .serve_exe
            .clone()
            .or_else(|| std::env::current_exe().ok())
        {
            Some(exe) => legs.push(kill_restart_leg(&exe)),
            None => failures.push("kill-restart: no serve executable to spawn".into()),
        }
    }
    for leg in &legs {
        failures.extend(leg.failures.iter().cloned());
    }

    let report = if opts.json {
        render_json(
            opts,
            &tally,
            wall,
            (p50, p90, p99, max),
            observed_hits,
            &legs,
            &failures,
        )
    } else {
        render_table(
            opts,
            &tally,
            wall,
            (p50, p90, p99, max),
            observed_hits,
            &legs,
            &failures,
        )
    };
    if let Some(server) = own_server {
        server.shutdown();
    }
    (report, failures.len())
}

fn render_table(
    opts: &StormOptions,
    t: &Tally,
    wall: Duration,
    (p50, p90, p99, max): (u64, u64, u64, u64),
    observed_hits: u64,
    legs: &[LegReport],
    failures: &[String],
) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "# storm: {} concurrent jobs in {:.2}s\n",
        opts.jobs,
        wall.as_secs_f64()
    ));
    out.push_str(&format!("{:>26} {:>8}\n", "outcome", "count"));
    for (label, n) in [
        ("ok", t.ok),
        ("  of which cache hits", t.cache_hits),
        ("degraded queue-full", t.queue_full),
        ("degraded deadline", t.deadline),
        ("degraded shard-dead", t.shard_dead),
        ("degraded store-unavailable", t.store_unavailable),
        ("degraded draining", t.draining),
        ("rejected (400)", t.rejected),
        ("malformed bodies", t.malformed),
        ("dropped connections", t.dropped),
    ] {
        out.push_str(&format!("{label:>26} {n:>8}\n"));
    }
    out.push_str(&format!(
        "latency ms: p50 {p50}  p90 {p90}  p99 {p99} (limit {})  max {max}\n",
        opts.p99_limit_ms
    ));
    out.push_str(&format!("stats: results-cache hits {observed_hits}\n"));
    for leg in legs {
        out.push_str(&format!("# leg: {}\n", leg.name));
        for line in &leg.lines {
            out.push_str(&format!("  {line}\n"));
        }
    }
    if failures.is_empty() {
        out.push_str("storm: all assertions passed\n");
    } else {
        for f in failures {
            out.push_str(&format!("storm FAILURE: {f}\n"));
        }
    }
    out
}

fn render_json(
    opts: &StormOptions,
    t: &Tally,
    wall: Duration,
    (p50, p90, p99, max): (u64, u64, u64, u64),
    observed_hits: u64,
    legs: &[LegReport],
    failures: &[String],
) -> String {
    let mut doc = JsonValue::Obj(vec![
        ("schema".into(), JsonValue::str("hetchol-storm/v1")),
        ("jobs".into(), JsonValue::uint(opts.jobs as u64)),
        ("wall_ms".into(), JsonValue::uint(wall.as_millis() as u64)),
        ("ok".into(), JsonValue::uint(t.ok as u64)),
        ("cache_hits".into(), JsonValue::uint(t.cache_hits as u64)),
        (
            "degraded".into(),
            JsonValue::Obj(vec![
                ("queue_full".into(), JsonValue::uint(t.queue_full as u64)),
                ("deadline".into(), JsonValue::uint(t.deadline as u64)),
                ("shard_dead".into(), JsonValue::uint(t.shard_dead as u64)),
                (
                    "store_unavailable".into(),
                    JsonValue::uint(t.store_unavailable as u64),
                ),
                ("draining".into(), JsonValue::uint(t.draining as u64)),
            ]),
        ),
        ("rejected".into(), JsonValue::uint(t.rejected as u64)),
        ("malformed".into(), JsonValue::uint(t.malformed as u64)),
        ("dropped".into(), JsonValue::uint(t.dropped as u64)),
        (
            "latency_ms".into(),
            JsonValue::Obj(vec![
                ("p50".into(), JsonValue::uint(p50)),
                ("p90".into(), JsonValue::uint(p90)),
                ("p99".into(), JsonValue::uint(p99)),
                ("p99_limit".into(), JsonValue::uint(opts.p99_limit_ms)),
                ("max".into(), JsonValue::uint(max)),
            ]),
        ),
        (
            "stats_results_cache_hits".into(),
            JsonValue::uint(observed_hits),
        ),
        (
            "failures".into(),
            JsonValue::Arr(failures.iter().map(|f| JsonValue::str(&**f)).collect()),
        ),
    ]);
    if let JsonValue::Obj(members) = &mut doc {
        if !legs.is_empty() {
            members.push((
                "legs".into(),
                JsonValue::Obj(
                    legs.iter()
                        .map(|leg| (leg.name.to_string(), JsonValue::Obj(leg.json.clone())))
                        .collect(),
                ),
            ));
        }
        members.push(("passed".into(), JsonValue::Bool(failures.is_empty())));
    }
    let mut text = doc.render();
    text.push('\n');
    text
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_storm_passes_every_assertion() {
        let (report, failures) = storm(&StormOptions::quick());
        assert_eq!(failures, 0, "{report}");
        assert!(report.contains("all assertions passed"), "{report}");
    }

    #[test]
    fn json_storm_has_the_schema_header() {
        let (report, failures) = storm(&StormOptions {
            jobs: 16,
            json: true,
            ..StormOptions::full()
        });
        assert_eq!(failures, 0, "{report}");
        assert!(
            report.contains(r#""schema":"hetchol-storm/v1""#),
            "{report}"
        );
        assert!(report.contains(r#""passed":true"#), "{report}");
    }
}
