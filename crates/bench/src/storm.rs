//! `repro storm` — a load, cache and chaos harness for `hetchol-serve`.
//!
//! The storm drives one server (in-process by default, `--addr` to aim at
//! an external one) through three legs:
//!
//! 1. **Load** — `jobs` concurrent submissions over a mixed grid of
//!    workloads, sizes, schedulers, actions, seeds and fault plans, with
//!    a deliberately repeated "hot" spec so cache hits happen *during*
//!    the storm. Every connection must come back with a valid HTTP
//!    response — a structured `Degraded` body counts, a dropped
//!    connection fails the storm — and p99 latency is asserted.
//! 2. **Cache** — the hot spec is resubmitted and must answer
//!    `"cache":"hit"`, with the hit visible in `GET /stats`.
//! 3. **Chaos** — shard 0 is killed through the admin API and a spec
//!    deterministically routed to it must answer a structured
//!    `shard-dead` degradation, not a hang or a reset.

use hetchol::job::JobSpec;
use hetchol_core::json::{parse_json, JsonValue};
use hetchol_serve::{client, ServeConfig, Server};
use std::net::{SocketAddr, ToSocketAddrs};
use std::time::{Duration, Instant};

/// Storm tuning.
pub struct StormOptions {
    /// Aim at an already-running server instead of booting one in-process.
    pub addr: Option<String>,
    /// Concurrent jobs in the load leg.
    pub jobs: usize,
    /// Asserted p99 latency ceiling, milliseconds.
    pub p99_limit_ms: u64,
    /// Emit the report as one JSON object instead of a table.
    pub json: bool,
}

impl StormOptions {
    /// The full storm: 1000 concurrent jobs (the acceptance floor).
    pub fn full() -> StormOptions {
        StormOptions {
            addr: None,
            jobs: 1000,
            p99_limit_ms: 20_000,
            json: false,
        }
    }

    /// CI-sized storm: same legs, fewer jobs.
    pub fn quick() -> StormOptions {
        StormOptions {
            jobs: 64,
            ..StormOptions::full()
        }
    }
}

/// The server configuration `repro serve` and the in-process storm use:
/// queues deep enough that a full storm mostly completes (sheds are still
/// exercised by the chaos leg) and a generous default deadline.
pub fn serve_config(addr: &str, shards: usize) -> ServeConfig {
    ServeConfig {
        addr: addr.into(),
        shards,
        queue_depth: 512,
        default_budget_ms: 60_000,
        ..ServeConfig::default()
    }
}

/// One request's classification.
#[derive(Copy, Clone, PartialEq, Eq)]
enum Class {
    Ok,
    OkCacheHit,
    DegradedQueueFull,
    DegradedDeadline,
    DegradedShardDead,
    Rejected,
    MalformedBody,
    Dropped,
}

fn classify(result: &std::io::Result<(u16, String)>) -> Class {
    let Ok((status, body)) = result else {
        return Class::Dropped;
    };
    let Ok(v) = parse_json(body) else {
        return Class::MalformedBody;
    };
    let status_field = v.get("status").and_then(|s| s.as_str().ok()).unwrap_or("");
    match (*status, status_field) {
        (200, "ok") => {
            if v.get("cache").and_then(|c| c.as_str().ok()) == Some("hit") {
                Class::OkCacheHit
            } else {
                Class::Ok
            }
        }
        (503, "degraded") => {
            // A shed must carry the simulator's Degraded wire shape.
            let outcome_ok = v
                .get("outcome")
                .and_then(|o| o.get("label"))
                .and_then(|l| l.as_str().ok())
                == Some("degraded");
            if !outcome_ok {
                return Class::MalformedBody;
            }
            match v.get("code").and_then(|c| c.as_str().ok()) {
                Some("queue-full") => Class::DegradedQueueFull,
                Some("deadline") => Class::DegradedDeadline,
                Some("shard-dead") => Class::DegradedShardDead,
                _ => Class::MalformedBody,
            }
        }
        (400, "error") => Class::Rejected,
        _ => Class::MalformedBody,
    }
}

/// The load-leg spec mix: valid by construction, diverse across every
/// wire field, with index-0-mod-5 repeating the hot spec.
fn mix_spec(i: usize) -> JobSpec {
    if i.is_multiple_of(5) {
        return hot_spec();
    }
    let workloads = ["cholesky", "lu", "qr"];
    let sizes = [4usize, 6, 8, 10, 12];
    let schedulers = [
        "dmda",
        "dmdas",
        "eager",
        "random",
        "triangle:3",
        "gemmsyrk-gpu",
    ];
    let mut spec = JobSpec::new(workloads[i % 3], sizes[i % 5]).expect("known workload");
    spec.scheduler = schedulers[i % 6].into();
    spec.action = match i % 3 {
        0 => hetchol::job::JobAction::Simulate,
        1 => hetchol::job::JobAction::Bounds,
        _ => hetchol::job::JobAction::Lint,
    };
    spec.seed = (i % 4) as u64;
    spec.jitter = i.is_multiple_of(11);
    spec.obs = i.is_multiple_of(2);
    if i % 7 == 3 {
        spec.faults = hetchol_core::fault::FaultPlan::new().kill_worker(1, 6);
    }
    spec
}

fn hot_spec() -> JobSpec {
    let mut spec = JobSpec::new("cholesky", 8).expect("known workload");
    spec.action = hetchol::job::JobAction::Bounds;
    spec
}

/// Post with a few connect retries: a refused *connect* under a thundering
/// herd is client-side backlog pressure, not a server-dropped connection.
/// Once a request is written, there are no retries — a mid-flight failure
/// counts as dropped.
fn post_with_retry(addr: SocketAddr, body: &str) -> std::io::Result<(u16, String)> {
    let mut last_err = None;
    for attempt in 0..3 {
        match client::post_job(addr, body) {
            Ok(ok) => return Ok(ok),
            Err(e) if e.kind() == std::io::ErrorKind::ConnectionRefused => {
                std::thread::sleep(Duration::from_millis(10 << attempt));
                last_err = Some(e);
            }
            Err(e) => return Err(e),
        }
    }
    Err(last_err.expect("retried at least once"))
}

struct Tally {
    ok: usize,
    cache_hits: usize,
    queue_full: usize,
    deadline: usize,
    shard_dead: usize,
    rejected: usize,
    malformed: usize,
    dropped: usize,
}

impl Tally {
    fn count(results: &[(Class, Duration)]) -> Tally {
        let of = |c: Class| results.iter().filter(|(r, _)| *r == c).count();
        Tally {
            ok: of(Class::Ok) + of(Class::OkCacheHit),
            cache_hits: of(Class::OkCacheHit),
            queue_full: of(Class::DegradedQueueFull),
            deadline: of(Class::DegradedDeadline),
            shard_dead: of(Class::DegradedShardDead),
            rejected: of(Class::Rejected),
            malformed: of(Class::MalformedBody),
            dropped: of(Class::Dropped),
        }
    }
}

fn percentile(sorted_ms: &[u64], p: f64) -> u64 {
    if sorted_ms.is_empty() {
        return 0;
    }
    let rank = ((sorted_ms.len() as f64 * p).ceil() as usize).max(1) - 1;
    sorted_ms[rank.min(sorted_ms.len() - 1)]
}

/// Run the storm. Returns the report and the number of failed assertions
/// (the process exit code is 1 when nonzero).
pub fn storm(opts: &StormOptions) -> (String, usize) {
    // Resolve or boot the target server.
    let (addr, own_server): (SocketAddr, Option<Server>) = match &opts.addr {
        Some(a) => match a.to_socket_addrs().ok().and_then(|mut i| i.next()) {
            Some(addr) => (addr, None),
            None => return (format!("storm: bad --addr {a:?}\n"), 1),
        },
        None => match Server::start(serve_config("127.0.0.1:0", 4)) {
            Ok(server) => (server.addr(), Some(server)),
            Err(e) => return (format!("storm: cannot boot server: {e}\n"), 1),
        },
    };

    // Prime the hot spec so its in-storm repetitions are deterministic,
    // counted cache hits rather than a race between in-flight twins.
    let warmup = classify(&post_with_retry(addr, &hot_spec().to_json()));
    let warmed = matches!(warmup, Class::Ok | Class::OkCacheHit);

    // Leg 1: concurrent load.
    let started = Instant::now();
    let handles: Vec<_> = (0..opts.jobs)
        .map(|i| {
            let body = mix_spec(i).to_json();
            std::thread::spawn(move || {
                let t0 = Instant::now();
                let result = post_with_retry(addr, &body);
                (classify(&result), t0.elapsed())
            })
        })
        .collect();
    let results: Vec<(Class, Duration)> = handles
        .into_iter()
        .map(|h| h.join().unwrap_or((Class::Dropped, Duration::from_secs(0))))
        .collect();
    let wall = started.elapsed();
    let tally = Tally::count(&results);
    let mut latencies_ms: Vec<u64> = results.iter().map(|(_, d)| d.as_millis() as u64).collect();
    latencies_ms.sort_unstable();
    let p50 = percentile(&latencies_ms, 0.50);
    let p90 = percentile(&latencies_ms, 0.90);
    let p99 = percentile(&latencies_ms, 0.99);
    let max = latencies_ms.last().copied().unwrap_or(0);

    // Leg 2: the hot spec must now be a counted cache hit.
    let cache_leg_hit = matches!(
        classify(&post_with_retry(addr, &hot_spec().to_json())),
        Class::OkCacheHit
    );
    let stats = client::get(addr, "/stats").ok();
    let stats_value = stats.as_ref().and_then(|(_, b)| parse_json(b).ok());
    let observed_hits = stats_value
        .as_ref()
        .and_then(|v| v.get("cache"))
        .and_then(|c| c.get("results"))
        .and_then(|r| r.get("hits"))
        .and_then(|h| h.as_u64().ok())
        .unwrap_or(0);
    let n_shards = stats_value
        .as_ref()
        .and_then(|v| v.get("shards"))
        .and_then(|s| s.as_arr().ok().map(|a| a.len()))
        .unwrap_or(4)
        .max(1);

    // Leg 3: kill shard 0 and submit a spec that provably routes to it.
    let kill_ok = matches!(
        client::request(addr, "POST", "/admin/shards/0/kill", ""),
        Ok((200, _))
    );
    let mut victim = JobSpec::new("cholesky", 13).expect("known workload");
    victim.seed = (0..)
        .find(|&s| {
            let mut probe = JobSpec::new("cholesky", 13).expect("known workload");
            probe.seed = s;
            probe.content_hash().is_multiple_of(n_shards as u64)
        })
        .expect("some seed routes to shard 0");
    let chaos_class = classify(&post_with_retry(addr, &victim.to_json()));
    let chaos_shed = chaos_class == Class::DegradedShardDead;

    // Assertions.
    let mut failures = Vec::new();
    let mut check = |ok: bool, what: String| {
        if !ok {
            failures.push(what);
        }
    };
    check(
        tally.dropped == 0,
        format!(
            "{} dropped connection(s); overload must answer Degraded",
            tally.dropped
        ),
    );
    check(
        tally.malformed == 0,
        format!("{} malformed response body/bodies", tally.malformed),
    );
    check(
        tally.rejected == 0,
        format!(
            "{} rejected job(s); the storm mix is valid by construction",
            tally.rejected
        ),
    );
    check(
        p99 <= opts.p99_limit_ms,
        format!("p99 {p99}ms over the {}ms limit", opts.p99_limit_ms),
    );
    check(warmed, "hot-spec warmup request did not complete".into());
    check(
        tally.cache_hits > 0,
        "no cache hits during the storm (the warmed hot spec repeats)".into(),
    );
    check(
        cache_leg_hit,
        "hot-spec resubmission was not a cache hit".into(),
    );
    check(
        observed_hits > 0,
        "cache hits not observable in GET /stats".into(),
    );
    check(kill_ok, "admin shard kill did not answer 200".into());
    check(
        chaos_shed,
        "job routed to the killed shard did not answer a structured shard-dead".into(),
    );

    let report = if opts.json {
        render_json(
            opts,
            &tally,
            wall,
            (p50, p90, p99, max),
            observed_hits,
            &failures,
        )
    } else {
        render_table(
            opts,
            &tally,
            wall,
            (p50, p90, p99, max),
            observed_hits,
            &failures,
        )
    };
    if let Some(server) = own_server {
        server.shutdown();
    }
    (report, failures.len())
}

fn render_table(
    opts: &StormOptions,
    t: &Tally,
    wall: Duration,
    (p50, p90, p99, max): (u64, u64, u64, u64),
    observed_hits: u64,
    failures: &[String],
) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "# storm: {} concurrent jobs in {:.2}s\n",
        opts.jobs,
        wall.as_secs_f64()
    ));
    out.push_str(&format!("{:>22} {:>8}\n", "outcome", "count"));
    for (label, n) in [
        ("ok", t.ok),
        ("  of which cache hits", t.cache_hits),
        ("degraded queue-full", t.queue_full),
        ("degraded deadline", t.deadline),
        ("degraded shard-dead", t.shard_dead),
        ("rejected (400)", t.rejected),
        ("malformed bodies", t.malformed),
        ("dropped connections", t.dropped),
    ] {
        out.push_str(&format!("{label:>22} {n:>8}\n"));
    }
    out.push_str(&format!(
        "latency ms: p50 {p50}  p90 {p90}  p99 {p99} (limit {})  max {max}\n",
        opts.p99_limit_ms
    ));
    out.push_str(&format!("stats: results-cache hits {observed_hits}\n"));
    if failures.is_empty() {
        out.push_str("storm: all assertions passed\n");
    } else {
        for f in failures {
            out.push_str(&format!("storm FAILURE: {f}\n"));
        }
    }
    out
}

fn render_json(
    opts: &StormOptions,
    t: &Tally,
    wall: Duration,
    (p50, p90, p99, max): (u64, u64, u64, u64),
    observed_hits: u64,
    failures: &[String],
) -> String {
    let mut doc = JsonValue::Obj(vec![
        ("schema".into(), JsonValue::str("hetchol-storm/v1")),
        ("jobs".into(), JsonValue::uint(opts.jobs as u64)),
        ("wall_ms".into(), JsonValue::uint(wall.as_millis() as u64)),
        ("ok".into(), JsonValue::uint(t.ok as u64)),
        ("cache_hits".into(), JsonValue::uint(t.cache_hits as u64)),
        (
            "degraded".into(),
            JsonValue::Obj(vec![
                ("queue_full".into(), JsonValue::uint(t.queue_full as u64)),
                ("deadline".into(), JsonValue::uint(t.deadline as u64)),
                ("shard_dead".into(), JsonValue::uint(t.shard_dead as u64)),
            ]),
        ),
        ("rejected".into(), JsonValue::uint(t.rejected as u64)),
        ("malformed".into(), JsonValue::uint(t.malformed as u64)),
        ("dropped".into(), JsonValue::uint(t.dropped as u64)),
        (
            "latency_ms".into(),
            JsonValue::Obj(vec![
                ("p50".into(), JsonValue::uint(p50)),
                ("p90".into(), JsonValue::uint(p90)),
                ("p99".into(), JsonValue::uint(p99)),
                ("p99_limit".into(), JsonValue::uint(opts.p99_limit_ms)),
                ("max".into(), JsonValue::uint(max)),
            ]),
        ),
        (
            "stats_results_cache_hits".into(),
            JsonValue::uint(observed_hits),
        ),
        (
            "failures".into(),
            JsonValue::Arr(failures.iter().map(|f| JsonValue::str(&**f)).collect()),
        ),
    ]);
    if let JsonValue::Obj(members) = &mut doc {
        members.push(("passed".into(), JsonValue::Bool(failures.is_empty())));
    }
    let mut text = doc.render();
    text.push('\n');
    text
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_storm_passes_every_assertion() {
        let (report, failures) = storm(&StormOptions::quick());
        assert_eq!(failures, 0, "{report}");
        assert!(report.contains("all assertions passed"), "{report}");
    }

    #[test]
    fn json_storm_has_the_schema_header() {
        let (report, failures) = storm(&StormOptions {
            jobs: 16,
            json: true,
            ..StormOptions::full()
        });
        assert_eq!(failures, 0, "{report}");
        assert!(
            report.contains(r#""schema":"hetchol-storm/v1""#),
            "{report}"
        );
        assert!(report.contains(r#""passed":true"#), "{report}");
    }
}
