//! # hetchol-bench
//!
//! The reproduction harness: one function per table/figure of the paper,
//! shared by the `repro` binary and the criterion benches. Each function
//! returns a [`Figure`] (labelled series over matrix sizes) that the
//! binary renders as an aligned table or CSV — the textual equivalent of
//! the paper's plots.

pub mod perf;
pub mod storm;

pub use perf::{bench_check, bench_report, BenchReport};
pub use storm::{storm, StormOptions};

use hetchol_bounds::BoundSet;
use hetchol_core::algorithm::Algorithm;
use hetchol_core::dag::TaskGraph;
use hetchol_core::metrics::{Figure, Series};
use hetchol_core::obs::ObsSink;
use hetchol_core::platform::Platform;
use hetchol_core::profiles::TimingProfile;
use hetchol_core::scheduler::Scheduler;
use hetchol_cp::{optimize_from, CpOptions};
use hetchol_sched::{Dmda, Dmdas, MappingInjector, ScheduleInjector};
use hetchol_sim::{simulate_with, SimOptions, SimResult};

/// The matrix sizes (in 960-tiles) of every plot in the paper.
pub const PAPER_SIZES: [usize; 8] = [4, 8, 12, 16, 20, 24, 28, 32];

/// Number of repetitions behind every "actual execution" data point
/// (paper: "we provide the average and standard deviation of 10 runs").
pub const ACTUAL_RUNS: u64 = 10;

/// Scheduler selector used across the harness.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum SchedKind {
    /// StarPU's `random`.
    Random,
    /// StarPU's `eager` (model-free greedy baseline).
    Eager,
    /// StarPU's `dmda`.
    Dmda,
    /// StarPU's `dmdas` (HEFT-like).
    Dmdas,
    /// `dmdas` + GEMM/SYRK forced on GPUs.
    GemmSyrkGpu,
    /// `dmdas` + TRSMs ≥ `k` tiles below the diagonal forced on CPUs.
    TriangleTrsm(u32),
}

impl SchedKind {
    /// Display label matching the paper's legends.
    pub fn label(self) -> String {
        match self {
            SchedKind::Random => "random".into(),
            SchedKind::Eager => "eager".into(),
            SchedKind::Dmda => "dmda".into(),
            SchedKind::Dmdas => "dmdas".into(),
            SchedKind::GemmSyrkGpu => "gemm+syrk on gpu".into(),
            SchedKind::TriangleTrsm(k) => format!("triangle trsms on cpu (k={k})"),
        }
    }

    /// The [`hetchol_sched::registry`] name of this policy — the string a
    /// serialized `JobSpec` would carry for the same scheduler.
    pub fn registry_name(self) -> String {
        match self {
            SchedKind::Random => "random".into(),
            SchedKind::Eager => "eager".into(),
            SchedKind::Dmda => "dmda".into(),
            SchedKind::Dmdas => "dmdas".into(),
            SchedKind::GemmSyrkGpu => "gemmsyrk-gpu".into(),
            SchedKind::TriangleTrsm(k) => format!("triangle:{k}"),
        }
    }

    /// Instantiate the scheduler; `seed` only matters for `random`.
    ///
    /// Delegates to [`hetchol_sched::registry`] so the harness and the
    /// serving layer cannot drift apart.
    pub fn build(self, seed: u64) -> Box<dyn Scheduler + Send> {
        hetchol_sched::registry::build(&self.registry_name(), seed)
            .expect("every SchedKind has a registry entry")
    }

    /// Whether the scheduler itself is stochastic (needs averaging even in
    /// deterministic simulation mode).
    pub fn stochastic(self) -> bool {
        hetchol_sched::registry::is_stochastic(&self.registry_name())
    }
}

/// Run one simulation and return achieved GFLOP/s.
pub fn sim_gflops(
    n: usize,
    platform: &Platform,
    profile: &TimingProfile,
    kind: SchedKind,
    opts: &SimOptions,
) -> f64 {
    sim_result(n, platform, profile, kind, opts).gflops(n, profile.nb())
}

/// Run one simulation and return the full result.
pub fn sim_result(
    n: usize,
    platform: &Platform,
    profile: &TimingProfile,
    kind: SchedKind,
    opts: &SimOptions,
) -> SimResult {
    let graph = TaskGraph::cholesky(n);
    let mut scheduler = kind.build(opts.seed);
    simulate_with(
        &graph,
        platform,
        profile,
        scheduler.as_mut(),
        opts,
        ObsSink::disabled(),
    )
}

/// Run one simulation of any supported factorization.
pub fn sim_result_algo(
    algo: Algorithm,
    n: usize,
    platform: &Platform,
    profile: &TimingProfile,
    kind: SchedKind,
    opts: &SimOptions,
) -> SimResult {
    let graph = algo.graph(n);
    let mut scheduler = kind.build(opts.seed);
    simulate_with(
        &graph,
        platform,
        profile,
        scheduler.as_mut(),
        opts,
        ObsSink::disabled(),
    )
}

/// The paper's methodology applied to another factorization (its stated
/// future work): scheduler comparison against the generalised mixed bound
/// and kernel peak, simulated on the comm-free Mirage platform.
pub fn figure_algo(algo: Algorithm) -> Figure {
    let platform = Platform::mirage().without_comm();
    let profile = TimingProfile::mirage();
    let mut fig = Figure::new(
        format!(
            "Extension: {} factorization, simulated Mirage (comm-free)",
            algo.label()
        ),
        "tiles",
        "GFLOP/s",
    );
    for kind in [
        SchedKind::Random,
        SchedKind::Eager,
        SchedKind::Dmda,
        SchedKind::Dmdas,
    ] {
        let mut s = Series::new(kind.label());
        for &n in &PAPER_SIZES {
            if kind.stochastic() {
                let samples: Vec<f64> = (0..ACTUAL_RUNS)
                    .map(|seed| {
                        let opts = SimOptions {
                            seed,
                            ..SimOptions::default()
                        };
                        let r = sim_result_algo(algo, n, &platform, &profile, kind, &opts);
                        algo.gflops(n, profile.nb(), r.makespan)
                    })
                    .collect();
                s.push_samples(n as f64, &samples);
            } else {
                let r = sim_result_algo(algo, n, &platform, &profile, kind, &SimOptions::default());
                s.push(n as f64, algo.gflops(n, profile.nb(), r.makespan));
            }
        }
        fig.add(s);
    }
    let mut mixed = Series::new("mixed bound");
    let mut peak = Series::new("kernel peak");
    for &n in &PAPER_SIZES {
        let set = BoundSet::compute_algo(algo, n, &platform, &profile);
        mixed.push(n as f64, set.mixed_gflops());
        peak.push(n as f64, set.gemm_peak);
    }
    fig.add(mixed);
    fig.add(peak);
    fig
}

/// Mean ± std GFLOP/s over `runs` seeds (seeds feed both the jitter and
/// stochastic schedulers).
pub fn sim_gflops_samples(
    n: usize,
    platform: &Platform,
    profile: &TimingProfile,
    kind: SchedKind,
    actual_mode: bool,
    runs: u64,
) -> Vec<f64> {
    (0..runs)
        .map(|seed| {
            let opts = if actual_mode {
                SimOptions::actual(seed)
            } else {
                SimOptions {
                    seed,
                    ..SimOptions::default()
                }
            };
            sim_gflops(n, platform, profile, kind, &opts)
        })
        .collect()
}

/// One scheduler curve over the paper's sizes. Deterministic schedulers in
/// simulation mode get a single run per size; stochastic schedulers and
/// actual mode get [`ACTUAL_RUNS`] seeds with mean ± std, exactly like the
/// paper's methodology.
pub fn scheduler_series(
    platform: &Platform,
    profile_for: &dyn Fn(usize) -> TimingProfile,
    kind: SchedKind,
    actual_mode: bool,
    sizes: &[usize],
) -> Series {
    let mut s = Series::new(kind.label());
    for &n in sizes {
        let profile = profile_for(n);
        if actual_mode || kind.stochastic() {
            let samples = sim_gflops_samples(n, platform, &profile, kind, actual_mode, ACTUAL_RUNS);
            s.push_samples(n as f64, &samples);
        } else {
            s.push(
                n as f64,
                sim_gflops(n, platform, &profile, kind, &SimOptions::default()),
            );
        }
    }
    s
}

/// Mixed-bound performance curve.
pub fn mixed_bound_series(
    platform: &Platform,
    profile_for: &dyn Fn(usize) -> TimingProfile,
    sizes: &[usize],
) -> Series {
    let mut s = Series::new("mixed bound");
    for &n in sizes {
        let profile = profile_for(n);
        let set = BoundSet::compute(n, platform, &profile);
        s.push(n as f64, set.mixed_gflops());
    }
    s
}

// ---------------------------------------------------------------------------
// Figures
// ---------------------------------------------------------------------------

/// Figure 2: the four theoretical performance upper bounds on Mirage.
pub fn figure2() -> Figure {
    let platform = Platform::mirage();
    let profile = TimingProfile::mirage();
    let mut fig = Figure::new(
        "Figure 2: Heterogeneous theoretical performance upper bounds",
        "tiles",
        "GFLOP/s",
    );
    let mut cp = Series::new("critical path");
    let mut area = Series::new("area bound");
    let mut mixed = Series::new("mixed bound");
    let mut peak = Series::new("gemm peak");
    for &n in &PAPER_SIZES {
        let set = BoundSet::compute(n, &platform, &profile);
        cp.push(n as f64, set.critical_path_gflops());
        area.push(n as f64, set.area_gflops());
        mixed.push(n as f64, set.mixed_gflops());
        peak.push(n as f64, set.gemm_peak);
    }
    fig.add(cp);
    fig.add(area);
    fig.add(mixed);
    fig.add(peak);
    fig
}

/// Figure 3: homogeneous *actual* performance (random/dmda/dmdas on
/// 9 CPU cores, 10 jittered runs with runtime overhead).
pub fn figure3() -> Figure {
    let platform = Platform::homogeneous(9);
    let prof = |_n: usize| TimingProfile::mirage_homogeneous();
    let mut fig = Figure::new(
        "Figure 3: Homogeneous actual performance (9 CPUs)",
        "tiles",
        "GFLOP/s",
    );
    for kind in [SchedKind::Random, SchedKind::Dmda, SchedKind::Dmdas] {
        fig.add(scheduler_series(&platform, &prof, kind, true, &PAPER_SIZES));
    }
    fig
}

/// Figure 4: homogeneous *simulated* performance + mixed bound.
pub fn figure4() -> Figure {
    let platform = Platform::homogeneous(9);
    let prof = |_n: usize| TimingProfile::mirage_homogeneous();
    let mut fig = Figure::new(
        "Figure 4: Homogeneous simulated performance (9 CPUs)",
        "tiles",
        "GFLOP/s",
    );
    for kind in [SchedKind::Random, SchedKind::Dmda, SchedKind::Dmdas] {
        fig.add(scheduler_series(
            &platform,
            &prof,
            kind,
            false,
            &PAPER_SIZES,
        ));
    }
    fig.add(mixed_bound_series(&platform, &prof, &PAPER_SIZES));
    fig
}

/// Figure 5: heterogeneous *related* simulated performance + mixed bound
/// (fictitious platform where every kernel is `K(n)`× faster on GPU).
pub fn figure5() -> Figure {
    let platform = Platform::mirage().without_comm();
    let prof = |n: usize| TimingProfile::mirage_related(n);
    let mut fig = Figure::new(
        "Figure 5: Heterogeneous related simulated performance",
        "tiles",
        "GFLOP/s",
    );
    for kind in [SchedKind::Random, SchedKind::Dmda, SchedKind::Dmdas] {
        fig.add(scheduler_series(
            &platform,
            &prof,
            kind,
            false,
            &PAPER_SIZES,
        ));
    }
    fig.add(mixed_bound_series(&platform, &prof, &PAPER_SIZES));
    fig
}

/// Figure 6: heterogeneous unrelated *actual* performance (PCI transfers
/// on, runtime overhead + jitter, 10 runs).
pub fn figure6() -> Figure {
    let platform = Platform::mirage();
    let prof = |_n: usize| TimingProfile::mirage();
    let mut fig = Figure::new(
        "Figure 6: Heterogeneous unrelated actual performance",
        "tiles",
        "GFLOP/s",
    );
    for kind in [SchedKind::Random, SchedKind::Dmda, SchedKind::Dmdas] {
        fig.add(scheduler_series(&platform, &prof, kind, true, &PAPER_SIZES));
    }
    fig
}

/// Figure 7: heterogeneous unrelated *simulated* performance + mixed bound
/// (communications removed for a fair comparison with the bound, as in
/// the paper).
pub fn figure7() -> Figure {
    let platform = Platform::mirage().without_comm();
    let prof = |_n: usize| TimingProfile::mirage();
    let mut fig = Figure::new(
        "Figure 7: Heterogeneous unrelated simulated performance",
        "tiles",
        "GFLOP/s",
    );
    for kind in [SchedKind::Random, SchedKind::Dmda, SchedKind::Dmdas] {
        fig.add(scheduler_series(
            &platform,
            &prof,
            kind,
            false,
            &PAPER_SIZES,
        ));
    }
    fig.add(mixed_bound_series(&platform, &prof, &PAPER_SIZES));
    fig
}

/// Figure 8: the related case rescaled so its mixed bound matches the
/// unrelated mixed bound (the paper's apples-to-apples comparison of the
/// two heterogeneity models).
pub fn figure8() -> Figure {
    let related = figure5();
    let platform = Platform::mirage().without_comm();
    let unrelated_prof = TimingProfile::mirage();
    let mut fig = Figure::new(
        "Figure 8: Heterogeneous related simulated performance, scaled to the unrelated mixed bound",
        "tiles",
        "GFLOP/s",
    );
    // Per-size scale factor: mixed_unrelated(n) / mixed_related(n).
    let mixed_related = related
        .series
        .iter()
        .find(|s| s.label == "mixed bound")
        .expect("figure 5 has a mixed bound")
        .clone();
    let mut scaled_series: Vec<Series> = related
        .series
        .iter()
        .filter(|s| s.label != "mixed bound")
        .cloned()
        .collect();
    let mut mixed_unrelated = Series::new("mixed bound");
    for &n in &PAPER_SIZES {
        let set = BoundSet::compute(n, &platform, &unrelated_prof);
        let target = set.mixed_gflops();
        mixed_unrelated.push(n as f64, target);
        let source = mixed_related
            .at(n as f64)
            .expect("related bound covers all sizes")
            .mean;
        let factor = target / source;
        for s in &mut scaled_series {
            if let Some(p) = s.points.iter_mut().find(|p| p.x == n as f64) {
                p.mean *= factor;
                p.std *= factor;
            }
        }
    }
    for s in scaled_series {
        fig.add(s);
    }
    fig.add(mixed_unrelated);
    fig
}

/// Figure 10: heterogeneous simulated performance with static knowledge:
/// dmdas baseline, mixed bound, the CP solution (its theoretical makespan),
/// the CP schedule replayed in simulation, and the best triangle-TRSM hint.
///
/// `cp_opts` bounds the CP effort (the paper used 23 hours; pass a budget
/// appropriate to your patience — shapes are stable from modest budgets).
pub fn figure10(cp_opts: &CpOptions, cp_max_size: usize) -> Figure {
    let platform = Platform::mirage().without_comm();
    let profile = TimingProfile::mirage();
    let prof = |_n: usize| TimingProfile::mirage();
    let mut fig = Figure::new(
        "Figure 10: Heterogeneous unrelated simulated performance with static knowledge",
        "tiles",
        "GFLOP/s",
    );
    fig.add(scheduler_series(
        &platform,
        &prof,
        SchedKind::Dmdas,
        false,
        &PAPER_SIZES,
    ));
    fig.add(mixed_bound_series(&platform, &prof, &PAPER_SIZES));

    let mut cp_theory = Series::new("CP solution");
    let mut cp_sim = Series::new("CP solution in simulation");
    for &n in PAPER_SIZES.iter().filter(|&&n| n <= cp_max_size) {
        let graph = TaskGraph::cholesky(n);
        // Seed the search with the schedules the dynamic runtime actually
        // produces (dmdas and the best triangle hint) — the analogue of the
        // paper seeding CP Optimizer with a HEFT solution.
        let dmdas_seed = sim_result(
            n,
            &platform,
            &profile,
            SchedKind::Dmdas,
            &SimOptions::default(),
        )
        .trace
        .to_schedule();
        let (_, best_k) = best_triangle_k(n, &platform, &profile, false);
        let tri_seed = sim_result(
            n,
            &platform,
            &profile,
            SchedKind::TriangleTrsm(best_k),
            &SimOptions::default(),
        )
        .trace
        .to_schedule();
        let sol = optimize_from(
            &graph,
            &platform,
            &profile,
            &[&dmdas_seed, &tri_seed],
            cp_opts,
        );
        cp_theory.push(
            n as f64,
            hetchol_core::metrics::gflops(n, profile.nb(), sol.makespan),
        );
        let mut inj = ScheduleInjector::new(&sol.schedule);
        let replay = simulate_with(
            &graph,
            &platform,
            &profile,
            &mut inj,
            &SimOptions::default(),
            ObsSink::disabled(),
        );
        cp_sim.push(n as f64, replay.gflops(n, profile.nb()));
    }
    fig.add(cp_theory);
    fig.add(cp_sim);

    let mut triangle = Series::new("triangle trsms on cpu (best k)");
    for &n in &PAPER_SIZES {
        let (g, _k) = best_triangle_k(n, &platform, &profile, false);
        triangle.push(n as f64, g);
    }
    fig.add(triangle);
    fig
}

/// Figure 11: heterogeneous *actual* performance with static knowledge —
/// dmdas vs the best triangle-TRSM offset, 10 jittered runs each.
pub fn figure11() -> Figure {
    let platform = Platform::mirage();
    let profile = TimingProfile::mirage();
    let prof = |_n: usize| TimingProfile::mirage();
    let mut fig = Figure::new(
        "Figure 11: Heterogeneous actual performance with static knowledge",
        "tiles",
        "GFLOP/s",
    );
    fig.add(scheduler_series(
        &platform,
        &prof,
        SchedKind::Dmdas,
        true,
        &PAPER_SIZES,
    ));
    let mut triangle = Series::new("triangle trsms on cpu (best k)");
    for &n in &PAPER_SIZES {
        // Pick k on the deterministic model, then report jittered runs —
        // mirroring the paper's "best obtained performance over all k".
        let (_, k) = best_triangle_k(n, &platform.without_comm(), &profile, false);
        let samples = sim_gflops_samples(
            n,
            &platform,
            &profile,
            SchedKind::TriangleTrsm(k),
            true,
            ACTUAL_RUNS,
        );
        triangle.push_samples(n as f64, &samples);
    }
    fig.add(triangle);
    fig
}

/// Section V-C3, first experiment: forcing GEMM/SYRK on GPUs barely helps.
pub fn figure_hint_gemmsyrk() -> Figure {
    let platform = Platform::mirage().without_comm();
    let prof = |_n: usize| TimingProfile::mirage();
    let mut fig = Figure::new(
        "Hint: GEMM+SYRK forced on GPUs vs plain dmdas (simulated)",
        "tiles",
        "GFLOP/s",
    );
    for kind in [SchedKind::Dmdas, SchedKind::GemmSyrkGpu] {
        fig.add(scheduler_series(
            &platform,
            &prof,
            kind,
            false,
            &PAPER_SIZES,
        ));
    }
    fig
}

/// Section VI-B: mapping-only injection of the CP solution vs full
/// injection vs plain dmda/dmdas.
pub fn figure_mapping_only(cp_opts: &CpOptions, sizes: &[usize]) -> Figure {
    let platform = Platform::mirage().without_comm();
    let profile = TimingProfile::mirage();
    let prof = |_n: usize| TimingProfile::mirage();
    let mut fig = Figure::new(
        "Section VI-B: injecting the CP mapping only vs the full CP schedule",
        "tiles",
        "GFLOP/s",
    );
    for kind in [SchedKind::Dmda, SchedKind::Dmdas] {
        fig.add(scheduler_series(&platform, &prof, kind, false, sizes));
    }
    let mut full = Series::new("CP full injection");
    let mut mapping = Series::new("CP mapping only");
    for &n in sizes {
        let graph = TaskGraph::cholesky(n);
        // Same seeding as Figure 10: the CP search starts from the dmdas
        // schedule, so its solution never loses to the dynamic scheduler.
        let dmdas_seed = sim_result(
            n,
            &platform,
            &profile,
            SchedKind::Dmdas,
            &SimOptions::default(),
        )
        .trace
        .to_schedule();
        let sol = optimize_from(&graph, &platform, &profile, &[&dmdas_seed], cp_opts);
        let ctx = hetchol_core::scheduler::SchedContext {
            graph: &graph,
            platform: &platform,
            profile: &profile,
        };
        let mut inj = ScheduleInjector::new(&sol.schedule);
        let r = simulate_with(
            &graph,
            &platform,
            &profile,
            &mut inj,
            &SimOptions::default(),
            ObsSink::disabled(),
        );
        full.push(n as f64, r.gflops(n, profile.nb()));
        let mut map = MappingInjector::new(&sol.schedule, &ctx);
        let r = simulate_with(
            &graph,
            &platform,
            &profile,
            &mut map,
            &SimOptions::default(),
            ObsSink::disabled(),
        );
        mapping.push(n as f64, r.gflops(n, profile.nb()));
    }
    fig.add(full);
    fig.add(mapping);
    fig
}

/// Sweep the triangle-TRSM offset `k` and return `(best GFLOP/s, best k)`
/// for one size (Figures 10/11; the paper reports best performance around
/// `k = 6–8`).
pub fn best_triangle_k(
    n: usize,
    platform: &Platform,
    profile: &TimingProfile,
    actual_mode: bool,
) -> (f64, u32) {
    let mut best = (f64::MIN, 1u32);
    // k = n forces nothing (max offset is n-1), so the sweep always
    // contains plain dmdas as a fallback.
    for k in 1..=n.max(1) as u32 {
        let g = if actual_mode {
            let samples = sim_gflops_samples(
                n,
                platform,
                profile,
                SchedKind::TriangleTrsm(k),
                true,
                ACTUAL_RUNS,
            );
            samples.iter().sum::<f64>() / samples.len() as f64
        } else {
            sim_gflops(
                n,
                platform,
                profile,
                SchedKind::TriangleTrsm(k),
                &SimOptions::default(),
            )
        };
        if g > best.0 {
            best = (g, k);
        }
    }
    best
}

/// Table I: GPU relative performance per kernel.
pub fn table1() -> String {
    use std::fmt::Write as _;
    let profile = TimingProfile::mirage();
    let mut out = String::new();
    let _ = writeln!(out, "# Table I: GPUs relative performance (Mirage profile)");
    let _ = writeln!(
        out,
        "{:>8} {:>12} {:>12} {:>10}",
        "kernel", "CPU time", "GPU time", "speedup"
    );
    for k in hetchol_core::kernel::Kernel::ALL {
        let cpu = profile.time(k, 0);
        let gpu = profile.time(k, 1);
        let _ = writeln!(
            out,
            "{:>8} {:>12} {:>12} {:>9.1}x",
            k.label(),
            format!("{cpu}"),
            format!("{gpu}"),
            profile.speedup(k, 1, 0)
        );
    }
    out
}

/// Section V-C2: the acceleration factors `K(n)` of the related platform.
pub fn kfactors() -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "# Acceleration factors K(n) for the related platform");
    let _ = writeln!(out, "{:>8} {:>8}", "tiles", "K");
    for &n in &PAPER_SIZES {
        let _ = writeln!(
            out,
            "{:>8} {:>8.2}",
            n,
            TimingProfile::acceleration_factor(n)
        );
    }
    out
}

/// Figure 12: GPU Gantt traces at 8×8 tiles, dmda vs dmdas, plus idle
/// fractions — the textual version of the paper's trace comparison.
pub fn figure12() -> String {
    use std::fmt::Write as _;
    let platform = Platform::mirage().without_comm();
    let profile = TimingProfile::mirage();
    let n = 8;
    let mut out = String::new();
    for kind in [SchedKind::Dmda, SchedKind::Dmdas] {
        let r = sim_result(n, &platform, &profile, kind, &SimOptions::default());
        let _ = writeln!(
            out,
            "## GPU trace with {} scheduler ({n}x{n} tiles, makespan {})",
            kind.label(),
            r.makespan
        );
        // Show only GPU rows (workers 9..12), as in the paper's figure.
        let gantt = r.trace.gantt_ascii(&platform, 96);
        for line in gantt.lines() {
            if line.trim_start().starts_with("GPU") || line.trim_start().starts_with('0') {
                let _ = writeln!(out, "{line}");
            }
        }
        let idle = r.trace.idle_fraction(9..12);
        let _ = writeln!(out, "GPU idle fraction: {:.1}%\n", idle * 100.0);
    }
    out.push_str("(P = POTRF, T = TRSM, S = SYRK, G = GEMM, . = idle)\n");
    out
}

/// Figure 1: the 5×5-tile Cholesky DAG in DOT format.
pub fn figure1() -> String {
    TaskGraph::cholesky(5).to_dot()
}

/// Figure 9: which TRSMs the triangle hint forces on CPUs.
pub fn figure9(n: usize, k: u32) -> String {
    format!(
        "# Figure 9: TRSMs forced on CPUs (n={n}, offset k={k})\n{}\
         (P = diagonal POTRF tile, g = TRSM left to the dynamic scheduler, C = TRSM forced on CPU)\n",
        hetchol_sched::hints::render_forced_triangle(n, k)
    )
}

/// `repro --analyze`: lint traces from both engines and report.
///
/// Simulated `dmda`/`dmdas` traces are held to the strictest contract —
/// exact durations, bound consistency, and their queue discipline; the
/// threaded runtime's wall-clock traces get the structural rules under
/// [`DurationCheck::Loose`](hetchol_core::schedule::DurationCheck) with a
/// generous idle-gap threshold. Returns
/// the rendered report and the number of error-severity findings (the
/// binary's exit code).
pub fn analyze(json: bool) -> (String, usize) {
    use hetchol_analyze::{Linter, QueueDiscipline};
    use hetchol_core::schedule::DurationCheck;
    use hetchol_core::time::Time;

    let mut out = String::new();
    let mut errors = 0;
    let mut emit = |label: String, report: &hetchol_analyze::Report| {
        errors += report.n_errors();
        if json {
            out.push_str(&format!(
                "{{\"run\":\"{label}\",\"report\":{}}}\n",
                report.to_json()
            ));
        } else {
            out.push_str(&format!(
                "{label}: {} error(s), {} warning(s)\n",
                report.n_errors(),
                report.n_warnings()
            ));
            for d in &report.diagnostics {
                out.push_str(&format!("  {d}\n"));
            }
        }
    };

    // Simulated engine, paper platform. Runs are obs-instrumented so the
    // linter reads its task records from the structured spans and the
    // span-consistency rule is armed. Bounds are armed with their exact
    // certificates, so any bound verdict is CONFIRMED rather than f64-only
    // (certification failure falls back to the float bounds).
    let platform = Platform::mirage().without_comm();
    let profile = TimingProfile::mirage();
    for n in [4usize, 8] {
        let graph = TaskGraph::cholesky(n);
        let bounds = BoundSet::compute(n, &platform, &profile);
        let certified = bounds.certify(&platform, &profile).ok();
        for (kind, discipline) in [
            (SchedKind::Dmda, QueueDiscipline::Fifo),
            (SchedKind::Dmdas, QueueDiscipline::Sorted),
        ] {
            let mut scheduler = kind.build(0);
            let r = simulate_with(
                &graph,
                &platform,
                &profile,
                scheduler.as_mut(),
                &SimOptions::default(),
                ObsSink::enabled(),
            );
            let linter = Linter::new(&graph, &platform, &profile);
            let linter = match &certified {
                Some(c) => linter.with_certified_bounds(c.clone()),
                None => linter.with_bounds(bounds.clone()),
            };
            let report = linter
                .with_queue_discipline(discipline)
                .with_obs(&r.obs)
                .lint_trace(&r.trace);
            emit(format!("sim/{}/n={n}", kind.label()), &report);
        }
    }

    // Threaded runtime, wall-clock timing: structural rules only.
    for n in [2usize, 4] {
        let graph = TaskGraph::cholesky(n);
        let n_workers = 4;
        let rt_platform = Platform::homogeneous(n_workers).without_comm();
        let rt_profile = TimingProfile::mirage_homogeneous();
        let mut scheduler = Dmda::new();
        let workload = hetchol_rt::FnWorkload(|_| Ok::<(), std::convert::Infallible>(()));
        let r = hetchol_rt::execute_workload(
            &workload,
            &graph,
            &mut scheduler,
            &rt_profile,
            n_workers,
            ObsSink::enabled(),
        )
        .expect("no-op tasks cannot fail");
        let report = Linter::new(&graph, &rt_platform, &rt_profile)
            .duration_check(DurationCheck::Loose)
            .idle_gap_threshold(Time::from_millis(50))
            .with_obs(&r.obs)
            .lint_trace(&r.trace);
        emit(format!("rt/dmda/n={n}"), &report);
    }

    (out, errors)
}

/// `repro chaos`: the seeded fault-injection matrix over both engines.
///
/// Every scenario runs a fault plan through the resilient entry points and
/// checks three things:
///
/// 1. **classification** — the [`hetchol_core::fault::RunOutcome`] matches
///    the scenario's expectation (a killed worker degrades, an exhausted
///    retry budget fails);
/// 2. **consistency** — the trace passes the linter with zero
///    error-severity findings, which in particular arms rule 17
///    (`recovery-consistency`: nothing executes on a dead worker, every
///    failure is answered);
/// 3. **numerics** — for recovered runs, replaying the trace's kernel
///    sequence against a real SPD matrix factorizes it correctly
///    (residual < 1e-10), and the rt legs verify their own factor.
///
/// Cross-engine legs run the *identical* plan through the simulator and
/// the threaded runtime and require the same outcome classification.
/// Returns the rendered report and the number of failed scenarios.
pub fn chaos(seed: u64, json: bool) -> (String, usize) {
    use hetchol_analyze::Linter;
    use hetchol_core::fault::{FailureCause, FaultPlan, RetryPolicy, RunOutcome};
    use hetchol_core::schedule::DurationCheck;
    use hetchol_linalg::matrix::TiledMatrix;
    use hetchol_linalg::{factorization_residual, random_spd};
    use hetchol_rt::LockedTiledMatrix;
    use hetchol_sim::simulate_resilient;
    use std::fmt::Write as _;

    /// Replay a recovered trace's kernel sequence (by start time — the
    /// order the engine actually committed work) on a real SPD matrix.
    fn replay_residual(n: usize, graph: &TaskGraph, trace: &hetchol_core::trace::Trace) -> f64 {
        let nb = 8;
        let a = random_spd(n * nb, 4242);
        let locked = LockedTiledMatrix::from_tiled(&TiledMatrix::from_dense(&a, nb));
        let mut events = trace.events.clone();
        events.sort_by_key(|e| (e.start, e.end));
        for e in &events {
            locked
                .apply_task(graph.task(e.task).coords)
                .expect("a recovered trace replays cleanly on an SPD matrix");
        }
        factorization_residual(&a, &locked.to_tiled())
    }

    struct Leg {
        name: String,
        outcome: String,
        residual: Option<f64>,
        lint_errors: usize,
        ok: bool,
        detail: String,
    }
    let mut legs: Vec<Leg> = Vec::new();

    // --- Simulated engine: seeded plans over the paper platform --------
    let platform = Platform::mirage().without_comm();
    let profile = TimingProfile::mirage();
    for n in 4usize..=8 {
        let graph = TaskGraph::cholesky(n);
        for kind in [SchedKind::Dmda, SchedKind::Dmdas] {
            let leg_seed = seed
                .wrapping_mul(31)
                .wrapping_add(n as u64)
                .wrapping_add(if kind == SchedKind::Dmdas { 1 << 32 } else { 0 });
            let plan = FaultPlan::seeded(leg_seed, graph.len(), platform.n_workers());
            let mut scheduler = kind.build(0);
            let r = simulate_resilient(
                &graph,
                &platform,
                &profile,
                scheduler.as_mut(),
                &SimOptions::default(),
                ObsSink::disabled(),
                &plan,
                &RetryPolicy::default(),
            )
            .expect("the seeded plan never kills all workers");
            let report = Linter::new(&graph, &platform, &profile)
                .duration_check(DurationCheck::Loose)
                .lint_trace(&r.trace);
            let residual = replay_residual(n, &graph, &r.trace);
            let ok = r.outcome.is_success() && report.n_errors() == 0 && residual < 1e-10;
            legs.push(Leg {
                name: format!("sim/seeded/{}/n={n}", kind.label()),
                outcome: r.outcome.label().to_string(),
                residual: Some(residual),
                lint_errors: report.n_errors(),
                ok,
                detail: if ok {
                    String::new()
                } else {
                    format!("outcome {:?}, {}", r.outcome, report.to_json())
                },
            });
        }
    }

    // --- Simulated engine: a targeted GPU death on Mirage --------------
    {
        let n = 6;
        let graph = TaskGraph::cholesky(n);
        let plan = FaultPlan::new().kill_worker(9, 6);
        let r = simulate_resilient(
            &graph,
            &platform,
            &profile,
            &mut Dmdas::new(),
            &SimOptions::default(),
            ObsSink::disabled(),
            &plan,
            &RetryPolicy::default(),
        )
        .expect("one death out of twelve workers is survivable");
        let report = Linter::new(&graph, &platform, &profile)
            .duration_check(DurationCheck::Loose)
            .lint_trace(&r.trace);
        let residual = replay_residual(n, &graph, &r.trace);
        let degraded_right = matches!(
            &r.outcome,
            RunOutcome::Degraded { lost_workers, .. } if lost_workers == &[9]
        );
        let ok = degraded_right && report.n_errors() == 0 && residual < 1e-10;
        legs.push(Leg {
            name: "sim/gpu-death/dmdas/n=6".to_string(),
            outcome: r.outcome.label().to_string(),
            residual: Some(residual),
            lint_errors: report.n_errors(),
            ok,
            detail: if ok {
                String::new()
            } else {
                format!("outcome {:?}, {}", r.outcome, report.to_json())
            },
        });
    }

    // --- Simulated engine: a straggler is slow, not wrong ---------------
    {
        let n = 5;
        let graph = TaskGraph::cholesky(n);
        let plan = FaultPlan::new().straggler(0, 4.0);
        let r = simulate_resilient(
            &graph,
            &platform,
            &profile,
            &mut Dmdas::new(),
            &SimOptions::default(),
            ObsSink::disabled(),
            &plan,
            &RetryPolicy::default(),
        )
        .expect("a straggler kills nobody");
        let report = Linter::new(&graph, &platform, &profile)
            .duration_check(DurationCheck::Loose)
            .lint_trace(&r.trace);
        let residual = replay_residual(n, &graph, &r.trace);
        let ok = r.outcome == RunOutcome::Completed && report.n_errors() == 0 && residual < 1e-10;
        legs.push(Leg {
            name: "sim/straggler/dmdas/n=5".to_string(),
            outcome: r.outcome.label().to_string(),
            residual: Some(residual),
            lint_errors: report.n_errors(),
            ok,
            detail: if ok {
                String::new()
            } else {
                format!("outcome {:?}, {}", r.outcome, report.to_json())
            },
        });
    }

    // --- Cross-engine: the identical plan through sim and rt ------------
    // Same platform shape (the rt is homogeneous by construction), same
    // plan, same retry policy: the outcome *classification* must agree.
    {
        let n = 4;
        let n_workers = 3;
        let graph = TaskGraph::cholesky(n);
        let rt_profile = TimingProfile::mirage_homogeneous();
        let rt_platform = Platform::homogeneous(n_workers).without_comm();
        let cases: [(&str, FaultPlan, RetryPolicy); 2] = [
            (
                "kill-worker",
                FaultPlan::new().kill_worker(1, 6),
                RetryPolicy::default(),
            ),
            (
                "retry-exhaustion",
                FaultPlan::new().transient(graph.entry_tasks()[0], 99),
                RetryPolicy {
                    max_attempts: 3,
                    ..RetryPolicy::default()
                },
            ),
        ];
        for (case, plan, policy) in cases {
            let sim = simulate_resilient(
                &graph,
                &rt_platform,
                &rt_profile,
                &mut Dmdas::new(),
                &SimOptions::default(),
                ObsSink::disabled(),
                &plan,
                &policy,
            )
            .expect("two of three workers survive");

            let nb = 8;
            let a = random_spd(n * nb, 77);
            let workload = hetchol_rt::CholeskyWorkload::new(&TiledMatrix::from_dense(&a, nb));
            let rt = hetchol_rt::execute_resilient(
                &workload,
                &graph,
                &mut Dmdas::new(),
                &rt_profile,
                n_workers,
                ObsSink::disabled(),
                &plan,
                &policy,
            )
            .expect("two of three workers survive");

            let classification_agrees = sim.outcome.label() == rt.outcome.label();
            let (expect_label, residual, numerics_ok) = match case {
                "kill-worker" => {
                    let res = factorization_residual(&a, &workload.into_matrix());
                    ("degraded", Some(res), res < 1e-10)
                }
                _ => {
                    let failed_right = matches!(
                        &rt.outcome,
                        RunOutcome::Failed {
                            cause: FailureCause::RetriesExhausted { .. }
                        }
                    );
                    ("failed", None, failed_right)
                }
            };
            let ok = classification_agrees && sim.outcome.label() == expect_label && numerics_ok;
            legs.push(Leg {
                name: format!("cross/{case}/n={n}"),
                outcome: format!("sim={} rt={}", sim.outcome.label(), rt.outcome.label()),
                residual,
                lint_errors: 0,
                ok,
                detail: if ok {
                    String::new()
                } else {
                    format!("sim {:?}, rt {:?}", sim.outcome, rt.outcome)
                },
            });
        }
    }

    // --- Render ----------------------------------------------------------
    let mut out = String::new();
    let failures = legs.iter().filter(|l| !l.ok).count();
    if json {
        for l in &legs {
            let _ = writeln!(
                out,
                "{{\"scenario\":\"{}\",\"outcome\":\"{}\",\"residual\":{},\
                 \"lint_errors\":{},\"ok\":{}}}",
                l.name,
                l.outcome,
                l.residual
                    .map_or("null".to_string(), |r| format!("{r:.3e}")),
                l.lint_errors,
                l.ok
            );
        }
    } else {
        let _ = writeln!(out, "# Chaos matrix (seed {seed})");
        let _ = writeln!(
            out,
            "{:<28} {:>22} {:>10} {:>6} {:>6}",
            "scenario", "outcome", "residual", "lint", "status"
        );
        for l in &legs {
            let _ = writeln!(
                out,
                "{:<28} {:>22} {:>10} {:>6} {:>6}",
                l.name,
                l.outcome,
                l.residual.map_or("-".to_string(), |r| format!("{r:.1e}")),
                l.lint_errors,
                if l.ok { "ok" } else { "FAIL" }
            );
            if !l.ok {
                let _ = writeln!(out, "    {}", l.detail);
            }
        }
        let _ = writeln!(out, "{} scenario(s), {failures} failure(s)", legs.len());
    }
    (out, failures)
}

/// The `repro certify` grid: both reference platforms × all three
/// factorizations × the paper sizes.
pub const CERTIFY_SIZES: [usize; 4] = [4, 8, 12, 16];

/// `repro certify`: certify the LP/ILP bounds of the paper grid in exact
/// rational arithmetic and run every certificate through the independent
/// checker. Returns the rendered report (JSON lines or aligned text) and
/// the number of failures (the binary's exit code): a failure is a bound
/// whose certificate could not be built or was rejected by the checker.
pub fn certify_report(json: bool) -> (String, usize) {
    use std::fmt::Write as _;

    let grids: [(&str, Platform, TimingProfile); 2] = [
        (
            "mirage",
            Platform::mirage().without_comm(),
            TimingProfile::mirage(),
        ),
        (
            "cpu-only",
            Platform::homogeneous(9),
            TimingProfile::mirage_homogeneous(),
        ),
    ];
    let mut out = String::new();
    if !json {
        let _ = writeln!(
            out,
            "# Exact bound certification (area + mixed, independent checker)"
        );
        let _ = writeln!(
            out,
            "{:>9} {:>9} {:>4} {:>9} {:>13} {:>13} {:>7} {:>9}",
            "platform", "algo", "n", "status", "area (s)", "mixed (s)", "leaves", "tree"
        );
    }
    let mut failures = 0;
    for (pname, platform, profile) in &grids {
        for algo in [Algorithm::Cholesky, Algorithm::Lu, Algorithm::Qr] {
            for n in CERTIFY_SIZES {
                let set = BoundSet::compute_algo(algo, n, platform, profile);
                let outcome = set
                    .certify(platform, profile)
                    .map_err(|e| e.to_string())
                    .and_then(|cert| {
                        cert.verify(platform, profile)
                            .map(|v| (cert, v))
                            .map_err(|e| e.to_string())
                    });
                let algo_name = algo.label().to_lowercase();
                match outcome {
                    Ok((cert, verified)) => {
                        let n_leaves = cert.area.leaves.len() + cert.mixed.leaves.len();
                        let complete = cert.area.tree_complete && cert.mixed.tree_complete;
                        if json {
                            let _ = writeln!(
                                out,
                                "{{\"platform\":\"{pname}\",\"algo\":\"{algo_name}\",\"n\":{n},\
                                 \"status\":\"verified\",\"area\":\"{}\",\"mixed\":\"{}\",\
                                 \"area_secs\":{},\"mixed_secs\":{},\"leaves\":{n_leaves},\
                                 \"tree_complete\":{complete}}}",
                                verified.area,
                                verified.mixed,
                                verified.area.to_f64(),
                                verified.mixed.to_f64(),
                            );
                        } else {
                            let _ = writeln!(
                                out,
                                "{pname:>9} {algo_name:>9} {n:>4} {:>9} {:>13.6} {:>13.6} \
                                 {n_leaves:>7} {:>9}",
                                "verified",
                                verified.area.to_f64(),
                                verified.mixed.to_f64(),
                                if complete { "complete" } else { "root-only" },
                            );
                        }
                    }
                    Err(why) => {
                        failures += 1;
                        if json {
                            let _ = writeln!(
                                out,
                                "{{\"platform\":\"{pname}\",\"algo\":\"{algo_name}\",\"n\":{n},\
                                 \"status\":\"failed\",\"reason\":\"{why}\"}}",
                            );
                        } else {
                            let _ = writeln!(
                                out,
                                "{pname:>9} {algo_name:>9} {n:>4} {:>9}  {why}",
                                "FAILED"
                            );
                        }
                    }
                }
            }
        }
    }
    (out, failures)
}

/// `repro --obs-out <dir>`: run one instrumented reference workload per
/// engine and write the observability artifacts — Chrome-trace JSON
/// (`chrome://tracing` / Perfetto), a per-worker utilization report, and
/// the machine-readable summary — into `dir`. Every Chrome trace is
/// schema-validated before being reported. Returns the written paths.
pub fn obs_dump(dir: &std::path::Path) -> std::io::Result<Vec<std::path::PathBuf>> {
    use hetchol_core::obs::{validate_chrome_trace, ObsReport};

    std::fs::create_dir_all(dir)?;
    let mut written = Vec::new();
    let mut dump = |stem: &str, obs: &ObsReport| -> std::io::Result<()> {
        let chrome = obs.to_chrome_trace();
        validate_chrome_trace(&chrome).map_err(std::io::Error::other)?;
        for (ext, body) in [
            ("trace.json", chrome),
            ("util.txt", obs.utilization_report()),
            ("summary.json", obs.summary_json()),
        ] {
            let path = dir.join(format!("{stem}.{ext}"));
            std::fs::write(&path, body)?;
            written.push(path);
        }
        Ok(())
    };

    // Simulated engine on the full Mirage platform (with communication,
    // so the traces carry transfer segments).
    let platform = Platform::mirage();
    let profile = TimingProfile::mirage();
    let graph = TaskGraph::cholesky(8);
    for kind in [SchedKind::Dmda, SchedKind::Dmdas] {
        let mut scheduler = kind.build(0);
        let r = simulate_with(
            &graph,
            &platform,
            &profile,
            scheduler.as_mut(),
            &SimOptions::default(),
            ObsSink::enabled(),
        );
        dump(
            &format!("sim_{}_n8", kind.label().replace(' ', "_")),
            &r.obs,
        )?;
    }

    // Threaded runtime: a no-op Cholesky DAG on 4 host threads.
    let graph = TaskGraph::cholesky(4);
    let mut scheduler = Dmdas::new();
    let workload = hetchol_rt::FnWorkload(|_| Ok::<(), std::convert::Infallible>(()));
    let r = hetchol_rt::execute_workload(
        &workload,
        &graph,
        &mut scheduler,
        &TimingProfile::mirage_homogeneous(),
        4,
        ObsSink::enabled(),
    )
    .expect("no-op tasks cannot fail");
    dump("rt_dmdas_n4", &r.obs)?;

    Ok(written)
}

/// Options for `repro mc` (see [`mc`]).
#[derive(Clone, Debug)]
pub struct McOptions {
    /// Cholesky tile count of the model-checked scenario.
    pub n_tiles: usize,
    /// Runtime worker-thread count.
    pub n_workers: usize,
    /// Also explore the fault-decision space: every single worker death
    /// and every single transient, each under every interleaving.
    pub faults: bool,
    /// Seeded-bug runner (`skip-dead-requeue` or `drop-release-notify`);
    /// `None` model-checks the stock runtime.
    pub mutate: Option<String>,
    /// Also run the sleep-set baseline on the fault-free tree and print
    /// the branch-count comparison (verdicts must agree).
    pub compare_pruning: bool,
    /// Write a found witness (replayable JSON) to this path.
    pub witness_out: Option<std::path::PathBuf>,
    /// Emit machine-readable JSON instead of text.
    pub json: bool,
}

impl Default for McOptions {
    fn default() -> McOptions {
        McOptions {
            n_tiles: 2,
            n_workers: 2,
            faults: false,
            mutate: None,
            compare_pruning: false,
            witness_out: None,
            json: false,
        }
    }
}

/// A boxed scenario runner for [`mc`]: one deterministic resilient run
/// under a given fault plan.
type McRunner = Box<
    dyn FnMut(
        &hetchol_core::fault::FaultPlan,
    ) -> Result<hetchol_rt::RtResult, hetchol_core::fault::ConfigError>,
>;

/// Build the runner `repro mc` model-checks: the stock resilient runtime,
/// or one of the seeded-bug variants when `mutation` names one.
fn mc_runner(n_tiles: usize, n_workers: usize, mutation: Option<&str>) -> Result<McRunner, String> {
    use hetchol_core::fault::RetryPolicy;
    use hetchol_rt::runtime::{execute_resilient_mutated, Mutations};
    let mutations = match mutation {
        None => {
            return Ok(Box::new(hetchol_analyze::resilient_runner(
                n_tiles, n_workers,
            )))
        }
        Some("skip-dead-requeue") => Mutations {
            skip_dead_requeue: true,
            ..Default::default()
        },
        Some("drop-release-notify") => Mutations {
            drop_release_notify: true,
            ..Default::default()
        },
        Some(other) => {
            return Err(format!(
                "unknown mutation `{other}` (try `skip-dead-requeue` or `drop-release-notify`)"
            ))
        }
    };
    let graph = TaskGraph::cholesky(n_tiles);
    let profile = TimingProfile::mirage_homogeneous();
    let policy = RetryPolicy::default();
    Ok(Box::new(move |plan| {
        let mut sched = hetchol_analyze::race::RoundRobin;
        let workload = hetchol_rt::FnWorkload(|_| Ok::<(), std::convert::Infallible>(()));
        execute_resilient_mutated(
            &workload, &graph, &mut sched, &profile, n_workers, plan, &policy, mutations,
        )
    }))
}

/// `repro mc`: exhaustively model-check the resilient runtime with the
/// DPOR explorer — every thread interleaving, and with `--faults` every
/// single-fault plan — checking the recovery invariant catalog at every
/// quiescent state (DESIGN.md §14).
///
/// A found violation is minimized into a replayable witness, immediately
/// replayed to confirm determinism, fed to the linter (rule 18,
/// `mc-witness`) when the replay yields a trace, and optionally written
/// to `--witness-out`. Returns the rendered report and the exit code
/// (nonzero on violations, runner failures, or a pruning mismatch).
pub fn mc(opts: &McOptions) -> (String, usize) {
    use hetchol_analyze::race::{explore_runtime, ExploreConfig};
    use hetchol_analyze::{check_recovery, explore_runtime_dpor, RecoveryScenario};
    use hetchol_core::fault::FaultPlan;
    use std::fmt::Write as _;

    let mut out = String::new();
    let mut errors = 0usize;
    let graph = TaskGraph::cholesky(opts.n_tiles);
    let cfg = ExploreConfig::default();

    if !opts.json {
        let _ = writeln!(
            out,
            "# Model checking: cholesky({}) ({} tasks) on {} workers{}{}",
            opts.n_tiles,
            graph.len(),
            opts.n_workers,
            if opts.faults {
                ", fault space armed"
            } else {
                ""
            },
            match &opts.mutate {
                Some(m) => format!(", seeded mutation `{m}`"),
                None => String::new(),
            },
        );
    }

    // Pruning comparison runs on the stock fault-free tree — the claim is
    // about the explorer, not the scenario under test.
    let mut compare = None;
    if opts.compare_pruning {
        let sleep = explore_runtime(&graph, opts.n_workers, cfg);
        let dpor = explore_runtime_dpor(&graph, opts.n_workers, cfg);
        let agree = sleep.is_clean() == dpor.is_clean() && sleep.complete == dpor.complete;
        if !agree {
            errors += 1;
        }
        if !opts.json {
            let _ = writeln!(
                out,
                "pruning: sleep-set baseline {} branches, DPOR {} branches ({}; verdicts {})",
                sleep.schedules_run,
                dpor.schedules_run,
                if dpor.schedules_run < sleep.schedules_run {
                    "DPOR strictly fewer"
                } else {
                    "no reduction"
                },
                if agree { "agree" } else { "DISAGREE" },
            );
        }
        compare = Some((sleep.schedules_run, dpor.schedules_run, agree));
    }

    let scenario = RecoveryScenario {
        n_tiles: opts.n_tiles,
        n_workers: opts.n_workers,
        mutation: opts.mutate.clone(),
    };
    let space = if opts.faults {
        FaultPlan::choice_space(graph.len(), opts.n_workers)
    } else {
        vec![FaultPlan::none()]
    };
    let runner = match mc_runner(opts.n_tiles, opts.n_workers, opts.mutate.as_deref()) {
        Ok(r) => r,
        Err(e) => return (format!("error: {e}\n"), 2),
    };
    let report = check_recovery(&scenario, &space, cfg, runner);
    if !report.is_clean() {
        errors += 1;
    }

    // A found witness must replay deterministically; when the replay
    // completes with a trace, rule 18 re-checks it through the linter.
    let mut replay_line = String::new();
    if let Some(w) = &report.witness {
        let runner = mc_runner(opts.n_tiles, opts.n_workers, w.mutation.as_deref())
            .expect("witness mutation label was validated above");
        let replay = hetchol_analyze::replay_witness(w, cfg, runner);
        let _ = write!(
            replay_line,
            "replay: {}",
            if replay.reproduced {
                "reproduced deterministically"
            } else {
                "DID NOT reproduce"
            }
        );
        if !replay.reproduced {
            errors += 1;
        }
        if let Some(r) = &replay.result {
            let platform = Platform::homogeneous(opts.n_workers).without_comm();
            let profile = TimingProfile::mirage_homogeneous();
            let lint = hetchol_analyze::Linter::new(&graph, &platform, &profile)
                .duration_check(hetchol_core::schedule::DurationCheck::Loose)
                .with_mc_witness(w.invariant, r.outcome.clone())
                .lint_trace(&r.trace);
            let confirmed = lint
                .by_rule(hetchol_analyze::Rule::McWitness)
                .iter()
                .any(|d| d.message.starts_with("CONFIRMED"));
            let _ = write!(
                replay_line,
                "; linter rule 18: {}",
                if confirmed {
                    "CONFIRMED"
                } else {
                    "not confirmed"
                }
            );
        }
        if let Some(path) = &opts.witness_out {
            match std::fs::write(path, w.to_json()) {
                Ok(()) => {
                    let _ = write!(replay_line, "; witness written to {}", path.display());
                }
                Err(e) => {
                    errors += 1;
                    let _ = write!(replay_line, "; FAILED to write {}: {e}", path.display());
                }
            }
        }
    }

    if opts.json {
        let _ = write!(
            out,
            "{{\"tiles\":{},\"workers\":{},\"plans\":{},\"schedules_run\":{},\"exhausted\":{}",
            opts.n_tiles, opts.n_workers, report.plans, report.schedules_run, report.exhausted
        );
        if let Some((sleep, dpor, agree)) = compare {
            let _ = write!(
                out,
                ",\"compare_pruning\":{{\"sleep_set\":{sleep},\"dpor\":{dpor},\"verdicts_agree\":{agree}}}"
            );
        }
        match &report.witness {
            Some(w) => {
                let _ = write!(out, ",\"witness\":{}", w.to_json());
            }
            None => {
                let _ = write!(out, ",\"witness\":null");
            }
        }
        let _ = writeln!(out, ",\"failures\":{}}}", report.failures.len());
    } else {
        let _ = writeln!(
            out,
            "explored {} fault plan(s), {} branch(es) total, exhausted: {}",
            report.plans, report.schedules_run, report.exhausted
        );
        for f in &report.failures {
            let _ = writeln!(out, "FAILURE: {f}");
        }
        match &report.witness {
            Some(w) => {
                let plan = if w.plan.is_empty() {
                    "no faults".to_string()
                } else {
                    w.plan
                        .faults()
                        .iter()
                        .map(|f| f.to_string())
                        .collect::<Vec<_>>()
                        .join(" + ")
                };
                let _ = writeln!(
                    out,
                    "VIOLATION: {} under [{plan}]\n  {}\n  minimized choice prefix: {:?}",
                    w.invariant, w.detail, w.choices
                );
                let _ = writeln!(out, "{replay_line}");
            }
            None => {
                let _ = writeln!(out, "no invariant violations");
            }
        }
    }
    (out, errors)
}

/// `repro mc --replay <witness.json>`: deterministically re-run a stored
/// witness and verify it still reproduces its recorded invariant
/// violation. Returns the rendered report and the exit code (nonzero when
/// the witness fails to reproduce). Dispatches on the witness's `model`
/// tag: the resilient runtime (the default) or the serve pool
/// (`"serve-pool"`, produced by `repro race --mutate leak-killed-batch`).
pub fn mc_replay(text: &str, json: bool) -> (String, usize) {
    use hetchol_analyze::race::ExploreConfig;
    use hetchol_analyze::Witness;
    use std::fmt::Write as _;

    let witness = match Witness::from_json(text) {
        Ok(w) => w,
        Err(e) => return (format!("error: bad witness: {e}\n"), 2),
    };
    if witness.model == "serve-pool" {
        return serve_pool_replay(&witness, json);
    }
    let runner = match mc_runner(
        witness.n_tiles,
        witness.n_workers,
        witness.mutation.as_deref(),
    ) {
        Ok(r) => r,
        Err(e) => return (format!("error: {e}\n"), 2),
    };
    let replay = hetchol_analyze::replay_witness(&witness, ExploreConfig::default(), runner);
    let mut out = String::new();
    if json {
        let _ = writeln!(
            out,
            "{{\"invariant\":\"{}\",\"reproduced\":{},\"observed\":{}}}",
            witness.invariant,
            replay.reproduced,
            match &replay.observed {
                Some(v) => format!("\"{}\"", v.invariant),
                None => "null".to_string(),
            }
        );
    } else {
        let _ = writeln!(
            out,
            "witness: {} on cholesky({}) × {} workers{}",
            witness.invariant,
            witness.n_tiles,
            witness.n_workers,
            match &witness.mutation {
                Some(m) => format!(" (mutation `{m}`)"),
                None => String::new(),
            }
        );
        match (&replay.observed, &replay.error) {
            (Some(v), _) => {
                let _ = writeln!(out, "replay observed: {}\n  {}", v.invariant, v.detail);
            }
            (None, Some(e)) => {
                let _ = writeln!(out, "replay errored: {e}");
            }
            (None, None) => {
                let _ = writeln!(out, "replay observed: clean run");
            }
        }
        let _ = writeln!(
            out,
            "{}",
            if replay.reproduced {
                "REPRODUCED: the recorded violation is real in this build"
            } else {
                "NOT reproduced (fixed bug, or a stale/divergent witness)"
            }
        );
    }
    (out, usize::from(!replay.reproduced))
}

/// Replay a `"serve-pool"` witness through the serve-layer model
/// ([`hetchol_serve::model::replay_pool`]).
fn serve_pool_replay(witness: &hetchol_analyze::Witness, json: bool) -> (String, usize) {
    use std::fmt::Write as _;

    let replay = match hetchol_serve::model::replay_pool(witness, serve_model_config()) {
        Ok(r) => r,
        Err(e) => return (format!("error: {e}\n"), 2),
    };
    let reproduced = replay
        .observed
        .as_ref()
        .is_some_and(|v| v.invariant == witness.invariant);
    let mut out = String::new();
    if json {
        let _ = writeln!(
            out,
            "{{\"model\":\"serve-pool\",\"invariant\":\"{}\",\"reproduced\":{},\"observed\":{}}}",
            witness.invariant,
            reproduced,
            match &replay.observed {
                Some(v) => format!("\"{}\"", v.invariant),
                None => "null".to_string(),
            }
        );
    } else {
        let _ = writeln!(
            out,
            "witness: {} on the serve pool ({} controlled threads){}",
            witness.invariant,
            witness.n_workers,
            match &witness.mutation {
                Some(m) => format!(" (mutation `{m}`)"),
                None => String::new(),
            }
        );
        match (&replay.observed, &replay.error) {
            (Some(v), _) => {
                let _ = writeln!(out, "replay observed: {}\n  {}", v.invariant, v.detail);
            }
            (None, Some(e)) => {
                let _ = writeln!(out, "replay errored: {e}");
            }
            (None, None) => {
                let _ = writeln!(out, "replay observed: clean run");
            }
        }
        let _ = writeln!(
            out,
            "{}",
            if reproduced {
                "REPRODUCED: the recorded violation is real in this build"
            } else {
                "NOT reproduced (fixed bug, or a stale/divergent witness)"
            }
        );
    }
    (out, usize::from(!reproduced))
}

/// Options for `repro race` (see [`race`]).
#[derive(Clone, Debug, Default)]
pub struct RaceOptions {
    /// Skip the threaded-runtime recording leg; analyze the serve layer
    /// only.
    pub serve_only: bool,
    /// Seeded bug to arm (`drop-store-lock`, `invert-commit-order` or
    /// `leak-killed-batch`); `None` analyzes the stock stack.
    pub mutate: Option<String>,
    /// Write the found model-checker witness (`leak-killed-batch`) to
    /// this path.
    pub witness_out: Option<std::path::PathBuf>,
    /// Emit machine-readable JSON instead of text.
    pub json: bool,
}

/// The exploration budget the serve-pool model runs under: the stock tree
/// is ~59k schedules, well inside this cap, so `exhausted: false` is a
/// real finding rather than a budget artifact.
fn serve_model_config() -> hetchol_analyze::race::ExploreConfig {
    hetchol_analyze::race::ExploreConfig {
        max_schedules: 200_000,
        max_steps: 20_000,
        sleep_sets: true,
    }
}

/// A tiny finished job for driving the serve commit path directly: runs
/// a `cholesky(2)` spec once (deterministic, milliseconds) and wraps the
/// result the way a pool worker would.
fn race_job(id: u64, seed: u64) -> (u64, std::sync::Arc<hetchol_serve::store::StoredJob>) {
    let mut spec = hetchol::job::JobSpec::new("cholesky", 2).expect("cholesky is a known workload");
    spec.seed = seed;
    let hash = spec.content_hash();
    let run = spec
        .run_with_bounds(None)
        .expect("a stock cholesky(2) simulation cannot fail");
    let job = std::sync::Arc::new(hetchol_serve::store::StoredJob::fresh(
        id,
        spec,
        run.outcome,
        run.sim,
    ));
    (hash, job)
}

/// Exercise the real serve submission path at real speed: a fresh state
/// (built inside the recording, so its lock labels are captured), a pool
/// over it, four concurrent clients submitting overlapping specs (so the
/// result cache sees both hits and misses), then one `/stats` snapshot.
/// Returns that snapshot and the total number of counted submissions.
fn serve_exercise() -> (hetchol_serve::pool::StatsSnapshot, u64) {
    const CLIENTS: u64 = 4;
    const JOBS_PER_CLIENT: u64 = 3;
    let state = std::sync::Arc::new(hetchol_serve::pool::ServerState::new());
    state.label_locks();
    let pool = hetchol_serve::pool::Pool::start(2, 8, 4, state.clone());
    std::thread::scope(|s| {
        for client in 0..CLIENTS {
            let state = &*state;
            let pool = &pool;
            s.spawn(move || {
                for j in 0..JOBS_PER_CLIENT {
                    let mut spec = hetchol::job::JobSpec::new("cholesky", 2)
                        .expect("cholesky is a known workload");
                    // Clients 0/2 and 1/3 submit the same specs, so the
                    // second of each pair hits the result cache.
                    spec.seed = (client % 2) * 100 + j;
                    let _ = hetchol_serve::submit_job(state, pool, spec, 30_000);
                }
            });
        }
    });
    let snap = state.consistent_stats();
    pool.shutdown();
    (snap, CLIENTS * JOBS_PER_CLIENT)
}

/// `repro race`: the concurrency-analysis battery (DESIGN.md §16).
///
/// Stock (no `--mutate`): record the threaded runtime and the serve
/// submission path under the passive happens-before recorder (data races
/// over declared touchpoints, lock-order cycles), then exhaust the
/// serve-pool model under DPOR. Exit 1 on any finding.
///
/// With `--mutate <bug>`, arm exactly one seeded concurrency bug and run
/// the analyzer that must catch it — exit 1 *when detected* (so CI
/// asserts stock ⇒ 0 and each mutation ⇒ 1):
///
/// * `drop-store-lock` — store commits touch outside the lock; the
///   happens-before recorder reports the race under every real timing,
///   surfaced through linter rule 19 (`race-witness`);
/// * `invert-commit-order` — the commit path pins the result cache
///   before the store; lockdep closes the cycle against the stats path,
///   deterministically, with no concurrency needed at all;
/// * `leak-killed-batch` — a killed worker leaks its drained batch; the
///   model checker produces a minimized deadlock witness, which is
///   immediately replayed (and optionally written via `--witness-out`).
pub fn race(opts: &RaceOptions) -> (String, usize) {
    use std::fmt::Write as _;

    match opts.mutate.as_deref() {
        None => race_stock(opts),
        Some("drop-store-lock") => race_hb_mutation(
            opts,
            "drop-store-lock",
            hetchol_serve::pool::PoolMutations {
                unsynced_store_touch: true,
                ..Default::default()
            },
        ),
        Some("invert-commit-order") => race_hb_mutation(
            opts,
            "invert-commit-order",
            hetchol_serve::pool::PoolMutations {
                invert_commit_order: true,
                ..Default::default()
            },
        ),
        Some("leak-killed-batch") => race_model_mutation(opts),
        Some(other) => {
            let mut out = String::new();
            let _ = writeln!(
                out,
                "error: unknown mutation `{other}` (try `drop-store-lock`, \
                 `invert-commit-order` or `leak-killed-batch`)"
            );
            (out, 2)
        }
    }
}

/// The stock `repro race` pass: both passive recordings plus the model
/// exhaustion; any finding is an error.
fn race_stock(opts: &RaceOptions) -> (String, usize) {
    use hetchol_analyze::hb;
    use std::fmt::Write as _;

    let mut out = String::new();
    let mut errors = 0usize;
    if !opts.json {
        let _ = writeln!(
            out,
            "# Race analysis: passive happens-before + lockdep, then the serve-pool model (DPOR)"
        );
    }

    // Leg 1: the threaded runtime, recorded passively at real speed.
    let mut rt_json = "null".to_string();
    if !opts.serve_only {
        let graph = TaskGraph::cholesky(4);
        let ((), rt) = hb::record(|| {
            let mut scheduler = Dmdas::new();
            let workload = hetchol_rt::FnWorkload(|_| Ok::<(), std::convert::Infallible>(()));
            let r = hetchol_rt::execute_workload(
                &workload,
                &graph,
                &mut scheduler,
                &TimingProfile::mirage_homogeneous(),
                4,
                ObsSink::enabled(),
            )
            .expect("no-op tasks cannot fail");
            drop(r);
        });
        if !rt.is_clean() {
            errors += 1;
        }
        rt_json = format!(
            "{{\"threads\":{},\"events\":{},\"races\":{},\"cycles\":{}}}",
            rt.threads,
            rt.events,
            rt.races.len(),
            rt.cycles.len()
        );
        if !opts.json {
            let _ = writeln!(
                out,
                "rt: {} threads, {} sync events, {} race(s), {} lock-order cycle(s)",
                rt.threads,
                rt.events,
                rt.races.len(),
                rt.cycles.len()
            );
            for d in hetchol_analyze::race_report(&rt).diagnostics {
                let _ = writeln!(out, "  {d}");
            }
        }
    }

    // Leg 2: the serve submission path, recorded passively at real speed.
    let ((snap, gets), serve) = hb::record(serve_exercise);
    let coherent =
        snap.results.hits + snap.results.misses == snap.results.gets && snap.results.gets == gets;
    if !serve.is_clean() || !coherent {
        errors += 1;
    }
    if !opts.json {
        let _ = writeln!(
            out,
            "serve: {} threads, {} sync events, {} race(s), {} lock-order cycle(s); \
             stats coherent: {} (hits {} + misses {} == gets {})",
            serve.threads,
            serve.events,
            serve.races.len(),
            serve.cycles.len(),
            coherent,
            snap.results.hits,
            snap.results.misses,
            snap.results.gets
        );
        for d in hetchol_analyze::race_report(&serve).diagnostics {
            let _ = writeln!(out, "  {d}");
        }
    }

    // Leg 3: exhaust the serve-pool model under DPOR.
    let report = match hetchol_serve::model::check_pool(serve_model_config(), None) {
        Ok(r) => r,
        Err(e) => return (format!("error: {e}\n"), 2),
    };
    if !report.is_clean() || !report.exhausted {
        errors += 1;
    }
    if opts.json {
        let _ = writeln!(
            out,
            "{{\"mutation\":null,\"rt\":{rt_json},\"serve\":{{\"threads\":{},\"events\":{},\
             \"races\":{},\"cycles\":{},\"stats_coherent\":{}}},\
             \"model\":{{\"schedules_run\":{},\"exhausted\":{},\"clean\":{}}},\"detected\":{}}}",
            serve.threads,
            serve.events,
            serve.races.len(),
            serve.cycles.len(),
            coherent,
            report.schedules_run,
            report.exhausted,
            report.is_clean(),
            errors > 0
        );
    } else {
        let _ = writeln!(
            out,
            "model: {} schedule(s), exhausted: {}, clean: {}",
            report.schedules_run,
            report.exhausted,
            report.is_clean()
        );
        if let Some(v) = &report.violation {
            let _ = writeln!(out, "VIOLATION: {} — {}", v.invariant, v.detail);
        }
        for f in &report.failures {
            let _ = writeln!(out, "FAILURE: {f}");
        }
        let _ = writeln!(
            out,
            "{}",
            if errors == 0 {
                "no races, no lock-order cycles, model clean"
            } else {
                "FINDINGS: the stock stack is not clean"
            }
        );
    }
    (out, usize::from(errors > 0))
}

/// One happens-before-detected mutation (`drop-store-lock` or
/// `invert-commit-order`): arm it, drive the commit path the minimal
/// deterministic way, and report through linter rule 19.
fn race_hb_mutation(
    opts: &RaceOptions,
    name: &str,
    muts: hetchol_serve::pool::PoolMutations,
) -> (String, usize) {
    use hetchol_analyze::hb;
    use std::fmt::Write as _;

    let (h1, j1) = race_job(1, 0);
    let (h2, j2) = race_job(2, 1);
    // The state is built inside the recording so its lock labels land in
    // the event stream and the report names locks, not raw ids.
    let ((), report) = hb::record(|| {
        let state = hetchol_serve::pool::ServerState::with_mutations(muts);
        state.label_locks();
        if muts.invert_commit_order {
            // The inversion needs no concurrency: one commit (results →
            // store) plus one stats snapshot (store → results) closes the
            // cycle.
            state.commit_job(h1, j1.clone());
            let _ = state.consistent_stats();
        } else {
            // Two threads each committing exactly once: with the touch
            // outside the store lock, the only inter-thread edges both
            // predate the touches, so the vector clocks leave the pair
            // unordered under every real timing — detection is
            // deterministic.
            std::thread::scope(|s| {
                s.spawn(|| state.commit_job(h1, j1.clone()));
                s.spawn(|| state.commit_job(h2, j2.clone()));
            });
        }
    });

    let lint = hetchol_analyze::race_report(&report);
    let detected = !report.is_clean();
    let mut out = String::new();
    if opts.json {
        let _ = writeln!(
            out,
            "{{\"mutation\":\"{name}\",\"detected\":{detected},\"races\":{},\"cycles\":{},\
             \"lint\":{}}}",
            report.races.len(),
            report.cycles.len(),
            lint.to_json()
        );
    } else {
        let _ = writeln!(out, "# Race analysis: seeded mutation `{name}`");
        let _ = writeln!(
            out,
            "recorded {} threads, {} sync events: {} race(s), {} lock-order cycle(s)",
            report.threads,
            report.events,
            report.races.len(),
            report.cycles.len()
        );
        for d in &lint.diagnostics {
            let _ = writeln!(out, "  {d}");
        }
        let _ = writeln!(
            out,
            "{}",
            if detected {
                "DETECTED: the seeded bug was caught (linter rule 19, race-witness)"
            } else {
                "NOT DETECTED: the seeded bug escaped the analyzer"
            }
        );
    }
    (out, usize::from(detected))
}

/// The model-checked mutation (`leak-killed-batch`): the DPOR engine must
/// produce a deadlock witness, which is replayed on the spot and
/// optionally written out for `repro mc --replay`.
fn race_model_mutation(opts: &RaceOptions) -> (String, usize) {
    use std::fmt::Write as _;

    let report =
        match hetchol_serve::model::check_pool(serve_model_config(), Some("leak-killed-batch")) {
            Ok(r) => r,
            Err(e) => return (format!("error: {e}\n"), 2),
        };
    let witness = hetchol_serve::model::pool_witness(&report, Some("leak-killed-batch"));
    let detected = witness.is_some();
    let mut out = String::new();
    let mut replay_line = String::new();
    let mut reproduced = false;
    if let Some(w) = &witness {
        match hetchol_serve::model::replay_pool(w, serve_model_config()) {
            Ok(replay) => {
                reproduced = replay
                    .observed
                    .as_ref()
                    .is_some_and(|v| v.invariant == w.invariant);
                let _ = write!(
                    replay_line,
                    "replay: {}",
                    if reproduced {
                        "reproduced deterministically"
                    } else {
                        "DID NOT reproduce"
                    }
                );
            }
            Err(e) => {
                let _ = write!(replay_line, "replay errored: {e}");
            }
        }
        if let Some(path) = &opts.witness_out {
            match std::fs::write(path, w.to_json()) {
                Ok(()) => {
                    let _ = write!(replay_line, "; witness written to {}", path.display());
                }
                Err(e) => {
                    let _ = write!(replay_line, "; FAILED to write {}: {e}", path.display());
                }
            }
        }
    }
    if opts.json {
        let _ = writeln!(
            out,
            "{{\"mutation\":\"leak-killed-batch\",\"detected\":{detected},\
             \"schedules_run\":{},\"replay_reproduced\":{reproduced},\"witness\":{}}}",
            report.schedules_run,
            match &witness {
                Some(w) => w.to_json(),
                None => "null".to_string(),
            }
        );
    } else {
        let _ = writeln!(out, "# Race analysis: seeded mutation `leak-killed-batch`");
        let _ = writeln!(
            out,
            "model: {} schedule(s) before the verdict",
            report.schedules_run
        );
        match &witness {
            Some(w) => {
                let _ = writeln!(
                    out,
                    "VIOLATION: {}\n  {}\n  minimized choice prefix: {:?}",
                    w.invariant, w.detail, w.choices
                );
                let _ = writeln!(out, "{replay_line}");
                let _ = writeln!(
                    out,
                    "DETECTED: the seeded bug was caught (deadlock witness)"
                );
            }
            None => {
                let _ = writeln!(
                    out,
                    "NOT DETECTED: the seeded bug escaped the model checker"
                );
            }
        }
    }
    (out, usize::from(detected))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sched_kind_labels_and_builders() {
        for kind in [
            SchedKind::Random,
            SchedKind::Dmda,
            SchedKind::Dmdas,
            SchedKind::GemmSyrkGpu,
            SchedKind::TriangleTrsm(6),
        ] {
            let s = kind.build(0);
            assert!(!s.name().is_empty());
            assert!(!kind.label().is_empty());
        }
        assert!(SchedKind::Random.stochastic());
        assert!(!SchedKind::Dmdas.stochastic());
    }

    #[test]
    fn small_figure7_shape() {
        // Miniature of Figure 7 at two sizes: dmda/dmdas beat random, and
        // the mixed bound dominates everything.
        let platform = Platform::mirage().without_comm();
        let profile = TimingProfile::mirage();
        let sizes = [4usize, 8];
        for &n in &sizes {
            let rand_g = {
                let samples =
                    sim_gflops_samples(n, &platform, &profile, SchedKind::Random, false, 5);
                samples.iter().sum::<f64>() / samples.len() as f64
            };
            let dmda_g = sim_gflops(
                n,
                &platform,
                &profile,
                SchedKind::Dmda,
                &SimOptions::default(),
            );
            let set = BoundSet::compute(n, &platform, &profile);
            assert!(dmda_g > rand_g, "n={n}: dmda {dmda_g} vs random {rand_g}");
            assert!(
                dmda_g <= set.mixed_gflops() * 1.0001,
                "n={n}: dmda {dmda_g} exceeds bound {}",
                set.mixed_gflops()
            );
        }
    }

    #[test]
    fn triangle_sweep_beats_or_matches_dmdas_on_medium() {
        let platform = Platform::mirage().without_comm();
        let profile = TimingProfile::mirage();
        let n = 10;
        let dmdas = sim_gflops(
            n,
            &platform,
            &profile,
            SchedKind::Dmdas,
            &SimOptions::default(),
        );
        let (best, k) = best_triangle_k(n, &platform, &profile, false);
        assert!(
            best >= dmdas * 0.98,
            "triangle best {best} (k={k}) vs dmdas {dmdas}"
        );
    }

    #[test]
    fn table_and_dot_outputs() {
        assert!(table1().contains("GEMM"));
        assert!(kfactors().contains("17.30"));
        assert!(figure1().contains("POTRF_0"));
        let f9 = figure9(6, 2);
        assert!(f9.contains('C') && f9.contains('g'));
    }

    #[test]
    fn figure12_reports_idle() {
        let out = figure12();
        assert!(out.contains("dmda"));
        assert!(out.contains("dmdas"));
        assert!(out.contains("GPU idle fraction"));
    }
}
