//! Ablation: performance as a function of the triangle-TRSM offset `k`
//! (the design knob of paper Figures 9–11; best around `k = 6–8`).

use criterion::{criterion_group, criterion_main, Criterion};
use hetchol_bench::{sim_gflops, SchedKind};
use hetchol_core::platform::Platform;
use hetchol_core::profiles::TimingProfile;
use hetchol_sim::SimOptions;

fn ablation(c: &mut Criterion) {
    let platform = Platform::mirage().without_comm();
    let profile = TimingProfile::mirage();

    println!("# Ablation: triangle-TRSM offset k at n = 16 (simulated GFLOP/s)");
    println!("{:>6} {:>10}", "k", "GFLOP/s");
    let dmdas = sim_gflops(
        16,
        &platform,
        &profile,
        SchedKind::Dmdas,
        &SimOptions::default(),
    );
    for k in 1..16u32 {
        let g = sim_gflops(
            16,
            &platform,
            &profile,
            SchedKind::TriangleTrsm(k),
            &SimOptions::default(),
        );
        println!("{k:>6} {g:>10.2}");
    }
    println!("{:>6} {dmdas:>10.2}", "dmdas");

    let mut group = c.benchmark_group("ablation_k");
    group.sample_size(10);
    group.bench_function("triangle_k6_n16", |b| {
        b.iter(|| {
            sim_gflops(
                16,
                &platform,
                &profile,
                SchedKind::TriangleTrsm(6),
                &SimOptions::default(),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, ablation);
criterion_main!(benches);
