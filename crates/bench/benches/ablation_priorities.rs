//! Ablation: what the HEFT priorities of `dmdas` buy (or cost) over plain
//! FIFO `dmda` — quantifying the Figure 12 idle-time defect across sizes.

use criterion::{criterion_group, criterion_main, Criterion};
use hetchol_bench::{sim_result, SchedKind};
use hetchol_core::platform::Platform;
use hetchol_core::profiles::TimingProfile;
use hetchol_sim::SimOptions;

fn ablation(c: &mut Criterion) {
    let platform = Platform::mirage().without_comm();
    let profile = TimingProfile::mirage();

    println!("# Ablation: dmda (FIFO) vs dmdas (priority-sorted), GPU idle %");
    println!(
        "{:>6} {:>12} {:>12} {:>10} {:>10}",
        "tiles", "dmda GF/s", "dmdas GF/s", "idle dmda", "idle dmdas"
    );
    for &n in &[4usize, 8, 12, 16, 24, 32] {
        let a = sim_result(
            n,
            &platform,
            &profile,
            SchedKind::Dmda,
            &SimOptions::default(),
        );
        let b = sim_result(
            n,
            &platform,
            &profile,
            SchedKind::Dmdas,
            &SimOptions::default(),
        );
        println!(
            "{:>6} {:>12.2} {:>12.2} {:>9.1}% {:>9.1}%",
            n,
            a.gflops(n, profile.nb()),
            b.gflops(n, profile.nb()),
            a.trace.idle_fraction(9..12) * 100.0,
            b.trace.idle_fraction(9..12) * 100.0,
        );
    }

    let mut group = c.benchmark_group("ablation_priorities");
    group.sample_size(10);
    group.bench_function("dmdas_n16", |b| {
        b.iter(|| {
            sim_result(
                16,
                &platform,
                &profile,
                SchedKind::Dmdas,
                &SimOptions::default(),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, ablation);
criterion_main!(benches);
