//! Criterion benchmark of the observability layer's overhead: the same
//! simulated run with the no-op (disabled) sink vs the recording
//! (enabled) sink. The disabled sink is one `Option` branch per hook, so
//! its column is the engine's baseline cost; the enabled column prices
//! span/counter recording (but not export, which is off the hot path).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hetchol_core::dag::TaskGraph;
use hetchol_core::kernel::Kernel;
use hetchol_core::obs::ObsSink;
use hetchol_core::platform::Platform;
use hetchol_core::profiles::TimingProfile;
use hetchol_sched::Dmdas;
use hetchol_sim::{simulate_with, SimOptions};

fn bench_obs(c: &mut Criterion) {
    let mut group = c.benchmark_group("observability");
    group.sample_size(10);
    let platform = Platform::mirage();
    let profile = TimingProfile::mirage();
    for &n in &[8usize, 16, 32] {
        let graph = TaskGraph::cholesky(n);
        group.throughput(Throughput::Elements(Kernel::total_cholesky_tasks(n) as u64));
        group.bench_with_input(BenchmarkId::new("sim_obs_disabled", n), &n, |b, _| {
            b.iter(|| {
                simulate_with(
                    &graph,
                    &platform,
                    &profile,
                    &mut Dmdas::new(),
                    &SimOptions::default(),
                    ObsSink::disabled(),
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("sim_obs_enabled", n), &n, |b, _| {
            b.iter(|| {
                simulate_with(
                    &graph,
                    &platform,
                    &profile,
                    &mut Dmdas::new(),
                    &SimOptions::default(),
                    ObsSink::enabled(),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_obs);
criterion_main!(benches);
