//! Criterion benchmark of the discrete-event simulator itself: simulated
//! tasks per second for `dmda` on the Mirage platform — the engineering
//! budget behind "several simulations can be run in parallel" (paper
//! Section IV-C).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hetchol_bench::{sim_result, SchedKind};
use hetchol_core::kernel::Kernel;
use hetchol_core::platform::Platform;
use hetchol_core::profiles::TimingProfile;
use hetchol_sim::SimOptions;

fn bench_sim(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator");
    group.sample_size(10);
    for &n in &[8usize, 16, 32] {
        let platform = Platform::mirage();
        let profile = TimingProfile::mirage();
        group.throughput(Throughput::Elements(Kernel::total_cholesky_tasks(n) as u64));
        group.bench_with_input(BenchmarkId::new("dmda_with_comm", n), &n, |b, &n| {
            b.iter(|| {
                sim_result(
                    n,
                    &platform,
                    &profile,
                    SchedKind::Dmda,
                    &SimOptions::default(),
                )
            })
        });
        let no_comm = platform.without_comm();
        group.bench_with_input(BenchmarkId::new("dmdas_comm_free", n), &n, |b, &n| {
            b.iter(|| {
                sim_result(
                    n,
                    &no_comm,
                    &profile,
                    SchedKind::Dmdas,
                    &SimOptions::default(),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sim);
criterion_main!(benches);
