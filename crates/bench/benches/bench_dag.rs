//! Criterion benchmark of the CSR-backed task graph: construction cost of
//! `TaskGraph::cholesky` (hazard walk + edge sort + CSR build) and
//! successor-iteration throughput (one full sweep over every adjacency row,
//! the hot loop of `DepTracker::release`), at n ∈ {16, 32, 64, 96} tiles.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hetchol_core::dag::TaskGraph;

fn bench_dag(c: &mut Criterion) {
    let sizes = [16usize, 32, 64, 96];

    let mut build = c.benchmark_group("dag_build");
    build.sample_size(10);
    for &n in &sizes {
        let n_tasks = TaskGraph::cholesky(n).len() as u64;
        build.throughput(Throughput::Elements(n_tasks));
        build.bench_with_input(BenchmarkId::new("cholesky", n), &n, |b, &n| {
            b.iter(|| TaskGraph::cholesky(black_box(n)))
        });
    }
    build.finish();

    let mut sweep = c.benchmark_group("dag_successors");
    sweep.sample_size(10);
    for &n in &sizes {
        let graph = TaskGraph::cholesky(n);
        sweep.throughput(Throughput::Elements(graph.n_edges() as u64));
        sweep.bench_with_input(BenchmarkId::new("sweep", n), &graph, |b, graph| {
            b.iter(|| {
                let mut acc = 0usize;
                for t in 0..graph.len() {
                    for &s in graph.successors(hetchol_core::task::TaskId(t as u32)) {
                        acc = acc.wrapping_add(s.index());
                    }
                }
                black_box(acc)
            })
        });
    }
    sweep.finish();
}

criterion_group!(benches, bench_dag);
criterion_main!(benches);
