//! Criterion benchmark of the bound computations — the paper stresses the
//! mixed-bound LP "can be solved very quickly ... right after the
//! application execution"; this bench quantifies that for our simplex.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hetchol_bounds::{area_bound, mixed_bound, BoundSet};
use hetchol_core::platform::Platform;
use hetchol_core::profiles::TimingProfile;

fn bench_bounds(c: &mut Criterion) {
    let platform = Platform::mirage();
    let profile = TimingProfile::mirage();
    let mut group = c.benchmark_group("bounds");
    group.sample_size(10);
    for &n in &[8usize, 16, 32] {
        group.bench_with_input(BenchmarkId::new("area", n), &n, |b, &n| {
            b.iter(|| area_bound(n, &platform, &profile))
        });
        group.bench_with_input(BenchmarkId::new("mixed", n), &n, |b, &n| {
            b.iter(|| mixed_bound(n, &platform, &profile))
        });
        group.bench_with_input(BenchmarkId::new("full_set", n), &n, |b, &n| {
            b.iter(|| BoundSet::compute(n, &platform, &profile))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_bounds);
criterion_main!(benches);
