//! Ablation: PCI bandwidth sweep — when do communications start to hurt?
//! Justifies the paper's communication-free bound comparisons ("data
//! transfers are largely overlapped with kernel computation").

use criterion::{criterion_group, criterion_main, Criterion};
use hetchol_bench::{sim_gflops, SchedKind};
use hetchol_core::platform::{CommModel, Platform};
use hetchol_core::profiles::TimingProfile;
use hetchol_core::time::Time;
use hetchol_sim::SimOptions;

fn ablation(c: &mut Criterion) {
    let profile = TimingProfile::mirage();
    let n = 16;

    println!("# Ablation: dmda GFLOP/s at n = 16 vs PCI bandwidth");
    println!("{:>12} {:>10}", "bandwidth", "GFLOP/s");
    let free = sim_gflops(
        n,
        &Platform::mirage().without_comm(),
        &profile,
        SchedKind::Dmda,
        &SimOptions::default(),
    );
    println!("{:>12} {free:>10.2}", "infinite");
    for &gbps in &[16.0f64, 8.0, 4.0, 2.0, 1.0, 0.5] {
        let platform = Platform::mirage().with_comm(CommModel {
            latency: Time::from_micros(10),
            bandwidth: gbps * 1e9,
        });
        let g = sim_gflops(
            n,
            &platform,
            &profile,
            SchedKind::Dmda,
            &SimOptions::default(),
        );
        println!("{:>10.1}GB {g:>10.2}", gbps);
    }

    let mut group = c.benchmark_group("ablation_comm");
    group.sample_size(10);
    group.bench_function("dmda_8gbps_n16", |b| {
        b.iter(|| {
            sim_gflops(
                n,
                &Platform::mirage(),
                &profile,
                SchedKind::Dmda,
                &SimOptions::default(),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, ablation);
criterion_main!(benches);
