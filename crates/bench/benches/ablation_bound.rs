//! Ablation: how much tightness the mixed bound's chain constraint buys
//! over the plain area bound (the design choice of paper Section III-A).
//!
//! Prints the bound values per size once, then benchmarks the marginal
//! cost of the extra constraint.

use criterion::{criterion_group, criterion_main, Criterion};
use hetchol_bounds::BoundSet;
use hetchol_core::platform::Platform;
use hetchol_core::profiles::TimingProfile;

fn ablation(c: &mut Criterion) {
    let platform = Platform::mirage();
    let profile = TimingProfile::mirage();

    println!("# Ablation: area vs mixed bound tightness (GFLOP/s upper bounds)");
    println!(
        "{:>6} {:>12} {:>12} {:>12} {:>10}",
        "tiles", "area", "mixed", "crit.path", "mixed/area"
    );
    for &n in &[4usize, 8, 12, 16, 20, 24, 28, 32] {
        let set = BoundSet::compute(n, &platform, &profile);
        println!(
            "{:>6} {:>12.1} {:>12.1} {:>12.1} {:>10.3}",
            n,
            set.area_gflops(),
            set.mixed_gflops(),
            set.critical_path_gflops(),
            set.mixed_gflops() / set.area_gflops()
        );
    }

    let mut group = c.benchmark_group("ablation_bound");
    group.sample_size(10);
    group.bench_function("bound_set_n16", |b| {
        b.iter(|| BoundSet::compute(16, &platform, &profile))
    });
    group.finish();
}

criterion_group!(benches, ablation);
criterion_main!(benches);
