//! Criterion benchmark of the real tile kernels (the `hetchol-linalg`
//! substrate): GFLOP/s of POTRF/TRSM/SYRK/GEMM at several tile sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hetchol_linalg::generate::random_spd;
use hetchol_linalg::{gemm_update, potrf_tile, syrk_update, trsm_solve};
use std::hint::black_box;

fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("tile_kernels");
    group.sample_size(10);
    for &nb in &[64usize, 128, 256] {
        let spd = random_spd(nb, 1).data().to_vec();
        let factored = {
            let mut f = spd.clone();
            potrf_tile(&mut f, nb).unwrap();
            f
        };
        let generic = random_spd(nb, 2).data().to_vec();
        let generic2 = random_spd(nb, 3).data().to_vec();

        group.throughput(Throughput::Elements((nb * nb * nb) as u64));
        group.bench_with_input(BenchmarkId::new("potrf", nb), &nb, |b, &nb| {
            b.iter(|| {
                let mut a = spd.clone();
                potrf_tile(black_box(&mut a), nb).unwrap();
                a
            })
        });
        group.bench_with_input(BenchmarkId::new("trsm", nb), &nb, |b, &nb| {
            b.iter(|| {
                let mut x = generic.clone();
                trsm_solve(black_box(&mut x), &factored, nb);
                x
            })
        });
        group.bench_with_input(BenchmarkId::new("syrk", nb), &nb, |b, &nb| {
            b.iter(|| {
                let mut cmat = generic.clone();
                syrk_update(black_box(&mut cmat), &generic2, nb);
                cmat
            })
        });
        group.bench_with_input(BenchmarkId::new("gemm", nb), &nb, |b, &nb| {
            b.iter(|| {
                let mut cmat = generic.clone();
                gemm_update(black_box(&mut cmat), &generic2, &factored, nb);
                cmat
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
