//! Lock-per-tile matrix storage for parallel execution.
//!
//! Each tile carries its own `RwLock`. The DAG's dependency discipline
//! already serialises conflicting accesses (a reader is never concurrent
//! with a writer of the same tile — RAW and WAR edges guarantee it), so
//! the locks are uncontended in practice; they exist to make the runtime
//! safe Rust with zero `unsafe`, at a cost that is noise next to
//! millisecond-scale kernels.

use hetchol_core::task::TaskCoords;
use hetchol_linalg::cholesky::TiledCholeskyError;
use hetchol_linalg::full::FullTiledMatrix;
use hetchol_linalg::lu::{
    gemm_nn_update, getrf_nopiv_tile, trsm_left_lower_unit, trsm_right_upper, TiledLuError,
};
use hetchol_linalg::matrix::TiledMatrix;
use hetchol_linalg::qr::TiledQrError;
use hetchol_linalg::{gemm_update, potrf_tile, syrk_update, trsm_solve};
use parking_lot::RwLock;

/// A tiled lower-triangular matrix whose tiles are individually locked.
pub struct LockedTiledMatrix {
    n_tiles: usize,
    nb: usize,
    tiles: Vec<RwLock<Vec<f64>>>,
}

impl LockedTiledMatrix {
    /// Move a [`TiledMatrix`] into locked storage.
    pub fn from_tiled(m: &TiledMatrix) -> LockedTiledMatrix {
        let n_tiles = m.n_tiles();
        let nb = m.nb();
        let mut tiles = Vec::with_capacity(n_tiles * (n_tiles + 1) / 2);
        for i in 0..n_tiles {
            for j in 0..=i {
                tiles.push(RwLock::new(m.tile(i, j).to_vec()));
            }
        }
        LockedTiledMatrix { n_tiles, nb, tiles }
    }

    /// Copy the tiles back into a plain [`TiledMatrix`].
    pub fn to_tiled(&self) -> TiledMatrix {
        let mut m = TiledMatrix::zeros(self.n_tiles, self.nb);
        for i in 0..self.n_tiles {
            for j in 0..=i {
                m.tile_mut(i, j).copy_from_slice(&self.tile(i, j).read());
            }
        }
        m
    }

    /// Matrix order in tiles.
    pub fn n_tiles(&self) -> usize {
        self.n_tiles
    }

    /// Tile size.
    pub fn nb(&self) -> usize {
        self.nb
    }

    #[inline]
    fn tile(&self, row: usize, col: usize) -> &RwLock<Vec<f64>> {
        // A full assert, not debug_assert: with col > row the triangular
        // index `row*(row+1)/2 + col` can still land in bounds and silently
        // alias a *different* tile, corrupting the factorization instead of
        // panicking. Cheap next to a kernel call.
        assert!(
            col <= row && row < self.n_tiles,
            "tile ({row},{col}) outside the lower triangle of a {0}x{0} tiled matrix",
            self.n_tiles
        );
        &self.tiles[row * (row + 1) / 2 + col]
    }

    /// Execute one DAG task against the locked tiles. Thread-safe for any
    /// execution order that respects the DAG's dependencies.
    pub fn apply_task(&self, coords: TaskCoords) -> Result<(), TiledCholeskyError> {
        let nb = self.nb;
        match coords {
            TaskCoords::Potrf { k } => {
                let k = k as usize;
                let mut akk = self.tile(k, k).write();
                potrf_tile(&mut akk, nb).map_err(|e| TiledCholeskyError::NotPositiveDefinite {
                    k,
                    column: e.column,
                })
            }
            TaskCoords::Trsm { k, i } => {
                let (k, i) = (k as usize, i as usize);
                let lkk = self.tile(k, k).read();
                let mut aik = self.tile(i, k).write();
                trsm_solve(&mut aik, &lkk, nb);
                Ok(())
            }
            TaskCoords::Syrk { k, j } => {
                let (k, j) = (k as usize, j as usize);
                let ajk = self.tile(j, k).read();
                let mut ajj = self.tile(j, j).write();
                syrk_update(&mut ajj, &ajk, nb);
                Ok(())
            }
            TaskCoords::Gemm { k, i, j } => {
                let (k, i, j) = (k as usize, i as usize, j as usize);
                let aik = self.tile(i, k).read();
                let ajk = self.tile(j, k).read();
                let mut aij = self.tile(i, j).write();
                gemm_update(&mut aij, &aik, &ajk, nb);
                Ok(())
            }
            _ => Err(TiledCholeskyError::WrongAlgorithm),
        }
    }
}

/// A full (square) tiled matrix with per-tile locks, for the LU runtime
/// path (extension, DESIGN.md §9).
pub struct LockedFullTiledMatrix {
    n_tiles: usize,
    nb: usize,
    tiles: Vec<RwLock<Vec<f64>>>,
}

impl LockedFullTiledMatrix {
    /// Move a [`FullTiledMatrix`] into locked storage.
    pub fn from_full(m: &FullTiledMatrix) -> LockedFullTiledMatrix {
        let n_tiles = m.n_tiles();
        let nb = m.nb();
        let mut tiles = Vec::with_capacity(n_tiles * n_tiles);
        for i in 0..n_tiles {
            for j in 0..n_tiles {
                tiles.push(RwLock::new(m.tile(i, j).to_vec()));
            }
        }
        LockedFullTiledMatrix { n_tiles, nb, tiles }
    }

    /// Matrix order in tiles.
    pub fn n_tiles(&self) -> usize {
        self.n_tiles
    }

    /// Copy the tiles back into a plain [`FullTiledMatrix`].
    pub fn to_full(&self) -> FullTiledMatrix {
        let mut m = FullTiledMatrix::zeros(self.n_tiles, self.nb);
        for i in 0..self.n_tiles {
            for j in 0..self.n_tiles {
                m.tile_mut(i, j).copy_from_slice(&self.tile(i, j).read());
            }
        }
        m
    }

    #[inline]
    fn tile(&self, row: usize, col: usize) -> &RwLock<Vec<f64>> {
        // Full assert (see LockedTiledMatrix::tile): an out-of-range `col`
        // with a small `row` stays in bounds of the flat vector and would
        // alias another tile rather than panic.
        assert!(
            row < self.n_tiles && col < self.n_tiles,
            "tile ({row},{col}) outside a {0}x{0} tiled matrix",
            self.n_tiles
        );
        &self.tiles[row * self.n_tiles + col]
    }

    /// Execute one LU DAG task against the locked tiles. Thread-safe for
    /// any execution order respecting the DAG's dependencies.
    pub fn apply_lu_task(&self, coords: TaskCoords) -> Result<(), TiledLuError> {
        let nb = self.nb;
        match coords {
            TaskCoords::Getrf { k } => {
                let k = k as usize;
                let mut akk = self.tile(k, k).write();
                getrf_nopiv_tile(&mut akk, nb)
                    .map_err(|column| TiledLuError::ZeroPivot { k, column })
            }
            TaskCoords::LuTrsmRow { k, j } => {
                let (k, j) = (k as usize, j as usize);
                let lu = self.tile(k, k).read();
                let mut b = self.tile(k, j).write();
                trsm_left_lower_unit(&mut b, &lu, nb);
                Ok(())
            }
            TaskCoords::LuTrsmCol { k, i } => {
                let (k, i) = (k as usize, i as usize);
                let lu = self.tile(k, k).read();
                let mut b = self.tile(i, k).write();
                trsm_right_upper(&mut b, &lu, nb);
                Ok(())
            }
            TaskCoords::LuGemm { k, i, j } => {
                let (k, i, j) = (k as usize, i as usize, j as usize);
                let a = self.tile(i, k).read();
                let b = self.tile(k, j).read();
                let mut c = self.tile(i, j).write();
                gemm_nn_update(&mut c, &a, &b, nb);
                Ok(())
            }
            _ => Err(TiledLuError::WrongAlgorithm),
        }
    }
}

/// Reflector `τ` vectors keyed by the tile holding the matching `V`
/// block, as produced by a finished QR run.
pub type TauTable = Vec<((usize, usize), Vec<f64>)>;

/// A QR-in-progress matrix with per-tile locks on both the tile data and
/// the reflector `τ` vectors, for the threaded QR path.
pub struct LockedQrMatrix {
    n_tiles: usize,
    nb: usize,
    tiles: Vec<RwLock<Vec<f64>>>,
    taus: Vec<RwLock<Vec<f64>>>,
}

impl LockedQrMatrix {
    /// Move a dense matrix into locked QR storage.
    pub fn from_dense(dense: &hetchol_linalg::matrix::Matrix, nb: usize) -> LockedQrMatrix {
        let full = FullTiledMatrix::from_dense(dense, nb);
        let n_tiles = full.n_tiles();
        let mut tiles = Vec::with_capacity(n_tiles * n_tiles);
        for i in 0..n_tiles {
            for j in 0..n_tiles {
                tiles.push(RwLock::new(full.tile(i, j).to_vec()));
            }
        }
        LockedQrMatrix {
            n_tiles,
            nb,
            tiles,
            taus: (0..n_tiles * n_tiles)
                .map(|_| RwLock::new(Vec::new()))
                .collect(),
        }
    }

    #[inline]
    fn tile(&self, row: usize, col: usize) -> &RwLock<Vec<f64>> {
        &self.tiles[row * self.n_tiles + col]
    }

    #[inline]
    fn tau(&self, row: usize, col: usize) -> &RwLock<Vec<f64>> {
        &self.taus[row * self.n_tiles + col]
    }

    /// Execute one QR DAG task against the locked tiles. Thread-safe for
    /// any execution order respecting the DAG's dependencies.
    pub fn apply_qr_task(&self, coords: TaskCoords) -> Result<(), TiledQrError> {
        use hetchol_linalg::qr::{geqrt_tile, ormqr_apply, tsmqr_apply, tsqrt_tiles};
        let nb = self.nb;
        match coords {
            TaskCoords::Geqrt { k } => {
                let k = k as usize;
                let mut akk = self.tile(k, k).write();
                let taus = geqrt_tile(&mut akk, nb);
                *self.tau(k, k).write() = taus;
                Ok(())
            }
            TaskCoords::Ormqr { k, j } => {
                let (k, j) = (k as usize, j as usize);
                let taus = self.tau(k, k).read();
                if taus.is_empty() {
                    return Err(TiledQrError::MissingReflectors { row: k, col: k });
                }
                let vt = self.tile(k, k).read();
                let mut c = self.tile(k, j).write();
                ormqr_apply(&mut c, &vt, &taus, nb);
                Ok(())
            }
            TaskCoords::Tsqrt { k, i } => {
                let (k, i) = (k as usize, i as usize);
                let mut r = self.tile(k, k).write();
                let mut b = self.tile(i, k).write();
                let taus = tsqrt_tiles(&mut r, &mut b, nb);
                *self.tau(i, k).write() = taus;
                Ok(())
            }
            TaskCoords::Tsmqr { k, i, j } => {
                let (k, i, j) = (k as usize, i as usize, j as usize);
                let taus = self.tau(i, k).read();
                if taus.is_empty() {
                    return Err(TiledQrError::MissingReflectors { row: i, col: k });
                }
                let vb = self.tile(i, k).read();
                let mut c1 = self.tile(k, j).write();
                let mut c2 = self.tile(i, j).write();
                tsmqr_apply(&mut c1, &mut c2, &vb, &taus, nb);
                Ok(())
            }
            _ => Err(TiledQrError::WrongAlgorithm),
        }
    }

    /// Extract the factorization into an (unlocked)
    /// [`QrMatrix`](hetchol_linalg::qr::QrMatrix)-equivalent
    /// pair for verification: the tiles and the `τ` table.
    pub fn into_parts(self) -> (FullTiledMatrix, TauTable) {
        let mut m = FullTiledMatrix::zeros(self.n_tiles, self.nb);
        for i in 0..self.n_tiles {
            for j in 0..self.n_tiles {
                m.tile_mut(i, j)
                    .copy_from_slice(&self.tiles[i * self.n_tiles + j].read());
            }
        }
        let mut taus = Vec::new();
        for i in 0..self.n_tiles {
            for j in 0..self.n_tiles {
                let t = self.taus[i * self.n_tiles + j].read();
                if !t.is_empty() {
                    taus.push(((i, j), t.clone()));
                }
            }
        }
        (m, taus)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetchol_core::dag::TaskGraph;
    use hetchol_linalg::generate::random_spd;
    use hetchol_linalg::verify::factorization_residual;

    #[test]
    fn round_trip_preserves_tiles() {
        let a = random_spd(8, 3);
        let m = TiledMatrix::from_dense(&a, 4);
        let locked = LockedTiledMatrix::from_tiled(&m);
        let back = locked.to_tiled();
        for i in 0..2 {
            for j in 0..=i {
                assert_eq!(m.tile(i, j), back.tile(i, j));
            }
        }
    }

    #[test]
    fn sequential_apply_matches_unlocked_path() {
        let nb = 4;
        let n_tiles = 4;
        let a = random_spd(n_tiles * nb, 17);
        let graph = TaskGraph::cholesky(n_tiles);

        let locked = LockedTiledMatrix::from_tiled(&TiledMatrix::from_dense(&a, nb));
        for t in graph.tasks() {
            locked.apply_task(t.coords).unwrap();
        }
        let res = factorization_residual(&a, &locked.to_tiled());
        assert!(res < 1e-12, "residual {res}");
    }

    #[test]
    fn locked_full_lu_sequential_matches() {
        use hetchol_linalg::generate::random_diagonally_dominant;
        use hetchol_linalg::lu::lu_residual;
        let nb = 4;
        let n_tiles = 3;
        let a = random_diagonally_dominant(n_tiles * nb, 8);
        let graph = TaskGraph::lu(n_tiles);
        let locked = LockedFullTiledMatrix::from_full(&FullTiledMatrix::from_dense(&a, nb));
        for t in graph.tasks() {
            locked.apply_lu_task(t.coords).unwrap();
        }
        let res = lu_residual(&a, &locked.to_full());
        assert!(res < 1e-12, "residual {res}");
    }

    #[test]
    fn potrf_error_propagates_with_step() {
        let nb = 2;
        let a = random_spd(4, 1);
        let mut m = TiledMatrix::from_dense(&a, nb);
        for v in m.tile_mut(0, 0).iter_mut() {
            *v = 0.0;
        }
        let locked = LockedTiledMatrix::from_tiled(&m);
        let err = locked.apply_task(TaskCoords::Potrf { k: 0 }).unwrap_err();
        assert_eq!(
            err,
            TiledCholeskyError::NotPositiveDefinite { k: 0, column: 0 }
        );
    }
}
