//! The [`Workload`] abstraction: what the runtime's worker threads
//! actually run for each task.
//!
//! The engine loop is factorization-agnostic — it only needs a way to
//! execute one task's kernel given its coordinates. A [`Workload`]
//! packages that (the tile storage plus the kernel mapping), so the
//! runtime has one generic entry
//! ([`crate::runtime::execute_workload`]) instead of one copy-pasted
//! wrapper per factorization. The three factorizations ship as ready-made
//! implementations ([`CholeskyWorkload`], [`LuWorkload`], [`QrWorkload`]);
//! ad-hoc closures are wrapped with [`FnWorkload`].

use crate::storage::{LockedFullTiledMatrix, LockedQrMatrix, LockedTiledMatrix, TauTable};
use hetchol_core::task::TaskCoords;
use hetchol_linalg::cholesky::TiledCholeskyError;
use hetchol_linalg::full::FullTiledMatrix;
use hetchol_linalg::lu::TiledLuError;
use hetchol_linalg::matrix::{Matrix, TiledMatrix};
use hetchol_linalg::qr::TiledQrError;

/// One task-execution strategy for the threaded runtime.
///
/// `apply` is called from worker threads concurrently for tasks that are
/// independent in the DAG; implementations must make exactly that safe
/// (the per-tile locking of [`crate::storage`] does).
pub trait Workload: Sync {
    /// The kernel-level failure an execution can surface (e.g. a
    /// non-positive-definite pivot). The first error aborts the run.
    /// `Debug` so the resilient entry point can fold it into
    /// [`hetchol_core::fault::FailureCause::Kernel`].
    type Error: Send + std::fmt::Debug;

    /// Execute the task at `coords`.
    fn apply(&self, coords: TaskCoords) -> Result<(), Self::Error>;
}

/// Adapter making any `Fn(TaskCoords) -> Result<(), E> + Sync` closure a
/// [`Workload`].
pub struct FnWorkload<F>(pub F);

impl<E: Send + std::fmt::Debug, F: Fn(TaskCoords) -> Result<(), E> + Sync> Workload
    for FnWorkload<F>
{
    type Error = E;

    #[inline]
    fn apply(&self, coords: TaskCoords) -> Result<(), E> {
        (self.0)(coords)
    }
}

/// The tiled Cholesky factorization as a workload: real `hetchol-linalg`
/// kernels over lock-per-tile lower-triangular storage.
///
/// ```
/// use hetchol_core::dag::TaskGraph;
/// use hetchol_core::obs::ObsSink;
/// use hetchol_core::profiles::TimingProfile;
/// use hetchol_linalg::matrix::TiledMatrix;
/// use hetchol_linalg::{factorization_residual, random_spd};
/// use hetchol_rt::{execute_workload, CholeskyWorkload};
/// use hetchol_sched::Dmdas;
///
/// let nb = 8;
/// let a = random_spd(2 * nb, 42);
/// let workload = CholeskyWorkload::new(&TiledMatrix::from_dense(&a, nb));
/// let graph = TaskGraph::cholesky(workload.n_tiles());
/// let r = execute_workload(
///     &workload,
///     &graph,
///     &mut Dmdas::new(),
///     &TimingProfile::mirage_homogeneous(),
///     2,
///     ObsSink::disabled(),
/// )
/// .unwrap();
/// assert_eq!(r.trace.events.len(), graph.len());
/// assert!(factorization_residual(&a, &workload.into_matrix()) < 1e-10);
/// ```
pub struct CholeskyWorkload {
    locked: LockedTiledMatrix,
}

impl CholeskyWorkload {
    /// Stage `matrix` (copied into locked storage) for factorization.
    pub fn new(matrix: &TiledMatrix) -> CholeskyWorkload {
        CholeskyWorkload {
            locked: LockedTiledMatrix::from_tiled(matrix),
        }
    }

    /// Matrix order in tiles.
    pub fn n_tiles(&self) -> usize {
        self.locked.n_tiles()
    }

    /// Extract the (factored) matrix back out of locked storage.
    pub fn into_matrix(self) -> TiledMatrix {
        self.locked.to_tiled()
    }
}

impl Workload for CholeskyWorkload {
    type Error = TiledCholeskyError;

    fn apply(&self, coords: TaskCoords) -> Result<(), TiledCholeskyError> {
        self.locked.apply_task(coords)
    }
}

/// The tiled LU factorization (no pivoting) as a workload.
pub struct LuWorkload {
    locked: LockedFullTiledMatrix,
}

impl LuWorkload {
    /// Stage `matrix` (copied into locked storage) for factorization.
    pub fn new(matrix: &FullTiledMatrix) -> LuWorkload {
        LuWorkload {
            locked: LockedFullTiledMatrix::from_full(matrix),
        }
    }

    /// Matrix order in tiles.
    pub fn n_tiles(&self) -> usize {
        self.locked.n_tiles()
    }

    /// Extract the (factored) matrix back out of locked storage.
    pub fn into_matrix(self) -> FullTiledMatrix {
        self.locked.to_full()
    }
}

impl Workload for LuWorkload {
    type Error = TiledLuError;

    fn apply(&self, coords: TaskCoords) -> Result<(), TiledLuError> {
        self.locked.apply_lu_task(coords)
    }
}

/// The tiled QR factorization as a workload.
pub struct QrWorkload {
    locked: LockedQrMatrix,
}

impl QrWorkload {
    /// Stage `dense` at tile size `nb` for factorization.
    pub fn new(dense: &Matrix, nb: usize) -> QrWorkload {
        QrWorkload {
            locked: LockedQrMatrix::from_dense(dense, nb),
        }
    }

    /// Extract the factorization: the tiles and the `τ` table, for
    /// verification via [`hetchol_linalg::qr::QrMatrix::from_parts`].
    pub fn into_parts(self) -> (FullTiledMatrix, TauTable) {
        self.locked.into_parts()
    }
}

impl Workload for QrWorkload {
    type Error = TiledQrError;

    fn apply(&self, coords: TaskCoords) -> Result<(), TiledQrError> {
        self.locked.apply_qr_task(coords)
    }
}
