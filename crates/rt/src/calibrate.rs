//! Host kernel calibration — the stand-in for StarPU's automatic
//! performance-model calibration (paper Section IV-A).
//!
//! Each kernel is run `reps` times on representative data and the median
//! wall-clock duration becomes the profile entry. The resulting
//! [`TimingProfile`] feeds the schedulers' completion-time estimates and
//! the homogeneous bound computations for real runs.

use hetchol_core::kernel::Kernel;
use hetchol_core::profiles::TimingProfile;
use hetchol_core::time::Time;
use hetchol_linalg::generate::random_spd;
use hetchol_linalg::{gemm_update, potrf_tile, syrk_update, trsm_solve};
use std::time::Instant;

/// Why a calibration run could not produce a profile.
///
/// Calibration used to panic on these; they are ordinary configuration or
/// numerical conditions a caller can report, so they are typed instead.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CalibrationError {
    /// `reps == 0`: no samples means no median.
    NoRepetitions,
    /// The generated calibration matrix failed the POTRF kernel — the
    /// random SPD generator produced a tile that is not numerically
    /// positive definite at this size (pivot `column` went non-positive).
    NotSpd {
        /// Tile size of the failing calibration matrix.
        nb: usize,
        /// Column whose pivot went non-positive.
        column: usize,
    },
}

impl std::fmt::Display for CalibrationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CalibrationError::NoRepetitions => {
                write!(f, "calibration needs at least one repetition")
            }
            CalibrationError::NotSpd { nb, column } => write!(
                f,
                "calibration matrix at tile size {nb} is not positive definite \
                 (pivot column {column})"
            ),
        }
    }
}

impl std::error::Error for CalibrationError {}

fn median(mut samples: Vec<f64>) -> f64 {
    // total_cmp: Instant-derived durations are finite, but a total order
    // costs nothing and removes the panic path entirely.
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// Measure the four kernels at tile size `nb` on the current host and
/// build a single-class (CPU) [`TimingProfile`].
pub fn calibrate_profile(nb: usize, reps: usize) -> Result<TimingProfile, CalibrationError> {
    if reps == 0 {
        return Err(CalibrationError::NoRepetitions);
    }
    let spd = random_spd(nb, 42);
    let factored = {
        let mut f = spd.data().to_vec();
        potrf_tile(&mut f, nb).map_err(|e| CalibrationError::NotSpd {
            nb,
            column: e.column,
        })?;
        f
    };
    let generic = random_spd(nb, 43).data().to_vec();
    let generic2 = random_spd(nb, 44).data().to_vec();

    let mut times = [Time::ZERO; Kernel::COUNT];
    for kernel in Kernel::CHOLESKY {
        let mut samples = Vec::with_capacity(reps);
        for _ in 0..reps {
            // Fresh writable buffers so every repetition does the same work.
            let mut a = spd.data().to_vec();
            let mut c = generic.clone();
            let t0 = Instant::now();
            match kernel {
                Kernel::Potrf => {
                    potrf_tile(&mut a, nb).map_err(|e| CalibrationError::NotSpd {
                        nb,
                        column: e.column,
                    })?;
                }
                Kernel::Trsm => trsm_solve(&mut c, &factored, nb),
                Kernel::Syrk => syrk_update(&mut c, &generic2, nb),
                Kernel::Gemm => gemm_update(&mut c, &generic2, &factored, nb),
                _ => unreachable!("CHOLESKY contains only the four kernels"),
            }
            samples.push(t0.elapsed().as_secs_f64());
        }
        times[kernel.index()] = Time::from_secs_f64(median(samples)).max(Time::from_nanos(1));
    }
    // Kernels without a host implementation (LU/QR extension kernels when
    // only Cholesky runs on the real runtime): extrapolate from the
    // measured GEMM rate, flop-proportionally. They are never executed,
    // only needed so the profile is total over `Kernel::ALL`.
    let gemm_rate = Kernel::Gemm.flops(nb) / times[Kernel::Gemm.index()].as_secs_f64();
    for kernel in Kernel::ALL {
        if times[kernel.index()].is_zero() {
            times[kernel.index()] =
                Time::from_secs_f64(kernel.flops(nb) / gemm_rate).max(Time::from_nanos(1));
        }
    }
    Ok(TimingProfile::new(nb, vec![times]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_produces_positive_ordered_times() {
        let p = calibrate_profile(48, 5).unwrap();
        for k in Kernel::ALL {
            assert!(p.time(k, 0) > Time::ZERO, "{k}");
        }
        // GEMM does 2nb^3 flops, POTRF nb^3/3: GEMM must be the slowest
        // and POTRF the fastest at any reasonable tile size.
        assert!(p.time(Kernel::Gemm, 0) > p.time(Kernel::Potrf, 0));
    }

    #[test]
    fn calibration_respects_tile_size() {
        let p = calibrate_profile(32, 3).unwrap();
        assert_eq!(p.nb(), 32);
        assert_eq!(p.n_classes(), 1);
    }

    #[test]
    fn zero_repetitions_is_a_typed_error() {
        assert_eq!(
            calibrate_profile(16, 0).unwrap_err(),
            CalibrationError::NoRepetitions
        );
    }
}
