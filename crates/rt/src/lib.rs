//! # hetchol-rt
//!
//! A real multithreaded task runtime executing the tiled Cholesky DAG on
//! host CPU cores — the *actual execution* substrate for the paper's
//! homogeneous experiments (Figure 3), playing the role StarPU plays on
//! the Mirage machine's CPU side.
//!
//! The runtime mirrors the simulator's semantics so the same `Scheduler`
//! implementations drive both:
//!
//! * a task whose dependencies complete is pushed through the scheduler's
//!   `assign` hook into a worker queue (FIFO or priority-sorted);
//! * worker threads pop from their own queue and execute the real kernels
//!   of `hetchol-linalg` on lock-protected tiles;
//! * completions release successors and wake idle workers.
//!
//! [`calibrate_profile`] measures per-kernel execution times on the host,
//! standing in for StarPU's automatic calibration (paper Section IV-A).
//!
//! Beyond the paper's Cholesky scope, the engine is generic over the task
//! executor: [`execute_workload`] runs any [`Workload`] — the three
//! factorizations ship as ready-made implementations
//! ([`CholeskyWorkload`], [`LuWorkload`], [`QrWorkload`]) and ad-hoc
//! closures wrap in [`FnWorkload`] — on the same real-thread machinery.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod calibrate;
pub mod runtime;
pub mod storage;
pub mod workload;

pub use calibrate::{calibrate_profile, CalibrationError};
pub use runtime::{execute_resilient, execute_resilient_controlled, execute_workload, RtResult};
pub use storage::{LockedFullTiledMatrix, LockedTiledMatrix};
pub use workload::{CholeskyWorkload, FnWorkload, LuWorkload, QrWorkload, Workload};
