//! The parallel runtime: worker threads over the shared execution core.
//!
//! Dependency tracking, queue insertion and the availability estimate all
//! live in [`hetchol_core::exec`]; this module only supplies what is
//! specific to real threads — wall-clock time, the worker thread loop,
//! and error propagation from failing kernels. The single shared memory
//! node means the engine uses the default (free, instantaneous)
//! [`exec::EngineHooks`] data model.

use crate::workload::Workload;
use hetchol_core::dag::TaskGraph;
use hetchol_core::exec::{self, DepTracker, QueueEntry, SingleNode, TraceRecorder, WorkerQueues};
use hetchol_core::fault::{
    ConfigError, FailureCause, FaultKind, FaultPlan, FaultState, RetryPolicy, RunOutcome,
};
use hetchol_core::obs::{ObsReport, ObsSink};
use hetchol_core::platform::{Platform, WorkerId};
use hetchol_core::profiles::TimingProfile;
use hetchol_core::scheduler::{SchedContext, Scheduler};
use hetchol_core::task::TaskId;
use hetchol_core::time::Time;
use hetchol_core::trace::Trace;
use parking_lot::{Condvar, Mutex};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// The runtime's notion of "now".
///
/// The real entry points read the wall clock; the model-checking entry
/// points ([`execute_resilient_controlled`] with `deterministic: true`)
/// use a logical clock instead — a monotone counter whose reads are
/// serialized by the interleaving explorer's one-thread-at-a-time model,
/// so every replay of a thread schedule observes the *same* sequence of
/// timestamps. That removes the runtime's one genuine wall-clock hazard:
/// the dead-worker re-dispatch override picks the survivor with the
/// smallest availability estimate *at `now`*, which under the wall clock
/// can differ between a run and its replay.
enum Clock {
    /// Wall-clock time relative to execution start.
    Wall(Instant),
    /// Deterministic logical time: each read ticks the counter by 1 ns.
    Logical(AtomicU64),
}

impl Clock {
    fn wall() -> Clock {
        Clock::Wall(Instant::now())
    }

    fn now(&self) -> Time {
        match self {
            Clock::Wall(t0) => Time::from_secs_f64(t0.elapsed().as_secs_f64()),
            Clock::Logical(c) => Time::from_nanos(c.fetch_add(1, Ordering::Relaxed) + 1),
        }
    }

    /// `true` when time is logical — real sleeps (retry backoff, straggler
    /// stretch, watchdog occupancy) are skipped: under a logical clock
    /// only the *ordering* of events is meaningful, and sleeping would
    /// reintroduce the host scheduler as a hidden source of
    /// nondeterminism.
    fn is_logical(&self) -> bool {
        matches!(self, Clock::Logical(_))
    }
}

/// Result of one real execution.
#[derive(Clone, Debug)]
pub struct RtResult {
    /// Wall-clock trace (times relative to execution start).
    pub trace: Trace,
    /// Wall-clock makespan.
    pub makespan: Time,
    /// Structured observability record (empty unless the run was given an
    /// enabled [`ObsSink`]).
    pub obs: ObsReport,
    /// How the run ended. Always [`RunOutcome::Completed`] for the
    /// fault-free entry points; [`execute_resilient`] reports `Degraded`
    /// or `Failed` when the fault plan forced recovery.
    pub outcome: RunOutcome,
}

/// Engine state behind the runtime's single lock.
struct Shared<E> {
    deps: DepTracker,
    queues: WorkerQueues,
    recorder: TraceRecorder,
    /// Scratch for [`DepTracker::release_into`], reused across releases so
    /// completing a task allocates nothing under the lock.
    ready: Vec<TaskId>,
    error: Option<E>,
    /// Fault-injection/recovery driver; `None` on the fault-free paths.
    faults: Option<FaultState>,
    /// First hard failure of a resilient run (the fault-mode counterpart
    /// of `error`, which stays reserved for fail-fast kernel errors).
    failed: Option<FailureCause>,
}

/// What a worker decided to do with a popped queue entry (decided under
/// the shared lock, executed outside it).
enum Work {
    /// Run the kernel: the task, the data-ready instant to respect (the
    /// retry backoff; `Time::ZERO` when immediate), and the straggler
    /// slowdown factor to model after the kernel returns.
    Run(TaskId, Time, f64),
    /// The attempt fails without running the kernel (injection replaces
    /// execution): the task, the failure kind, and — for watchdog
    /// timeouts — how long the attempt occupies the worker before the
    /// verdict.
    Fail(TaskId, FaultKind, Option<Time>),
}

/// Run `graph` on `n_workers` real threads, executing each task through
/// `workload` — the runtime's one generic entry.
///
/// `profile` supplies the execution-time *estimates* the scheduler reasons
/// with (from [`crate::calibrate_profile`] or a synthetic profile); the
/// actual durations are whatever the host delivers. `obs` selects
/// structured observability: [`ObsSink::disabled`] (free) or
/// [`ObsSink::enabled`] to collect per-task phase spans plus condvar
/// wakeup / backfill counters in [`RtResult::obs`].
///
/// The workload's `apply` is called concurrently for DAG-independent
/// tasks; the ready-made workloads ([`crate::workload::CholeskyWorkload`],
/// [`crate::workload::LuWorkload`], [`crate::workload::QrWorkload`]) make
/// that safe with per-tile locking. The caller keeps ownership of the
/// workload and extracts results from it afterwards (e.g.
/// [`crate::workload::CholeskyWorkload::into_matrix`]).
pub fn execute_workload<W: Workload + ?Sized>(
    workload: &W,
    graph: &TaskGraph,
    scheduler: &mut (dyn Scheduler + Send),
    profile: &TimingProfile,
    n_workers: usize,
    obs: ObsSink,
) -> Result<RtResult, W::Error> {
    execute_with_inner(
        workload, graph, scheduler, profile, n_workers, obs, false, false, false, None,
    )
}

/// [`execute_workload`] under fault injection: `plan`'s faults fire on
/// real worker threads (deaths keyed to the engine-wide task-start count,
/// injected kernel failures, straggler slowdowns) and the runtime recovers
/// per `policy` — capped-backoff retries, re-queuing a dead worker's tasks
/// onto the survivors, the modeled-duration watchdog. Instead of
/// propagating errors, the verdict lands in [`RtResult::outcome`]; real
/// kernel errors are *not* retried (a genuine numerical failure fails
/// identically anywhere) and fold into
/// [`FailureCause::Kernel`]. Impossible configurations (zero workers, a
/// plan killing every worker) are rejected up front.
///
/// The same plan replayed on the simulator yields the same outcome
/// classification — worker deaths trigger on progress (global start
/// count), not on clocks, which the two engines never agree on.
#[allow(clippy::too_many_arguments)]
pub fn execute_resilient<W: Workload + ?Sized>(
    workload: &W,
    graph: &TaskGraph,
    scheduler: &mut (dyn Scheduler + Send),
    profile: &TimingProfile,
    n_workers: usize,
    obs: ObsSink,
    plan: &FaultPlan,
    policy: &RetryPolicy,
) -> Result<RtResult, ConfigError> {
    if n_workers == 0 {
        return Err(ConfigError::ZeroWorkers);
    }
    if plan.kills_all_workers(n_workers) {
        return Err(ConfigError::PlanKillsAllWorkers { n_workers });
    }
    execute_resilient_controlled(
        workload, graph, scheduler, profile, n_workers, obs, plan, policy, false,
    )
}

/// [`execute_resilient`] with an explicit time source: `deterministic:
/// true` swaps the wall clock for a logical clock and skips every real
/// sleep, making the run's behaviour a pure function of the thread
/// schedule — the instrumentation point the model checker
/// (`hetchol-analyze::mc`) executes the resilient path through. With
/// `deterministic: false` this *is* [`execute_resilient`].
#[allow(clippy::too_many_arguments)]
pub fn execute_resilient_controlled<W: Workload + ?Sized>(
    workload: &W,
    graph: &TaskGraph,
    scheduler: &mut (dyn Scheduler + Send),
    profile: &TimingProfile,
    n_workers: usize,
    obs: ObsSink,
    plan: &FaultPlan,
    policy: &RetryPolicy,
    deterministic: bool,
) -> Result<RtResult, ConfigError> {
    if n_workers == 0 {
        return Err(ConfigError::ZeroWorkers);
    }
    if plan.kills_all_workers(n_workers) {
        return Err(ConfigError::PlanKillsAllWorkers { n_workers });
    }
    let faults = FaultState::new(plan, *policy, graph.len(), n_workers);
    let r = execute_with_inner(
        workload,
        graph,
        scheduler,
        profile,
        n_workers,
        obs,
        false,
        false,
        deterministic,
        Some(faults),
    );
    Ok(r.unwrap_or_else(|_| unreachable!("resilient runs fold errors into the outcome")))
}

/// Seeded worker-loop faults for the race checker (`race-mutations`
/// feature). Each flag reintroduces a classic concurrency bug so
/// `hetchol-analyze`'s interleaving explorer can prove it would catch it.
#[cfg(feature = "race-mutations")]
#[derive(Copy, Clone, Debug, Default)]
pub struct Mutations {
    /// Skip the `notify_all` after dispatching successors — the classic
    /// lost wakeup: a worker parked on the condvar never learns its queue
    /// gained a task, and the run deadlocks under the right interleaving.
    pub drop_release_notify: bool,
    /// Mark a doomed worker dead but drop its queued tasks instead of
    /// re-dispatching them onto the survivors — a recovery-protocol bug:
    /// stranded tasks never run, their successors never release, and the
    /// survivors wait forever once a death catches a non-empty queue.
    pub skip_dead_requeue: bool,
}

/// [`execute_workload`] with seeded faults enabled — test-only surface for
/// the race checker; never use outside the explorer's regression tests.
#[cfg(feature = "race-mutations")]
pub fn execute_with_mutated<E: Send + std::fmt::Debug>(
    apply: impl Fn(hetchol_core::task::TaskCoords) -> Result<(), E> + Sync,
    graph: &TaskGraph,
    scheduler: &mut (dyn Scheduler + Send),
    profile: &TimingProfile,
    n_workers: usize,
    mutations: Mutations,
) -> Result<RtResult, E> {
    execute_with_inner(
        &crate::workload::FnWorkload(apply),
        graph,
        scheduler,
        profile,
        n_workers,
        ObsSink::disabled(),
        mutations.drop_release_notify,
        mutations.skip_dead_requeue,
        false,
        None,
    )
}

/// [`execute_resilient_controlled`] with seeded faults enabled — the
/// model checker's mutation surface (`race-mutations` feature); never use
/// outside `hetchol-analyze`'s regression tests. Always deterministic
/// (logical clock), since its sole purpose is exploration.
#[cfg(feature = "race-mutations")]
#[allow(clippy::too_many_arguments)]
pub fn execute_resilient_mutated<W: Workload + ?Sized>(
    workload: &W,
    graph: &TaskGraph,
    scheduler: &mut (dyn Scheduler + Send),
    profile: &TimingProfile,
    n_workers: usize,
    plan: &FaultPlan,
    policy: &RetryPolicy,
    mutations: Mutations,
) -> Result<RtResult, ConfigError> {
    if n_workers == 0 {
        return Err(ConfigError::ZeroWorkers);
    }
    if plan.kills_all_workers(n_workers) {
        return Err(ConfigError::PlanKillsAllWorkers { n_workers });
    }
    let faults = FaultState::new(plan, *policy, graph.len(), n_workers);
    let r = execute_with_inner(
        workload,
        graph,
        scheduler,
        profile,
        n_workers,
        ObsSink::disabled(),
        mutations.drop_release_notify,
        mutations.skip_dead_requeue,
        true,
        Some(faults),
    );
    Ok(r.unwrap_or_else(|_| unreachable!("resilient runs fold errors into the outcome")))
}

/// Mark every non-busy doomed worker dead and re-dispatch its queued
/// tasks onto the survivors (called under the shared lock whenever the
/// death mask may have changed: after a start, after a completion, before
/// the initial dispatch). Busy doomed workers are skipped — their
/// in-flight kernel completes (completed work is never discarded) and
/// they die right after recording it.
///
/// `skip_dead_requeue` is the seeded recovery bug for the model checker
/// (always `false` in production): the worker is marked dead but its
/// queue is silently dropped instead of re-dispatched, so any task
/// stranded there never runs and the survivors wait forever.
fn reap_doomed<E>(
    s: &mut Shared<E>,
    ctx: &SchedContext,
    sched: &mut dyn Scheduler,
    now: Time,
    skip_dead_requeue: bool,
) {
    let Shared {
        deps,
        queues,
        recorder,
        faults,
        failed,
        ..
    } = s;
    let Some(f) = faults.as_mut() else { return };
    for v in f.doomed_workers() {
        if queues.is_busy(v) {
            continue;
        }
        f.mark_dead(v, now);
        recorder.obs_mut().count_worker_lost(v, now);
        for entry in queues.drain_worker(v) {
            if skip_dead_requeue {
                continue; // seeded bug: strand the dead worker's queue
            }
            let landed = exec::dispatch_resilient(
                entry.task,
                now,
                ctx,
                sched,
                queues,
                recorder,
                &mut SingleNode,
                f.dead(),
                Time::ZERO,
            );
            match landed {
                Some(u) => deps.note_queued(entry.task, u),
                None => {
                    failed.get_or_insert(FailureCause::AllWorkersLost);
                    return;
                }
            }
        }
    }
}

/// Worker `w`'s death came due while it sat idle: it dies *instead of*
/// starting the entry it just popped. The popped task is charged a
/// lost-worker attempt (retried on a survivor with backoff, or aborted on
/// budget exhaustion) and the rest of the queue drains onto the
/// survivors.
///
/// `skip_dead_requeue` seeds the same recovery bug as in [`reap_doomed`]:
/// the popped task is still retried (its attempt was already charged) but
/// the rest of the dead worker's queue is dropped.
fn die_at_pop<E>(
    s: &mut Shared<E>,
    ctx: &SchedContext,
    sched: &mut dyn Scheduler,
    w: WorkerId,
    entry: QueueEntry,
    now: Time,
    skip_dead_requeue: bool,
) {
    let Shared {
        deps,
        queues,
        recorder,
        faults,
        failed,
        ..
    } = s;
    let f = faults.as_mut().expect("die_at_pop outside fault mode");
    f.mark_dead(w, now);
    recorder.obs_mut().count_worker_lost(w, now);
    let (attempt, _) = f.begin_attempt(entry.task);
    recorder.obs_mut().on_attempt_failed(
        entry.task,
        ctx.graph.task(entry.task).kernel(),
        w,
        now,
        now,
        attempt,
        FaultKind::WorkerLost.label(),
    );
    match f.record_failure(entry.task, w, FaultKind::WorkerLost, now) {
        Some(backoff) => {
            recorder.obs_mut().count_retry();
            let landed = exec::dispatch_resilient(
                entry.task,
                now,
                ctx,
                sched,
                queues,
                recorder,
                &mut SingleNode,
                f.dead(),
                backoff,
            );
            match landed {
                Some(u) => deps.note_queued(entry.task, u),
                None => {
                    failed.get_or_insert(FailureCause::AllWorkersLost);
                    return;
                }
            }
        }
        None => {
            failed.get_or_insert(FailureCause::RetriesExhausted {
                task: entry.task,
                attempts: f.attempts_of(entry.task),
                kind: FaultKind::WorkerLost,
            });
            return;
        }
    }
    for e in queues.drain_worker(w) {
        if skip_dead_requeue {
            continue; // seeded bug: strand the dead worker's queue
        }
        let landed = exec::dispatch_resilient(
            e.task,
            now,
            ctx,
            sched,
            queues,
            recorder,
            &mut SingleNode,
            f.dead(),
            Time::ZERO,
        );
        match landed {
            Some(u) => deps.note_queued(e.task, u),
            None => {
                failed.get_or_insert(FailureCause::AllWorkersLost);
                return;
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn execute_with_inner<W: Workload + ?Sized>(
    workload: &W,
    graph: &TaskGraph,
    scheduler: &mut (dyn Scheduler + Send),
    profile: &TimingProfile,
    n_workers: usize,
    obs: ObsSink,
    drop_release_notify: bool,
    skip_dead_requeue: bool,
    deterministic: bool,
    faults: Option<FaultState>,
) -> Result<RtResult, W::Error> {
    assert!(n_workers > 0, "need at least one worker");
    let platform = Platform::homogeneous(n_workers);
    let ctx = SchedContext {
        graph,
        platform: &platform,
        profile,
    };
    scheduler.init(&ctx);

    let shared = Mutex::new(Shared::<W::Error> {
        deps: DepTracker::new(graph),
        queues: WorkerQueues::new(n_workers),
        recorder: TraceRecorder::with_obs(n_workers, graph.len(), obs),
        ready: Vec::new(),
        error: None,
        faults,
        failed: None,
    });
    let condvar = Condvar::new();
    let clock = if deterministic {
        Clock::Logical(AtomicU64::new(0))
    } else {
        Clock::wall()
    };
    let scheduler = Mutex::new(scheduler);

    {
        let mut s = shared.lock();
        let mut sched = scheduler.lock();
        // Workers doomed from the very start (`after_starts: 0`) die
        // before the initial dispatch can consider them.
        reap_doomed(&mut s, &ctx, &mut **sched, Time::ZERO, skip_dead_requeue);
        let initial = s.deps.initial_ready();
        let Shared {
            deps,
            queues,
            recorder,
            faults,
            failed,
            ..
        } = &mut *s;
        for t in initial {
            match faults.as_mut() {
                None => {
                    let u = exec::dispatch(
                        t,
                        Time::ZERO,
                        &ctx,
                        &mut **sched,
                        queues,
                        recorder,
                        &mut SingleNode,
                    );
                    deps.note_queued(t, u);
                }
                Some(f) => {
                    let landed = exec::dispatch_resilient(
                        t,
                        Time::ZERO,
                        &ctx,
                        &mut **sched,
                        queues,
                        recorder,
                        &mut SingleNode,
                        f.dead(),
                        Time::ZERO,
                    );
                    match landed {
                        Some(u) => deps.note_queued(t, u),
                        None => {
                            failed.get_or_insert(FailureCause::AllWorkersLost);
                            break;
                        }
                    }
                }
            }
        }
    }

    std::thread::scope(|scope| {
        for w in 0..n_workers {
            let shared = &shared;
            let condvar = &condvar;
            let ctx = &ctx;
            let scheduler = &scheduler;
            let clock = &clock;
            scope.spawn(move || {
                // Register with the (normally inert) interleaving explorer:
                // gives this thread a stable identity across replayed runs.
                parking_lot::explore::checkin(w);
                loop {
                    let work = {
                        let mut s = shared.lock();
                        loop {
                            if s.deps.is_done() || s.error.is_some() || s.failed.is_some() {
                                return;
                            }
                            if s.faults.as_ref().is_some_and(|f| f.is_dead(w)) {
                                return;
                            }
                            // First startable task in this worker's queue (the
                            // `may_start` gate supports strict schedule replay).
                            let popped = {
                                let mut sched = scheduler.lock();
                                s.queues.pop_startable_indexed(w, |t| sched.may_start(t, w))
                            };
                            if let Some((entry, skipped)) = popped {
                                let now = clock.now();
                                if s.faults.as_ref().is_some_and(|f| f.death_due(w)) {
                                    let mut sched = scheduler.lock();
                                    die_at_pop(
                                        &mut s,
                                        ctx,
                                        &mut **sched,
                                        w,
                                        entry,
                                        now,
                                        skip_dead_requeue,
                                    );
                                    condvar.notify_all();
                                    return;
                                }
                                s.deps.note_started(entry.task);
                                s.recorder.obs_mut().count_backfill(w, skipped);
                                scheduler.lock().notify_start(entry.task, w);
                                let work = match s.faults.as_mut() {
                                    None => Work::Run(entry.task, Time::ZERO, 1.0),
                                    Some(f) => {
                                        let (_, mut injected) = f.begin_attempt(entry.task);
                                        let slow = f.slowdown(w);
                                        let mut occupancy = None;
                                        if injected.is_none() {
                                            if let Some(limit) = f.policy().watchdog {
                                                // The watchdog judges the *modeled*
                                                // duration (estimate × straggler
                                                // factor), exactly as the simulator
                                                // does, so verdicts agree across
                                                // engines. A genuinely hung safe-Rust
                                                // kernel cannot be preempted; see
                                                // DESIGN.md §12.
                                                let predicted = if slow != 1.0 {
                                                    entry.exec_estimate.scale(slow)
                                                } else {
                                                    entry.exec_estimate
                                                };
                                                if predicted > limit {
                                                    injected = Some(FaultKind::Timeout);
                                                    occupancy = Some(limit);
                                                }
                                            }
                                        }
                                        f.on_start();
                                        match injected {
                                            Some(kind) => Work::Fail(entry.task, kind, occupancy),
                                            None => Work::Run(entry.task, entry.data_ready, slow),
                                        }
                                    }
                                };
                                s.queues.set_busy_until(w, now + entry.exec_estimate);
                                // This start may have pushed another worker's
                                // death threshold over; reap while still
                                // holding the lock so it cannot start anything.
                                if s.faults.is_some() {
                                    let mut sched = scheduler.lock();
                                    reap_doomed(&mut s, ctx, &mut **sched, now, skip_dead_requeue);
                                }
                                break work;
                            }
                            condvar.wait(&mut s);
                            s.recorder.obs_mut().count_wakeup(w);
                        }
                    };

                    match work {
                        Work::Fail(task, kind, occupancy) => {
                            let fail_start = clock.now();
                            if let Some(limit) = occupancy {
                                if !clock.is_logical() {
                                    // A timed-out attempt occupies the worker
                                    // for the watchdog limit (the kernel is
                                    // never run — injection replaces execution).
                                    std::thread::sleep(Duration::from_nanos(limit.as_nanos()));
                                }
                            }
                            let now = clock.now();
                            let mut s = shared.lock();
                            s.queues.set_idle(w);
                            let mut sched = scheduler.lock();
                            {
                                let Shared {
                                    deps,
                                    queues,
                                    recorder,
                                    faults,
                                    failed,
                                    ..
                                } = &mut *s;
                                let f = faults.as_mut().expect("injected failure needs fault mode");
                                let attempt = f.attempts_of(task);
                                recorder.obs_mut().on_attempt_failed(
                                    task,
                                    ctx.graph.task(task).kernel(),
                                    w,
                                    fail_start,
                                    now,
                                    attempt,
                                    kind.label(),
                                );
                                match f.record_failure(task, w, kind, now) {
                                    Some(backoff) => {
                                        recorder.obs_mut().count_retry();
                                        let landed = exec::dispatch_resilient(
                                            task,
                                            now,
                                            ctx,
                                            &mut **sched,
                                            queues,
                                            recorder,
                                            &mut SingleNode,
                                            f.dead(),
                                            backoff,
                                        );
                                        match landed {
                                            Some(u) => deps.note_queued(task, u),
                                            None => {
                                                failed.get_or_insert(FailureCause::AllWorkersLost);
                                            }
                                        }
                                    }
                                    None => {
                                        failed.get_or_insert(FailureCause::RetriesExhausted {
                                            task,
                                            attempts: f.attempts_of(task),
                                            kind,
                                        });
                                    }
                                }
                            }
                            reap_doomed(&mut s, ctx, &mut **sched, now, skip_dead_requeue);
                            condvar.notify_all();
                        }
                        Work::Run(task, data_ready, slowdown) => {
                            let now = clock.now();
                            if data_ready > now && !clock.is_logical() {
                                // Retry backoff: the re-dispatch pushed the
                                // entry's data-ready instant into the future.
                                std::thread::sleep(Duration::from_nanos(
                                    (data_ready - now).as_nanos(),
                                ));
                            }
                            let start = clock.now();
                            let result = workload.apply(ctx.graph.task(task).coords);
                            if slowdown > 1.0 && !clock.is_logical() {
                                // Model the straggler: stretch the attempt's
                                // wall time by the slowdown factor.
                                let elapsed = clock.now().saturating_sub(start);
                                std::thread::sleep(Duration::from_nanos(
                                    elapsed.scale(slowdown - 1.0).as_nanos(),
                                ));
                            }
                            let end = clock.now();

                            let mut s = shared.lock();
                            s.queues.set_idle(w);
                            match result {
                                Err(e) => {
                                    if s.faults.is_some() {
                                        // Real kernel errors are not retried:
                                        // a genuine numerical failure fails
                                        // identically on any worker.
                                        let detail = format!("{e:?}");
                                        s.failed
                                            .get_or_insert(FailureCause::Kernel { task, detail });
                                    } else {
                                        s.error.get_or_insert(e);
                                    }
                                    condvar.notify_all();
                                    return;
                                }
                                Ok(()) => {
                                    s.recorder.record(ctx.graph, w, task, start, end);
                                    let mut sched = scheduler.lock();
                                    {
                                        let Shared {
                                            deps,
                                            queues,
                                            recorder,
                                            ready,
                                            faults,
                                            failed,
                                            ..
                                        } = &mut *s;
                                        // Release into the shared scratch:
                                        // no allocation under the lock.
                                        deps.release_into(ctx.graph, task, ready);
                                        match faults.as_mut() {
                                            None => {
                                                for &succ in ready.iter() {
                                                    let u = exec::dispatch(
                                                        succ,
                                                        end,
                                                        ctx,
                                                        &mut **sched,
                                                        queues,
                                                        recorder,
                                                        &mut SingleNode,
                                                    );
                                                    deps.note_queued(succ, u);
                                                }
                                            }
                                            Some(f) => {
                                                for &succ in ready.iter() {
                                                    let landed = exec::dispatch_resilient(
                                                        succ,
                                                        end,
                                                        ctx,
                                                        &mut **sched,
                                                        queues,
                                                        recorder,
                                                        &mut SingleNode,
                                                        f.dead(),
                                                        Time::ZERO,
                                                    );
                                                    match landed {
                                                        Some(u) => deps.note_queued(succ, u),
                                                        None => {
                                                            failed.get_or_insert(
                                                                FailureCause::AllWorkersLost,
                                                            );
                                                            break;
                                                        }
                                                    }
                                                }
                                            }
                                        }
                                    }
                                    // Covers this worker's own death-after-
                                    // completion: it is idle now, so a due
                                    // threshold reaps it here and the loop's
                                    // `is_dead` check retires the thread.
                                    if s.faults.is_some() {
                                        reap_doomed(
                                            &mut s,
                                            ctx,
                                            &mut **sched,
                                            end,
                                            skip_dead_requeue,
                                        );
                                    }
                                    if !drop_release_notify {
                                        condvar.notify_all();
                                    }
                                }
                            }
                        }
                    }
                }
            });
        }
    });

    let s = shared.into_inner();
    match s.faults {
        None => {
            if let Some(e) = s.error {
                return Err(e);
            }
            assert!(s.deps.is_done(), "runtime exited with unfinished tasks");
            let (trace, makespan, obs) = s.recorder.finish_with_obs();
            Ok(RtResult {
                trace,
                makespan,
                obs,
                outcome: RunOutcome::Completed,
            })
        }
        Some(mut f) => {
            let outcome = f.classify(s.deps.is_done(), s.failed, s.deps.remaining());
            let mut recorder = s.recorder;
            recorder.record_faults(f.take_events());
            let (trace, makespan, obs) = recorder.finish_with_obs();
            Ok(RtResult {
                trace,
                makespan,
                obs,
                outcome,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{CholeskyWorkload, FnWorkload, LuWorkload, QrWorkload};
    use hetchol_core::schedule::DurationCheck;
    use hetchol_linalg::cholesky::TiledCholeskyError;
    use hetchol_linalg::generate::random_spd;
    use hetchol_linalg::matrix::TiledMatrix;
    use hetchol_linalg::verify::factorization_residual;
    use hetchol_sched::{Dmda, Dmdas, RandomScheduler};

    fn run(
        n_tiles: usize,
        nb: usize,
        n_workers: usize,
        scheduler: &mut (dyn Scheduler + Send),
    ) -> (f64, RtResult) {
        let a = random_spd(n_tiles * nb, 123);
        let m = TiledMatrix::from_dense(&a, nb);
        let graph = TaskGraph::cholesky(n_tiles);
        let profile = TimingProfile::mirage_homogeneous();
        let workload = CholeskyWorkload::new(&m);
        let r = execute_workload(
            &workload,
            &graph,
            scheduler,
            &profile,
            n_workers,
            ObsSink::disabled(),
        )
        .unwrap();
        (factorization_residual(&a, &workload.into_matrix()), r)
    }

    #[test]
    fn parallel_factorization_is_correct_dmda() {
        let (res, r) = run(5, 16, 4, &mut Dmda::new());
        assert!(res < 1e-11, "residual {res}");
        assert_eq!(r.trace.events.len(), 35);
    }

    #[test]
    fn parallel_factorization_is_correct_dmdas() {
        let (res, r) = run(6, 12, 3, &mut Dmdas::new());
        assert!(res < 1e-11, "residual {res}");
        assert_eq!(r.trace.events.len(), 56);
    }

    #[test]
    fn parallel_factorization_is_correct_random() {
        let (res, _) = run(5, 8, 4, &mut RandomScheduler::new(5));
        assert!(res < 1e-11, "residual {res}");
    }

    #[test]
    fn trace_is_structurally_valid() {
        let n_tiles = 5;
        let nb = 16;
        let n_workers = 4;
        let (_, r) = run(n_tiles, nb, n_workers, &mut Dmda::new());
        let graph = TaskGraph::cholesky(n_tiles);
        let platform = Platform::homogeneous(n_workers);
        let profile = TimingProfile::mirage_homogeneous();
        // Real durations differ from the synthetic profile: Loose check.
        r.trace
            .to_schedule()
            .validate(&graph, &platform, &profile, DurationCheck::Loose)
            .unwrap();
        assert!(r.makespan > Time::ZERO);
    }

    #[test]
    fn single_worker_executes_everything_in_order() {
        let (res, r) = run(4, 8, 1, &mut Dmda::new());
        assert!(res < 1e-11);
        // One worker: events must not overlap.
        let mut evs = r.trace.worker_events(0);
        evs.sort_by_key(|e| e.start);
        for pair in evs.windows(2) {
            assert!(pair[1].start >= pair[0].end);
        }
    }

    #[test]
    fn indefinite_matrix_surfaces_error() {
        let nb = 8;
        let n_tiles = 3;
        let a = random_spd(n_tiles * nb, 3);
        let mut m = TiledMatrix::from_dense(&a, nb);
        for v in m.tile_mut(0, 0).iter_mut() {
            *v = -1.0;
        }
        let graph = TaskGraph::cholesky(n_tiles);
        let profile = TimingProfile::mirage_homogeneous();
        let err = execute_workload(
            &CholeskyWorkload::new(&m),
            &graph,
            &mut Dmda::new(),
            &profile,
            2,
            ObsSink::disabled(),
        )
        .unwrap_err();
        assert!(matches!(
            err,
            TiledCholeskyError::NotPositiveDefinite { k: 0, .. }
        ));
    }

    #[test]
    fn threaded_lu_factorization_is_correct() {
        use hetchol_linalg::full::FullTiledMatrix;
        use hetchol_linalg::generate::random_diagonally_dominant;
        use hetchol_linalg::lu::lu_residual;
        let nb = 12;
        let n_tiles = 5;
        let a = random_diagonally_dominant(n_tiles * nb, 71);
        let m = FullTiledMatrix::from_dense(&a, nb);
        let graph = TaskGraph::lu(n_tiles);
        let profile = TimingProfile::mirage_homogeneous();
        let workload = LuWorkload::new(&m);
        let r = execute_workload(
            &workload,
            &graph,
            &mut Dmdas::new(),
            &profile,
            4,
            ObsSink::disabled(),
        )
        .unwrap();
        assert_eq!(r.trace.events.len(), graph.len());
        let res = lu_residual(&a, &workload.into_matrix());
        assert!(res < 1e-11, "residual {res}");
    }

    #[test]
    fn threaded_qr_factorization_is_correct() {
        use hetchol_linalg::qr::QrMatrix;
        use rand::{Rng, SeedableRng};
        let nb = 8;
        let n_tiles = 4;
        let n = n_tiles * nb;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(13);
        let a = hetchol_linalg::matrix::Matrix::from_fn(n, n, |_, _| rng.gen_range(-1.0..1.0));
        let graph = TaskGraph::qr(n_tiles);
        let profile = TimingProfile::mirage_homogeneous();
        let workload = QrWorkload::new(&a, nb);
        let r = execute_workload(
            &workload,
            &graph,
            &mut Dmdas::new(),
            &profile,
            4,
            ObsSink::disabled(),
        )
        .unwrap();
        assert_eq!(r.trace.events.len(), graph.len());
        let (tiles, taus) = workload.into_parts();
        let qr = QrMatrix::from_parts(tiles, taus);
        let res = qr.residual(&a);
        assert!(res < 1e-11, "residual {res}");
    }

    #[test]
    fn threaded_lu_zero_pivot_surfaces() {
        use hetchol_linalg::full::FullTiledMatrix;
        let nb = 4;
        let n_tiles = 2;
        // All-zero matrix: GETRF(0) hits a zero pivot immediately.
        let m = FullTiledMatrix::zeros(n_tiles, nb);
        let graph = TaskGraph::lu(n_tiles);
        let profile = TimingProfile::mirage_homogeneous();
        let err = execute_workload(
            &LuWorkload::new(&m),
            &graph,
            &mut Dmda::new(),
            &profile,
            2,
            ObsSink::disabled(),
        )
        .unwrap_err();
        assert!(matches!(
            err,
            hetchol_linalg::lu::TiledLuError::ZeroPivot { k: 0, .. }
        ));
    }

    #[test]
    fn obs_records_spans_and_phase_accounting_sums() {
        let nb = 8;
        let n_tiles = 6;
        let n_workers = 3;
        let a = random_spd(n_tiles * nb, 9);
        let m = TiledMatrix::from_dense(&a, nb);
        let graph = TaskGraph::cholesky(n_tiles);
        let profile = TimingProfile::mirage_homogeneous();
        let workload = CholeskyWorkload::new(&m);
        let r = execute_workload(
            &workload,
            &graph,
            &mut Dmdas::new(),
            &profile,
            n_workers,
            ObsSink::enabled(),
        )
        .unwrap();
        assert!(r.obs.enabled);
        assert_eq!(r.obs.spans.len(), graph.len());
        assert_eq!(r.obs.makespan(), r.makespan);
        assert_eq!(r.obs.counters.total_dispatched(), graph.len() as u64);
        // Shared memory: no transfer phase anywhere.
        assert_eq!(r.obs.counters.transfers, 0);
        for s in &r.obs.spans {
            assert_eq!(s.transfer_wait(), Time::ZERO, "{s:?}");
            assert!(s.queued <= s.start, "{s:?}");
        }
        // The four phase buckets partition every worker's timeline.
        for p in r.obs.worker_phases() {
            assert_eq!(p.total(), r.makespan, "worker {}", p.worker);
        }
    }

    #[test]
    fn resilient_run_with_empty_plan_completes_with_correct_factorization() {
        let nb = 8;
        let n_tiles = 4;
        let a = random_spd(n_tiles * nb, 17);
        let m = TiledMatrix::from_dense(&a, nb);
        let graph = TaskGraph::cholesky(n_tiles);
        let profile = TimingProfile::mirage_homogeneous();
        let workload = CholeskyWorkload::new(&m);
        let r = execute_resilient(
            &workload,
            &graph,
            &mut Dmda::new(),
            &profile,
            3,
            ObsSink::disabled(),
            &FaultPlan::none(),
            &RetryPolicy::default(),
        )
        .unwrap();
        assert_eq!(r.outcome, RunOutcome::Completed);
        assert_eq!(r.trace.events.len(), graph.len());
        assert!(r.trace.fault_events.is_empty());
        assert!(factorization_residual(&a, &workload.into_matrix()) < 1e-10);
    }

    #[test]
    fn killing_a_worker_mid_run_degrades_but_factorization_stays_correct() {
        let nb = 8;
        let n_tiles = 4;
        let a = random_spd(n_tiles * nb, 29);
        let m = TiledMatrix::from_dense(&a, nb);
        let graph = TaskGraph::cholesky(n_tiles);
        let profile = TimingProfile::mirage_homogeneous();
        let workload = CholeskyWorkload::new(&m);
        let plan = FaultPlan::new().kill_worker(1, 6);
        let r = execute_resilient(
            &workload,
            &graph,
            &mut Dmda::new(),
            &profile,
            3,
            ObsSink::enabled(),
            &plan,
            &RetryPolicy::default(),
        )
        .unwrap();
        assert!(
            matches!(r.outcome, RunOutcome::Degraded { ref lost_workers, .. }
                     if lost_workers == &[1]),
            "outcome: {:?}",
            r.outcome
        );
        // All tasks executed, none on worker 1 at or after its death.
        assert_eq!(r.trace.events.len(), graph.len());
        let death = r
            .trace
            .fault_events
            .iter()
            .find_map(|e| match e.kind {
                hetchol_core::fault::FaultEventKind::WorkerDied { worker: 1 } => Some(e.at),
                _ => None,
            })
            .expect("death recorded");
        for e in &r.trace.events {
            assert!(
                e.worker != 1 || e.start < death,
                "task {} ran on the dead worker",
                e.task
            );
        }
        assert_eq!(r.obs.counters.workers_lost, 1);
        assert!(factorization_residual(&a, &workload.into_matrix()) < 1e-10);
    }

    #[test]
    fn transient_failures_retry_and_the_run_degrades_gracefully() {
        let nb = 8;
        let n_tiles = 4;
        let a = random_spd(n_tiles * nb, 31);
        let m = TiledMatrix::from_dense(&a, nb);
        let graph = TaskGraph::cholesky(n_tiles);
        let profile = TimingProfile::mirage_homogeneous();
        let workload = CholeskyWorkload::new(&m);
        let first = graph.entry_tasks()[0];
        let plan = FaultPlan::new().transient(first, 2).corrupt_tile(TaskId(3));
        let r = execute_resilient(
            &workload,
            &graph,
            &mut Dmdas::new(),
            &profile,
            3,
            ObsSink::enabled(),
            &plan,
            &RetryPolicy::default(),
        )
        .unwrap();
        assert!(
            matches!(r.outcome, RunOutcome::Degraded { ref lost_workers, retries: 3 }
                     if lost_workers.is_empty()),
            "outcome: {:?}",
            r.outcome
        );
        assert_eq!(r.obs.counters.failures, 3);
        assert_eq!(r.obs.failed_attempts.len(), 3);
        assert!(factorization_residual(&a, &workload.into_matrix()) < 1e-10);
    }

    #[test]
    fn retry_exhaustion_fails_with_the_final_kind() {
        let graph = TaskGraph::cholesky(3);
        let profile = TimingProfile::mirage_homogeneous();
        let first = graph.entry_tasks()[0];
        let plan = FaultPlan::new().transient(first, 99);
        let policy = RetryPolicy {
            max_attempts: 2,
            backoff_base: Time::from_micros(10),
            ..RetryPolicy::default()
        };
        let workload = FnWorkload(|_| Ok::<(), String>(()));
        let r = execute_resilient(
            &workload,
            &graph,
            &mut Dmda::new(),
            &profile,
            2,
            ObsSink::disabled(),
            &plan,
            &policy,
        )
        .unwrap();
        assert_eq!(
            r.outcome,
            RunOutcome::Failed {
                cause: FailureCause::RetriesExhausted {
                    task: first,
                    attempts: 2,
                    kind: FaultKind::Transient,
                }
            }
        );
    }

    #[test]
    fn real_kernel_errors_are_not_retried_in_fault_mode() {
        let nb = 8;
        let n_tiles = 3;
        let a = random_spd(n_tiles * nb, 3);
        let mut m = TiledMatrix::from_dense(&a, nb);
        for v in m.tile_mut(0, 0).iter_mut() {
            *v = -1.0;
        }
        let graph = TaskGraph::cholesky(n_tiles);
        let profile = TimingProfile::mirage_homogeneous();
        let r = execute_resilient(
            &CholeskyWorkload::new(&m),
            &graph,
            &mut Dmda::new(),
            &profile,
            2,
            ObsSink::disabled(),
            &FaultPlan::none(),
            &RetryPolicy::default(),
        )
        .unwrap();
        match r.outcome {
            RunOutcome::Failed {
                cause: FailureCause::Kernel { task, ref detail },
            } => {
                assert_eq!(task, graph.entry_tasks()[0]);
                assert!(detail.contains("NotPositiveDefinite"), "detail: {detail}");
            }
            other => panic!("expected a kernel failure, got {other:?}"),
        }
    }

    #[test]
    fn impossible_configurations_are_rejected_up_front() {
        let graph = TaskGraph::cholesky(2);
        let profile = TimingProfile::mirage_homogeneous();
        let workload = FnWorkload(|_| Ok::<(), String>(()));
        assert_eq!(
            execute_resilient(
                &workload,
                &graph,
                &mut Dmda::new(),
                &profile,
                0,
                ObsSink::disabled(),
                &FaultPlan::none(),
                &RetryPolicy::default(),
            )
            .unwrap_err(),
            ConfigError::ZeroWorkers
        );
        let killer = FaultPlan::new().kill_worker(0, 0).kill_worker(1, 2);
        assert_eq!(
            execute_resilient(
                &workload,
                &graph,
                &mut Dmda::new(),
                &profile,
                2,
                ObsSink::disabled(),
                &killer,
                &RetryPolicy::default(),
            )
            .unwrap_err(),
            ConfigError::PlanKillsAllWorkers { n_workers: 2 }
        );
    }

    #[test]
    fn all_workers_participate_on_wide_graphs() {
        let (_, r) = run(8, 8, 4, &mut Dmda::new());
        for w in 0..4 {
            assert!(
                !r.trace.worker_events(w).is_empty(),
                "worker {w} never ran a task"
            );
        }
    }
}
