//! The parallel runtime: worker threads over the shared execution core.
//!
//! Dependency tracking, queue insertion and the availability estimate all
//! live in [`hetchol_core::exec`]; this module only supplies what is
//! specific to real threads — wall-clock time, the worker thread loop,
//! and error propagation from failing kernels. The single shared memory
//! node means the engine uses the default (free, instantaneous)
//! [`exec::EngineHooks`] data model.

use crate::storage::LockedTiledMatrix;
use hetchol_core::dag::TaskGraph;
use hetchol_core::exec::{self, DepTracker, SingleNode, TraceRecorder, WorkerQueues};
use hetchol_core::platform::Platform;
use hetchol_core::profiles::TimingProfile;
use hetchol_core::scheduler::{SchedContext, Scheduler};
use hetchol_core::time::Time;
use hetchol_core::trace::Trace;
use hetchol_linalg::cholesky::TiledCholeskyError;
use hetchol_linalg::matrix::TiledMatrix;
use parking_lot::{Condvar, Mutex};
use std::time::Instant;

/// Result of one real execution.
#[derive(Clone, Debug)]
pub struct RtResult {
    /// Wall-clock trace (times relative to execution start).
    pub trace: Trace,
    /// Wall-clock makespan.
    pub makespan: Time,
}

/// Engine state behind the runtime's single lock.
struct Shared<E> {
    deps: DepTracker,
    queues: WorkerQueues,
    recorder: TraceRecorder,
    error: Option<E>,
}

/// Execute the Cholesky DAG on `matrix` with `n_workers` real threads.
///
/// `profile` supplies the execution-time *estimates* the scheduler reasons
/// with (from [`crate::calibrate_profile`] or a synthetic profile);
/// the actual durations are whatever the host delivers. On success the
/// factor overwrites `matrix` and the wall-clock trace is returned.
pub fn execute(
    matrix: &mut TiledMatrix,
    graph: &TaskGraph,
    scheduler: &mut (dyn Scheduler + Send),
    profile: &TimingProfile,
    n_workers: usize,
) -> Result<RtResult, TiledCholeskyError> {
    assert_eq!(
        graph.n_tiles(),
        matrix.n_tiles(),
        "graph and matrix disagree on tile count"
    );
    let locked = LockedTiledMatrix::from_tiled(matrix);
    let result = execute_with(
        |coords| locked.apply_task(coords),
        graph,
        scheduler,
        profile,
        n_workers,
    )?;
    *matrix = locked.to_tiled();
    Ok(result)
}

/// Execute the LU DAG on a full tiled matrix with real threads
/// (extension, DESIGN.md §9). Same contract as [`execute`].
pub fn execute_lu(
    matrix: &mut hetchol_linalg::full::FullTiledMatrix,
    graph: &TaskGraph,
    scheduler: &mut (dyn Scheduler + Send),
    profile: &TimingProfile,
    n_workers: usize,
) -> Result<RtResult, hetchol_linalg::lu::TiledLuError> {
    assert_eq!(
        graph.n_tiles(),
        matrix.n_tiles(),
        "graph and matrix disagree on tile count"
    );
    let locked = crate::storage::LockedFullTiledMatrix::from_full(matrix);
    let result = execute_with(
        |coords| locked.apply_lu_task(coords),
        graph,
        scheduler,
        profile,
        n_workers,
    )?;
    *matrix = locked.to_full();
    Ok(result)
}

/// Execute the QR DAG with real threads (extension, DESIGN.md §9).
/// Returns the runtime trace plus the factored parts for verification via
/// [`hetchol_linalg::qr::QrMatrix::from_parts`].
pub fn execute_qr(
    dense: &hetchol_linalg::matrix::Matrix,
    nb: usize,
    graph: &TaskGraph,
    scheduler: &mut (dyn Scheduler + Send),
    profile: &TimingProfile,
    n_workers: usize,
) -> Result<
    (
        RtResult,
        hetchol_linalg::full::FullTiledMatrix,
        crate::storage::TauTable,
    ),
    hetchol_linalg::qr::TiledQrError,
> {
    let locked = crate::storage::LockedQrMatrix::from_dense(dense, nb);
    let result = execute_with(
        |coords| locked.apply_qr_task(coords),
        graph,
        scheduler,
        profile,
        n_workers,
    )?;
    let (tiles, taus) = locked.into_parts();
    Ok((result, tiles, taus))
}

/// Run an arbitrary task graph on `n_workers` real threads, executing each
/// task via `apply` (which must be safe to call concurrently for tasks
/// that are independent in the DAG — the per-tile locking of
/// [`crate::storage`] provides exactly that).
pub fn execute_with<E: Send>(
    apply: impl Fn(hetchol_core::task::TaskCoords) -> Result<(), E> + Sync,
    graph: &TaskGraph,
    scheduler: &mut (dyn Scheduler + Send),
    profile: &TimingProfile,
    n_workers: usize,
) -> Result<RtResult, E> {
    execute_with_inner(apply, graph, scheduler, profile, n_workers, false)
}

/// Seeded worker-loop faults for the race checker (`race-mutations`
/// feature). Each flag reintroduces a classic concurrency bug so
/// `hetchol-analyze`'s interleaving explorer can prove it would catch it.
#[cfg(feature = "race-mutations")]
#[derive(Copy, Clone, Debug, Default)]
pub struct Mutations {
    /// Skip the `notify_all` after dispatching successors — the classic
    /// lost wakeup: a worker parked on the condvar never learns its queue
    /// gained a task, and the run deadlocks under the right interleaving.
    pub drop_release_notify: bool,
}

/// [`execute_with`] with seeded faults enabled — test-only surface for the
/// race checker; never use outside the explorer's regression tests.
#[cfg(feature = "race-mutations")]
pub fn execute_with_mutated<E: Send>(
    apply: impl Fn(hetchol_core::task::TaskCoords) -> Result<(), E> + Sync,
    graph: &TaskGraph,
    scheduler: &mut (dyn Scheduler + Send),
    profile: &TimingProfile,
    n_workers: usize,
    mutations: Mutations,
) -> Result<RtResult, E> {
    execute_with_inner(
        apply,
        graph,
        scheduler,
        profile,
        n_workers,
        mutations.drop_release_notify,
    )
}

fn execute_with_inner<E: Send>(
    apply: impl Fn(hetchol_core::task::TaskCoords) -> Result<(), E> + Sync,
    graph: &TaskGraph,
    scheduler: &mut (dyn Scheduler + Send),
    profile: &TimingProfile,
    n_workers: usize,
    drop_release_notify: bool,
) -> Result<RtResult, E> {
    assert!(n_workers > 0, "need at least one worker");
    let platform = Platform::homogeneous(n_workers);
    let ctx = SchedContext {
        graph,
        platform: &platform,
        profile,
    };
    scheduler.init(&ctx);

    let shared = Mutex::new(Shared::<E> {
        deps: DepTracker::new(graph),
        queues: WorkerQueues::new(n_workers),
        recorder: TraceRecorder::new(n_workers, graph.len()),
        error: None,
    });
    let condvar = Condvar::new();
    let t0 = Instant::now();
    let scheduler = Mutex::new(scheduler);

    {
        let mut s = shared.lock();
        let mut sched = scheduler.lock();
        let Shared {
            deps,
            queues,
            recorder,
            ..
        } = &mut *s;
        for t in deps.initial_ready() {
            exec::dispatch(
                t,
                Time::ZERO,
                &ctx,
                &mut **sched,
                queues,
                recorder,
                &mut SingleNode,
            );
        }
    }

    std::thread::scope(|scope| {
        for w in 0..n_workers {
            let shared = &shared;
            let condvar = &condvar;
            let apply = &apply;
            let ctx = &ctx;
            let scheduler = &scheduler;
            scope.spawn(move || {
                // Register with the (normally inert) interleaving explorer:
                // gives this thread a stable identity across replayed runs.
                parking_lot::explore::checkin(w);
                loop {
                    let task = {
                        let mut s = shared.lock();
                        loop {
                            if s.deps.is_done() || s.error.is_some() {
                                return;
                            }
                            // First startable task in this worker's queue (the
                            // `may_start` gate supports strict schedule replay).
                            let popped = {
                                let mut sched = scheduler.lock();
                                s.queues.pop_startable(w, |t| sched.may_start(t, w))
                            };
                            if let Some(entry) = popped {
                                scheduler.lock().notify_start(entry.task, w);
                                let now = Time::from_secs_f64(t0.elapsed().as_secs_f64());
                                s.queues.set_busy_until(w, now + entry.exec_estimate);
                                break entry.task;
                            }
                            condvar.wait(&mut s);
                        }
                    };

                    let start = Time::from_secs_f64(t0.elapsed().as_secs_f64());
                    let result = apply(ctx.graph.task(task).coords);
                    let end = Time::from_secs_f64(t0.elapsed().as_secs_f64());

                    let mut s = shared.lock();
                    s.queues.set_idle(w);
                    match result {
                        Err(e) => {
                            s.error.get_or_insert(e);
                            condvar.notify_all();
                            return;
                        }
                        Ok(()) => {
                            s.recorder.record(ctx.graph, w, task, start, end);
                            let newly_ready = s.deps.release(ctx.graph, task);
                            let mut sched = scheduler.lock();
                            let Shared {
                                queues, recorder, ..
                            } = &mut *s;
                            for succ in newly_ready {
                                exec::dispatch(
                                    succ,
                                    end,
                                    ctx,
                                    &mut **sched,
                                    queues,
                                    recorder,
                                    &mut SingleNode,
                                );
                            }
                            if !drop_release_notify {
                                condvar.notify_all();
                            }
                        }
                    }
                }
            });
        }
    });

    let s = shared.into_inner();
    if let Some(e) = s.error {
        return Err(e);
    }
    assert!(s.deps.is_done(), "runtime exited with unfinished tasks");
    let (trace, makespan) = s.recorder.finish();
    Ok(RtResult { trace, makespan })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetchol_core::schedule::DurationCheck;
    use hetchol_linalg::generate::random_spd;
    use hetchol_linalg::verify::factorization_residual;
    use hetchol_sched::{Dmda, Dmdas, RandomScheduler};

    fn run(
        n_tiles: usize,
        nb: usize,
        n_workers: usize,
        scheduler: &mut (dyn Scheduler + Send),
    ) -> (f64, RtResult) {
        let a = random_spd(n_tiles * nb, 123);
        let mut m = TiledMatrix::from_dense(&a, nb);
        let graph = TaskGraph::cholesky(n_tiles);
        let profile = TimingProfile::mirage_homogeneous();
        let r = execute(&mut m, &graph, scheduler, &profile, n_workers).unwrap();
        (factorization_residual(&a, &m), r)
    }

    #[test]
    fn parallel_factorization_is_correct_dmda() {
        let (res, r) = run(5, 16, 4, &mut Dmda::new());
        assert!(res < 1e-11, "residual {res}");
        assert_eq!(r.trace.events.len(), 35);
    }

    #[test]
    fn parallel_factorization_is_correct_dmdas() {
        let (res, r) = run(6, 12, 3, &mut Dmdas::new());
        assert!(res < 1e-11, "residual {res}");
        assert_eq!(r.trace.events.len(), 56);
    }

    #[test]
    fn parallel_factorization_is_correct_random() {
        let (res, _) = run(5, 8, 4, &mut RandomScheduler::new(5));
        assert!(res < 1e-11, "residual {res}");
    }

    #[test]
    fn trace_is_structurally_valid() {
        let n_tiles = 5;
        let nb = 16;
        let n_workers = 4;
        let (_, r) = run(n_tiles, nb, n_workers, &mut Dmda::new());
        let graph = TaskGraph::cholesky(n_tiles);
        let platform = Platform::homogeneous(n_workers);
        let profile = TimingProfile::mirage_homogeneous();
        // Real durations differ from the synthetic profile: Loose check.
        r.trace
            .to_schedule()
            .validate(&graph, &platform, &profile, DurationCheck::Loose)
            .unwrap();
        assert!(r.makespan > Time::ZERO);
    }

    #[test]
    fn single_worker_executes_everything_in_order() {
        let (res, r) = run(4, 8, 1, &mut Dmda::new());
        assert!(res < 1e-11);
        // One worker: events must not overlap.
        let mut evs = r.trace.worker_events(0);
        evs.sort_by_key(|e| e.start);
        for pair in evs.windows(2) {
            assert!(pair[1].start >= pair[0].end);
        }
    }

    #[test]
    fn indefinite_matrix_surfaces_error() {
        let nb = 8;
        let n_tiles = 3;
        let a = random_spd(n_tiles * nb, 3);
        let mut m = TiledMatrix::from_dense(&a, nb);
        for v in m.tile_mut(0, 0).iter_mut() {
            *v = -1.0;
        }
        let graph = TaskGraph::cholesky(n_tiles);
        let profile = TimingProfile::mirage_homogeneous();
        let err = execute(&mut m, &graph, &mut Dmda::new(), &profile, 2).unwrap_err();
        assert!(matches!(
            err,
            TiledCholeskyError::NotPositiveDefinite { k: 0, .. }
        ));
    }

    #[test]
    fn threaded_lu_factorization_is_correct() {
        use hetchol_linalg::full::FullTiledMatrix;
        use hetchol_linalg::generate::random_diagonally_dominant;
        use hetchol_linalg::lu::lu_residual;
        let nb = 12;
        let n_tiles = 5;
        let a = random_diagonally_dominant(n_tiles * nb, 71);
        let mut m = FullTiledMatrix::from_dense(&a, nb);
        let graph = TaskGraph::lu(n_tiles);
        let profile = TimingProfile::mirage_homogeneous();
        let r = execute_lu(&mut m, &graph, &mut Dmdas::new(), &profile, 4).unwrap();
        assert_eq!(r.trace.events.len(), graph.len());
        let res = lu_residual(&a, &m);
        assert!(res < 1e-11, "residual {res}");
    }

    #[test]
    fn threaded_qr_factorization_is_correct() {
        use hetchol_linalg::qr::QrMatrix;
        use rand::{Rng, SeedableRng};
        let nb = 8;
        let n_tiles = 4;
        let n = n_tiles * nb;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(13);
        let a = hetchol_linalg::matrix::Matrix::from_fn(n, n, |_, _| rng.gen_range(-1.0..1.0));
        let graph = TaskGraph::qr(n_tiles);
        let profile = TimingProfile::mirage_homogeneous();
        let (r, tiles, taus) = execute_qr(&a, nb, &graph, &mut Dmdas::new(), &profile, 4).unwrap();
        assert_eq!(r.trace.events.len(), graph.len());
        let qr = QrMatrix::from_parts(tiles, taus);
        let res = qr.residual(&a);
        assert!(res < 1e-11, "residual {res}");
    }

    #[test]
    fn threaded_lu_zero_pivot_surfaces() {
        use hetchol_linalg::full::FullTiledMatrix;
        let nb = 4;
        let n_tiles = 2;
        // All-zero matrix: GETRF(0) hits a zero pivot immediately.
        let mut m = FullTiledMatrix::zeros(n_tiles, nb);
        let graph = TaskGraph::lu(n_tiles);
        let profile = TimingProfile::mirage_homogeneous();
        let err = execute_lu(&mut m, &graph, &mut Dmda::new(), &profile, 2).unwrap_err();
        assert!(matches!(
            err,
            hetchol_linalg::lu::TiledLuError::ZeroPivot { k: 0, .. }
        ));
    }

    #[test]
    fn all_workers_participate_on_wide_graphs() {
        let (_, r) = run(8, 8, 4, &mut Dmda::new());
        for w in 0..4 {
            assert!(
                !r.trace.worker_events(w).is_empty(),
                "worker {w} never ran a task"
            );
        }
    }
}
