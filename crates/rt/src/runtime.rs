//! The parallel runtime: worker threads over the shared execution core.
//!
//! Dependency tracking, queue insertion and the availability estimate all
//! live in [`hetchol_core::exec`]; this module only supplies what is
//! specific to real threads — wall-clock time, the worker thread loop,
//! and error propagation from failing kernels. The single shared memory
//! node means the engine uses the default (free, instantaneous)
//! [`exec::EngineHooks`] data model.

use crate::workload::{CholeskyWorkload, FnWorkload, LuWorkload, QrWorkload, Workload};
use hetchol_core::dag::TaskGraph;
use hetchol_core::exec::{self, DepTracker, SingleNode, TraceRecorder, WorkerQueues};
use hetchol_core::obs::{ObsReport, ObsSink};
use hetchol_core::platform::Platform;
use hetchol_core::profiles::TimingProfile;
use hetchol_core::scheduler::{SchedContext, Scheduler};
use hetchol_core::time::Time;
use hetchol_core::trace::Trace;
use hetchol_linalg::cholesky::TiledCholeskyError;
use hetchol_linalg::matrix::TiledMatrix;
use parking_lot::{Condvar, Mutex};
use std::time::Instant;

/// Result of one real execution.
#[derive(Clone, Debug)]
pub struct RtResult {
    /// Wall-clock trace (times relative to execution start).
    pub trace: Trace,
    /// Wall-clock makespan.
    pub makespan: Time,
    /// Structured observability record (empty unless the run was given an
    /// enabled [`ObsSink`]).
    pub obs: ObsReport,
}

/// Engine state behind the runtime's single lock.
struct Shared<E> {
    deps: DepTracker,
    queues: WorkerQueues,
    recorder: TraceRecorder,
    error: Option<E>,
}

/// Run `graph` on `n_workers` real threads, executing each task through
/// `workload` — the runtime's one generic entry.
///
/// `profile` supplies the execution-time *estimates* the scheduler reasons
/// with (from [`crate::calibrate_profile`] or a synthetic profile); the
/// actual durations are whatever the host delivers. `obs` selects
/// structured observability: [`ObsSink::disabled`] (free) or
/// [`ObsSink::enabled`] to collect per-task phase spans plus condvar
/// wakeup / backfill counters in [`RtResult::obs`].
///
/// The workload's `apply` is called concurrently for DAG-independent
/// tasks; the ready-made workloads ([`CholeskyWorkload`], [`LuWorkload`],
/// [`QrWorkload`]) make that safe with per-tile locking. The caller keeps
/// ownership of the workload and extracts results from it afterwards
/// (e.g. [`CholeskyWorkload::into_matrix`]).
pub fn execute_workload<W: Workload + ?Sized>(
    workload: &W,
    graph: &TaskGraph,
    scheduler: &mut (dyn Scheduler + Send),
    profile: &TimingProfile,
    n_workers: usize,
    obs: ObsSink,
) -> Result<RtResult, W::Error> {
    execute_with_inner(workload, graph, scheduler, profile, n_workers, obs, false)
}

/// Execute the Cholesky DAG on `matrix` with `n_workers` real threads.
#[deprecated(
    since = "0.4.0",
    note = "use `execute_workload` with `CholeskyWorkload` (or the `hetchol::Run` facade)"
)]
pub fn execute(
    matrix: &mut TiledMatrix,
    graph: &TaskGraph,
    scheduler: &mut (dyn Scheduler + Send),
    profile: &TimingProfile,
    n_workers: usize,
) -> Result<RtResult, TiledCholeskyError> {
    assert_eq!(
        graph.n_tiles(),
        matrix.n_tiles(),
        "graph and matrix disagree on tile count"
    );
    let workload = CholeskyWorkload::new(matrix);
    let result = execute_workload(
        &workload,
        graph,
        scheduler,
        profile,
        n_workers,
        ObsSink::disabled(),
    )?;
    *matrix = workload.into_matrix();
    Ok(result)
}

/// Execute the LU DAG on a full tiled matrix with real threads
/// (extension, DESIGN.md §9).
#[deprecated(
    since = "0.4.0",
    note = "use `execute_workload` with `LuWorkload` (or the `hetchol::Run` facade)"
)]
pub fn execute_lu(
    matrix: &mut hetchol_linalg::full::FullTiledMatrix,
    graph: &TaskGraph,
    scheduler: &mut (dyn Scheduler + Send),
    profile: &TimingProfile,
    n_workers: usize,
) -> Result<RtResult, hetchol_linalg::lu::TiledLuError> {
    assert_eq!(
        graph.n_tiles(),
        matrix.n_tiles(),
        "graph and matrix disagree on tile count"
    );
    let workload = LuWorkload::new(matrix);
    let result = execute_workload(
        &workload,
        graph,
        scheduler,
        profile,
        n_workers,
        ObsSink::disabled(),
    )?;
    *matrix = workload.into_matrix();
    Ok(result)
}

/// Execute the QR DAG with real threads (extension, DESIGN.md §9).
/// Returns the runtime trace plus the factored parts for verification via
/// [`hetchol_linalg::qr::QrMatrix::from_parts`].
#[deprecated(
    since = "0.4.0",
    note = "use `execute_workload` with `QrWorkload` (or the `hetchol::Run` facade)"
)]
pub fn execute_qr(
    dense: &hetchol_linalg::matrix::Matrix,
    nb: usize,
    graph: &TaskGraph,
    scheduler: &mut (dyn Scheduler + Send),
    profile: &TimingProfile,
    n_workers: usize,
) -> Result<
    (
        RtResult,
        hetchol_linalg::full::FullTiledMatrix,
        crate::storage::TauTable,
    ),
    hetchol_linalg::qr::TiledQrError,
> {
    let workload = QrWorkload::new(dense, nb);
    let result = execute_workload(
        &workload,
        graph,
        scheduler,
        profile,
        n_workers,
        ObsSink::disabled(),
    )?;
    let (tiles, taus) = workload.into_parts();
    Ok((result, tiles, taus))
}

/// Run an arbitrary task graph on `n_workers` real threads, executing each
/// task via the closure `apply`.
#[deprecated(
    since = "0.4.0",
    note = "use `execute_workload` with `FnWorkload` (or the `hetchol::Run` facade)"
)]
pub fn execute_with<E: Send>(
    apply: impl Fn(hetchol_core::task::TaskCoords) -> Result<(), E> + Sync,
    graph: &TaskGraph,
    scheduler: &mut (dyn Scheduler + Send),
    profile: &TimingProfile,
    n_workers: usize,
) -> Result<RtResult, E> {
    execute_workload(
        &FnWorkload(apply),
        graph,
        scheduler,
        profile,
        n_workers,
        ObsSink::disabled(),
    )
}

/// Seeded worker-loop faults for the race checker (`race-mutations`
/// feature). Each flag reintroduces a classic concurrency bug so
/// `hetchol-analyze`'s interleaving explorer can prove it would catch it.
#[cfg(feature = "race-mutations")]
#[derive(Copy, Clone, Debug, Default)]
pub struct Mutations {
    /// Skip the `notify_all` after dispatching successors — the classic
    /// lost wakeup: a worker parked on the condvar never learns its queue
    /// gained a task, and the run deadlocks under the right interleaving.
    pub drop_release_notify: bool,
}

/// [`execute_workload`] with seeded faults enabled — test-only surface for
/// the race checker; never use outside the explorer's regression tests.
#[cfg(feature = "race-mutations")]
pub fn execute_with_mutated<E: Send>(
    apply: impl Fn(hetchol_core::task::TaskCoords) -> Result<(), E> + Sync,
    graph: &TaskGraph,
    scheduler: &mut (dyn Scheduler + Send),
    profile: &TimingProfile,
    n_workers: usize,
    mutations: Mutations,
) -> Result<RtResult, E> {
    execute_with_inner(
        &FnWorkload(apply),
        graph,
        scheduler,
        profile,
        n_workers,
        ObsSink::disabled(),
        mutations.drop_release_notify,
    )
}

fn execute_with_inner<W: Workload + ?Sized>(
    workload: &W,
    graph: &TaskGraph,
    scheduler: &mut (dyn Scheduler + Send),
    profile: &TimingProfile,
    n_workers: usize,
    obs: ObsSink,
    drop_release_notify: bool,
) -> Result<RtResult, W::Error> {
    assert!(n_workers > 0, "need at least one worker");
    let platform = Platform::homogeneous(n_workers);
    let ctx = SchedContext {
        graph,
        platform: &platform,
        profile,
    };
    scheduler.init(&ctx);

    let shared = Mutex::new(Shared::<W::Error> {
        deps: DepTracker::new(graph),
        queues: WorkerQueues::new(n_workers),
        recorder: TraceRecorder::with_obs(n_workers, graph.len(), obs),
        error: None,
    });
    let condvar = Condvar::new();
    let t0 = Instant::now();
    let scheduler = Mutex::new(scheduler);

    {
        let mut s = shared.lock();
        let mut sched = scheduler.lock();
        let Shared {
            deps,
            queues,
            recorder,
            ..
        } = &mut *s;
        for t in deps.initial_ready() {
            exec::dispatch(
                t,
                Time::ZERO,
                &ctx,
                &mut **sched,
                queues,
                recorder,
                &mut SingleNode,
            );
        }
    }

    std::thread::scope(|scope| {
        for w in 0..n_workers {
            let shared = &shared;
            let condvar = &condvar;
            let ctx = &ctx;
            let scheduler = &scheduler;
            scope.spawn(move || {
                // Register with the (normally inert) interleaving explorer:
                // gives this thread a stable identity across replayed runs.
                parking_lot::explore::checkin(w);
                loop {
                    let task = {
                        let mut s = shared.lock();
                        loop {
                            if s.deps.is_done() || s.error.is_some() {
                                return;
                            }
                            // First startable task in this worker's queue (the
                            // `may_start` gate supports strict schedule replay).
                            let popped = {
                                let mut sched = scheduler.lock();
                                s.queues.pop_startable_indexed(w, |t| sched.may_start(t, w))
                            };
                            if let Some((entry, skipped)) = popped {
                                s.recorder.obs_mut().count_backfill(w, skipped);
                                scheduler.lock().notify_start(entry.task, w);
                                let now = Time::from_secs_f64(t0.elapsed().as_secs_f64());
                                s.queues.set_busy_until(w, now + entry.exec_estimate);
                                break entry.task;
                            }
                            condvar.wait(&mut s);
                            s.recorder.obs_mut().count_wakeup(w);
                        }
                    };

                    let start = Time::from_secs_f64(t0.elapsed().as_secs_f64());
                    let result = workload.apply(ctx.graph.task(task).coords);
                    let end = Time::from_secs_f64(t0.elapsed().as_secs_f64());

                    let mut s = shared.lock();
                    s.queues.set_idle(w);
                    match result {
                        Err(e) => {
                            s.error.get_or_insert(e);
                            condvar.notify_all();
                            return;
                        }
                        Ok(()) => {
                            s.recorder.record(ctx.graph, w, task, start, end);
                            let newly_ready = s.deps.release(ctx.graph, task);
                            let mut sched = scheduler.lock();
                            let Shared {
                                queues, recorder, ..
                            } = &mut *s;
                            for succ in newly_ready {
                                exec::dispatch(
                                    succ,
                                    end,
                                    ctx,
                                    &mut **sched,
                                    queues,
                                    recorder,
                                    &mut SingleNode,
                                );
                            }
                            if !drop_release_notify {
                                condvar.notify_all();
                            }
                        }
                    }
                }
            });
        }
    });

    let s = shared.into_inner();
    if let Some(e) = s.error {
        return Err(e);
    }
    assert!(s.deps.is_done(), "runtime exited with unfinished tasks");
    let (trace, makespan, obs) = s.recorder.finish_with_obs();
    Ok(RtResult {
        trace,
        makespan,
        obs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetchol_core::schedule::DurationCheck;
    use hetchol_linalg::generate::random_spd;
    use hetchol_linalg::verify::factorization_residual;
    use hetchol_sched::{Dmda, Dmdas, RandomScheduler};

    fn run(
        n_tiles: usize,
        nb: usize,
        n_workers: usize,
        scheduler: &mut (dyn Scheduler + Send),
    ) -> (f64, RtResult) {
        let a = random_spd(n_tiles * nb, 123);
        let m = TiledMatrix::from_dense(&a, nb);
        let graph = TaskGraph::cholesky(n_tiles);
        let profile = TimingProfile::mirage_homogeneous();
        let workload = CholeskyWorkload::new(&m);
        let r = execute_workload(
            &workload,
            &graph,
            scheduler,
            &profile,
            n_workers,
            ObsSink::disabled(),
        )
        .unwrap();
        (factorization_residual(&a, &workload.into_matrix()), r)
    }

    #[test]
    fn parallel_factorization_is_correct_dmda() {
        let (res, r) = run(5, 16, 4, &mut Dmda::new());
        assert!(res < 1e-11, "residual {res}");
        assert_eq!(r.trace.events.len(), 35);
    }

    #[test]
    fn parallel_factorization_is_correct_dmdas() {
        let (res, r) = run(6, 12, 3, &mut Dmdas::new());
        assert!(res < 1e-11, "residual {res}");
        assert_eq!(r.trace.events.len(), 56);
    }

    #[test]
    fn parallel_factorization_is_correct_random() {
        let (res, _) = run(5, 8, 4, &mut RandomScheduler::new(5));
        assert!(res < 1e-11, "residual {res}");
    }

    #[test]
    fn trace_is_structurally_valid() {
        let n_tiles = 5;
        let nb = 16;
        let n_workers = 4;
        let (_, r) = run(n_tiles, nb, n_workers, &mut Dmda::new());
        let graph = TaskGraph::cholesky(n_tiles);
        let platform = Platform::homogeneous(n_workers);
        let profile = TimingProfile::mirage_homogeneous();
        // Real durations differ from the synthetic profile: Loose check.
        r.trace
            .to_schedule()
            .validate(&graph, &platform, &profile, DurationCheck::Loose)
            .unwrap();
        assert!(r.makespan > Time::ZERO);
    }

    #[test]
    fn single_worker_executes_everything_in_order() {
        let (res, r) = run(4, 8, 1, &mut Dmda::new());
        assert!(res < 1e-11);
        // One worker: events must not overlap.
        let mut evs = r.trace.worker_events(0);
        evs.sort_by_key(|e| e.start);
        for pair in evs.windows(2) {
            assert!(pair[1].start >= pair[0].end);
        }
    }

    #[test]
    fn indefinite_matrix_surfaces_error() {
        let nb = 8;
        let n_tiles = 3;
        let a = random_spd(n_tiles * nb, 3);
        let mut m = TiledMatrix::from_dense(&a, nb);
        for v in m.tile_mut(0, 0).iter_mut() {
            *v = -1.0;
        }
        let graph = TaskGraph::cholesky(n_tiles);
        let profile = TimingProfile::mirage_homogeneous();
        let err = execute_workload(
            &CholeskyWorkload::new(&m),
            &graph,
            &mut Dmda::new(),
            &profile,
            2,
            ObsSink::disabled(),
        )
        .unwrap_err();
        assert!(matches!(
            err,
            TiledCholeskyError::NotPositiveDefinite { k: 0, .. }
        ));
    }

    #[test]
    fn threaded_lu_factorization_is_correct() {
        use hetchol_linalg::full::FullTiledMatrix;
        use hetchol_linalg::generate::random_diagonally_dominant;
        use hetchol_linalg::lu::lu_residual;
        let nb = 12;
        let n_tiles = 5;
        let a = random_diagonally_dominant(n_tiles * nb, 71);
        let m = FullTiledMatrix::from_dense(&a, nb);
        let graph = TaskGraph::lu(n_tiles);
        let profile = TimingProfile::mirage_homogeneous();
        let workload = LuWorkload::new(&m);
        let r = execute_workload(
            &workload,
            &graph,
            &mut Dmdas::new(),
            &profile,
            4,
            ObsSink::disabled(),
        )
        .unwrap();
        assert_eq!(r.trace.events.len(), graph.len());
        let res = lu_residual(&a, &workload.into_matrix());
        assert!(res < 1e-11, "residual {res}");
    }

    #[test]
    fn threaded_qr_factorization_is_correct() {
        use hetchol_linalg::qr::QrMatrix;
        use rand::{Rng, SeedableRng};
        let nb = 8;
        let n_tiles = 4;
        let n = n_tiles * nb;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(13);
        let a = hetchol_linalg::matrix::Matrix::from_fn(n, n, |_, _| rng.gen_range(-1.0..1.0));
        let graph = TaskGraph::qr(n_tiles);
        let profile = TimingProfile::mirage_homogeneous();
        let workload = QrWorkload::new(&a, nb);
        let r = execute_workload(
            &workload,
            &graph,
            &mut Dmdas::new(),
            &profile,
            4,
            ObsSink::disabled(),
        )
        .unwrap();
        assert_eq!(r.trace.events.len(), graph.len());
        let (tiles, taus) = workload.into_parts();
        let qr = QrMatrix::from_parts(tiles, taus);
        let res = qr.residual(&a);
        assert!(res < 1e-11, "residual {res}");
    }

    #[test]
    fn threaded_lu_zero_pivot_surfaces() {
        use hetchol_linalg::full::FullTiledMatrix;
        let nb = 4;
        let n_tiles = 2;
        // All-zero matrix: GETRF(0) hits a zero pivot immediately.
        let m = FullTiledMatrix::zeros(n_tiles, nb);
        let graph = TaskGraph::lu(n_tiles);
        let profile = TimingProfile::mirage_homogeneous();
        let err = execute_workload(
            &LuWorkload::new(&m),
            &graph,
            &mut Dmda::new(),
            &profile,
            2,
            ObsSink::disabled(),
        )
        .unwrap_err();
        assert!(matches!(
            err,
            hetchol_linalg::lu::TiledLuError::ZeroPivot { k: 0, .. }
        ));
    }

    #[test]
    fn obs_records_spans_and_phase_accounting_sums() {
        let nb = 8;
        let n_tiles = 6;
        let n_workers = 3;
        let a = random_spd(n_tiles * nb, 9);
        let m = TiledMatrix::from_dense(&a, nb);
        let graph = TaskGraph::cholesky(n_tiles);
        let profile = TimingProfile::mirage_homogeneous();
        let workload = CholeskyWorkload::new(&m);
        let r = execute_workload(
            &workload,
            &graph,
            &mut Dmdas::new(),
            &profile,
            n_workers,
            ObsSink::enabled(),
        )
        .unwrap();
        assert!(r.obs.enabled);
        assert_eq!(r.obs.spans.len(), graph.len());
        assert_eq!(r.obs.makespan(), r.makespan);
        assert_eq!(r.obs.counters.total_dispatched(), graph.len() as u64);
        // Shared memory: no transfer phase anywhere.
        assert_eq!(r.obs.counters.transfers, 0);
        for s in &r.obs.spans {
            assert_eq!(s.transfer_wait(), Time::ZERO, "{s:?}");
            assert!(s.queued <= s.start, "{s:?}");
        }
        // The four phase buckets partition every worker's timeline.
        for p in r.obs.worker_phases() {
            assert_eq!(p.total(), r.makespan, "worker {}", p.worker);
        }
    }

    #[test]
    fn all_workers_participate_on_wide_graphs() {
        let (_, r) = run(8, 8, 4, &mut Dmda::new());
        for w in 0..4 {
            assert!(
                !r.trace.worker_events(w).is_empty(),
                "worker {w} never ran a task"
            );
        }
    }
}
