//! The frozen pre-arena engine, kept as the equivalence oracle.
//!
//! This module is a verbatim snapshot of the simulator's hot path as it
//! stood *before* the data-oriented refactor (DESIGN.md §13): per-task
//! allocations in dependency release, `Vec<Vec<_>>` worker queues whose
//! pop shifts the remaining entries, a fresh availability vector per
//! dispatch, a `BinaryHeap` of 6-tuples as the event loop, and a
//! `HashMap`-keyed tile residency re-hashed (plus a fresh access `Vec`
//! allocated) on every scheduler estimate. It shares only the parts the
//! refactor did not touch — the PCI link model, jitter, fault state and
//! the trace recorder — so a bit-for-bit comparison against
//! [`crate::simulate_with`] isolates exactly the refactored structures.
//!
//! Two consumers, neither on any production path:
//!
//! * the equivalence property tests (`tests/equivalence.rs`), which assert
//!   bitwise-identical traces, queue decisions, transfers and outcome
//!   classification across random platforms × schedulers × seeds;
//! * the `repro bench` harness, whose committed *baseline leg*
//!   (`BENCH_sim_throughput.json`) is measured against this engine so the
//!   before/after comparison stays reproducible on any machine.

use crate::data::Links;
use crate::engine::{SimOptions, SimResult};
use hetchol_core::dag::TaskGraph;
use hetchol_core::exec::{QueueEntry, TraceRecorder};
use hetchol_core::fault::{
    ConfigError, FailureCause, FaultKind, FaultPlan, FaultState, RetryPolicy, RunOutcome,
};
use hetchol_core::obs::ObsSink;
use hetchol_core::platform::{MemNode, Platform, WorkerId};
use hetchol_core::profiles::TimingProfile;
use hetchol_core::scheduler::{ExecutionView, SchedContext, Scheduler};
use hetchol_core::task::{TaskId, Tile};
use hetchol_core::time::Time;
use hetchol_core::trace::TransferEvent;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

/// Pending completion events: min-heap on `(finish time, seq)`, carrying
/// `(worker, task, start, injected failure)` — the pre-refactor event
/// queue, replaced by the typed calendar queue in [`crate::engine`].
type EventHeap = BinaryHeap<Reverse<(Time, u64, WorkerId, TaskId, Time, Option<FaultKind>)>>;

/// The pre-refactor tile residency, verbatim: a `HashMap` keyed by tile
/// coordinates, re-hashed on every scheduler estimate. Replaced by the
/// flat bitmask vector in [`crate::data::Residency`].
struct RefResidency {
    /// Bitmask of valid nodes per tile; absent tiles are valid at the host
    /// only (node 0), which is where the matrix starts.
    valid: HashMap<Tile, u64>,
}

impl RefResidency {
    fn new(n_nodes: usize) -> RefResidency {
        assert!(n_nodes <= 64, "residency bitmask supports up to 64 nodes");
        RefResidency {
            valid: HashMap::new(),
        }
    }

    fn mask(&self, tile: Tile) -> u64 {
        *self.valid.get(&tile).unwrap_or(&1) // default: host only
    }

    fn is_valid_at(&self, tile: Tile, node: MemNode) -> bool {
        self.mask(tile) & (1 << node) != 0
    }

    fn source_for(&self, tile: Tile) -> MemNode {
        let m = self.mask(tile);
        debug_assert!(m != 0, "a tile must be valid somewhere");
        if m & 1 != 0 {
            return 0;
        }
        m.trailing_zeros() as usize
    }

    fn add_copy(&mut self, tile: Tile, node: MemNode) {
        let m = self.mask(tile) | (1 << node);
        self.valid.insert(tile, m);
    }

    fn write_at(&mut self, tile: Tile, node: MemNode) {
        self.valid.insert(tile, 1 << node);
    }
}

/// The pre-refactor data model, verbatim: hash-map residency and a fresh
/// access `Vec` allocated per hook call (`coords.accesses()`), where the
/// arena engine walks a precomputed flat access table.
struct RefSimData<'a> {
    platform: &'a Platform,
    graph: &'a TaskGraph,
    residency: RefResidency,
    links: Links,
    transfers: Vec<TransferEvent>,
}

impl<'a> RefSimData<'a> {
    fn new(platform: &'a Platform, graph: &'a TaskGraph) -> RefSimData<'a> {
        RefSimData {
            platform,
            graph,
            residency: RefResidency::new(platform.n_nodes()),
            links: Links::new(platform.n_nodes()),
            transfers: Vec::new(),
        }
    }

    fn invalidate_writes(&mut self, task: TaskId, w: WorkerId) {
        let node = self.platform.node_of(w);
        for access in self.graph.task(task).coords.accesses() {
            if access.mode.is_write() {
                self.residency.write_at(access.tile, node);
            }
        }
    }

    fn merge_transfers(&mut self, recorder: &mut TraceRecorder) {
        recorder.transfers_mut().append(&mut self.transfers);
    }

    fn transfer_estimate(&self, task: TaskId, w: WorkerId) -> Time {
        let node = self.platform.node_of(w);
        let mut total = Time::ZERO;
        for access in self.graph.task(task).coords.accesses() {
            if !self.residency.is_valid_at(access.tile, node) {
                let src = self.residency.source_for(access.tile);
                total += Links::estimate(self.platform, src, node);
            }
        }
        total
    }

    fn data_ready(&mut self, task: TaskId, w: WorkerId, now: Time) -> Time {
        let node = self.platform.node_of(w);
        let mut data_ready = now;
        for access in self.graph.task(task).coords.accesses() {
            if !self.residency.is_valid_at(access.tile, node) {
                let src = self.residency.source_for(access.tile);
                let end = self.links.transfer(
                    self.platform,
                    access.tile,
                    src,
                    node,
                    now,
                    &mut self.transfers,
                );
                self.residency.add_copy(access.tile, node);
                data_ready = data_ready.max(end);
            }
        }
        data_ready
    }
}

/// The pre-arena dependency tracker: `usize` indegrees, a separate
/// released-bitmap, and a fresh `Vec` allocated per release.
struct RefDepTracker {
    indeg: Vec<usize>,
    released: Vec<bool>,
    remaining: usize,
}

impl RefDepTracker {
    fn new(graph: &TaskGraph) -> RefDepTracker {
        RefDepTracker {
            indeg: graph.indegrees(),
            released: vec![false; graph.len()],
            remaining: graph.len(),
        }
    }

    fn initial_ready(&self) -> Vec<TaskId> {
        self.indeg
            .iter()
            .enumerate()
            .filter(|&(_, &d)| d == 0)
            .map(|(i, _)| TaskId(i as u32))
            .collect()
    }

    fn release(&mut self, graph: &TaskGraph, task: TaskId) -> Vec<TaskId> {
        assert!(
            !std::mem::replace(&mut self.released[task.index()], true),
            "{task} released twice"
        );
        assert_eq!(self.indeg[task.index()], 0);
        self.remaining -= 1;
        let mut newly_ready = Vec::new();
        for &s in graph.successors(task) {
            self.indeg[s.index()] -= 1;
            if self.indeg[s.index()] == 0 {
                newly_ready.push(s);
            }
        }
        newly_ready
    }

    fn is_done(&self) -> bool {
        self.remaining == 0
    }

    fn remaining(&self) -> usize {
        self.remaining
    }
}

/// The pre-arena worker queues: nested `Vec<Vec<_>>`, sorted insertion via
/// `Vec::insert`, and a pop that shifts every remaining entry left.
struct RefQueues {
    queues: Vec<Vec<QueueEntry>>,
    queued_exec: Vec<Time>,
    busy: Vec<bool>,
    busy_until: Vec<Time>,
    seq: u64,
}

impl RefQueues {
    fn new(n_workers: usize) -> RefQueues {
        RefQueues {
            queues: vec![Vec::new(); n_workers],
            queued_exec: vec![Time::ZERO; n_workers],
            busy: vec![false; n_workers],
            busy_until: vec![Time::ZERO; n_workers],
            seq: 0,
        }
    }

    fn n_workers(&self) -> usize {
        self.queues.len()
    }

    fn worker_available_at(&self, w: WorkerId, now: Time) -> Time {
        let base = if self.busy[w] {
            self.busy_until[w].max(now)
        } else {
            now
        };
        base + self.queued_exec[w]
    }

    /// The per-dispatch allocation the arena path eliminated.
    fn availability(&self, now: Time) -> Vec<Time> {
        (0..self.n_workers())
            .map(|w| self.worker_available_at(w, now))
            .collect()
    }

    fn enqueue(
        &mut self,
        w: WorkerId,
        task: TaskId,
        prio: i64,
        data_ready: Time,
        exec_estimate: Time,
        sorted: bool,
    ) -> u64 {
        let entry = QueueEntry {
            task,
            prio,
            seq: self.seq,
            data_ready,
            exec_estimate,
        };
        self.seq += 1;
        self.queued_exec[w] += exec_estimate;
        let queue = &mut self.queues[w];
        if sorted {
            let pos = queue.partition_point(|q| (-q.prio, q.seq) <= (-entry.prio, entry.seq));
            queue.insert(pos, entry);
        } else {
            queue.push(entry);
        }
        entry.seq
    }

    /// The O(queue length) pop: `Vec::remove` shifts the tail.
    fn pop_startable_indexed(
        &mut self,
        w: WorkerId,
        mut may_start: impl FnMut(TaskId) -> bool,
    ) -> Option<(QueueEntry, usize)> {
        let pos = (0..self.queues[w].len()).find(|&i| may_start(self.queues[w][i].task))?;
        let entry = self.queues[w].remove(pos);
        self.queued_exec[w] = self.queued_exec[w].saturating_sub(entry.exec_estimate);
        Some((entry, pos))
    }

    fn depth(&self, w: WorkerId) -> usize {
        self.queues[w].len()
    }

    fn set_busy_until(&mut self, w: WorkerId, until: Time) {
        self.busy[w] = true;
        self.busy_until[w] = until;
    }

    fn set_idle(&mut self, w: WorkerId) {
        self.busy[w] = false;
    }

    fn is_busy(&self, w: WorkerId) -> bool {
        self.busy[w]
    }

    fn drain_worker(&mut self, w: WorkerId) -> Vec<QueueEntry> {
        self.queued_exec[w] = Time::ZERO;
        std::mem::take(&mut self.queues[w])
    }
}

/// The pre-refactor execution view: owns its availability vector.
struct RefView<'a> {
    now: Time,
    avail: Vec<Time>,
    hooks: &'a RefSimData<'a>,
}

impl ExecutionView for RefView<'_> {
    fn now(&self) -> Time {
        self.now
    }
    fn worker_available_at(&self, w: WorkerId) -> Time {
        self.avail[w]
    }
    fn transfer_estimate(&self, task: TaskId, w: WorkerId) -> Time {
        self.hooks.transfer_estimate(task, w)
    }
}

/// Availability sentinel for dead workers (same constant as the core).
const DEAD_AVAILABILITY: Time = Time::from_secs(86_400 * 365);

/// The pre-refactor dispatcher: allocates the availability vector, builds
/// an owning view, then enqueues — byte-for-byte the decision sequence of
/// the old `exec::dispatch_inner`.
#[allow(clippy::too_many_arguments)]
fn dispatch(
    task: TaskId,
    now: Time,
    ctx: &SchedContext,
    scheduler: &mut dyn Scheduler,
    queues: &mut RefQueues,
    recorder: &mut TraceRecorder,
    data: &mut RefSimData,
    dead: Option<&[bool]>,
    extra_delay: Time,
) -> Option<WorkerId> {
    let is_dead = |w: WorkerId| dead.is_some_and(|d| d.get(w).copied().unwrap_or(false));
    let mut w = {
        let mut avail = queues.availability(now);
        if dead.is_some() {
            for (v, a) in avail.iter_mut().enumerate() {
                if is_dead(v) {
                    *a = DEAD_AVAILABILITY;
                }
            }
        }
        let view = RefView {
            now,
            avail,
            hooks: data,
        };
        scheduler.assign(task, ctx, &view)
    };
    assert!(w < queues.n_workers());
    if is_dead(w) {
        w = (0..queues.n_workers())
            .filter(|&v| !is_dead(v))
            .min_by_key(|&v| {
                (
                    queues
                        .worker_available_at(v, now)
                        .saturating_add(data.transfer_estimate(task, v)),
                    v,
                )
            })?;
    }
    let prio = scheduler.priority(task, ctx);
    let exec_estimate = ctx
        .profile
        .time(ctx.graph.task(task).kernel(), ctx.platform.class_of(w));
    let data_ready = data
        .data_ready(task, w, now)
        .max(now.saturating_add(extra_delay));
    let seq = queues.enqueue(
        w,
        task,
        prio,
        data_ready,
        exec_estimate,
        scheduler.sorted_queues(),
    );
    let event = hetchol_core::trace::QueueEvent {
        worker: w,
        task,
        prio,
        seq,
        at: now,
        data_ready,
    };
    recorder
        .obs_mut()
        .on_dispatch(ctx.graph.task(task).kernel(), &event, queues.depth(w));
    recorder.record_enqueue(event);
    Some(w)
}

/// `reap_doomed` as the pre-refactor loop ran it.
fn reap_doomed(
    now: Time,
    ctx: &SchedContext,
    scheduler: &mut dyn Scheduler,
    queues: &mut RefQueues,
    recorder: &mut TraceRecorder,
    data: &mut RefSimData,
    f: &mut FaultState,
) -> Option<FailureCause> {
    for w in f.doomed_workers() {
        if queues.is_busy(w) {
            continue;
        }
        f.mark_dead(w, now);
        recorder.obs_mut().count_worker_lost(w, now);
        for entry in queues.drain_worker(w) {
            let landed = dispatch(
                entry.task,
                now,
                ctx,
                scheduler,
                queues,
                recorder,
                data,
                Some(f.dead()),
                Time::ZERO,
            );
            if landed.is_none() {
                return Some(FailureCause::AllWorkersLost);
            }
        }
    }
    None
}

/// Simulate with the frozen pre-refactor engine (fault-free). Must remain
/// bit-identical to [`crate::simulate_with`]; the equivalence suite and
/// the benchmark baseline leg both depend on it.
pub fn simulate_reference(
    graph: &TaskGraph,
    platform: &Platform,
    profile: &TimingProfile,
    scheduler: &mut dyn Scheduler,
    opts: &SimOptions,
    obs: ObsSink,
) -> SimResult {
    run_reference(graph, platform, profile, scheduler, opts, obs, None)
}

/// [`simulate_reference`] under fault injection — the pre-refactor
/// resilient loop, for `RunOutcome`-classification equivalence.
#[allow(clippy::too_many_arguments)]
pub fn simulate_resilient_reference(
    graph: &TaskGraph,
    platform: &Platform,
    profile: &TimingProfile,
    scheduler: &mut dyn Scheduler,
    opts: &SimOptions,
    obs: ObsSink,
    plan: &FaultPlan,
    policy: &RetryPolicy,
) -> Result<SimResult, ConfigError> {
    let n_workers = platform.n_workers();
    if n_workers == 0 {
        return Err(ConfigError::ZeroWorkers);
    }
    if plan.kills_all_workers(n_workers) {
        return Err(ConfigError::PlanKillsAllWorkers { n_workers });
    }
    let mut faults = FaultState::new(plan, *policy, graph.len(), n_workers);
    Ok(run_reference(
        graph,
        platform,
        profile,
        scheduler,
        opts,
        obs,
        Some(&mut faults),
    ))
}

/// The pre-refactor engine loop, verbatim.
fn run_reference(
    graph: &TaskGraph,
    platform: &Platform,
    profile: &TimingProfile,
    scheduler: &mut dyn Scheduler,
    opts: &SimOptions,
    obs: ObsSink,
    mut faults: Option<&mut FaultState>,
) -> SimResult {
    let ctx = SchedContext {
        graph,
        platform,
        profile,
    };
    scheduler.init(&ctx);

    let n_workers = platform.n_workers();
    let mut deps = RefDepTracker::new(graph);
    let mut queues = RefQueues::new(n_workers);
    let mut recorder = TraceRecorder::with_obs(n_workers, graph.len(), obs);
    let mut data = RefSimData::new(platform, graph);
    let mut rng = ChaCha8Rng::seed_from_u64(opts.seed);
    let mut events: EventHeap = BinaryHeap::new();
    let mut heap_seq = 0u64;
    let mut now = Time::ZERO;
    let mut abort: Option<FailureCause> = None;

    if let Some(f) = faults.as_deref_mut() {
        abort = reap_doomed(
            now,
            &ctx,
            scheduler,
            &mut queues,
            &mut recorder,
            &mut data,
            f,
        );
    }

    if abort.is_none() {
        for t in deps.initial_ready() {
            let dead = faults.as_deref().map(|f| f.dead().to_vec());
            let landed = dispatch(
                t,
                now,
                &ctx,
                scheduler,
                &mut queues,
                &mut recorder,
                &mut data,
                dead.as_deref(),
                Time::ZERO,
            );
            if landed.is_none() {
                abort = Some(FailureCause::AllWorkersLost);
                break;
            }
        }
    }

    'main: while abort.is_none() {
        if let Some(f) = faults.as_deref_mut() {
            if let Some(cause) = reap_doomed(
                now,
                &ctx,
                scheduler,
                &mut queues,
                &mut recorder,
                &mut data,
                f,
            ) {
                abort = Some(cause);
                break 'main;
            }
        }

        for w in 0..n_workers {
            if queues.is_busy(w) {
                continue;
            }
            if faults.as_deref().is_some_and(|f| f.is_dead(w)) {
                continue;
            }
            let Some((entry, skipped)) =
                queues.pop_startable_indexed(w, |t| scheduler.may_start(t, w))
            else {
                continue;
            };
            recorder.obs_mut().count_backfill(w, skipped);
            scheduler.notify_start(entry.task, w);
            let start = now.max(entry.data_ready);
            let mut duration = opts.jitter.apply(entry.exec_estimate, &mut rng);
            let mut injected: Option<FaultKind> = None;
            if let Some(f) = faults.as_deref_mut() {
                let (_, inj) = f.begin_attempt(entry.task);
                injected = inj;
                let slow = f.slowdown(w);
                if slow != 1.0 {
                    duration = duration.scale(slow);
                }
                if injected.is_none() {
                    if let Some(limit) = f.policy().watchdog {
                        let predicted = if slow != 1.0 {
                            entry.exec_estimate.scale(slow)
                        } else {
                            entry.exec_estimate
                        };
                        if predicted > limit {
                            injected = Some(FaultKind::Timeout);
                            duration = limit;
                        }
                    }
                }
                f.on_start();
            }
            let end = start + duration;
            queues.set_busy_until(w, end);
            events.push(Reverse((end, heap_seq, w, entry.task, start, injected)));
            heap_seq += 1;
            if let Some(f) = faults.as_deref_mut() {
                if let Some(cause) = reap_doomed(
                    now,
                    &ctx,
                    scheduler,
                    &mut queues,
                    &mut recorder,
                    &mut data,
                    f,
                ) {
                    abort = Some(cause);
                    break 'main;
                }
            }
        }

        let Some(Reverse((t_end, _, w, task, t_start, injected))) = events.pop() else {
            break;
        };
        now = t_end;
        queues.set_idle(w);

        if let Some(kind) = injected {
            let f = faults
                .as_deref_mut()
                .expect("injected failure without fault state");
            let attempt = f.attempts_of(task);
            recorder.obs_mut().on_attempt_failed(
                task,
                graph.task(task).kernel(),
                w,
                t_start,
                t_end,
                attempt,
                kind.label(),
            );
            match f.record_failure(task, w, kind, now) {
                Some(backoff) => {
                    recorder.obs_mut().count_retry();
                    let landed = dispatch(
                        task,
                        now,
                        &ctx,
                        scheduler,
                        &mut queues,
                        &mut recorder,
                        &mut data,
                        Some(f.dead()),
                        backoff,
                    );
                    if landed.is_none() {
                        abort = Some(FailureCause::AllWorkersLost);
                        break 'main;
                    }
                }
                None => {
                    abort = Some(FailureCause::RetriesExhausted {
                        task,
                        attempts: f.attempts_of(task),
                        kind,
                    });
                    break 'main;
                }
            }
            continue 'main;
        }

        recorder.record(graph, w, task, t_start, t_end);
        data.invalidate_writes(task, w);
        for s in deps.release(graph, task) {
            let dead = faults.as_deref().map(|f| f.dead().to_vec());
            let landed = dispatch(
                s,
                now,
                &ctx,
                scheduler,
                &mut queues,
                &mut recorder,
                &mut data,
                dead.as_deref(),
                Time::ZERO,
            );
            if landed.is_none() {
                abort = Some(FailureCause::AllWorkersLost);
                break 'main;
            }
        }
    }

    let outcome = match faults {
        None => {
            assert!(
                deps.is_done(),
                "simulation deadlocked: {} tasks incomplete",
                deps.remaining()
            );
            RunOutcome::Completed
        }
        Some(f) => {
            let outcome = f.classify(deps.is_done(), abort, deps.remaining());
            recorder.record_faults(f.take_events());
            outcome
        }
    };
    data.merge_transfers(&mut recorder);
    let (trace, makespan, obs) = recorder.finish_with_obs();
    SimResult {
        trace,
        makespan,
        obs,
        outcome,
    }
}
