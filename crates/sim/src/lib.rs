//! # hetchol-sim
//!
//! A discrete-event simulator of a StarPU-like task runtime on a
//! heterogeneous platform — the stand-in for the paper's StarPU + SimGrid
//! stack (Section IV).
//!
//! The simulated runtime follows StarPU's push-model semantics:
//!
//! 1. When a task's dependencies complete it becomes *ready* and the
//!    scheduler's `assign` hook picks a worker (this is where `dmda`-style
//!    completion-time estimation happens).
//! 2. The task joins that worker's queue — FIFO for `dmda`, sorted by
//!    priority for `dmdas` — and its missing input tiles are *prefetched*
//!    to the worker's memory node over the PCI link model (transfers
//!    overlap other workers' computation, as the paper observes they do).
//! 3. When the worker becomes idle it starts its next queued task as soon
//!    as the task's data is resident, runs it for the calibrated duration
//!    (optionally jittered in *actual-execution* mode), and completion
//!    releases successors.
//!
//! Tile residency follows an MSI-style protocol: a write invalidates all
//! other copies; reads replicate. PCI links are full-duplex FIFO queues
//! with latency + bandwidth (a first-order version of SimGrid's fluid
//! model).
//!
//! [`SimOptions`] selects between the paper's two modes:
//! * *simulation mode* (default): deterministic, durations exactly `T_rt`;
//! * *actual mode* ([`SimOptions::actual`]): per-task runtime overhead and
//!   multiplicative duration jitter, reproducing the mean-shift and the
//!   run-to-run variance of real executions (Figures 3, 6 and 11).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod data;
pub mod engine;
pub mod events;
pub mod jitter;

#[doc(hidden)]
pub mod reference;

pub use engine::{simulate_resilient, simulate_with, SimOptions, SimResult};
