//! Tile residency (MSI-style) and the PCI link model.

use hetchol_core::platform::{MemNode, Platform};
use hetchol_core::task::Tile;
use hetchol_core::time::Time;
use hetchol_core::trace::TransferEvent;

/// Which memory nodes hold a valid copy of each tile.
///
/// The protocol is MSI without the S/E distinction: a completed write
/// leaves exactly one valid copy (at the writer's node); a read replicates
/// the tile to the reader's node without invalidating others.
///
/// Data-oriented layout (DESIGN.md §13): one `u64` validity bitmask per
/// tile in a flat `dim × dim` vector indexed by `row * dim + col`. The
/// scheduler's completion estimator reads this for every (ready task ×
/// worker) pair, so the lookup must be a load, not a hash — the
/// `HashMap`-keyed predecessor (frozen in `crate::reference`) spent more
/// time hashing tile coordinates than simulating.
#[derive(Clone, Debug)]
pub struct Residency {
    /// Validity bitmask per tile, `1` (host only) initially.
    valid: Vec<u64>,
    /// Tiles per matrix side; the flat index stride.
    dim: u32,
    n_nodes: usize,
}

impl Residency {
    /// All tiles of a `dim × dim`-tile matrix initially resident in host
    /// memory (node 0).
    pub fn new(n_nodes: usize, dim: usize) -> Residency {
        assert!(n_nodes <= 64, "residency bitmask supports up to 64 nodes");
        Residency {
            valid: vec![1; dim * dim],
            dim: dim as u32,
            n_nodes,
        }
    }

    /// Flat index of a tile — usable with the `*_idx` accessors when the
    /// caller has precomputed indices (the engine's access table).
    #[inline]
    pub fn index_of(&self, tile: Tile) -> usize {
        debug_assert!(tile.row < self.dim && tile.col < self.dim);
        (tile.row * self.dim + tile.col) as usize
    }

    /// The raw validity bitmask at a flat index.
    #[inline]
    pub fn mask_at(&self, idx: usize) -> u64 {
        self.valid[idx]
    }

    /// Is the tile at flat index `idx` valid at `node`?
    #[inline]
    pub fn is_valid_idx(&self, idx: usize, node: MemNode) -> bool {
        self.valid[idx] & (1 << node) != 0
    }

    /// A node currently holding the tile at `idx`, preferring the host
    /// (node 0): host-sourced transfers need a single PCI hop.
    #[inline]
    pub fn source_for_idx(&self, idx: usize) -> MemNode {
        let m = self.valid[idx];
        debug_assert!(m != 0, "a tile must be valid somewhere");
        if m & 1 != 0 {
            return 0;
        }
        m.trailing_zeros() as usize
    }

    /// Record that a copy of the tile at `idx` now exists at `node` (read
    /// replication).
    #[inline]
    pub fn add_copy_idx(&mut self, idx: usize, node: MemNode) {
        debug_assert!(node < self.n_nodes);
        self.valid[idx] |= 1 << node;
    }

    /// Record a write at `node`: all other copies become invalid.
    #[inline]
    pub fn write_at_idx(&mut self, idx: usize, node: MemNode) {
        debug_assert!(node < self.n_nodes);
        self.valid[idx] = 1 << node;
    }

    /// Is the tile valid at `node`?
    pub fn is_valid_at(&self, tile: Tile, node: MemNode) -> bool {
        self.is_valid_idx(self.index_of(tile), node)
    }

    /// Tile-keyed [`Residency::source_for_idx`].
    pub fn source_for(&self, tile: Tile) -> MemNode {
        self.source_for_idx(self.index_of(tile))
    }

    /// Tile-keyed [`Residency::add_copy_idx`].
    pub fn add_copy(&mut self, tile: Tile, node: MemNode) {
        self.add_copy_idx(self.index_of(tile), node);
    }

    /// Tile-keyed [`Residency::write_at_idx`].
    pub fn write_at(&mut self, tile: Tile, node: MemNode) {
        self.write_at_idx(self.index_of(tile), node);
    }

    /// Number of memory nodes.
    pub fn n_nodes(&self) -> usize {
        self.n_nodes
    }
}

/// Full-duplex FIFO PCI links: one per non-host memory node, with
/// independent host→device and device→host directions.
#[derive(Clone, Debug)]
pub struct Links {
    /// `to_device[node]` / `from_device[node]`: time the direction frees up.
    to_device: Vec<Time>,
    from_device: Vec<Time>,
}

impl Links {
    /// Idle links for `n_nodes` memory nodes (entry 0 is unused padding so
    /// the vectors index by node).
    pub fn new(n_nodes: usize) -> Links {
        Links {
            to_device: vec![Time::ZERO; n_nodes],
            from_device: vec![Time::ZERO; n_nodes],
        }
    }

    /// Reserve the link(s) to move one tile from `from` to `to`, not
    /// starting before `earliest`. Returns the transfer completion time and
    /// appends the hop(s) to `log`. Device-to-device goes through the host
    /// (two serialized hops), as on the paper's PCI topology.
    pub fn transfer(
        &mut self,
        platform: &Platform,
        tile: Tile,
        from: MemNode,
        to: MemNode,
        earliest: Time,
        log: &mut Vec<TransferEvent>,
    ) -> Time {
        debug_assert_ne!(from, to, "no transfer needed within a node");
        let Some(comm) = platform.comm() else {
            // Communication-free platform: transfers are instantaneous.
            return earliest;
        };
        let dur = comm.transfer_time(/* tile bytes */ tile_bytes_for(platform));
        match (from, to) {
            (0, dev) => {
                let start = earliest.max(self.to_device[dev]);
                let end = start + dur;
                self.to_device[dev] = end;
                log.push(TransferEvent {
                    tile,
                    from,
                    to,
                    start,
                    end,
                });
                end
            }
            (dev, 0) => {
                let start = earliest.max(self.from_device[dev]);
                let end = start + dur;
                self.from_device[dev] = end;
                log.push(TransferEvent {
                    tile,
                    from,
                    to,
                    start,
                    end,
                });
                end
            }
            (src, dst) => {
                let via_host = self.transfer(platform, tile, src, 0, earliest, log);
                self.transfer(platform, tile, 0, dst, via_host, log)
            }
        }
    }

    /// Contention-free estimate of moving one tile from `from` to `to`
    /// (used by `dmda`'s completion-time heuristic).
    pub fn estimate(platform: &Platform, from: MemNode, to: MemNode) -> Time {
        if from == to {
            return Time::ZERO;
        }
        let Some(comm) = platform.comm() else {
            return Time::ZERO;
        };
        let one = comm.transfer_time(tile_bytes_for(platform));
        if from == 0 || to == 0 {
            one
        } else {
            one * 2
        }
    }
}

/// Tile footprint on this platform's matrices. The simulator works at the
/// paper's fixed tile size; making it a platform-level constant keeps the
/// link model independent of the profile plumbing.
fn tile_bytes_for(_platform: &Platform) -> usize {
    hetchol_core::profiles::PAPER_TILE_SIZE * hetchol_core::profiles::PAPER_TILE_SIZE * 8
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn residency_starts_at_host() {
        let r = Residency::new(4, 8);
        let t = Tile::new(3, 1);
        assert!(r.is_valid_at(t, 0));
        assert!(!r.is_valid_at(t, 2));
        assert_eq!(r.source_for(t), 0);
    }

    #[test]
    fn read_replicates_write_invalidates() {
        let mut r = Residency::new(4, 8);
        let t = Tile::new(2, 2);
        r.add_copy(t, 2);
        assert!(r.is_valid_at(t, 0));
        assert!(r.is_valid_at(t, 2));
        // Host preferred as source even with a device copy.
        assert_eq!(r.source_for(t), 0);
        r.write_at(t, 3);
        assert!(!r.is_valid_at(t, 0));
        assert!(!r.is_valid_at(t, 2));
        assert!(r.is_valid_at(t, 3));
        assert_eq!(r.source_for(t), 3);
    }

    #[test]
    fn link_fifo_serialises_same_direction() {
        let platform = Platform::mirage();
        let mut links = Links::new(platform.n_nodes());
        let mut log = Vec::new();
        let t1 = Tile::new(1, 0);
        let t2 = Tile::new(2, 0);
        let e1 = links.transfer(&platform, t1, 0, 1, Time::ZERO, &mut log);
        let e2 = links.transfer(&platform, t2, 0, 1, Time::ZERO, &mut log);
        assert!(e2 >= e1 * 2 / 1, "second transfer queues behind the first");
        assert_eq!(log.len(), 2);
        assert_eq!(log[1].start, e1);
    }

    #[test]
    fn opposite_directions_independent() {
        let platform = Platform::mirage();
        let mut links = Links::new(platform.n_nodes());
        let mut log = Vec::new();
        let up = links.transfer(&platform, Tile::new(1, 0), 0, 1, Time::ZERO, &mut log);
        let down = links.transfer(&platform, Tile::new(2, 0), 1, 0, Time::ZERO, &mut log);
        // Full duplex: both start at 0 and take the same time.
        assert_eq!(up, down);
    }

    #[test]
    fn different_devices_independent() {
        let platform = Platform::mirage();
        let mut links = Links::new(platform.n_nodes());
        let mut log = Vec::new();
        let a = links.transfer(&platform, Tile::new(1, 0), 0, 1, Time::ZERO, &mut log);
        let b = links.transfer(&platform, Tile::new(2, 0), 0, 2, Time::ZERO, &mut log);
        assert_eq!(a, b, "distinct PCI links do not contend");
    }

    #[test]
    fn device_to_device_via_host() {
        let platform = Platform::mirage();
        let mut links = Links::new(platform.n_nodes());
        let mut log = Vec::new();
        let end = links.transfer(&platform, Tile::new(1, 0), 1, 2, Time::ZERO, &mut log);
        assert_eq!(log.len(), 2, "two hops");
        assert_eq!(log[0].to, 0);
        assert_eq!(log[1].from, 0);
        assert_eq!(log[1].end, end);
        assert!(log[1].start >= log[0].end);
    }

    #[test]
    fn comm_free_platform_transfers_instantly() {
        let platform = Platform::mirage().without_comm();
        let mut links = Links::new(platform.n_nodes());
        let mut log = Vec::new();
        let end = links.transfer(
            &platform,
            Tile::new(1, 0),
            0,
            1,
            Time::from_millis(5),
            &mut log,
        );
        assert_eq!(end, Time::from_millis(5));
        assert!(log.is_empty());
        assert_eq!(Links::estimate(&platform, 0, 1), Time::ZERO);
    }

    #[test]
    fn estimates_match_single_and_double_hop() {
        let platform = Platform::mirage();
        let one = Links::estimate(&platform, 0, 1);
        let two = Links::estimate(&platform, 1, 2);
        assert_eq!(two, one * 2);
        assert_eq!(Links::estimate(&platform, 1, 1), Time::ZERO);
        // ~0.93 ms for a 7.37 MB tile at 8 GB/s + 10 us.
        assert!((one.as_millis_f64() - 0.9316).abs() < 0.01, "{one}");
    }
}
