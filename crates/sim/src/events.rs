//! The simulator's virtual clock: a typed completion [`Event`] and the
//! calendar (bucketed) priority queue that orders them.
//!
//! The engine used to advance time through a
//! `BinaryHeap<Reverse<(Time, u64, WorkerId, TaskId, Time, Option<FaultKind>)>>`
//! — an opaque 6-tuple ordered by its first two fields, paying a
//! log-depth sift on every push and pop. A discrete-event simulator's
//! access pattern is far friendlier than the general case: timestamps are
//! popped monotonically, pushes are always at or after the current clock,
//! and only a handful of events (one per busy worker) are pending at any
//! instant. A calendar queue (Brown, CACM 1988) exploits exactly this:
//! events hash into a ring of time buckets by their integer-nanosecond
//! timestamp, so push is O(1) and pop scans forward from the current
//! clock's bucket. See DESIGN.md §13 for the bucket-sizing discussion.
//!
//! Both operations reuse bucket capacity — after warm-up the queue
//! performs no steady-state allocation.

use hetchol_core::fault::FaultKind;
use hetchol_core::platform::WorkerId;
use hetchol_core::task::TaskId;
use hetchol_core::time::Time;

/// One pending attempt completion, replacing the old heap's 6-tuple.
///
/// The failure outcome of an attempt is decided at *start* (push) time
/// and carried in the event, so the virtual clock sees failures exactly
/// when the attempt would have ended.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Event {
    /// When the attempt completes — the primary ordering key.
    pub at: Time,
    /// Push order; unique, so `(at, seq)` is a total order and FIFO
    /// breaks completion-time ties exactly as the old heap did.
    pub seq: u64,
    /// Worker running the attempt.
    pub worker: WorkerId,
    /// The task being attempted.
    pub task: TaskId,
    /// When the attempt started (recorded in the trace on completion).
    pub start: Time,
    /// Failure injected into this attempt, if any.
    pub injected: Option<FaultKind>,
}

/// Number of buckets in the ring (power of two).
const N_BUCKETS: usize = 64;
/// log2 of the bucket width in nanoseconds: 2^22 ns ≈ 4.2 ms. Tile
/// kernels under the paper's calibration run for roughly 2–60 ms, so the
/// next completion is typically a handful of buckets ahead and always
/// well inside one ring rotation (64 × 4.2 ms ≈ 268 ms); a narrower
/// bucket (e.g. 2^18) puts the next event beyond the ring and forces the
/// sparse-horizon global scan on almost every pop.
const BUCKET_SHIFT: u32 = 22;

/// A calendar queue over [`Event`]s, popping in ascending `(at, seq)`
/// order — bit-compatible with the `BinaryHeap` it replaced.
///
/// Invariant (maintained by the engine, checked in debug builds): every
/// push carries `at >=` the timestamp of the last pop. That makes the
/// last-popped timestamp a true lower bound on the queue's contents, so
/// pop can start its bucket scan there instead of searching globally.
#[derive(Debug)]
pub struct CalendarQueue {
    /// The bucket ring; an event with timestamp `t` lives in bucket
    /// `(t >> BUCKET_SHIFT) % N_BUCKETS`. Buckets are unordered; pop
    /// scans the (short) candidate bucket for its minimum.
    buckets: Vec<Vec<Event>>,
    /// Bit `b` set iff `buckets[b]` is nonempty — pop skips empty
    /// buckets with a rotate + `trailing_zeros` instead of 64 loads.
    occupied: u64,
    /// Total pending events.
    len: usize,
    /// Lower bound on every pending timestamp (ns): the last pop.
    floor_ns: u64,
    /// Next push sequence number.
    seq: u64,
}

impl Default for CalendarQueue {
    fn default() -> Self {
        CalendarQueue::new()
    }
}

impl CalendarQueue {
    /// An empty queue with the clock at zero.
    pub fn new() -> CalendarQueue {
        CalendarQueue {
            buckets: (0..N_BUCKETS).map(|_| Vec::with_capacity(4)).collect(),
            occupied: 0,
            len: 0,
            floor_ns: 0,
            seq: 0,
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    fn bucket_of(at: Time) -> usize {
        ((at.as_nanos() >> BUCKET_SHIFT) as usize) & (N_BUCKETS - 1)
    }

    /// Schedule a completion at `at`, assigning the next sequence number
    /// (push order — the FIFO tie-break among equal timestamps).
    pub fn push(
        &mut self,
        at: Time,
        worker: WorkerId,
        task: TaskId,
        start: Time,
        injected: Option<FaultKind>,
    ) {
        debug_assert!(
            at.as_nanos() >= self.floor_ns,
            "event at {at} pushed before the clock floor"
        );
        let event = Event {
            at,
            seq: self.seq,
            worker,
            task,
            start,
            injected,
        };
        self.seq += 1;
        let b = Self::bucket_of(at);
        self.buckets[b].push(event);
        self.occupied |= 1 << b;
        self.len += 1;
    }

    /// Remove and return the minimum pending event by `(at, seq)`.
    ///
    /// Scans buckets forward from the clock floor's bucket; an event only
    /// counts for bucket `b` if its timestamp's *epoch* (timestamp
    /// divided by bucket width) matches — events a full ring rotation or
    /// more ahead wait their turn. If one whole rotation finds nothing
    /// (every pending event is > `N_BUCKETS` bucket-widths ahead — a
    /// sparse horizon), falls back to a global scan. Either way the
    /// result is the true minimum, and the floor advances to it.
    pub fn pop(&mut self) -> Option<Event> {
        if self.len == 0 {
            return None;
        }
        let day = self.floor_ns >> BUCKET_SHIFT;
        let start = (day as u32) & (N_BUCKETS as u32 - 1);
        // Occupied buckets at rotation offsets from `day`'s bucket; bit k
        // of the rotated mask is bucket `(day + k) % N_BUCKETS`.
        let mut mask = self.occupied.rotate_right(start);
        while mask != 0 {
            let k = mask.trailing_zeros() as u64;
            mask &= mask - 1;
            let b = ((day + k) as usize) & (N_BUCKETS - 1);
            let mut best: Option<(usize, Time, u64)> = None;
            for (i, e) in self.buckets[b].iter().enumerate() {
                if e.at.as_nanos() >> BUCKET_SHIFT != day + k {
                    continue; // different epoch: not this rotation
                }
                if best.is_none_or(|(_, at, seq)| (e.at, e.seq) < (at, seq)) {
                    best = Some((i, e.at, e.seq));
                }
            }
            if let Some((i, _, _)) = best {
                return Some(self.take(b, i));
            }
        }
        // Sparse horizon: nothing within a rotation of the floor.
        let (b, i) = self
            .buckets
            .iter()
            .enumerate()
            .flat_map(|(b, bucket)| bucket.iter().enumerate().map(move |(i, e)| (b, i, e)))
            .min_by_key(|&(_, _, e)| (e.at, e.seq))
            .map(|(b, i, _)| (b, i))
            .expect("len > 0 means some bucket is nonempty");
        Some(self.take(b, i))
    }

    /// Remove event `i` of bucket `b` (order within a bucket is
    /// irrelevant, so `swap_remove`) and advance the floor to it.
    fn take(&mut self, b: usize, i: usize) -> Event {
        let event = self.buckets[b].swap_remove(i);
        if self.buckets[b].is_empty() {
            self.occupied &= !(1 << b);
        }
        self.len -= 1;
        self.floor_ns = event.at.as_nanos();
        event
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    fn ev_key(e: &Event) -> (Time, u64) {
        (e.at, e.seq)
    }

    #[test]
    fn pops_in_at_then_seq_order() {
        let mut q = CalendarQueue::new();
        let t = Time::from_micros;
        q.push(t(500), 0, TaskId(0), Time::ZERO, None);
        q.push(t(100), 1, TaskId(1), Time::ZERO, None);
        q.push(t(100), 2, TaskId(2), Time::ZERO, None);
        q.push(t(900), 3, TaskId(3), Time::ZERO, None);
        let order: Vec<WorkerId> = std::iter::from_fn(|| q.pop()).map(|e| e.worker).collect();
        assert_eq!(order, [1, 2, 0, 3]);
        assert!(q.is_empty());
    }

    #[test]
    fn handles_sparse_horizons_beyond_one_rotation() {
        let mut q = CalendarQueue::new();
        // Far beyond N_BUCKETS bucket-widths from the zero floor.
        let far = Time::from_secs(3600);
        let near = Time::from_secs(3599);
        q.push(far, 0, TaskId(0), Time::ZERO, None);
        q.push(near, 1, TaskId(1), Time::ZERO, None);
        assert_eq!(q.pop().unwrap().worker, 1);
        assert_eq!(q.pop().unwrap().worker, 0);
        assert!(q.pop().is_none());
    }

    /// The replacement contract: against a `BinaryHeap` running the old
    /// ordering, a long random interleaving of monotone-clock pushes and
    /// pops (with many timestamp ties) must pop identically.
    #[test]
    fn matches_binary_heap_under_monotone_interleaving() {
        let mut state = 0x0123_4567_89AB_CDEFu64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        let mut q = CalendarQueue::new();
        let mut heap: BinaryHeap<Reverse<(Time, u64)>> = BinaryHeap::new();
        let mut heap_seq = 0u64;
        let mut now = Time::ZERO;
        for round in 0..20_000u32 {
            if next() % 3 < 2 || heap.is_empty() {
                // Push at now + a mixed-scale delay; coarse quantisation
                // forces frequent equal timestamps.
                let delay_us = match next() % 4 {
                    0 => 0,
                    1 => next() % 8 * 100,
                    2 => next() % 64 * 250,
                    _ => next() % 4 * 100_000,
                };
                let at = now + Time::from_micros(delay_us);
                q.push(at, 0, TaskId(round), Time::ZERO, None);
                heap.push(Reverse((at, heap_seq)));
                heap_seq += 1;
            } else {
                let got = q.pop().map(|e| ev_key(&e));
                let want = heap.pop().map(|Reverse(k)| k);
                assert_eq!(got, want, "round {round}");
                now = want.unwrap().0;
            }
        }
        while let Some(Reverse(want)) = heap.pop() {
            assert_eq!(q.pop().map(|e| ev_key(&e)), Some(want));
        }
        assert!(q.pop().is_none());
    }

    /// Wrap-boundary property: timestamps that are exact multiples of the
    /// full ring rotation (64 × 2^22 ns = 268 435 456 ns) hash into the
    /// *same* bucket as the floor but belong to a different epoch, and
    /// ±1 ns around those multiples straddles both the epoch check and the
    /// bucket hash. A sign error in the epoch comparison (`>>` vs `%`, or
    /// an off-by-one in `day + k`) pops a rotation-ahead event early, or
    /// strands the sparse-horizon fallback. Every mix of such events must
    /// still pop in exact `(at, seq)` heap order.
    #[test]
    fn wrap_boundary_timestamps_match_binary_heap() {
        const ROTATION_NS: u64 = (N_BUCKETS as u64) << BUCKET_SHIFT;
        assert_eq!(ROTATION_NS, 268_435_456, "ring geometry changed");
        let mut state = 0xDEAD_BEEF_CAFE_F00Du64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        let mut q = CalendarQueue::new();
        let mut heap: BinaryHeap<Reverse<(Time, u64)>> = BinaryHeap::new();
        let mut heap_seq = 0u64;
        let mut now_ns = 0u64;
        for round in 0..20_000u32 {
            if next() % 3 < 2 || heap.is_empty() {
                // Delays concentrated on rotation and bucket boundaries:
                // 0, 1, or several full rotations, one bucket width, and
                // ±1 ns jitter around each — exactly the timestamps a
                // wrap bug misfiles. Repeats produce timestamp ties.
                let base = match next() % 6 {
                    0 => 0,
                    1 => ROTATION_NS,
                    2 => ROTATION_NS - 1,
                    3 => (next() % 4) * ROTATION_NS + 1,
                    4 => 1u64 << BUCKET_SHIFT,
                    _ => ROTATION_NS - (1u64 << BUCKET_SHIFT),
                };
                let at = Time::from_nanos(now_ns + base + next() % 2);
                q.push(at, 0, TaskId(round), Time::ZERO, None);
                heap.push(Reverse((at, heap_seq)));
                heap_seq += 1;
            } else {
                let got = q.pop().map(|e| ev_key(&e));
                let want = heap.pop().map(|Reverse(k)| k);
                assert_eq!(got, want, "round {round}");
                now_ns = want.unwrap().0.as_nanos();
            }
        }
        while let Some(Reverse(want)) = heap.pop() {
            assert_eq!(q.pop().map(|e| ev_key(&e)), Some(want));
        }
        assert!(q.pop().is_none());
    }
}
