//! The discrete-event engine.

use crate::data::{Links, Residency};
use crate::jitter::Jitter;
use hetchol_core::dag::TaskGraph;
use hetchol_core::metrics;
use hetchol_core::platform::{Platform, WorkerId};
use hetchol_core::profiles::TimingProfile;
use hetchol_core::scheduler::{ExecutionView, SchedContext, Scheduler};
use hetchol_core::task::TaskId;
use hetchol_core::time::Time;
use hetchol_core::trace::{Trace, TraceEvent};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Simulation options.
#[derive(Copy, Clone, Debug)]
pub struct SimOptions {
    /// RNG seed (only consumed by jittered runs and stochastic schedulers).
    pub seed: u64,
    /// Duration jitter + per-task overhead; [`Jitter::NONE`] for the
    /// deterministic simulation mode.
    pub jitter: Jitter,
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions {
            seed: 0,
            jitter: Jitter::NONE,
        }
    }
}

impl SimOptions {
    /// The paper's *actual execution* mode: per-task runtime overhead and
    /// ±2% duration jitter, seeded for reproducibility.
    pub fn actual(seed: u64) -> SimOptions {
        SimOptions {
            seed,
            jitter: Jitter {
                sigma: 0.02,
                overhead: Time::from_micros(200),
            },
        }
    }
}

/// Result of one simulated execution.
#[derive(Clone, Debug)]
pub struct SimResult {
    /// Full execution trace (tasks + transfers).
    pub trace: Trace,
    /// Completion time of the last task.
    pub makespan: Time,
}

impl SimResult {
    /// Achieved GFLOP/s for an `n_tiles` × `n_tiles` factorization at tile
    /// size `nb`.
    pub fn gflops(&self, n_tiles: usize, nb: usize) -> f64 {
        metrics::gflops(n_tiles, nb, self.makespan)
    }
}

/// Pending completion events: min-heap on `(finish time, seq)`, carrying
/// `(worker, task, start)` for trace recording.
type EventHeap = BinaryHeap<Reverse<(Time, u64, WorkerId, TaskId, Time)>>;

/// One entry of a worker queue.
#[derive(Copy, Clone, Debug)]
struct QueuedTask {
    task: TaskId,
    prio: i64,
    seq: u64,
    /// When the prefetched inputs will all be resident at the worker's node.
    data_ready: Time,
}

#[derive(Clone, Debug, Default)]
struct Worker {
    /// Queue kept FIFO, or sorted by `(-prio, seq)` under `dmdas`.
    queue: Vec<QueuedTask>,
    busy: bool,
    busy_until: Time,
    /// Sum of nominal execution times of queued tasks (availability
    /// estimate for the completion-time heuristic).
    queued_exec: Time,
}

/// Scheduler-facing snapshot of the engine state.
struct EngineView<'a> {
    now: Time,
    platform: &'a Platform,
    graph: &'a TaskGraph,
    avail: Vec<Time>,
    residency: &'a Residency,
}

impl ExecutionView for EngineView<'_> {
    fn now(&self) -> Time {
        self.now
    }
    fn worker_available_at(&self, w: WorkerId) -> Time {
        self.avail[w]
    }
    fn transfer_estimate(&self, task: TaskId, w: WorkerId) -> Time {
        let node = self.platform.node_of(w);
        let mut total = Time::ZERO;
        for access in self.graph.task(task).coords.accesses() {
            if !self.residency.is_valid_at(access.tile, node) {
                let src = self.residency.source_for(access.tile);
                total += Links::estimate(self.platform, src, node);
            }
        }
        total
    }
}

/// Simulate one execution of `graph` on `platform` under `scheduler`.
///
/// The returned trace always passes the common schedule validator; with
/// [`Jitter::NONE`] it passes the *exact*-duration check.
///
/// ```
/// use hetchol_core::{dag::TaskGraph, platform::Platform, profiles::TimingProfile};
/// use hetchol_core::scheduler::{estimated_completion, ExecutionView, SchedContext, Scheduler};
/// use hetchol_core::task::TaskId;
/// use hetchol_sim::{simulate, SimOptions};
///
/// // A minimal dmda-style scheduler: minimum estimated completion time.
/// struct Greedy;
/// impl Scheduler for Greedy {
///     fn name(&self) -> &str { "greedy" }
///     fn assign(&mut self, t: TaskId, ctx: &SchedContext, v: &dyn ExecutionView) -> usize {
///         ctx.platform.workers()
///             .min_by_key(|&w| estimated_completion(t, w, ctx, v))
///             .unwrap()
///     }
/// }
///
/// let graph = TaskGraph::cholesky(8);
/// let platform = Platform::mirage();
/// let profile = TimingProfile::mirage();
/// let result = simulate(&graph, &platform, &profile, &mut Greedy, &SimOptions::default());
/// assert!(result.gflops(8, profile.nb()) > 100.0); // GPUs are pulling weight
/// ```
pub fn simulate(
    graph: &TaskGraph,
    platform: &Platform,
    profile: &TimingProfile,
    scheduler: &mut dyn Scheduler,
    opts: &SimOptions,
) -> SimResult {
    let ctx = SchedContext {
        graph,
        platform,
        profile,
    };
    scheduler.init(&ctx);

    let n_workers = platform.n_workers();
    let mut workers: Vec<Worker> = vec![Worker::default(); n_workers];
    let mut residency = Residency::new(platform.n_nodes());
    let mut links = Links::new(platform.n_nodes());
    let mut rng = ChaCha8Rng::seed_from_u64(opts.seed);
    let mut indeg = graph.indegrees();
    let mut trace = Trace {
        n_workers,
        ..Trace::default()
    };
    let mut events: EventHeap = BinaryHeap::new();
    let mut seq = 0u64;
    let mut completed = 0usize;
    let mut now = Time::ZERO;

    // Push one ready task through the scheduler into a worker queue,
    // issuing prefetch transfers for its missing inputs.
    #[allow(clippy::too_many_arguments)]
    fn push_ready(
        task: TaskId,
        now: Time,
        ctx: &SchedContext,
        scheduler: &mut dyn Scheduler,
        workers: &mut [Worker],
        residency: &mut Residency,
        links: &mut Links,
        trace: &mut Trace,
        seq: &mut u64,
    ) {
        let avail: Vec<Time> = workers
            .iter()
            .map(|w| {
                let base = if w.busy { w.busy_until.max(now) } else { now };
                base + w.queued_exec
            })
            .collect();
        let view = EngineView {
            now,
            platform: ctx.platform,
            graph: ctx.graph,
            avail,
            residency,
        };
        let w = scheduler.assign(task, ctx, &view);
        assert!(
            w < workers.len(),
            "scheduler assigned {task} to nonexistent worker {w}"
        );
        let prio = scheduler.priority(task, ctx);
        let node = ctx.platform.node_of(w);

        // Prefetch missing tiles to the worker's node.
        let mut data_ready = now;
        for access in ctx.graph.task(task).coords.accesses() {
            if !residency.is_valid_at(access.tile, node) {
                let src = residency.source_for(access.tile);
                let end = links.transfer(
                    ctx.platform,
                    access.tile,
                    src,
                    node,
                    now,
                    &mut trace.transfers,
                );
                residency.add_copy(access.tile, node);
                data_ready = data_ready.max(end);
            }
        }

        let entry = QueuedTask {
            task,
            prio,
            seq: *seq,
            data_ready,
        };
        *seq += 1;
        let worker = &mut workers[w];
        worker.queued_exec +=
            ctx.profile
                .time(ctx.graph.task(task).kernel(), ctx.platform.class_of(w));
        if scheduler.sorted_queues() {
            // Highest priority first; FIFO among equals.
            let pos = worker
                .queue
                .partition_point(|q| (-q.prio, q.seq) <= (-entry.prio, entry.seq));
            worker.queue.insert(pos, entry);
        } else {
            worker.queue.push(entry);
        }
    }

    // Seed the initial ready set in submission order.
    for t in graph.tasks() {
        if indeg[t.id.index()] == 0 {
            push_ready(
                t.id,
                now,
                &ctx,
                scheduler,
                &mut workers,
                &mut residency,
                &mut links,
                &mut trace,
                &mut seq,
            );
        }
    }

    loop {
        // Dispatch: start the next startable queued task of every idle
        // worker (the `may_start` gate lets schedule injection hold a
        // worker for its planned-next task instead of backfilling).
        // Index-based iteration: `scheduler.may_start` needs `&mut` while
        // the worker list is borrowed.
        #[allow(clippy::needless_range_loop)]
        for w in 0..n_workers {
            if workers[w].busy || workers[w].queue.is_empty() {
                continue;
            }
            let Some(pos) = (0..workers[w].queue.len())
                .find(|&i| scheduler.may_start(workers[w].queue[i].task, w))
            else {
                continue;
            };
            let worker = &mut workers[w];
            let q = worker.queue.remove(pos);
            scheduler.notify_start(q.task, w);
            let class = platform.class_of(w);
            let kernel = graph.task(q.task).kernel();
            let base = profile.time(kernel, class);
            worker.queued_exec = worker.queued_exec.saturating_sub(base);
            let start = now.max(q.data_ready);
            let duration = opts.jitter.apply(base, &mut rng);
            let end = start + duration;
            worker.busy = true;
            worker.busy_until = end;
            events.push(Reverse((end, seq, w, q.task, start)));
            seq += 1;
        }

        let Some(Reverse((t_end, _, w, task, t_start))) = events.pop() else {
            break; // no task in flight: all queues empty
        };
        now = t_end;
        let kernel = graph.task(task).kernel();
        trace.events.push(TraceEvent {
            worker: w,
            task,
            kernel,
            start: t_start,
            end: t_end,
        });
        completed += 1;
        workers[w].busy = false;
        // Each write invalidates every other copy of the written tile
        // (QR's TSQRT/TSMQR write two tiles; iterate the full write set).
        for access in graph.task(task).coords.accesses() {
            if access.mode.is_write() {
                residency.write_at(access.tile, platform.node_of(w));
            }
        }
        // Release successors.
        for &s in graph.successors(task) {
            indeg[s.index()] -= 1;
            if indeg[s.index()] == 0 {
                push_ready(
                    s,
                    now,
                    &ctx,
                    scheduler,
                    &mut workers,
                    &mut residency,
                    &mut links,
                    &mut trace,
                    &mut seq,
                );
            }
        }
    }

    assert_eq!(
        completed,
        graph.len(),
        "simulation deadlocked: {completed}/{} tasks completed",
        graph.len()
    );
    let makespan = trace
        .events
        .iter()
        .map(|e| e.end)
        .max()
        .unwrap_or(Time::ZERO);
    SimResult { trace, makespan }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetchol_core::schedule::DurationCheck;
    use hetchol_core::scheduler::estimated_completion;

    /// Greedy earliest-completion scheduler used by engine tests (a
    /// miniature `dmda`; the real ones live in `hetchol-sched`).
    struct Greedy;
    impl Scheduler for Greedy {
        fn name(&self) -> &str {
            "greedy-test"
        }
        fn assign(
            &mut self,
            task: TaskId,
            ctx: &SchedContext,
            view: &dyn ExecutionView,
        ) -> WorkerId {
            ctx.platform
                .workers()
                .min_by_key(|&w| estimated_completion(task, w, ctx, view))
                .expect("platform has workers")
        }
    }

    /// Everything on worker 0.
    struct Serial;
    impl Scheduler for Serial {
        fn name(&self) -> &str {
            "serial-test"
        }
        fn assign(&mut self, _: TaskId, _: &SchedContext, _: &dyn ExecutionView) -> WorkerId {
            0
        }
    }

    fn homog() -> (Platform, TimingProfile) {
        (
            Platform::homogeneous(4),
            TimingProfile::mirage_homogeneous(),
        )
    }

    #[test]
    fn serial_makespan_is_total_work() {
        let (platform, profile) = homog();
        let graph = TaskGraph::cholesky(4);
        let r = simulate(
            &graph,
            &platform,
            &profile,
            &mut Serial,
            &SimOptions::default(),
        );
        let total: Time = graph
            .tasks()
            .iter()
            .map(|t| profile.time(t.kernel(), 0))
            .sum();
        assert_eq!(r.makespan, total);
        assert_eq!(r.trace.events.len(), graph.len());
    }

    #[test]
    fn parallel_beats_serial_and_validates() {
        let (platform, profile) = homog();
        let graph = TaskGraph::cholesky(6);
        let serial = simulate(
            &graph,
            &platform,
            &profile,
            &mut Serial,
            &SimOptions::default(),
        );
        let greedy = simulate(
            &graph,
            &platform,
            &profile,
            &mut Greedy,
            &SimOptions::default(),
        );
        assert!(greedy.makespan < serial.makespan);
        greedy
            .trace
            .to_schedule()
            .validate(&graph, &platform, &profile, DurationCheck::Exact)
            .unwrap();
    }

    #[test]
    fn makespan_at_least_critical_path() {
        let (platform, profile) = homog();
        for n in [2usize, 4, 8] {
            let graph = TaskGraph::cholesky(n);
            let cp = graph.critical_path(|t| profile.fastest_time(graph.task(t).kernel()));
            let r = simulate(
                &graph,
                &platform,
                &profile,
                &mut Greedy,
                &SimOptions::default(),
            );
            assert!(r.makespan >= cp, "n={n}");
        }
    }

    #[test]
    fn heterogeneous_run_validates_exact() {
        let platform = Platform::mirage().without_comm();
        let profile = TimingProfile::mirage();
        let graph = TaskGraph::cholesky(8);
        let r = simulate(
            &graph,
            &platform,
            &profile,
            &mut Greedy,
            &SimOptions::default(),
        );
        r.trace
            .to_schedule()
            .validate(&graph, &platform, &profile, DurationCheck::Exact)
            .unwrap();
        assert!(r.trace.transfers.is_empty(), "comm-free mode");
    }

    #[test]
    fn comm_enabled_records_transfers_and_still_validates() {
        let platform = Platform::mirage();
        let profile = TimingProfile::mirage();
        let graph = TaskGraph::cholesky(6);
        let r = simulate(
            &graph,
            &platform,
            &profile,
            &mut Greedy,
            &SimOptions::default(),
        );
        assert!(
            !r.trace.transfers.is_empty(),
            "GPU work requires PCI transfers"
        );
        r.trace
            .to_schedule()
            .validate(&graph, &platform, &profile, DurationCheck::Exact)
            .unwrap();
        // Communications can only hurt.
        let free = simulate(
            &graph,
            &platform.without_comm(),
            &profile,
            &mut Greedy,
            &SimOptions::default(),
        );
        assert!(r.makespan >= free.makespan);
    }

    #[test]
    fn deterministic_across_runs() {
        let platform = Platform::mirage();
        let profile = TimingProfile::mirage();
        let graph = TaskGraph::cholesky(8);
        let a = simulate(
            &graph,
            &platform,
            &profile,
            &mut Greedy,
            &SimOptions::default(),
        );
        let b = simulate(
            &graph,
            &platform,
            &profile,
            &mut Greedy,
            &SimOptions::default(),
        );
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.trace.events, b.trace.events);
    }

    #[test]
    fn actual_mode_jitters_but_reproduces_per_seed() {
        let platform = Platform::mirage();
        let profile = TimingProfile::mirage();
        let graph = TaskGraph::cholesky(6);
        let a = simulate(
            &graph,
            &platform,
            &profile,
            &mut Greedy,
            &SimOptions::actual(1),
        );
        let a2 = simulate(
            &graph,
            &platform,
            &profile,
            &mut Greedy,
            &SimOptions::actual(1),
        );
        let b = simulate(
            &graph,
            &platform,
            &profile,
            &mut Greedy,
            &SimOptions::actual(2),
        );
        assert_eq!(a.makespan, a2.makespan, "same seed reproduces");
        assert_ne!(a.makespan, b.makespan, "different seeds differ");
        // Jittered durations no longer match the profile exactly, but the
        // schedule is still structurally valid.
        a.trace
            .to_schedule()
            .validate(&graph, &platform, &profile, DurationCheck::Loose)
            .unwrap();
        // Actual mode stays close to simulation (the paper's observation
        // that simulation reproduces real behaviour): within a few percent,
        // but not identical. Note jitter can shift makespan both ways — it
        // also perturbs the scheduler's tie-breaking.
        let sim = simulate(
            &graph,
            &platform,
            &profile,
            &mut Greedy,
            &SimOptions::default(),
        );
        let ratio = a.makespan.as_secs_f64() / sim.makespan.as_secs_f64();
        assert!((0.9..=1.1).contains(&ratio), "actual/sim ratio {ratio}");
    }

    #[test]
    fn empty_graph() {
        let (platform, profile) = homog();
        let graph = TaskGraph::cholesky(0);
        let r = simulate(
            &graph,
            &platform,
            &profile,
            &mut Serial,
            &SimOptions::default(),
        );
        assert_eq!(r.makespan, Time::ZERO);
        assert!(r.trace.events.is_empty());
    }

    #[test]
    fn busy_plus_idle_equals_makespan_per_worker() {
        let platform = Platform::mirage().without_comm();
        let profile = TimingProfile::mirage();
        let graph = TaskGraph::cholesky(8);
        let r = simulate(
            &graph,
            &platform,
            &profile,
            &mut Greedy,
            &SimOptions::default(),
        );
        for w in platform.workers() {
            assert_eq!(
                r.trace.busy_time(w) + r.trace.idle_time(w),
                r.makespan,
                "worker {w}"
            );
        }
        // Work conservation: total busy time equals the sum of durations.
        let total: Time = graph
            .tasks()
            .iter()
            .map(|t| {
                let e = r.trace.events.iter().find(|e| e.task == t.id).unwrap();
                profile.time(t.kernel(), platform.class_of(e.worker))
            })
            .sum();
        assert_eq!(r.trace.total_busy(), total);
    }

    #[test]
    fn gflops_positive_and_bounded_by_peak() {
        let platform = Platform::mirage().without_comm();
        let profile = TimingProfile::mirage();
        let graph = TaskGraph::cholesky(16);
        let r = simulate(
            &graph,
            &platform,
            &profile,
            &mut Greedy,
            &SimOptions::default(),
        );
        let g = r.gflops(16, profile.nb());
        assert!(g > 0.0);
        assert!(g < profile.gemm_peak(&platform));
    }
}
