//! The discrete-event engine, driving the shared execution core.
//!
//! Dependency tracking, queue insertion and the availability estimate all
//! live in [`hetchol_core::exec`]; this module supplies what is specific
//! to simulation — the virtual clock (a [`CalendarQueue`] of typed
//! completion [`crate::events::Event`]s), duration jitter, and the tile
//! residency + PCI link data model plugged in through
//! [`exec::EngineHooks`].
//!
//! The loop body is monomorphised over a `const RESILIENT: bool`: the
//! fault-free instantiation contains no fault-injection branches at all,
//! so resilience plumbing costs the fast path nothing (the frozen
//! pre-refactor engine in [`crate::reference`] is the behavioural oracle
//! for both instantiations).

use crate::data::{Links, Residency};
use crate::events::CalendarQueue;
use crate::jitter::Jitter;
use hetchol_core::dag::TaskGraph;
use hetchol_core::exec::{self, DepTracker, EngineHooks, TraceRecorder, WorkerQueues};
use hetchol_core::fault::{
    ConfigError, FailureCause, FaultKind, FaultPlan, FaultState, RetryPolicy, RunOutcome,
};
use hetchol_core::metrics;
use hetchol_core::obs::{ObsReport, ObsSink};
use hetchol_core::platform::{Platform, WorkerId};
use hetchol_core::profiles::TimingProfile;
use hetchol_core::scheduler::{SchedContext, Scheduler};
use hetchol_core::task::TaskId;
use hetchol_core::time::Time;
use hetchol_core::trace::{Trace, TransferEvent};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Simulation options.
#[derive(Copy, Clone, Debug)]
pub struct SimOptions {
    /// RNG seed (only consumed by jittered runs and stochastic schedulers).
    pub seed: u64,
    /// Duration jitter + per-task overhead; [`Jitter::NONE`] for the
    /// deterministic simulation mode.
    pub jitter: Jitter,
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions {
            seed: 0,
            jitter: Jitter::NONE,
        }
    }
}

impl SimOptions {
    /// The paper's *actual execution* mode: per-task runtime overhead and
    /// ±2% duration jitter, seeded for reproducibility.
    pub fn actual(seed: u64) -> SimOptions {
        SimOptions {
            seed,
            jitter: Jitter {
                sigma: 0.02,
                overhead: Time::from_micros(200),
            },
        }
    }
}

/// Result of one simulated execution.
#[derive(Clone, Debug)]
pub struct SimResult {
    /// Full execution trace (tasks + transfers).
    pub trace: Trace,
    /// Completion time of the last task.
    pub makespan: Time,
    /// Structured observability record (empty unless the run was given an
    /// enabled [`ObsSink`]).
    pub obs: ObsReport,
    /// How the run ended. Always [`RunOutcome::Completed`] for the
    /// fault-free entry points; [`simulate_resilient`] reports `Degraded`
    /// or `Failed` when the fault plan forced recovery.
    pub outcome: RunOutcome,
}

impl SimResult {
    /// Achieved GFLOP/s for an `n_tiles` × `n_tiles` factorization at tile
    /// size `nb`.
    pub fn gflops(&self, n_tiles: usize, nb: usize) -> f64 {
        metrics::gflops(n_tiles, nb, self.makespan)
    }
}

/// The simulator's data model, plugged into the execution core: tile
/// residency over memory nodes and PCI transfers over the link model.
///
/// Data-oriented layout (DESIGN.md §13): task accesses are flattened once
/// at construction into a CSR table of precomputed flat tile indices, and
/// single-hop transfer estimates are precomputed per platform. The hooks —
/// called for every (ready task × worker) pair by `dmda`-style schedulers —
/// then reduce to array walks over the flat [`Residency`] bitmasks, with
/// no hashing and no allocation. The `HashMap`-plus-`Vec`-per-call
/// predecessor is frozen in [`crate::reference`] as the benchmark baseline.
struct SimData<'a> {
    platform: &'a Platform,
    graph: &'a TaskGraph,
    residency: Residency,
    links: Links,
    /// Prefetch transfers recorded here, merged into the trace at the end.
    transfers: Vec<TransferEvent>,
    /// Contention-free one-hop transfer estimate (`Time::ZERO` comm-free).
    hop1: Time,
    /// Two-hop (device→host→device) estimate.
    hop2: Time,
    /// The platform has no communication model at all. Residency then
    /// never influences any output — estimates are zero and
    /// [`Links::transfer`] completes instantly without logging — so every
    /// hook can return immediately instead of walking the access table.
    comm_free: bool,
}

impl<'a> SimData<'a> {
    /// Fresh data model: every tile resident only at main memory.
    fn new(platform: &'a Platform, graph: &'a TaskGraph) -> SimData<'a> {
        SimData {
            platform,
            graph,
            residency: Residency::new(platform.n_nodes(), graph.n_tiles()),
            links: Links::new(platform.n_nodes()),
            transfers: Vec::new(),
            hop1: Links::estimate(platform, 0, 1),
            hop2: Links::estimate(platform, 1, 2),
            comm_free: platform.comm().is_none(),
        }
    }

    /// Apply `task`'s writes, executed on worker `w`, to tile residency:
    /// each write invalidates every other copy of the written tile (QR's
    /// TSQRT/TSMQR write two tiles; iterate the full write set).
    fn invalidate_writes(&mut self, task: TaskId, w: WorkerId) {
        if self.comm_free {
            return;
        }
        let node = self.platform.node_of(w);
        for access in self.graph.accesses_of(task) {
            if access.mode.is_write() {
                self.residency
                    .write_at_idx(self.residency.index_of(access.tile), node);
            }
        }
    }

    /// Move the accumulated prefetch transfers into the trace.
    fn merge_transfers(&mut self, recorder: &mut TraceRecorder) {
        recorder.transfers_mut().append(&mut self.transfers);
    }
}

impl EngineHooks for SimData<'_> {
    #[inline]
    fn transfer_estimate(&self, task: TaskId, w: WorkerId) -> Time {
        // Comm-free platform: every estimate is zero, and the scheduler
        // asks for one per (ready task × worker) pair.
        if self.hop1 == Time::ZERO {
            return Time::ZERO;
        }
        let node = self.platform.node_of(w);
        let mut total = Time::ZERO;
        for access in self.graph.accesses_of(task) {
            let mask = self.residency.mask_at(self.residency.index_of(access.tile));
            if mask & (1 << node) == 0 {
                // Source preference mirrors `Residency::source_for_idx`:
                // the host when it holds a copy, else the lowest node.
                let src_is_host = mask & 1 != 0;
                total += if src_is_host || node == 0 {
                    self.hop1
                } else {
                    self.hop2
                };
            }
        }
        total
    }

    /// Prefetch missing tiles to the assigned worker's node.
    fn data_ready(&mut self, task: TaskId, w: WorkerId, now: Time) -> Time {
        if self.comm_free {
            return now;
        }
        let node = self.platform.node_of(w);
        let mut data_ready = now;
        for access in self.graph.accesses_of(task) {
            let idx = self.residency.index_of(access.tile);
            if !self.residency.is_valid_idx(idx, node) {
                let src = self.residency.source_for_idx(idx);
                let end = self.links.transfer(
                    self.platform,
                    access.tile,
                    src,
                    node,
                    now,
                    &mut self.transfers,
                );
                self.residency.add_copy_idx(idx, node);
                data_ready = data_ready.max(end);
            }
        }
        data_ready
    }
}

/// Simulate one execution of `graph` on `platform` under `scheduler`,
/// feeding the structured observability sink `obs`.
///
/// The returned trace always passes the common schedule validator; with
/// [`Jitter::NONE`] it passes the *exact*-duration check. Pass
/// [`ObsSink::disabled`] (free) or [`ObsSink::enabled`] to additionally
/// collect per-task phase spans and engine counters in
/// [`SimResult::obs`].
///
/// ```
/// use hetchol_core::obs::ObsSink;
/// use hetchol_core::{dag::TaskGraph, platform::Platform, profiles::TimingProfile};
/// use hetchol_core::scheduler::{estimated_completion, ExecutionView, SchedContext, Scheduler};
/// use hetchol_core::task::TaskId;
/// use hetchol_sim::{simulate_with, SimOptions};
///
/// // A minimal dmda-style scheduler: minimum estimated completion time.
/// struct Greedy;
/// impl Scheduler for Greedy {
///     fn name(&self) -> &str { "greedy" }
///     fn assign(&mut self, t: TaskId, ctx: &SchedContext, v: &dyn ExecutionView) -> usize {
///         ctx.platform.workers()
///             .min_by_key(|&w| estimated_completion(t, w, ctx, v))
///             .unwrap()
///     }
/// }
///
/// let graph = TaskGraph::cholesky(8);
/// let platform = Platform::mirage();
/// let profile = TimingProfile::mirage();
/// let result = simulate_with(&graph, &platform, &profile, &mut Greedy,
///                            &SimOptions::default(), ObsSink::enabled());
/// assert!(result.gflops(8, profile.nb()) > 100.0); // GPUs are pulling weight
/// assert_eq!(result.obs.spans.len(), graph.len()); // every task has a span
/// ```
pub fn simulate_with(
    graph: &TaskGraph,
    platform: &Platform,
    profile: &TimingProfile,
    scheduler: &mut dyn Scheduler,
    opts: &SimOptions,
    obs: ObsSink,
) -> SimResult {
    sim_run::<false>(graph, platform, profile, scheduler, opts, obs, None)
}

/// Simulate one execution under fault injection: `plan`'s faults fire
/// deterministically (worker deaths on the global start count, transient
/// and numerical kernel failures, straggler slowdowns) and the engine
/// recovers per `policy` — capped-backoff retries, re-queuing a dead
/// worker's tasks onto the survivors, the modeled-duration watchdog. The
/// verdict is [`SimResult::outcome`]; impossible configurations (no
/// workers, a plan that kills every worker) are rejected up front.
///
/// An empty plan reproduces [`simulate_with`] bit for bit.
///
/// ```
/// use hetchol_core::fault::{FaultPlan, RetryPolicy, RunOutcome};
/// use hetchol_core::obs::ObsSink;
/// use hetchol_core::{dag::TaskGraph, platform::Platform, profiles::TimingProfile};
/// use hetchol_core::scheduler::{estimated_completion, ExecutionView, SchedContext, Scheduler};
/// use hetchol_core::task::TaskId;
/// use hetchol_sim::{simulate_resilient, SimOptions};
///
/// struct Greedy;
/// impl Scheduler for Greedy {
///     fn name(&self) -> &str { "greedy" }
///     fn assign(&mut self, t: TaskId, ctx: &SchedContext, v: &dyn ExecutionView) -> usize {
///         ctx.platform.workers()
///             .min_by_key(|&w| estimated_completion(t, w, ctx, v))
///             .unwrap()
///     }
/// }
///
/// let graph = TaskGraph::cholesky(4);
/// let platform = Platform::homogeneous(3);
/// let profile = TimingProfile::mirage_homogeneous();
/// // Worker 1 dies after the 6th task start, mid-factorization.
/// let plan = FaultPlan::new().kill_worker(1, 6);
/// let r = simulate_resilient(&graph, &platform, &profile, &mut Greedy,
///                            &SimOptions::default(), ObsSink::disabled(),
///                            &plan, &RetryPolicy::default()).unwrap();
/// assert!(matches!(r.outcome, RunOutcome::Degraded { ref lost_workers, .. }
///                  if lost_workers == &[1]));
/// assert_eq!(r.trace.events.len(), graph.len()); // every task still ran
/// ```
#[allow(clippy::too_many_arguments)]
pub fn simulate_resilient(
    graph: &TaskGraph,
    platform: &Platform,
    profile: &TimingProfile,
    scheduler: &mut dyn Scheduler,
    opts: &SimOptions,
    obs: ObsSink,
    plan: &FaultPlan,
    policy: &RetryPolicy,
) -> Result<SimResult, ConfigError> {
    let n_workers = platform.n_workers();
    if n_workers == 0 {
        return Err(ConfigError::ZeroWorkers);
    }
    if plan.kills_all_workers(n_workers) {
        return Err(ConfigError::PlanKillsAllWorkers { n_workers });
    }
    let mut faults = FaultState::new(plan, *policy, graph.len(), n_workers);
    Ok(sim_run::<true>(
        graph,
        platform,
        profile,
        scheduler,
        opts,
        obs,
        Some(&mut faults),
    ))
}

/// Mark every non-busy doomed worker dead and re-dispatch its queued
/// tasks onto the survivors. Busy doomed workers are skipped: their
/// in-flight attempt completes (completed work is never discarded) and
/// they die at the next sweep. Returns a hard failure iff a drained task
/// found no live worker to land on.
#[allow(clippy::too_many_arguments)]
fn reap_doomed(
    now: Time,
    ctx: &SchedContext,
    scheduler: &mut dyn Scheduler,
    deps: &mut DepTracker,
    queues: &mut WorkerQueues,
    recorder: &mut TraceRecorder,
    data: &mut SimData,
    f: &mut FaultState,
) -> Option<FailureCause> {
    for w in f.doomed_workers() {
        if queues.is_busy(w) {
            continue;
        }
        f.mark_dead(w, now);
        recorder.obs_mut().count_worker_lost(w, now);
        for entry in queues.drain_worker(w) {
            let landed = exec::dispatch_resilient(
                entry.task,
                now,
                ctx,
                scheduler,
                queues,
                recorder,
                data,
                f.dead(),
                Time::ZERO,
            );
            match landed {
                Some(v) => deps.note_queued(entry.task, v),
                None => return Some(FailureCause::AllWorkersLost),
            }
        }
    }
    None
}

/// The engine proper, monomorphised over the resilience mode.
///
/// `RESILIENT == false` (`faults` must be `None`) is exactly the
/// historical simulation loop, including its deadlock assertion — and the
/// compiler sees no fault branches in that instantiation at all. With
/// `RESILIENT == true` the provided [`FaultState`] injects failures at
/// attempt start, doomed workers are reaped whenever idle, and the run is
/// classified instead of panicking.
fn sim_run<const RESILIENT: bool>(
    graph: &TaskGraph,
    platform: &Platform,
    profile: &TimingProfile,
    scheduler: &mut dyn Scheduler,
    opts: &SimOptions,
    obs: ObsSink,
    mut faults: Option<&mut FaultState>,
) -> SimResult {
    debug_assert_eq!(RESILIENT, faults.is_some());
    let ctx = SchedContext {
        graph,
        platform,
        profile,
    };
    scheduler.init(&ctx);

    let n_workers = platform.n_workers();
    let mut deps = DepTracker::new(graph);
    let mut queues = WorkerQueues::new(n_workers);
    let mut recorder = TraceRecorder::with_obs(n_workers, graph.len(), obs);
    let mut data = SimData::new(platform, graph);
    let mut rng = ChaCha8Rng::seed_from_u64(opts.seed);
    let mut events = CalendarQueue::new();
    // Newly ready successors land here; reused across releases so the
    // steady state allocates nothing.
    let mut ready = Vec::new();
    let mut now = Time::ZERO;
    let mut abort: Option<FailureCause> = None;

    // Workers doomed from the very start (`after_starts: 0`) die before
    // the initial dispatch sees them.
    if RESILIENT {
        let f = faults.as_deref_mut().expect("resilient run has faults");
        abort = reap_doomed(
            now,
            &ctx,
            scheduler,
            &mut deps,
            &mut queues,
            &mut recorder,
            &mut data,
            f,
        );
    }

    // Seed the initial ready set in submission order.
    if abort.is_none() {
        for t in deps.initial_ready() {
            if RESILIENT {
                let f = faults.as_deref_mut().expect("resilient run has faults");
                let landed = exec::dispatch_resilient(
                    t,
                    now,
                    &ctx,
                    scheduler,
                    &mut queues,
                    &mut recorder,
                    &mut data,
                    f.dead(),
                    Time::ZERO,
                );
                match landed {
                    Some(w) => deps.note_queued(t, w),
                    None => {
                        abort = Some(FailureCause::AllWorkersLost);
                        break;
                    }
                }
            } else {
                let w = exec::dispatch(
                    t,
                    now,
                    &ctx,
                    scheduler,
                    &mut queues,
                    &mut recorder,
                    &mut data,
                );
                deps.note_queued(t, w);
            }
        }
    }

    'main: while abort.is_none() {
        // Reap any deaths the previous iteration's starts made due (and
        // workers whose in-flight attempt just completed while doomed).
        if RESILIENT {
            let f = faults.as_deref_mut().expect("resilient run has faults");
            if let Some(cause) = reap_doomed(
                now,
                &ctx,
                scheduler,
                &mut deps,
                &mut queues,
                &mut recorder,
                &mut data,
                f,
            ) {
                abort = Some(cause);
                break 'main;
            }
        }

        // Dispatch: start the next startable queued task of every idle
        // worker (the `may_start` gate lets schedule injection hold a
        // worker for its planned-next task instead of backfilling).
        for w in 0..n_workers {
            if queues.is_busy(w) {
                continue;
            }
            if RESILIENT && faults.as_deref().is_some_and(|f| f.is_dead(w)) {
                continue;
            }
            let Some((entry, skipped)) =
                queues.pop_startable_indexed(w, |t| scheduler.may_start(t, w))
            else {
                continue;
            };
            deps.note_started(entry.task);
            recorder.obs_mut().count_backfill(w, skipped);
            scheduler.notify_start(entry.task, w);
            let start = now.max(entry.data_ready);
            let mut duration = opts.jitter.apply(entry.exec_estimate, &mut rng);
            let mut injected: Option<FaultKind> = None;
            if RESILIENT {
                let f = faults.as_deref_mut().expect("resilient run has faults");
                let (_, inj) = f.begin_attempt(entry.task);
                injected = inj;
                let slow = f.slowdown(w);
                if slow != 1.0 {
                    duration = duration.scale(slow);
                }
                if injected.is_none() {
                    if let Some(limit) = f.policy().watchdog {
                        // Decide on the *modeled* duration (calibrated
                        // estimate × straggler factor), never on jitter —
                        // the runtime decides on the same model, so the
                        // verdicts agree across engines.
                        let predicted = if slow != 1.0 {
                            entry.exec_estimate.scale(slow)
                        } else {
                            entry.exec_estimate
                        };
                        if predicted > limit {
                            injected = Some(FaultKind::Timeout);
                            duration = limit;
                        }
                    }
                }
                f.on_start();
            }
            let end = start + duration;
            queues.set_busy_until(w, end);
            events.push(end, w, entry.task, start, injected);
            // This start may have pushed a death threshold over; doomed
            // idle workers must not start anything afterwards.
            if RESILIENT {
                let f = faults.as_deref_mut().expect("resilient run has faults");
                if let Some(cause) = reap_doomed(
                    now,
                    &ctx,
                    scheduler,
                    &mut deps,
                    &mut queues,
                    &mut recorder,
                    &mut data,
                    f,
                ) {
                    abort = Some(cause);
                    break 'main;
                }
            }
        }

        let Some(event) = events.pop() else {
            break; // no task in flight: all queues empty
        };
        let (w, task) = (event.worker, event.task);
        now = event.at;
        queues.set_idle(w);

        if RESILIENT {
            if let Some(kind) = event.injected {
                // The attempt failed (injection replaced execution, so no
                // tile state to unwind): log it, then retry with backoff
                // or abort the run on budget exhaustion.
                let f = faults.as_deref_mut().expect("resilient run has faults");
                let attempt = f.attempts_of(task);
                recorder.obs_mut().on_attempt_failed(
                    task,
                    graph.task(task).kernel(),
                    w,
                    event.start,
                    event.at,
                    attempt,
                    kind.label(),
                );
                match f.record_failure(task, w, kind, now) {
                    Some(backoff) => {
                        recorder.obs_mut().count_retry();
                        let landed = exec::dispatch_resilient(
                            task,
                            now,
                            &ctx,
                            scheduler,
                            &mut queues,
                            &mut recorder,
                            &mut data,
                            f.dead(),
                            backoff,
                        );
                        match landed {
                            Some(v) => deps.note_queued(task, v),
                            None => {
                                abort = Some(FailureCause::AllWorkersLost);
                                break 'main;
                            }
                        }
                    }
                    None => {
                        abort = Some(FailureCause::RetriesExhausted {
                            task,
                            attempts: f.attempts_of(task),
                            kind,
                        });
                        break 'main;
                    }
                }
                continue 'main;
            }
        }

        recorder.record(graph, w, task, event.start, event.at);
        data.invalidate_writes(task, w);
        // Release successors into the reused scratch, then dispatch them.
        deps.release_into(graph, task, &mut ready);
        for &s in ready.iter() {
            if RESILIENT {
                let f = faults.as_deref_mut().expect("resilient run has faults");
                let landed = exec::dispatch_resilient(
                    s,
                    now,
                    &ctx,
                    scheduler,
                    &mut queues,
                    &mut recorder,
                    &mut data,
                    f.dead(),
                    Time::ZERO,
                );
                match landed {
                    Some(v) => deps.note_queued(s, v),
                    None => {
                        abort = Some(FailureCause::AllWorkersLost);
                        break 'main;
                    }
                }
            } else {
                let v = exec::dispatch(
                    s,
                    now,
                    &ctx,
                    scheduler,
                    &mut queues,
                    &mut recorder,
                    &mut data,
                );
                deps.note_queued(s, v);
            }
        }
    }

    let outcome = if RESILIENT {
        let f = faults.as_mut().expect("resilient run has faults");
        let outcome = f.classify(deps.is_done(), abort, deps.remaining());
        recorder.record_faults(f.take_events());
        outcome
    } else {
        assert!(
            deps.is_done(),
            "simulation deadlocked: {} tasks incomplete",
            deps.remaining()
        );
        RunOutcome::Completed
    };
    data.merge_transfers(&mut recorder);
    let (trace, makespan, obs) = recorder.finish_with_obs();
    SimResult {
        trace,
        makespan,
        obs,
        outcome,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetchol_core::schedule::DurationCheck;
    use hetchol_core::scheduler::{estimated_completion, ExecutionView};

    /// Engine tests drive the primary entry with observability off.
    fn simulate(
        graph: &TaskGraph,
        platform: &Platform,
        profile: &TimingProfile,
        scheduler: &mut dyn Scheduler,
        opts: &SimOptions,
    ) -> SimResult {
        simulate_with(
            graph,
            platform,
            profile,
            scheduler,
            opts,
            ObsSink::disabled(),
        )
    }

    /// Greedy earliest-completion scheduler used by engine tests (a
    /// miniature `dmda`; the real ones live in `hetchol-sched`).
    struct Greedy;
    impl Scheduler for Greedy {
        fn name(&self) -> &str {
            "greedy-test"
        }
        fn assign(
            &mut self,
            task: TaskId,
            ctx: &SchedContext,
            view: &dyn ExecutionView,
        ) -> WorkerId {
            ctx.platform
                .workers()
                .min_by_key(|&w| estimated_completion(task, w, ctx, view))
                .expect("platform has workers")
        }
    }

    /// Everything on worker 0.
    struct Serial;
    impl Scheduler for Serial {
        fn name(&self) -> &str {
            "serial-test"
        }
        fn assign(&mut self, _: TaskId, _: &SchedContext, _: &dyn ExecutionView) -> WorkerId {
            0
        }
    }

    fn homog() -> (Platform, TimingProfile) {
        (
            Platform::homogeneous(4),
            TimingProfile::mirage_homogeneous(),
        )
    }

    #[test]
    fn serial_makespan_is_total_work() {
        let (platform, profile) = homog();
        let graph = TaskGraph::cholesky(4);
        let r = simulate(
            &graph,
            &platform,
            &profile,
            &mut Serial,
            &SimOptions::default(),
        );
        let total: Time = graph
            .tasks()
            .iter()
            .map(|t| profile.time(t.kernel(), 0))
            .sum();
        assert_eq!(r.makespan, total);
        assert_eq!(r.trace.events.len(), graph.len());
    }

    #[test]
    fn parallel_beats_serial_and_validates() {
        let (platform, profile) = homog();
        let graph = TaskGraph::cholesky(6);
        let serial = simulate(
            &graph,
            &platform,
            &profile,
            &mut Serial,
            &SimOptions::default(),
        );
        let greedy = simulate(
            &graph,
            &platform,
            &profile,
            &mut Greedy,
            &SimOptions::default(),
        );
        assert!(greedy.makespan < serial.makespan);
        greedy
            .trace
            .to_schedule()
            .validate(&graph, &platform, &profile, DurationCheck::Exact)
            .unwrap();
    }

    #[test]
    fn makespan_at_least_critical_path() {
        let (platform, profile) = homog();
        for n in [2usize, 4, 8] {
            let graph = TaskGraph::cholesky(n);
            let cp = graph.critical_path(|t| profile.fastest_time(graph.task(t).kernel()));
            let r = simulate(
                &graph,
                &platform,
                &profile,
                &mut Greedy,
                &SimOptions::default(),
            );
            assert!(r.makespan >= cp, "n={n}");
        }
    }

    #[test]
    fn heterogeneous_run_validates_exact() {
        let platform = Platform::mirage().without_comm();
        let profile = TimingProfile::mirage();
        let graph = TaskGraph::cholesky(8);
        let r = simulate(
            &graph,
            &platform,
            &profile,
            &mut Greedy,
            &SimOptions::default(),
        );
        r.trace
            .to_schedule()
            .validate(&graph, &platform, &profile, DurationCheck::Exact)
            .unwrap();
        assert!(r.trace.transfers.is_empty(), "comm-free mode");
    }

    #[test]
    fn comm_enabled_records_transfers_and_still_validates() {
        let platform = Platform::mirage();
        let profile = TimingProfile::mirage();
        let graph = TaskGraph::cholesky(6);
        let r = simulate(
            &graph,
            &platform,
            &profile,
            &mut Greedy,
            &SimOptions::default(),
        );
        assert!(
            !r.trace.transfers.is_empty(),
            "GPU work requires PCI transfers"
        );
        r.trace
            .to_schedule()
            .validate(&graph, &platform, &profile, DurationCheck::Exact)
            .unwrap();
        // Communications can only hurt.
        let free = simulate(
            &graph,
            &platform.without_comm(),
            &profile,
            &mut Greedy,
            &SimOptions::default(),
        );
        assert!(r.makespan >= free.makespan);
    }

    #[test]
    fn deterministic_across_runs() {
        let platform = Platform::mirage();
        let profile = TimingProfile::mirage();
        let graph = TaskGraph::cholesky(8);
        let a = simulate(
            &graph,
            &platform,
            &profile,
            &mut Greedy,
            &SimOptions::default(),
        );
        let b = simulate(
            &graph,
            &platform,
            &profile,
            &mut Greedy,
            &SimOptions::default(),
        );
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.trace.events, b.trace.events);
    }

    #[test]
    fn actual_mode_jitters_but_reproduces_per_seed() {
        let platform = Platform::mirage();
        let profile = TimingProfile::mirage();
        let graph = TaskGraph::cholesky(6);
        let a = simulate(
            &graph,
            &platform,
            &profile,
            &mut Greedy,
            &SimOptions::actual(1),
        );
        let a2 = simulate(
            &graph,
            &platform,
            &profile,
            &mut Greedy,
            &SimOptions::actual(1),
        );
        let b = simulate(
            &graph,
            &platform,
            &profile,
            &mut Greedy,
            &SimOptions::actual(2),
        );
        assert_eq!(a.makespan, a2.makespan, "same seed reproduces");
        assert_ne!(a.makespan, b.makespan, "different seeds differ");
        // Jittered durations no longer match the profile exactly, but the
        // schedule is still structurally valid.
        a.trace
            .to_schedule()
            .validate(&graph, &platform, &profile, DurationCheck::Loose)
            .unwrap();
        // Actual mode stays close to simulation (the paper's observation
        // that simulation reproduces real behaviour): within a few percent,
        // but not identical. Note jitter can shift makespan both ways — it
        // also perturbs the scheduler's tie-breaking.
        let sim = simulate(
            &graph,
            &platform,
            &profile,
            &mut Greedy,
            &SimOptions::default(),
        );
        let ratio = a.makespan.as_secs_f64() / sim.makespan.as_secs_f64();
        assert!((0.9..=1.1).contains(&ratio), "actual/sim ratio {ratio}");
    }

    #[test]
    fn empty_graph() {
        let (platform, profile) = homog();
        let graph = TaskGraph::cholesky(0);
        let r = simulate(
            &graph,
            &platform,
            &profile,
            &mut Serial,
            &SimOptions::default(),
        );
        assert_eq!(r.makespan, Time::ZERO);
        assert!(r.trace.events.is_empty());
    }

    #[test]
    fn busy_plus_idle_equals_makespan_per_worker() {
        let platform = Platform::mirage().without_comm();
        let profile = TimingProfile::mirage();
        let graph = TaskGraph::cholesky(8);
        let r = simulate(
            &graph,
            &platform,
            &profile,
            &mut Greedy,
            &SimOptions::default(),
        );
        for w in platform.workers() {
            assert_eq!(
                r.trace.busy_time(w) + r.trace.idle_time(w),
                r.makespan,
                "worker {w}"
            );
        }
        // Work conservation: total busy time equals the sum of durations.
        let total: Time = graph
            .tasks()
            .iter()
            .map(|t| {
                let e = r.trace.events.iter().find(|e| e.task == t.id).unwrap();
                profile.time(t.kernel(), platform.class_of(e.worker))
            })
            .sum();
        assert_eq!(r.trace.total_busy(), total);
    }

    #[test]
    fn obs_spans_cover_all_tasks_and_phases_sum_to_makespan() {
        let platform = Platform::mirage();
        let profile = TimingProfile::mirage();
        let graph = TaskGraph::cholesky(8);
        let r = simulate_with(
            &graph,
            &platform,
            &profile,
            &mut Greedy,
            &SimOptions::default(),
            ObsSink::enabled(),
        );
        assert!(r.obs.enabled);
        assert_eq!(r.obs.spans.len(), graph.len());
        assert_eq!(r.obs.makespan(), r.makespan);
        // Spans agree with the plain trace, and data transfers show up as
        // transfer-wait on some span (comm is on).
        for s in &r.obs.spans {
            let e = r.trace.events.iter().find(|e| e.task == s.task).unwrap();
            assert_eq!((e.worker, e.start, e.end), (s.worker, s.start, s.end));
            assert!(s.queued <= s.start, "queued after start: {s:?}");
        }
        assert_eq!(r.obs.counters.transfers, r.trace.transfers.len() as u64);
        assert!(r.obs.counters.transfers > 0);
        // The phase partition covers every worker's full timeline.
        for p in r.obs.worker_phases() {
            assert_eq!(p.total(), r.makespan, "worker {}", p.worker);
        }
        // Dispatch counters cover every task, and the simulator never
        // parks threads.
        assert_eq!(r.obs.counters.total_dispatched(), graph.len() as u64);
        assert!(r.obs.counters.wakeups.iter().all(|&w| w == 0));
        // The disabled sink reports nothing but runs identically.
        let off = simulate(
            &graph,
            &platform,
            &profile,
            &mut Greedy,
            &SimOptions::default(),
        );
        assert!(!off.obs.enabled);
        assert_eq!(off.trace.events, r.trace.events);
    }

    #[test]
    fn empty_fault_plan_reproduces_fault_free_run_bit_for_bit() {
        let platform = Platform::mirage();
        let profile = TimingProfile::mirage();
        let graph = TaskGraph::cholesky(8);
        let plain = simulate(
            &graph,
            &platform,
            &profile,
            &mut Greedy,
            &SimOptions::default(),
        );
        let resilient = simulate_resilient(
            &graph,
            &platform,
            &profile,
            &mut Greedy,
            &SimOptions::default(),
            ObsSink::disabled(),
            &FaultPlan::none(),
            &RetryPolicy::default(),
        )
        .unwrap();
        assert_eq!(resilient.outcome, RunOutcome::Completed);
        assert_eq!(resilient.trace.events, plain.trace.events);
        assert_eq!(resilient.trace.queue_events, plain.trace.queue_events);
        assert_eq!(resilient.makespan, plain.makespan);
        assert!(resilient.trace.fault_events.is_empty());
    }

    #[test]
    fn killing_one_worker_mid_run_degrades_but_completes() {
        let (platform, profile) = homog();
        let graph = TaskGraph::cholesky(4);
        let plan = FaultPlan::new().kill_worker(1, 6);
        let r = simulate_resilient(
            &graph,
            &platform,
            &profile,
            &mut Greedy,
            &SimOptions::default(),
            ObsSink::enabled(),
            &plan,
            &RetryPolicy::default(),
        )
        .unwrap();
        assert!(
            matches!(r.outcome, RunOutcome::Degraded { ref lost_workers, .. }
                     if lost_workers == &[1]),
            "outcome: {:?}",
            r.outcome
        );
        // Every task still executed exactly once, none on the dead worker
        // after its death.
        assert_eq!(r.trace.events.len(), graph.len());
        let death = r
            .trace
            .fault_events
            .iter()
            .find_map(|e| match e.kind {
                hetchol_core::fault::FaultEventKind::WorkerDied { worker: 1 } => Some(e.at),
                _ => None,
            })
            .expect("death recorded");
        for e in &r.trace.events {
            assert!(
                e.worker != 1 || e.start < death,
                "task {} started on the dead worker at {} (death {})",
                e.task,
                e.start,
                death
            );
        }
        assert_eq!(r.obs.counters.workers_lost, 1);
        assert_eq!(r.obs.worker_deaths.len(), 1);
    }

    #[test]
    fn killing_worker_from_the_start_never_runs_anything_on_it() {
        let (platform, profile) = homog();
        let graph = TaskGraph::cholesky(4);
        let plan = FaultPlan::new().kill_worker(0, 0);
        let r = simulate_resilient(
            &graph,
            &platform,
            &profile,
            &mut Greedy,
            &SimOptions::default(),
            ObsSink::disabled(),
            &plan,
            &RetryPolicy::default(),
        )
        .unwrap();
        assert!(r.outcome.is_success());
        assert_eq!(r.trace.events.len(), graph.len());
        assert!(r.trace.events.iter().all(|e| e.worker != 0));
    }

    #[test]
    fn transient_failure_retries_with_backoff_and_completes() {
        let (platform, profile) = homog();
        let graph = TaskGraph::cholesky(4);
        let first = graph.entry_tasks()[0];
        let plan = FaultPlan::new().transient(first, 2);
        let r = simulate_resilient(
            &graph,
            &platform,
            &profile,
            &mut Greedy,
            &SimOptions::default(),
            ObsSink::enabled(),
            &plan,
            &RetryPolicy::default(),
        )
        .unwrap();
        assert!(
            matches!(r.outcome, RunOutcome::Degraded { ref lost_workers, retries: 2 }
                     if lost_workers.is_empty()),
            "outcome: {:?}",
            r.outcome
        );
        assert_eq!(r.trace.events.len(), graph.len());
        assert_eq!(r.obs.counters.failures, 2);
        assert_eq!(r.obs.counters.retries, 2);
        assert_eq!(r.obs.failed_attempts.len(), 2);
        // The third (successful) attempt respects the second backoff:
        // base × 2 after two failures.
        let policy = RetryPolicy::default();
        let succeeded = r.trace.events.iter().find(|e| e.task == first).unwrap();
        let second_fail_end = r.obs.failed_attempts[1].end;
        assert!(succeeded.start >= second_fail_end + policy.backoff(2));
    }

    #[test]
    fn retry_exhaustion_fails_the_run_with_cause() {
        let (platform, profile) = homog();
        let graph = TaskGraph::cholesky(4);
        let first = graph.entry_tasks()[0];
        let plan = FaultPlan::new().transient(first, 99);
        let policy = RetryPolicy {
            max_attempts: 3,
            ..RetryPolicy::default()
        };
        let r = simulate_resilient(
            &graph,
            &platform,
            &profile,
            &mut Greedy,
            &SimOptions::default(),
            ObsSink::disabled(),
            &plan,
            &policy,
        )
        .unwrap();
        assert_eq!(
            r.outcome,
            RunOutcome::Failed {
                cause: FailureCause::RetriesExhausted {
                    task: first,
                    attempts: 3,
                    kind: FaultKind::Transient,
                }
            }
        );
        assert!(!r.outcome.is_success());
    }

    #[test]
    fn straggler_slows_worker_and_watchdog_times_it_out() {
        let (platform, profile) = homog();
        let graph = TaskGraph::cholesky(4);
        // A 100× straggler everywhere-assigned serial worker: without a
        // watchdog the run completes, just slower.
        let plan = FaultPlan::new().straggler(0, 100.0);
        let slow = simulate_resilient(
            &graph,
            &platform,
            &profile,
            &mut Serial,
            &SimOptions::default(),
            ObsSink::disabled(),
            &plan,
            &RetryPolicy::default(),
        )
        .unwrap();
        assert_eq!(slow.outcome, RunOutcome::Completed);
        let clean = simulate(
            &graph,
            &platform,
            &profile,
            &mut Serial,
            &SimOptions::default(),
        );
        assert!(slow.makespan > clean.makespan.scale(50.0));
        // With a watchdog below the slowed duration every attempt times
        // out, and the retry budget runs dry on worker 0 (Serial pins all
        // work there, so there is no live escape).
        let policy = RetryPolicy {
            watchdog: Some(Time::from_micros(10)),
            max_attempts: 2,
            ..RetryPolicy::default()
        };
        let r = simulate_resilient(
            &graph,
            &platform,
            &profile,
            &mut Serial,
            &SimOptions::default(),
            ObsSink::disabled(),
            &plan,
            &policy,
        )
        .unwrap();
        assert!(
            matches!(
                r.outcome,
                RunOutcome::Failed {
                    cause: FailureCause::RetriesExhausted {
                        kind: FaultKind::Timeout,
                        ..
                    }
                }
            ),
            "outcome: {:?}",
            r.outcome
        );
    }

    #[test]
    fn impossible_configurations_are_rejected_up_front() {
        let profile = TimingProfile::mirage_homogeneous();
        let graph = TaskGraph::cholesky(2);
        let none = Platform::homogeneous(0);
        assert_eq!(
            simulate_resilient(
                &graph,
                &none,
                &profile,
                &mut Greedy,
                &SimOptions::default(),
                ObsSink::disabled(),
                &FaultPlan::none(),
                &RetryPolicy::default(),
            )
            .unwrap_err(),
            ConfigError::ZeroWorkers
        );
        let two = Platform::homogeneous(2);
        let killer = FaultPlan::new().kill_worker(0, 0).kill_worker(1, 3);
        assert_eq!(
            simulate_resilient(
                &graph,
                &two,
                &profile,
                &mut Greedy,
                &SimOptions::default(),
                ObsSink::disabled(),
                &killer,
                &RetryPolicy::default(),
            )
            .unwrap_err(),
            ConfigError::PlanKillsAllWorkers { n_workers: 2 }
        );
    }

    #[test]
    fn seeded_chaos_is_deterministic_in_sim() {
        let (platform, profile) = homog();
        let graph = TaskGraph::cholesky(5);
        let plan = FaultPlan::seeded(42, graph.len(), platform.n_workers());
        let run = |sched: &mut dyn Scheduler| {
            simulate_resilient(
                &graph,
                &platform,
                &profile,
                sched,
                &SimOptions::default(),
                ObsSink::disabled(),
                &plan,
                &RetryPolicy::default(),
            )
            .unwrap()
        };
        let a = run(&mut Greedy);
        let b = run(&mut Greedy);
        assert_eq!(a.outcome, b.outcome);
        assert_eq!(a.trace.events, b.trace.events);
        assert_eq!(a.trace.fault_events, b.trace.fault_events);
    }

    #[test]
    fn gflops_positive_and_bounded_by_peak() {
        let platform = Platform::mirage().without_comm();
        let profile = TimingProfile::mirage();
        let graph = TaskGraph::cholesky(16);
        let r = simulate(
            &graph,
            &platform,
            &profile,
            &mut Greedy,
            &SimOptions::default(),
        );
        let g = r.gflops(16, profile.nb());
        assert!(g > 0.0);
        assert!(g < profile.gemm_peak(&platform));
    }
}
