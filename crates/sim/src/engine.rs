//! The discrete-event engine, driving the shared execution core.
//!
//! Dependency tracking, queue insertion and the availability estimate all
//! live in [`hetchol_core::exec`]; this module supplies what is specific
//! to simulation — the virtual clock (a completion-event heap), duration
//! jitter, and the tile residency + PCI link data model plugged in
//! through [`exec::EngineHooks`].

use crate::data::{Links, Residency};
use crate::jitter::Jitter;
use hetchol_core::dag::TaskGraph;
use hetchol_core::exec::{self, DepTracker, EngineHooks, TraceRecorder, WorkerQueues};
use hetchol_core::metrics;
use hetchol_core::obs::{ObsReport, ObsSink};
use hetchol_core::platform::{Platform, WorkerId};
use hetchol_core::profiles::TimingProfile;
use hetchol_core::scheduler::{SchedContext, Scheduler};
use hetchol_core::task::TaskId;
use hetchol_core::time::Time;
use hetchol_core::trace::{Trace, TransferEvent};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Simulation options.
#[derive(Copy, Clone, Debug)]
pub struct SimOptions {
    /// RNG seed (only consumed by jittered runs and stochastic schedulers).
    pub seed: u64,
    /// Duration jitter + per-task overhead; [`Jitter::NONE`] for the
    /// deterministic simulation mode.
    pub jitter: Jitter,
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions {
            seed: 0,
            jitter: Jitter::NONE,
        }
    }
}

impl SimOptions {
    /// The paper's *actual execution* mode: per-task runtime overhead and
    /// ±2% duration jitter, seeded for reproducibility.
    pub fn actual(seed: u64) -> SimOptions {
        SimOptions {
            seed,
            jitter: Jitter {
                sigma: 0.02,
                overhead: Time::from_micros(200),
            },
        }
    }
}

/// Result of one simulated execution.
#[derive(Clone, Debug)]
pub struct SimResult {
    /// Full execution trace (tasks + transfers).
    pub trace: Trace,
    /// Completion time of the last task.
    pub makespan: Time,
    /// Structured observability record (empty unless the run was given an
    /// enabled [`ObsSink`]).
    pub obs: ObsReport,
}

impl SimResult {
    /// Achieved GFLOP/s for an `n_tiles` × `n_tiles` factorization at tile
    /// size `nb`.
    pub fn gflops(&self, n_tiles: usize, nb: usize) -> f64 {
        metrics::gflops(n_tiles, nb, self.makespan)
    }
}

/// Pending completion events: min-heap on `(finish time, seq)`, carrying
/// `(worker, task, start)` for trace recording.
type EventHeap = BinaryHeap<Reverse<(Time, u64, WorkerId, TaskId, Time)>>;

/// The simulator's data model, plugged into the execution core: tile
/// residency over memory nodes and PCI transfers over the link model.
struct SimData<'a> {
    platform: &'a Platform,
    graph: &'a TaskGraph,
    residency: Residency,
    links: Links,
    /// Prefetch transfers recorded here, merged into the trace at the end.
    transfers: Vec<TransferEvent>,
}

impl EngineHooks for SimData<'_> {
    fn transfer_estimate(&self, task: TaskId, w: WorkerId) -> Time {
        let node = self.platform.node_of(w);
        let mut total = Time::ZERO;
        for access in self.graph.task(task).coords.accesses() {
            if !self.residency.is_valid_at(access.tile, node) {
                let src = self.residency.source_for(access.tile);
                total += Links::estimate(self.platform, src, node);
            }
        }
        total
    }

    /// Prefetch missing tiles to the assigned worker's node.
    fn data_ready(&mut self, task: TaskId, w: WorkerId, now: Time) -> Time {
        let node = self.platform.node_of(w);
        let mut data_ready = now;
        for access in self.graph.task(task).coords.accesses() {
            if !self.residency.is_valid_at(access.tile, node) {
                let src = self.residency.source_for(access.tile);
                let end = self.links.transfer(
                    self.platform,
                    access.tile,
                    src,
                    node,
                    now,
                    &mut self.transfers,
                );
                self.residency.add_copy(access.tile, node);
                data_ready = data_ready.max(end);
            }
        }
        data_ready
    }
}

/// Simulate one execution of `graph` on `platform` under `scheduler`,
/// feeding the structured observability sink `obs`.
///
/// The returned trace always passes the common schedule validator; with
/// [`Jitter::NONE`] it passes the *exact*-duration check. Pass
/// [`ObsSink::disabled`] (free) or [`ObsSink::enabled`] to additionally
/// collect per-task phase spans and engine counters in
/// [`SimResult::obs`].
///
/// ```
/// use hetchol_core::obs::ObsSink;
/// use hetchol_core::{dag::TaskGraph, platform::Platform, profiles::TimingProfile};
/// use hetchol_core::scheduler::{estimated_completion, ExecutionView, SchedContext, Scheduler};
/// use hetchol_core::task::TaskId;
/// use hetchol_sim::{simulate_with, SimOptions};
///
/// // A minimal dmda-style scheduler: minimum estimated completion time.
/// struct Greedy;
/// impl Scheduler for Greedy {
///     fn name(&self) -> &str { "greedy" }
///     fn assign(&mut self, t: TaskId, ctx: &SchedContext, v: &dyn ExecutionView) -> usize {
///         ctx.platform.workers()
///             .min_by_key(|&w| estimated_completion(t, w, ctx, v))
///             .unwrap()
///     }
/// }
///
/// let graph = TaskGraph::cholesky(8);
/// let platform = Platform::mirage();
/// let profile = TimingProfile::mirage();
/// let result = simulate_with(&graph, &platform, &profile, &mut Greedy,
///                            &SimOptions::default(), ObsSink::enabled());
/// assert!(result.gflops(8, profile.nb()) > 100.0); // GPUs are pulling weight
/// assert_eq!(result.obs.spans.len(), graph.len()); // every task has a span
/// ```
pub fn simulate_with(
    graph: &TaskGraph,
    platform: &Platform,
    profile: &TimingProfile,
    scheduler: &mut dyn Scheduler,
    opts: &SimOptions,
    obs: ObsSink,
) -> SimResult {
    let ctx = SchedContext {
        graph,
        platform,
        profile,
    };
    scheduler.init(&ctx);

    let n_workers = platform.n_workers();
    let mut deps = DepTracker::new(graph);
    let mut queues = WorkerQueues::new(n_workers);
    let mut recorder = TraceRecorder::with_obs(n_workers, graph.len(), obs);
    let mut data = SimData {
        platform,
        graph,
        residency: Residency::new(platform.n_nodes()),
        links: Links::new(platform.n_nodes()),
        transfers: Vec::new(),
    };
    let mut rng = ChaCha8Rng::seed_from_u64(opts.seed);
    let mut events: EventHeap = BinaryHeap::new();
    let mut heap_seq = 0u64;
    let mut now = Time::ZERO;

    // Seed the initial ready set in submission order.
    for t in deps.initial_ready() {
        exec::dispatch(
            t,
            now,
            &ctx,
            scheduler,
            &mut queues,
            &mut recorder,
            &mut data,
        );
    }

    loop {
        // Dispatch: start the next startable queued task of every idle
        // worker (the `may_start` gate lets schedule injection hold a
        // worker for its planned-next task instead of backfilling).
        for w in 0..n_workers {
            if queues.is_busy(w) {
                continue;
            }
            let Some((entry, skipped)) =
                queues.pop_startable_indexed(w, |t| scheduler.may_start(t, w))
            else {
                continue;
            };
            recorder.obs_mut().count_backfill(w, skipped);
            scheduler.notify_start(entry.task, w);
            let start = now.max(entry.data_ready);
            let duration = opts.jitter.apply(entry.exec_estimate, &mut rng);
            let end = start + duration;
            queues.set_busy_until(w, end);
            events.push(Reverse((end, heap_seq, w, entry.task, start)));
            heap_seq += 1;
        }

        let Some(Reverse((t_end, _, w, task, t_start))) = events.pop() else {
            break; // no task in flight: all queues empty
        };
        now = t_end;
        recorder.record(graph, w, task, t_start, t_end);
        queues.set_idle(w);
        // Each write invalidates every other copy of the written tile
        // (QR's TSQRT/TSMQR write two tiles; iterate the full write set).
        for access in graph.task(task).coords.accesses() {
            if access.mode.is_write() {
                data.residency.write_at(access.tile, platform.node_of(w));
            }
        }
        // Release successors.
        for s in deps.release(graph, task) {
            exec::dispatch(
                s,
                now,
                &ctx,
                scheduler,
                &mut queues,
                &mut recorder,
                &mut data,
            );
        }
    }

    assert!(
        deps.is_done(),
        "simulation deadlocked: {} tasks incomplete",
        deps.remaining()
    );
    recorder.transfers_mut().append(&mut data.transfers);
    let (trace, makespan, obs) = recorder.finish_with_obs();
    SimResult {
        trace,
        makespan,
        obs,
    }
}

/// Simulate one execution with observability disabled.
#[deprecated(
    since = "0.4.0",
    note = "use `simulate_with` (or the `hetchol::Run` facade) instead"
)]
pub fn simulate(
    graph: &TaskGraph,
    platform: &Platform,
    profile: &TimingProfile,
    scheduler: &mut dyn Scheduler,
    opts: &SimOptions,
) -> SimResult {
    simulate_with(
        graph,
        platform,
        profile,
        scheduler,
        opts,
        ObsSink::disabled(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetchol_core::schedule::DurationCheck;
    use hetchol_core::scheduler::{estimated_completion, ExecutionView};

    /// Tests drive the primary entry (shadows the deprecated glob import).
    fn simulate(
        graph: &TaskGraph,
        platform: &Platform,
        profile: &TimingProfile,
        scheduler: &mut dyn Scheduler,
        opts: &SimOptions,
    ) -> SimResult {
        simulate_with(
            graph,
            platform,
            profile,
            scheduler,
            opts,
            ObsSink::disabled(),
        )
    }

    /// Greedy earliest-completion scheduler used by engine tests (a
    /// miniature `dmda`; the real ones live in `hetchol-sched`).
    struct Greedy;
    impl Scheduler for Greedy {
        fn name(&self) -> &str {
            "greedy-test"
        }
        fn assign(
            &mut self,
            task: TaskId,
            ctx: &SchedContext,
            view: &dyn ExecutionView,
        ) -> WorkerId {
            ctx.platform
                .workers()
                .min_by_key(|&w| estimated_completion(task, w, ctx, view))
                .expect("platform has workers")
        }
    }

    /// Everything on worker 0.
    struct Serial;
    impl Scheduler for Serial {
        fn name(&self) -> &str {
            "serial-test"
        }
        fn assign(&mut self, _: TaskId, _: &SchedContext, _: &dyn ExecutionView) -> WorkerId {
            0
        }
    }

    fn homog() -> (Platform, TimingProfile) {
        (
            Platform::homogeneous(4),
            TimingProfile::mirage_homogeneous(),
        )
    }

    #[test]
    fn serial_makespan_is_total_work() {
        let (platform, profile) = homog();
        let graph = TaskGraph::cholesky(4);
        let r = simulate(
            &graph,
            &platform,
            &profile,
            &mut Serial,
            &SimOptions::default(),
        );
        let total: Time = graph
            .tasks()
            .iter()
            .map(|t| profile.time(t.kernel(), 0))
            .sum();
        assert_eq!(r.makespan, total);
        assert_eq!(r.trace.events.len(), graph.len());
    }

    #[test]
    fn parallel_beats_serial_and_validates() {
        let (platform, profile) = homog();
        let graph = TaskGraph::cholesky(6);
        let serial = simulate(
            &graph,
            &platform,
            &profile,
            &mut Serial,
            &SimOptions::default(),
        );
        let greedy = simulate(
            &graph,
            &platform,
            &profile,
            &mut Greedy,
            &SimOptions::default(),
        );
        assert!(greedy.makespan < serial.makespan);
        greedy
            .trace
            .to_schedule()
            .validate(&graph, &platform, &profile, DurationCheck::Exact)
            .unwrap();
    }

    #[test]
    fn makespan_at_least_critical_path() {
        let (platform, profile) = homog();
        for n in [2usize, 4, 8] {
            let graph = TaskGraph::cholesky(n);
            let cp = graph.critical_path(|t| profile.fastest_time(graph.task(t).kernel()));
            let r = simulate(
                &graph,
                &platform,
                &profile,
                &mut Greedy,
                &SimOptions::default(),
            );
            assert!(r.makespan >= cp, "n={n}");
        }
    }

    #[test]
    fn heterogeneous_run_validates_exact() {
        let platform = Platform::mirage().without_comm();
        let profile = TimingProfile::mirage();
        let graph = TaskGraph::cholesky(8);
        let r = simulate(
            &graph,
            &platform,
            &profile,
            &mut Greedy,
            &SimOptions::default(),
        );
        r.trace
            .to_schedule()
            .validate(&graph, &platform, &profile, DurationCheck::Exact)
            .unwrap();
        assert!(r.trace.transfers.is_empty(), "comm-free mode");
    }

    #[test]
    fn comm_enabled_records_transfers_and_still_validates() {
        let platform = Platform::mirage();
        let profile = TimingProfile::mirage();
        let graph = TaskGraph::cholesky(6);
        let r = simulate(
            &graph,
            &platform,
            &profile,
            &mut Greedy,
            &SimOptions::default(),
        );
        assert!(
            !r.trace.transfers.is_empty(),
            "GPU work requires PCI transfers"
        );
        r.trace
            .to_schedule()
            .validate(&graph, &platform, &profile, DurationCheck::Exact)
            .unwrap();
        // Communications can only hurt.
        let free = simulate(
            &graph,
            &platform.without_comm(),
            &profile,
            &mut Greedy,
            &SimOptions::default(),
        );
        assert!(r.makespan >= free.makespan);
    }

    #[test]
    fn deterministic_across_runs() {
        let platform = Platform::mirage();
        let profile = TimingProfile::mirage();
        let graph = TaskGraph::cholesky(8);
        let a = simulate(
            &graph,
            &platform,
            &profile,
            &mut Greedy,
            &SimOptions::default(),
        );
        let b = simulate(
            &graph,
            &platform,
            &profile,
            &mut Greedy,
            &SimOptions::default(),
        );
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.trace.events, b.trace.events);
    }

    #[test]
    fn actual_mode_jitters_but_reproduces_per_seed() {
        let platform = Platform::mirage();
        let profile = TimingProfile::mirage();
        let graph = TaskGraph::cholesky(6);
        let a = simulate(
            &graph,
            &platform,
            &profile,
            &mut Greedy,
            &SimOptions::actual(1),
        );
        let a2 = simulate(
            &graph,
            &platform,
            &profile,
            &mut Greedy,
            &SimOptions::actual(1),
        );
        let b = simulate(
            &graph,
            &platform,
            &profile,
            &mut Greedy,
            &SimOptions::actual(2),
        );
        assert_eq!(a.makespan, a2.makespan, "same seed reproduces");
        assert_ne!(a.makespan, b.makespan, "different seeds differ");
        // Jittered durations no longer match the profile exactly, but the
        // schedule is still structurally valid.
        a.trace
            .to_schedule()
            .validate(&graph, &platform, &profile, DurationCheck::Loose)
            .unwrap();
        // Actual mode stays close to simulation (the paper's observation
        // that simulation reproduces real behaviour): within a few percent,
        // but not identical. Note jitter can shift makespan both ways — it
        // also perturbs the scheduler's tie-breaking.
        let sim = simulate(
            &graph,
            &platform,
            &profile,
            &mut Greedy,
            &SimOptions::default(),
        );
        let ratio = a.makespan.as_secs_f64() / sim.makespan.as_secs_f64();
        assert!((0.9..=1.1).contains(&ratio), "actual/sim ratio {ratio}");
    }

    #[test]
    fn empty_graph() {
        let (platform, profile) = homog();
        let graph = TaskGraph::cholesky(0);
        let r = simulate(
            &graph,
            &platform,
            &profile,
            &mut Serial,
            &SimOptions::default(),
        );
        assert_eq!(r.makespan, Time::ZERO);
        assert!(r.trace.events.is_empty());
    }

    #[test]
    fn busy_plus_idle_equals_makespan_per_worker() {
        let platform = Platform::mirage().without_comm();
        let profile = TimingProfile::mirage();
        let graph = TaskGraph::cholesky(8);
        let r = simulate(
            &graph,
            &platform,
            &profile,
            &mut Greedy,
            &SimOptions::default(),
        );
        for w in platform.workers() {
            assert_eq!(
                r.trace.busy_time(w) + r.trace.idle_time(w),
                r.makespan,
                "worker {w}"
            );
        }
        // Work conservation: total busy time equals the sum of durations.
        let total: Time = graph
            .tasks()
            .iter()
            .map(|t| {
                let e = r.trace.events.iter().find(|e| e.task == t.id).unwrap();
                profile.time(t.kernel(), platform.class_of(e.worker))
            })
            .sum();
        assert_eq!(r.trace.total_busy(), total);
    }

    #[test]
    fn obs_spans_cover_all_tasks_and_phases_sum_to_makespan() {
        let platform = Platform::mirage();
        let profile = TimingProfile::mirage();
        let graph = TaskGraph::cholesky(8);
        let r = simulate_with(
            &graph,
            &platform,
            &profile,
            &mut Greedy,
            &SimOptions::default(),
            ObsSink::enabled(),
        );
        assert!(r.obs.enabled);
        assert_eq!(r.obs.spans.len(), graph.len());
        assert_eq!(r.obs.makespan(), r.makespan);
        // Spans agree with the plain trace, and data transfers show up as
        // transfer-wait on some span (comm is on).
        for s in &r.obs.spans {
            let e = r.trace.events.iter().find(|e| e.task == s.task).unwrap();
            assert_eq!((e.worker, e.start, e.end), (s.worker, s.start, s.end));
            assert!(s.queued <= s.start, "queued after start: {s:?}");
        }
        assert_eq!(r.obs.counters.transfers, r.trace.transfers.len() as u64);
        assert!(r.obs.counters.transfers > 0);
        // The phase partition covers every worker's full timeline.
        for p in r.obs.worker_phases() {
            assert_eq!(p.total(), r.makespan, "worker {}", p.worker);
        }
        // Dispatch counters cover every task, and the simulator never
        // parks threads.
        assert_eq!(r.obs.counters.total_dispatched(), graph.len() as u64);
        assert!(r.obs.counters.wakeups.iter().all(|&w| w == 0));
        // The disabled sink reports nothing but runs identically.
        let off = simulate(
            &graph,
            &platform,
            &profile,
            &mut Greedy,
            &SimOptions::default(),
        );
        assert!(!off.obs.enabled);
        assert_eq!(off.trace.events, r.trace.events);
    }

    #[test]
    fn gflops_positive_and_bounded_by_peak() {
        let platform = Platform::mirage().without_comm();
        let profile = TimingProfile::mirage();
        let graph = TaskGraph::cholesky(16);
        let r = simulate(
            &graph,
            &platform,
            &profile,
            &mut Greedy,
            &SimOptions::default(),
        );
        let g = r.gflops(16, profile.nb());
        assert!(g > 0.0);
        assert!(g < profile.gemm_peak(&platform));
    }
}
