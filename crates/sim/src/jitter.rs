//! Duration jitter for "actual execution" mode.
//!
//! Real runs differ from the calibrated model in two ways the paper's
//! actual-vs-simulated figures make visible: a small systematic overhead
//! per task (runtime bookkeeping) and run-to-run variance. We model the
//! variance as a multiplicative log-normal factor `exp(σ·Z)`, clamped to
//! ±3σ so a single sample can never produce an absurd duration.

use hetchol_core::time::Time;
use rand::Rng;
use rand_chacha::ChaCha8Rng;

/// Jitter model parameters.
#[derive(Copy, Clone, Debug)]
pub struct Jitter {
    /// Relative standard deviation of the multiplicative factor
    /// (0 disables jitter entirely).
    pub sigma: f64,
    /// Constant added to every task duration (runtime overhead).
    pub overhead: Time,
}

impl Jitter {
    /// No jitter, no overhead: deterministic simulation mode.
    pub const NONE: Jitter = Jitter {
        sigma: 0.0,
        overhead: Time::ZERO,
    };

    /// Apply the model to a base duration.
    pub fn apply(&self, base: Time, rng: &mut ChaCha8Rng) -> Time {
        let jittered = if self.sigma > 0.0 {
            let z = standard_normal(rng).clamp(-3.0, 3.0);
            base.scale((self.sigma * z).exp())
        } else {
            base
        };
        jittered + self.overhead
    }
}

/// One standard-normal sample via Box–Muller (avoids a `rand_distr`
/// dependency for a single distribution).
pub fn standard_normal(rng: &mut ChaCha8Rng) -> f64 {
    loop {
        let u1: f64 = rng.gen::<f64>();
        if u1 <= f64::MIN_POSITIVE {
            continue; // avoid ln(0)
        }
        let u2: f64 = rng.gen::<f64>();
        return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn none_is_identity() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let base = Time::from_millis(104);
        assert_eq!(Jitter::NONE.apply(base, &mut rng), base);
    }

    #[test]
    fn overhead_is_added() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let j = Jitter {
            sigma: 0.0,
            overhead: Time::from_micros(200),
        };
        assert_eq!(
            j.apply(Time::from_millis(10), &mut rng),
            Time::from_millis(10) + Time::from_micros(200)
        );
    }

    #[test]
    fn jitter_is_reproducible_and_bounded() {
        let j = Jitter {
            sigma: 0.02,
            overhead: Time::ZERO,
        };
        let base = Time::from_millis(100);
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            let ta = j.apply(base, &mut a);
            let tb = j.apply(base, &mut b);
            assert_eq!(ta, tb, "same seed, same stream");
            // exp(±3σ) with σ = 0.02 is within ±6.2%.
            let ratio = ta.as_secs_f64() / base.as_secs_f64();
            assert!((0.93..=1.07).contains(&ratio), "{ratio}");
        }
    }

    #[test]
    fn normal_samples_have_sane_moments() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }
}
