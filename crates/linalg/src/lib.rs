//! # hetchol-linalg
//!
//! Real double-precision dense linear algebra backing the *actual
//! execution* mode: the four tile kernels of the tiled Cholesky
//! factorization (POTRF / TRSM / SYRK / GEMM), tiled matrix storage, SPD
//! matrix generators and residual verification.
//!
//! The kernels are straightforward cache-aware loops, not a BLAS: the
//! reproduction's claims are about *scheduling*, so what matters is that
//! the kernels are numerically correct and have stable, calibratable
//! execution times (which `hetchol-rt` measures at startup, playing the
//! role of StarPU's calibration pass).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cholesky;
pub mod full;
pub mod generate;
pub mod kernels;
pub mod lu;
pub mod matrix;
pub mod qr;
pub mod verify;

pub use cholesky::{tiled_cholesky_in_place, TiledCholeskyError};
pub use full::FullTiledMatrix;
pub use generate::{random_diagonally_dominant, random_spd};
pub use kernels::{gemm_update, potrf_tile, syrk_update, trsm_solve};
pub use lu::{lu_residual, tiled_lu_in_place, TiledLuError};
pub use matrix::{Matrix, TiledMatrix};
pub use qr::{QrMatrix, TiledQrError};
pub use verify::{factorization_residual, solve_with_factor};
