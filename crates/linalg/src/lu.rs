//! Tiled LU factorization without pivoting (extension, DESIGN.md §9).
//!
//! `A = L·U` with `L` unit lower triangular and `U` upper triangular,
//! computed in place over a [`FullTiledMatrix`]. No pivoting: callers must
//! supply matrices for which this is stable (the generator
//! [`crate::generate::random_diagonally_dominant`] guarantees it), which
//! is the standard setting for tiled LU-nopiv studies.

use crate::full::FullTiledMatrix;
use crate::matrix::Matrix;
use hetchol_core::task::TaskCoords;

/// Numerical failure during tiled LU.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TiledLuError {
    /// A zero (or non-finite) pivot appeared on the diagonal.
    ZeroPivot {
        /// Elimination step (diagonal tile index).
        k: usize,
        /// Column within the tile.
        column: usize,
    },
    /// The task does not belong to the LU DAG.
    WrongAlgorithm,
}

impl std::fmt::Display for TiledLuError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TiledLuError::ZeroPivot { k, column } => {
                write!(f, "zero pivot in tile A[{k}][{k}], column {column}")
            }
            TiledLuError::WrongAlgorithm => write!(f, "task is not an LU task"),
        }
    }
}

impl std::error::Error for TiledLuError {}

#[inline]
fn at(nb: usize, r: usize, c: usize) -> usize {
    r + c * nb
}

/// In-place unblocked LU without pivoting of one tile: on return the
/// strict lower triangle holds `L` (unit diagonal implied) and the upper
/// triangle holds `U`.
pub fn getrf_nopiv_tile(a: &mut [f64], nb: usize) -> Result<(), usize> {
    debug_assert_eq!(a.len(), nb * nb);
    for k in 0..nb {
        let piv = a[at(nb, k, k)];
        if piv == 0.0 || !piv.is_finite() {
            return Err(k);
        }
        let inv = 1.0 / piv;
        for i in (k + 1)..nb {
            a[at(nb, i, k)] *= inv;
        }
        for j in (k + 1)..nb {
            let ukj = a[at(nb, k, j)];
            if ukj != 0.0 {
                for i in (k + 1)..nb {
                    a[at(nb, i, j)] -= a[at(nb, i, k)] * ukj;
                }
            }
        }
    }
    Ok(())
}

/// Left solve `B ← L⁻¹·B` with `L` the *unit* lower triangle stored in
/// `lu` (LU row-panel update).
pub fn trsm_left_lower_unit(b: &mut [f64], lu: &[f64], nb: usize) {
    debug_assert_eq!(b.len(), nb * nb);
    debug_assert_eq!(lu.len(), nb * nb);
    for q in 0..nb {
        for p in 0..nb {
            let mut v = b[at(nb, p, q)];
            for r in 0..p {
                v -= lu[at(nb, p, r)] * b[at(nb, r, q)];
            }
            b[at(nb, p, q)] = v; // unit diagonal: no division
        }
    }
}

/// Right solve `B ← B·U⁻¹` with `U` the upper triangle stored in `lu`
/// (LU column-panel update).
pub fn trsm_right_upper(b: &mut [f64], lu: &[f64], nb: usize) {
    debug_assert_eq!(b.len(), nb * nb);
    debug_assert_eq!(lu.len(), nb * nb);
    // X·U = B: column q of X needs columns < q:
    // X[p,q] = (B[p,q] - Σ_{r<q} X[p,r]·U[r,q]) / U[q,q].
    for q in 0..nb {
        for r in 0..q {
            let urq = lu[at(nb, r, q)];
            if urq != 0.0 {
                let (xr, xq) = {
                    let (lo, hi) = b.split_at_mut(q * nb);
                    (&lo[r * nb..r * nb + nb], &mut hi[..nb])
                };
                for p in 0..nb {
                    xq[p] -= xr[p] * urq;
                }
            }
        }
        let inv = 1.0 / lu[at(nb, q, q)];
        for p in 0..nb {
            b[at(nb, p, q)] *= inv;
        }
    }
}

/// General update `C ← C − A·B` (no transpose — LU's trailing update).
pub fn gemm_nn_update(c: &mut [f64], a: &[f64], b: &[f64], nb: usize) {
    debug_assert_eq!(c.len(), nb * nb);
    debug_assert_eq!(a.len(), nb * nb);
    debug_assert_eq!(b.len(), nb * nb);
    for q in 0..nb {
        let bcol = &b[q * nb..q * nb + nb];
        for (r, &brq) in bcol.iter().enumerate() {
            if brq != 0.0 {
                let acol = &a[r * nb..r * nb + nb];
                let out = &mut c[q * nb..q * nb + nb];
                for p in 0..nb {
                    out[p] -= acol[p] * brq;
                }
            }
        }
    }
}

/// Execute one LU DAG task in place.
pub fn apply_lu_task(m: &mut FullTiledMatrix, coords: TaskCoords) -> Result<(), TiledLuError> {
    let nb = m.nb();
    match coords {
        TaskCoords::Getrf { k } => {
            let k = k as usize;
            getrf_nopiv_tile(m.tile_mut(k, k), nb)
                .map_err(|column| TiledLuError::ZeroPivot { k, column })
        }
        TaskCoords::LuTrsmRow { k, j } => {
            let (k, j) = (k as usize, j as usize);
            let (b, lu) = m.tile_pair_mut((k, j), (k, k));
            trsm_left_lower_unit(b, lu, nb);
            Ok(())
        }
        TaskCoords::LuTrsmCol { k, i } => {
            let (k, i) = (k as usize, i as usize);
            let (b, lu) = m.tile_pair_mut((i, k), (k, k));
            trsm_right_upper(b, lu, nb);
            Ok(())
        }
        TaskCoords::LuGemm { k, i, j } => {
            let (k, i, j) = (k as usize, i as usize, j as usize);
            let bkj = m.tile(k, j).to_vec();
            let (c, a) = m.tile_pair_mut((i, j), (i, k));
            gemm_nn_update(c, a, &bkj, nb);
            Ok(())
        }
        _ => Err(TiledLuError::WrongAlgorithm),
    }
}

/// Sequential in-place tiled LU without pivoting.
pub fn tiled_lu_in_place(m: &mut FullTiledMatrix) -> Result<(), TiledLuError> {
    let n = m.n_tiles() as u32;
    for k in 0..n {
        apply_lu_task(m, TaskCoords::Getrf { k })?;
        for j in (k + 1)..n {
            apply_lu_task(m, TaskCoords::LuTrsmRow { k, j })?;
        }
        for i in (k + 1)..n {
            apply_lu_task(m, TaskCoords::LuTrsmCol { k, i })?;
        }
        for i in (k + 1)..n {
            for j in (k + 1)..n {
                apply_lu_task(m, TaskCoords::LuGemm { k, i, j })?;
            }
        }
    }
    Ok(())
}

/// Relative Frobenius residual `‖A − L·U‖_F / ‖A‖_F` of an in-place LU.
pub fn lu_residual(original: &Matrix, factored: &FullTiledMatrix) -> f64 {
    let n = original.rows();
    let dense = factored.to_dense();
    let l = Matrix::from_fn(n, n, |r, c| {
        use std::cmp::Ordering;
        match r.cmp(&c) {
            Ordering::Greater => dense[(r, c)],
            Ordering::Equal => 1.0,
            Ordering::Less => 0.0,
        }
    });
    let u = Matrix::from_fn(n, n, |r, c| if r <= c { dense[(r, c)] } else { 0.0 });
    let prod = l.matmul(&u);
    let mut diff2 = 0.0f64;
    for c in 0..n {
        for r in 0..n {
            let d = prod[(r, c)] - original[(r, c)];
            diff2 += d * d;
        }
    }
    diff2.sqrt() / original.frobenius_norm()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::random_diagonally_dominant;
    use hetchol_core::dag::TaskGraph;

    #[test]
    fn getrf_tile_reconstructs() {
        let nb = 8;
        let a = random_diagonally_dominant(nb, 3);
        let mut t = a.data().to_vec();
        getrf_nopiv_tile(&mut t, nb).unwrap();
        let m = FullTiledMatrix::from_dense(&a, nb);
        let mut factored = FullTiledMatrix::zeros(1, nb);
        factored.tile_mut(0, 0).copy_from_slice(&t);
        let res = lu_residual(&m.to_dense(), &factored);
        assert!(res < 1e-13, "residual {res}");
    }

    #[test]
    fn getrf_rejects_zero_pivot() {
        let nb = 3;
        let mut t = vec![0.0; 9];
        assert_eq!(getrf_nopiv_tile(&mut t, nb), Err(0));
    }

    #[test]
    fn trsm_left_lower_unit_solves() {
        let nb = 5;
        let a = random_diagonally_dominant(nb, 7);
        let mut lu = a.data().to_vec();
        getrf_nopiv_tile(&mut lu, nb).unwrap();
        let b = Matrix::from_fn(nb, nb, |r, c| (r + 2 * c) as f64 - 3.0);
        let mut x = b.data().to_vec();
        trsm_left_lower_unit(&mut x, &lu, nb);
        // L·X must equal B.
        let l = Matrix::from_fn(nb, nb, |r, c| {
            use std::cmp::Ordering;
            match r.cmp(&c) {
                Ordering::Greater => lu[r + c * nb],
                Ordering::Equal => 1.0,
                Ordering::Less => 0.0,
            }
        });
        let xm = Matrix::from_fn(nb, nb, |r, c| x[r + c * nb]);
        let back = l.matmul(&xm);
        for r in 0..nb {
            for c in 0..nb {
                assert!((back[(r, c)] - b[(r, c)]).abs() < 1e-11);
            }
        }
    }

    #[test]
    fn trsm_right_upper_solves() {
        let nb = 5;
        let a = random_diagonally_dominant(nb, 9);
        let mut lu = a.data().to_vec();
        getrf_nopiv_tile(&mut lu, nb).unwrap();
        let b = Matrix::from_fn(nb, nb, |r, c| (2 * r + c) as f64 * 0.25 + 1.0);
        let mut x = b.data().to_vec();
        trsm_right_upper(&mut x, &lu, nb);
        let u = Matrix::from_fn(nb, nb, |r, c| if r <= c { lu[r + c * nb] } else { 0.0 });
        let xm = Matrix::from_fn(nb, nb, |r, c| x[r + c * nb]);
        let back = xm.matmul(&u);
        for r in 0..nb {
            for c in 0..nb {
                assert!((back[(r, c)] - b[(r, c)]).abs() < 1e-11);
            }
        }
    }

    #[test]
    fn gemm_nn_matches_matrix_algebra() {
        let nb = 4;
        let a = Matrix::from_fn(nb, nb, |r, c| (r as f64 + 1.0) * (c as f64 - 1.5));
        let b = Matrix::from_fn(nb, nb, |r, c| (r * c) as f64 * 0.3 - 1.0);
        let c0 = Matrix::from_fn(nb, nb, |r, c| (r + c) as f64);
        let mut c = c0.data().to_vec();
        gemm_nn_update(&mut c, a.data(), b.data(), nb);
        let prod = a.matmul(&b);
        for q in 0..nb {
            for p in 0..nb {
                assert!((c[p + q * nb] - (c0[(p, q)] - prod[(p, q)])).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn tiled_lu_factorizes_dominant_matrices() {
        let nb = 4;
        for n_tiles in 1..=5usize {
            let a = random_diagonally_dominant(n_tiles * nb, 11 + n_tiles as u64);
            let mut m = FullTiledMatrix::from_dense(&a, nb);
            tiled_lu_in_place(&mut m).unwrap();
            let res = lu_residual(&a, &m);
            assert!(res < 1e-12, "n_tiles={n_tiles}: residual {res}");
        }
    }

    #[test]
    fn lu_dag_order_equivalence() {
        // Executing the LU DAG in topological order matches the sequential
        // loop bit for bit — validating the LU access lists feeding the
        // DAG builder.
        let nb = 4;
        let n_tiles = 4;
        let a = random_diagonally_dominant(n_tiles * nb, 23);
        let graph = TaskGraph::lu(n_tiles);

        let mut m1 = FullTiledMatrix::from_dense(&a, nb);
        tiled_lu_in_place(&mut m1).unwrap();

        let mut m2 = FullTiledMatrix::from_dense(&a, nb);
        for id in graph.topo_order() {
            apply_lu_task(&mut m2, graph.task(id).coords).unwrap();
        }
        for i in 0..n_tiles {
            for j in 0..n_tiles {
                assert_eq!(m1.tile(i, j), m2.tile(i, j), "tile ({i},{j})");
            }
        }
    }

    #[test]
    fn cholesky_task_rejected() {
        let mut m = FullTiledMatrix::zeros(2, 2);
        assert_eq!(
            apply_lu_task(&mut m, TaskCoords::Potrf { k: 0 }),
            Err(TiledLuError::WrongAlgorithm)
        );
    }
}
