//! The tiled Cholesky factorization itself (Algorithm 1 of the paper),
//! expressed over [`TiledMatrix`] with the kernels of [`crate::kernels`].
//!
//! [`apply_task`] executes one task of the DAG — it is the single
//! execution path shared by the sequential factorization here and the
//! parallel runtime in `hetchol-rt`, so a schedule that respects the DAG's
//! dependencies is numerically identical to the sequential algorithm.

use crate::kernels::{gemm_update, potrf_tile, syrk_update, trsm_solve, NotPositiveDefinite};
use crate::matrix::TiledMatrix;
use hetchol_core::task::TaskCoords;

/// Numerical failure during the tiled factorization.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TiledCholeskyError {
    /// A diagonal tile was not positive definite.
    NotPositiveDefinite {
        /// Elimination step (tile index on the diagonal).
        k: usize,
        /// Column within the tile.
        column: usize,
    },
    /// The task does not belong to the Cholesky DAG (LU/QR tasks cannot
    /// run against the lower-packed symmetric storage).
    WrongAlgorithm,
}

impl std::fmt::Display for TiledCholeskyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TiledCholeskyError::NotPositiveDefinite { k, column } => write!(
                f,
                "tile A[{k}][{k}] not positive definite at column {column}"
            ),
            TiledCholeskyError::WrongAlgorithm => {
                write!(f, "task is not a Cholesky task")
            }
        }
    }
}

impl std::error::Error for TiledCholeskyError {}

/// Execute one task of the tiled Cholesky DAG on the matrix.
pub fn apply_task(m: &mut TiledMatrix, coords: TaskCoords) -> Result<(), TiledCholeskyError> {
    let nb = m.nb();
    match coords {
        TaskCoords::Potrf { k } => {
            let k = k as usize;
            potrf_tile(m.tile_mut(k, k), nb).map_err(|NotPositiveDefinite { column }| {
                TiledCholeskyError::NotPositiveDefinite { k, column }
            })
        }
        TaskCoords::Trsm { k, i } => {
            let (k, i) = (k as usize, i as usize);
            let (b, l) = m.tile_pair_mut((i, k), (k, k));
            trsm_solve(b, l, nb);
            Ok(())
        }
        TaskCoords::Syrk { k, j } => {
            let (k, j) = (k as usize, j as usize);
            let (c, a) = m.tile_pair_mut((j, j), (j, k));
            syrk_update(c, a, nb);
            Ok(())
        }
        TaskCoords::Gemm { k, i, j } => {
            let (k, i, j) = (k as usize, i as usize, j as usize);
            // GEMM reads two tiles; copy the smaller borrow out rather than
            // building a three-way split (tiles are small in tests, and the
            // parallel runtime uses its own lock-per-tile storage anyway).
            let bjk = m.tile(j, k).to_vec();
            let (c, a) = m.tile_pair_mut((i, j), (i, k));
            gemm_update(c, a, &bjk, nb);
            Ok(())
        }
        _ => Err(TiledCholeskyError::WrongAlgorithm),
    }
}

/// Sequential in-place tiled Cholesky (the paper's Algorithm 1 verbatim).
///
/// ```
/// use hetchol_linalg::matrix::TiledMatrix;
/// use hetchol_linalg::{factorization_residual, random_spd, tiled_cholesky_in_place};
///
/// let a = random_spd(16, 42);
/// let mut m = TiledMatrix::from_dense(&a, 4);
/// tiled_cholesky_in_place(&mut m).unwrap();
/// assert!(factorization_residual(&a, &m) < 1e-12);
/// ```
pub fn tiled_cholesky_in_place(m: &mut TiledMatrix) -> Result<(), TiledCholeskyError> {
    let n = m.n_tiles() as u32;
    for k in 0..n {
        apply_task(m, TaskCoords::Potrf { k })?;
        for i in (k + 1)..n {
            apply_task(m, TaskCoords::Trsm { k, i })?;
        }
        for j in (k + 1)..n {
            apply_task(m, TaskCoords::Syrk { k, j })?;
            for i in (j + 1)..n {
                apply_task(m, TaskCoords::Gemm { k, i, j })?;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::random_spd;
    use crate::verify::factorization_residual;
    use hetchol_core::dag::TaskGraph;

    #[test]
    fn sequential_factorization_small() {
        let nb = 4;
        for n_tiles in 1..=5usize {
            let a = random_spd(n_tiles * nb, 42 + n_tiles as u64);
            let mut m = TiledMatrix::from_dense(&a, nb);
            tiled_cholesky_in_place(&mut m).unwrap();
            let res = factorization_residual(&a, &m);
            assert!(res < 1e-12, "n_tiles={n_tiles}: residual {res}");
        }
    }

    #[test]
    fn any_topological_order_gives_same_factor() {
        // Execute the DAG in (a) submission order and (b) reverse-priority
        // topological order; results must agree to the last bit.
        let nb = 4;
        let n_tiles = 4;
        let a = random_spd(n_tiles * nb, 7);
        let graph = TaskGraph::cholesky(n_tiles);

        let mut m1 = TiledMatrix::from_dense(&a, nb);
        for t in graph.tasks() {
            apply_task(&mut m1, t.coords).unwrap();
        }

        let mut m2 = TiledMatrix::from_dense(&a, nb);
        for id in graph.topo_order() {
            apply_task(&mut m2, graph.task(id).coords).unwrap();
        }
        for ti in 0..n_tiles {
            for tj in 0..=ti {
                assert_eq!(m1.tile(ti, tj), m2.tile(ti, tj), "tile ({ti},{tj})");
            }
        }
    }

    #[test]
    fn indefinite_matrix_reports_step() {
        let nb = 2;
        // Start SPD, then poison the (1,1) diagonal tile.
        let a = random_spd(4, 1);
        let mut m = TiledMatrix::from_dense(&a, nb);
        for v in m.tile_mut(1, 1).iter_mut() {
            *v = -1.0;
        }
        let err = tiled_cholesky_in_place(&mut m).unwrap_err();
        match err {
            TiledCholeskyError::NotPositiveDefinite { k, .. } => assert_eq!(k, 1),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn single_tile_matches_direct_potrf() {
        let nb = 6;
        let a = random_spd(nb, 9);
        let mut m = TiledMatrix::from_dense(&a, nb);
        tiled_cholesky_in_place(&mut m).unwrap();
        let mut direct = a.data().to_vec();
        crate::kernels::potrf_tile(&mut direct, nb).unwrap();
        for (x, y) in m.tile(0, 0).iter().zip(&direct) {
            assert_eq!(x, y);
        }
    }
}
