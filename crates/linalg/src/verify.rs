//! Verification of computed factorizations.

use crate::matrix::{Matrix, TiledMatrix};

/// Relative Frobenius residual `‖A − L·Lᵀ‖_F / ‖A‖_F` of an in-place
/// factorization against the original matrix.
pub fn factorization_residual(original: &Matrix, factored: &TiledMatrix) -> f64 {
    let l = factored.to_dense_lower_factor();
    let llt = l.matmul(&l.transpose());
    let n = original.rows();
    let mut diff2 = 0.0f64;
    for c in 0..n {
        for r in 0..n {
            let d = llt[(r, c)] - original[(r, c)];
            diff2 += d * d;
        }
    }
    diff2.sqrt() / original.frobenius_norm()
}

/// Solve `A·x = b` given the in-place Cholesky factor: forward
/// substitution `L·y = b` followed by backward substitution `Lᵀ·x = y` —
/// the use case the paper's Section II-A motivates the factorization with.
pub fn solve_with_factor(factored: &TiledMatrix, b: &[f64]) -> Vec<f64> {
    let l = factored.to_dense_lower_factor();
    let n = l.rows();
    assert_eq!(b.len(), n, "right-hand side has wrong length");
    // L y = b
    let mut y = b.to_vec();
    for i in 0..n {
        for j in 0..i {
            y[i] -= l[(i, j)] * y[j];
        }
        y[i] /= l[(i, i)];
    }
    // Lᵀ x = y
    let mut x = y;
    for i in (0..n).rev() {
        for j in (i + 1)..n {
            x[i] -= l[(j, i)] * x[j];
        }
        x[i] /= l[(i, i)];
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cholesky::tiled_cholesky_in_place;
    use crate::generate::random_spd;

    #[test]
    fn residual_zero_for_exact_factor() {
        // A = I: its factor is I; the residual must be numerically zero.
        let n = 8;
        let a = Matrix::identity(n);
        let mut m = TiledMatrix::from_dense(&a, 4);
        tiled_cholesky_in_place(&mut m).unwrap();
        assert!(factorization_residual(&a, &m) < 1e-15);
    }

    #[test]
    fn residual_large_for_wrong_factor() {
        let n = 8;
        let a = random_spd(n, 5);
        let mut m = TiledMatrix::from_dense(&a, 4);
        tiled_cholesky_in_place(&mut m).unwrap();
        // Corrupt one entry of the factor.
        m.tile_mut(1, 0)[0] += 1.0;
        assert!(factorization_residual(&a, &m) > 1e-3);
    }

    #[test]
    fn linear_solve_round_trip() {
        let n = 12;
        let a = random_spd(n, 11);
        let mut m = TiledMatrix::from_dense(&a, 4);
        tiled_cholesky_in_place(&mut m).unwrap();
        // Build b = A·x_true and recover x.
        let x_true: Vec<f64> = (0..n).map(|i| (i as f64) * 0.5 - 2.0).collect();
        let mut b = vec![0.0; n];
        for j in 0..n {
            for i in 0..n {
                b[i] += a[(i, j)] * x_true[j];
            }
        }
        let x = solve_with_factor(&m, &b);
        for (got, want) in x.iter().zip(&x_true) {
            assert!((got - want).abs() < 1e-10, "{got} vs {want}");
        }
    }
}
