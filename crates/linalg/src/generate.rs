//! Random symmetric positive-definite matrix generation.

use crate::matrix::Matrix;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Generate a random dense SPD matrix of order `n`, seeded for
/// reproducibility.
///
/// Construction: `A = B·Bᵀ/n + I` with `B` uniform in `[-1, 1]`. The
/// `B·Bᵀ` term is positive semi-definite and the identity shift makes the
/// spectrum comfortably positive, so tiled Cholesky never hits a
/// non-positive pivot while the matrix still has generic off-diagonal
/// structure.
pub fn random_spd(n: usize, seed: u64) -> Matrix {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let b = Matrix::from_fn(n, n, |_, _| rng.gen_range(-1.0..1.0));
    let bbt = b.matmul(&b.transpose());
    Matrix::from_fn(n, n, |r, c| {
        let v = bbt[(r, c)] / n.max(1) as f64;
        if r == c {
            v + 1.0
        } else {
            v
        }
    })
}

/// Generate a random strictly diagonally dominant matrix of order `n` —
/// the standard stability guarantee for LU without pivoting.
///
/// Off-diagonal entries are uniform in `[-1, 1]`; each diagonal entry is
/// the row's absolute off-diagonal sum plus a positive margin.
pub fn random_diagonally_dominant(n: usize, seed: u64) -> Matrix {
    let mut rng = ChaCha8Rng::seed_from_u64(seed.wrapping_add(0x5eed));
    let mut m = Matrix::from_fn(n, n, |_, _| rng.gen_range(-1.0..1.0));
    for r in 0..n {
        let row_sum: f64 = (0..n).filter(|&c| c != r).map(|c| m[(r, c)].abs()).sum();
        m[(r, r)] = row_sum + 1.0 + rng.gen_range(0.0..1.0);
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::potrf_tile;

    #[test]
    fn generated_matrix_is_symmetric() {
        let a = random_spd(12, 3);
        for r in 0..12 {
            for c in 0..12 {
                assert_eq!(a[(r, c)], a[(c, r)]);
            }
        }
    }

    #[test]
    fn generated_matrix_is_positive_definite() {
        // Cholesky succeeding is the definition we care about.
        for seed in 0..5 {
            let n = 16;
            let a = random_spd(n, seed);
            let mut t = a.data().to_vec();
            potrf_tile(&mut t, n).unwrap();
        }
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(random_spd(8, 7), random_spd(8, 7));
        assert_ne!(random_spd(8, 7), random_spd(8, 8));
        assert_eq!(
            random_diagonally_dominant(8, 7),
            random_diagonally_dominant(8, 7)
        );
    }

    #[test]
    fn dominant_matrix_is_dominant() {
        let n = 10;
        let m = random_diagonally_dominant(n, 4);
        for r in 0..n {
            let row_sum: f64 = (0..n).filter(|&c| c != r).map(|c| m[(r, c)].abs()).sum();
            assert!(m[(r, r)] > row_sum, "row {r}");
        }
    }
}
