//! Dense and tiled matrix storage (column-major, like LAPACK).

/// A dense column-major `rows × cols` matrix of `f64`.
#[derive(Clone, Debug, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// A zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Matrix {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// The identity matrix.
    pub fn identity(n: usize) -> Matrix {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Build from a closure over `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Matrix {
        let mut m = Matrix::zeros(rows, cols);
        for c in 0..cols {
            for r in 0..rows {
                m[(r, c)] = f(r, c);
            }
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Raw column-major storage.
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// `self · otherᵀ`-free plain product `self · other`.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "inner dimensions must agree");
        let mut out = Matrix::zeros(self.rows, other.cols);
        for j in 0..other.cols {
            for k in 0..self.cols {
                let b = other[(k, j)];
                if b != 0.0 {
                    for i in 0..self.rows {
                        out[(i, j)] += self[(i, k)] * b;
                    }
                }
            }
        }
        out
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |r, c| self[(c, r)])
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Keep the lower triangle (including the diagonal), zero the rest.
    pub fn lower_triangle(&self) -> Matrix {
        Matrix::from_fn(self.rows, self.cols, |r, c| {
            if r >= c {
                self[(r, c)]
            } else {
                0.0
            }
        })
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r + c * self.rows]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r + c * self.rows]
    }
}

/// The lower triangle of a symmetric matrix stored as `nb × nb`
/// column-major tiles (only tiles with `row ≥ col` are materialised, as in
/// the paper's in-place tiled Cholesky).
#[derive(Clone, Debug)]
pub struct TiledMatrix {
    n_tiles: usize,
    nb: usize,
    /// Packed lower-triangular tiles, indexed by `Tile::packed_index`.
    tiles: Vec<Vec<f64>>,
}

impl TiledMatrix {
    /// A zero tiled matrix of `n_tiles × n_tiles` tiles of size `nb`.
    pub fn zeros(n_tiles: usize, nb: usize) -> TiledMatrix {
        let count = n_tiles * (n_tiles + 1) / 2;
        TiledMatrix {
            n_tiles,
            nb,
            tiles: vec![vec![0.0; nb * nb]; count],
        }
    }

    /// Tile decomposition of (the lower triangle of) a dense symmetric
    /// matrix whose order is a multiple of `nb`.
    pub fn from_dense(dense: &Matrix, nb: usize) -> TiledMatrix {
        assert_eq!(dense.rows(), dense.cols(), "matrix must be square");
        assert_eq!(dense.rows() % nb, 0, "order must be a multiple of nb");
        let n_tiles = dense.rows() / nb;
        let mut tm = TiledMatrix::zeros(n_tiles, nb);
        for ti in 0..n_tiles {
            for tj in 0..=ti {
                let t = tm.tile_mut(ti, tj);
                for c in 0..nb {
                    for r in 0..nb {
                        t[r + c * nb] = dense[(ti * nb + r, tj * nb + c)];
                    }
                }
            }
        }
        tm
    }

    /// Reassemble a dense matrix; the strict upper triangle is mirrored
    /// from the lower one (symmetric interpretation).
    pub fn to_dense_symmetric(&self) -> Matrix {
        let n = self.n_tiles * self.nb;
        let mut m = Matrix::zeros(n, n);
        for ti in 0..self.n_tiles {
            for tj in 0..=ti {
                let t = self.tile(ti, tj);
                for c in 0..self.nb {
                    for r in 0..self.nb {
                        let (gr, gc) = (ti * self.nb + r, tj * self.nb + c);
                        m[(gr, gc)] = t[r + c * self.nb];
                        m[(gc, gr)] = t[r + c * self.nb];
                    }
                }
            }
        }
        m
    }

    /// Extract the lower-triangular Cholesky factor `L` after an in-place
    /// factorization: off-diagonal tiles verbatim, diagonal tiles keep only
    /// their lower triangle.
    pub fn to_dense_lower_factor(&self) -> Matrix {
        let n = self.n_tiles * self.nb;
        let mut m = Matrix::zeros(n, n);
        for ti in 0..self.n_tiles {
            for tj in 0..=ti {
                let t = self.tile(ti, tj);
                for c in 0..self.nb {
                    for r in 0..self.nb {
                        if ti > tj || r >= c {
                            m[(ti * self.nb + r, tj * self.nb + c)] = t[r + c * self.nb];
                        }
                    }
                }
            }
        }
        m
    }

    /// Matrix order in tiles.
    pub fn n_tiles(&self) -> usize {
        self.n_tiles
    }

    /// Tile size.
    pub fn nb(&self) -> usize {
        self.nb
    }

    #[inline]
    fn idx(&self, row: usize, col: usize) -> usize {
        debug_assert!(
            col <= row && row < self.n_tiles,
            "({row},{col}) not in lower triangle"
        );
        row * (row + 1) / 2 + col
    }

    /// Borrow a tile (`col ≤ row`).
    #[inline]
    pub fn tile(&self, row: usize, col: usize) -> &[f64] {
        &self.tiles[self.idx(row, col)]
    }

    /// Mutably borrow a tile (`col ≤ row`).
    #[inline]
    pub fn tile_mut(&mut self, row: usize, col: usize) -> &mut [f64] {
        let i = self.idx(row, col);
        &mut self.tiles[i]
    }

    /// Borrow two distinct tiles, the first mutably — the shape every
    /// in-place kernel needs (output tile + one input tile).
    pub fn tile_pair_mut(
        &mut self,
        out: (usize, usize),
        input: (usize, usize),
    ) -> (&mut [f64], &[f64]) {
        let oi = self.idx(out.0, out.1);
        let ii = self.idx(input.0, input.1);
        assert_ne!(oi, ii, "output and input tiles must differ");
        if oi < ii {
            let (lo, hi) = self.tiles.split_at_mut(ii);
            (&mut lo[oi], &hi[0])
        } else {
            let (lo, hi) = self.tiles.split_at_mut(oi);
            (&mut hi[0], &lo[ii])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_indexing_is_column_major() {
        let mut m = Matrix::zeros(3, 2);
        m[(2, 1)] = 7.0;
        assert_eq!(m.data()[2 + 3], 7.0);
        assert_eq!(m[(2, 1)], 7.0);
    }

    #[test]
    fn identity_matmul() {
        let a = Matrix::from_fn(3, 3, |r, c| (r * 3 + c) as f64);
        let i = Matrix::identity(3);
        assert_eq!(a.matmul(&i), a);
        assert_eq!(i.matmul(&a), a);
    }

    #[test]
    fn matmul_known_product() {
        // [1 2; 3 4] * [5 6; 7 8] = [19 22; 43 50]
        let a = Matrix::from_fn(2, 2, |r, c| [[1.0, 2.0], [3.0, 4.0]][r][c]);
        let b = Matrix::from_fn(2, 2, |r, c| [[5.0, 6.0], [7.0, 8.0]][r][c]);
        let p = a.matmul(&b);
        assert_eq!(p[(0, 0)], 19.0);
        assert_eq!(p[(0, 1)], 22.0);
        assert_eq!(p[(1, 0)], 43.0);
        assert_eq!(p[(1, 1)], 50.0);
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_fn(3, 5, |r, c| (r * 7 + c) as f64);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose()[(4, 2)], a[(2, 4)]);
    }

    #[test]
    fn frobenius() {
        let a = Matrix::from_fn(2, 2, |r, c| if r == c { 3.0 } else { 4.0 });
        assert!((a.frobenius_norm() - 50f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn tiled_round_trip_symmetric() {
        let n = 8;
        let dense = Matrix::from_fn(n, n, |r, c| {
            let (a, b) = (r.min(c) as f64, r.max(c) as f64);
            a * 10.0 + b // symmetric by construction
        });
        let tm = TiledMatrix::from_dense(&dense, 4);
        assert_eq!(tm.n_tiles(), 2);
        let back = tm.to_dense_symmetric();
        assert_eq!(back, dense);
    }

    #[test]
    fn lower_factor_extraction_zeroes_strict_upper() {
        let n = 4;
        let dense = Matrix::from_fn(n, n, |_, _| 5.0);
        let tm = TiledMatrix::from_dense(&dense, 2);
        let l = tm.to_dense_lower_factor();
        for r in 0..n {
            for c in 0..n {
                if c > r {
                    assert_eq!(l[(r, c)], 0.0);
                } else {
                    assert_eq!(l[(r, c)], 5.0);
                }
            }
        }
    }

    #[test]
    fn tile_pair_mut_disjoint_borrows() {
        let mut tm = TiledMatrix::zeros(3, 2);
        tm.tile_mut(1, 0)[0] = 2.0;
        let (out, input) = tm.tile_pair_mut((2, 0), (1, 0));
        out[0] = input[0] * 3.0;
        assert_eq!(tm.tile(2, 0)[0], 6.0);
    }

    #[test]
    #[should_panic(expected = "must differ")]
    fn tile_pair_mut_same_tile_panics() {
        let mut tm = TiledMatrix::zeros(3, 2);
        let _ = tm.tile_pair_mut((1, 0), (1, 0));
    }
}
