//! Tiled QR factorization numerics (extension, DESIGN.md §9).
//!
//! Flat-tree tile QR à la Buttari et al.: `GEQRT` factors a diagonal tile
//! with Householder reflectors, `TSQRT` eliminates a sub-diagonal tile
//! against the diagonal triangle, and `ORMQR`/`TSMQR` apply the respective
//! reflector sets to the tiles on the right. Reflectors are applied
//! columnwise (one `H = I − τ·v·vᵀ` at a time) rather than via compact-WY
//! `T` blocks — numerically identical, simpler to verify, and the
//! scheduling study never times these kernels anyway (the simulator uses
//! the calibrated profile).
//!
//! Storage convention after factorization of a [`QrMatrix`]:
//! * diagonal tile `(k,k)`: `R` in the upper triangle, the `GEQRT`
//!   reflector vectors `V` (unit leading entry implied) in the strict
//!   lower triangle, `τ` values in a side table;
//! * sub-diagonal tile `(i,k)`: the dense `TSQRT` reflector block `Vb`
//!   (its implicit top part is `e_j`), `τ` values in the side table;
//! * tiles `(k,j)`, `j > k`: the corresponding block of `R`.

use crate::full::FullTiledMatrix;
use crate::matrix::Matrix;
use hetchol_core::task::TaskCoords;
use std::collections::HashMap;

/// Numerical failure during tiled QR.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TiledQrError {
    /// The task does not belong to the QR DAG.
    WrongAlgorithm,
    /// Reflector data required by an apply kernel is missing (tasks were
    /// executed in an order violating the DAG).
    MissingReflectors {
        /// Tile row of the missing reflector block.
        row: usize,
        /// Tile column of the missing reflector block.
        col: usize,
    },
}

impl std::fmt::Display for TiledQrError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TiledQrError::WrongAlgorithm => write!(f, "task is not a QR task"),
            TiledQrError::MissingReflectors { row, col } => {
                write!(f, "no reflectors stored for tile ({row},{col})")
            }
        }
    }
}

impl std::error::Error for TiledQrError {}

/// A tiled matrix being QR-factorized: tiles plus per-tile `τ` vectors.
pub struct QrMatrix {
    tiles: FullTiledMatrix,
    /// `τ` vectors of the reflector sets, keyed by the tile that stores
    /// the corresponding `V` block.
    taus: HashMap<(usize, usize), Vec<f64>>,
}

/// Compute a Householder reflector for the vector `[x0, rest…]`:
/// returns `(beta, tau)` and overwrites `rest` with the scaled tail `v`
/// (the implied leading entry of `v` is 1). `H·x = β·e₁` with
/// `H = I − τ·v·vᵀ`.
fn householder(x0: f64, rest: &mut [f64]) -> (f64, f64) {
    let norm2: f64 = x0 * x0 + rest.iter().map(|v| v * v).sum::<f64>();
    if norm2 == 0.0 {
        return (0.0, 0.0);
    }
    let norm = norm2.sqrt();
    let beta = if x0 >= 0.0 { -norm } else { norm };
    let u0 = x0 - beta; // no cancellation by the sign choice
    for v in rest.iter_mut() {
        *v /= u0;
    }
    let tau = -u0 / beta;
    (beta, tau)
}

#[inline]
fn at(nb: usize, r: usize, c: usize) -> usize {
    r + c * nb
}

/// GEQRT: in-place Householder QR of one tile. Returns the `τ` vector.
pub fn geqrt_tile(a: &mut [f64], nb: usize) -> Vec<f64> {
    let mut taus = vec![0.0; nb];
    for j in 0..nb {
        // Build the reflector from column j, rows j…
        let x0 = a[at(nb, j, j)];
        let (head, tail) = a.split_at_mut(at(nb, j, j) + 1);
        let _ = head;
        let col_tail_len = nb - j - 1;
        let (beta, tau) = {
            let rest = &mut tail[..col_tail_len];
            householder(x0, rest)
        };
        a[at(nb, j, j)] = beta;
        taus[j] = tau;
        if tau == 0.0 {
            continue;
        }
        // Apply H to the trailing columns (within the tile).
        for c in (j + 1)..nb {
            let mut w = a[at(nb, j, c)];
            for p in (j + 1)..nb {
                w += a[at(nb, p, j)] * a[at(nb, p, c)];
            }
            let tw = tau * w;
            a[at(nb, j, c)] -= tw;
            for p in (j + 1)..nb {
                let vpj = a[at(nb, p, j)];
                a[at(nb, p, c)] -= tw * vpj;
            }
        }
    }
    taus
}

/// ORMQR: apply `Qᵀ` from a GEQRT-factored tile (`v` = strict lower
/// triangle of `vt`, `taus`) to tile `c`.
pub fn ormqr_apply(c: &mut [f64], vt: &[f64], taus: &[f64], nb: usize) {
    for j in 0..nb {
        let tau = taus[j];
        if tau == 0.0 {
            continue;
        }
        for col in 0..nb {
            let mut w = c[at(nb, j, col)];
            for p in (j + 1)..nb {
                w += vt[at(nb, p, j)] * c[at(nb, p, col)];
            }
            let tw = tau * w;
            c[at(nb, j, col)] -= tw;
            for p in (j + 1)..nb {
                c[at(nb, p, col)] -= tw * vt[at(nb, p, j)];
            }
        }
    }
}

/// TSQRT: QR of the upper-triangular tile `r` stacked on the dense tile
/// `b`. On return `r` holds the updated triangle, `b` the reflector block
/// `Vb`; returns the `τ` vector.
pub fn tsqrt_tiles(r: &mut [f64], b: &mut [f64], nb: usize) -> Vec<f64> {
    let mut taus = vec![0.0; nb];
    for j in 0..nb {
        // x = [R[j,j]; B[:, j]] — the top block is zero below its diagonal.
        let x0 = r[at(nb, j, j)];
        let (beta, tau) = {
            let col = &mut b[j * nb..j * nb + nb];
            householder(x0, col)
        };
        r[at(nb, j, j)] = beta;
        taus[j] = tau;
        if tau == 0.0 {
            continue;
        }
        // Apply to trailing columns of [R; B].
        let vb: Vec<f64> = b[j * nb..j * nb + nb].to_vec();
        for c in (j + 1)..nb {
            let mut w = r[at(nb, j, c)];
            for (p, &v) in vb.iter().enumerate() {
                w += v * b[at(nb, p, c)];
            }
            let tw = tau * w;
            r[at(nb, j, c)] -= tw;
            for (p, &v) in vb.iter().enumerate() {
                b[at(nb, p, c)] -= tw * v;
            }
        }
    }
    taus
}

/// TSMQR: apply `Qᵀ` from a TSQRT reflector block (`vb`, `taus`) to the
/// stacked tile pair `c1` (row tile) / `c2` (sub-diagonal tile).
pub fn tsmqr_apply(c1: &mut [f64], c2: &mut [f64], vb: &[f64], taus: &[f64], nb: usize) {
    for j in 0..nb {
        let tau = taus[j];
        if tau == 0.0 {
            continue;
        }
        let v = &vb[j * nb..j * nb + nb];
        for col in 0..nb {
            let mut w = c1[at(nb, j, col)];
            for (p, &vp) in v.iter().enumerate() {
                w += vp * c2[at(nb, p, col)];
            }
            let tw = tau * w;
            c1[at(nb, j, col)] -= tw;
            for (p, &vp) in v.iter().enumerate() {
                c2[at(nb, p, col)] -= tw * vp;
            }
        }
    }
}

impl QrMatrix {
    /// Wrap a matrix for QR factorization.
    pub fn from_dense(dense: &Matrix, nb: usize) -> QrMatrix {
        QrMatrix {
            tiles: FullTiledMatrix::from_dense(dense, nb),
            taus: HashMap::new(),
        }
    }

    /// Rebuild from externally produced parts (e.g. a threaded run in
    /// `hetchol-rt`), for verification with [`QrMatrix::residual`].
    pub fn from_parts(
        tiles: FullTiledMatrix,
        taus: impl IntoIterator<Item = ((usize, usize), Vec<f64>)>,
    ) -> QrMatrix {
        QrMatrix {
            tiles,
            taus: taus.into_iter().collect(),
        }
    }

    /// Matrix order in tiles.
    pub fn n_tiles(&self) -> usize {
        self.tiles.n_tiles()
    }

    /// Tile size.
    pub fn nb(&self) -> usize {
        self.tiles.nb()
    }

    /// The underlying tiles (reflectors + R after factorization).
    pub fn tiles(&self) -> &FullTiledMatrix {
        &self.tiles
    }

    /// Execute one QR DAG task.
    pub fn apply_task(&mut self, coords: TaskCoords) -> Result<(), TiledQrError> {
        let nb = self.nb();
        match coords {
            TaskCoords::Geqrt { k } => {
                let k = k as usize;
                let taus = geqrt_tile(self.tiles.tile_mut(k, k), nb);
                self.taus.insert((k, k), taus);
                Ok(())
            }
            TaskCoords::Ormqr { k, j } => {
                let (k, j) = (k as usize, j as usize);
                let taus = self
                    .taus
                    .get(&(k, k))
                    .ok_or(TiledQrError::MissingReflectors { row: k, col: k })?
                    .clone();
                let (c, vt) = self.tiles.tile_pair_mut((k, j), (k, k));
                ormqr_apply(c, vt, &taus, nb);
                Ok(())
            }
            TaskCoords::Tsqrt { k, i } => {
                let (k, i) = (k as usize, i as usize);
                // Two mutable tiles: take the diagonal out, work, put back.
                let mut r = self.tiles.tile(k, k).to_vec();
                let taus = tsqrt_tiles(&mut r, self.tiles.tile_mut(i, k), nb);
                self.tiles.tile_mut(k, k).copy_from_slice(&r);
                self.taus.insert((i, k), taus);
                Ok(())
            }
            TaskCoords::Tsmqr { k, i, j } => {
                let (k, i, j) = (k as usize, i as usize, j as usize);
                let taus = self
                    .taus
                    .get(&(i, k))
                    .ok_or(TiledQrError::MissingReflectors { row: i, col: k })?
                    .clone();
                let vb = self.tiles.tile(i, k).to_vec();
                let mut c1 = self.tiles.tile(k, j).to_vec();
                tsmqr_apply(&mut c1, self.tiles.tile_mut(i, j), &vb, &taus, nb);
                self.tiles.tile_mut(k, j).copy_from_slice(&c1);
                Ok(())
            }
            _ => Err(TiledQrError::WrongAlgorithm),
        }
    }

    /// Sequential in-place tiled QR (flat tree).
    pub fn factorize(&mut self) -> Result<(), TiledQrError> {
        let n = self.n_tiles() as u32;
        for k in 0..n {
            self.apply_task(TaskCoords::Geqrt { k })?;
            for j in (k + 1)..n {
                self.apply_task(TaskCoords::Ormqr { k, j })?;
            }
            for i in (k + 1)..n {
                self.apply_task(TaskCoords::Tsqrt { k, i })?;
                for j in (k + 1)..n {
                    self.apply_task(TaskCoords::Tsmqr { k, i, j })?;
                }
            }
        }
        Ok(())
    }

    /// Extract the dense upper-triangular factor `R`.
    pub fn r_factor(&self) -> Matrix {
        let nb = self.nb();
        let n = self.n_tiles() * nb;
        let mut r = Matrix::zeros(n, n);
        for tk in 0..self.n_tiles() {
            for tj in tk..self.n_tiles() {
                let t = self.tiles.tile(tk, tj);
                for c in 0..nb {
                    for row in 0..nb {
                        if tj > tk || row <= c {
                            r[(tk * nb + row, tj * nb + c)] = t[row + c * nb];
                        }
                    }
                }
            }
        }
        r
    }

    /// Reconstruct `Q·R` by applying the stored reflectors to `R` in
    /// reverse factorization order (each `H` is symmetric, so this undoes
    /// the factorization); the result should equal the original matrix.
    pub fn reconstruct(&self) -> Matrix {
        let nb = self.nb();
        let nt = self.n_tiles();
        let n = nt * nb;
        let mut d = self.r_factor();
        for k in (0..nt).rev() {
            for i in ((k + 1)..nt).rev() {
                // TSQRT(k, i) reflectors, reverse column order.
                let vb = self.tiles.tile(i, k);
                let taus = &self.taus[&(i, k)];
                for j in (0..nb).rev() {
                    let tau = taus[j];
                    if tau == 0.0 {
                        continue;
                    }
                    let v = &vb[j * nb..j * nb + nb];
                    for col in 0..n {
                        let mut w = d[(k * nb + j, col)];
                        for (p, &vp) in v.iter().enumerate() {
                            w += vp * d[(i * nb + p, col)];
                        }
                        let tw = tau * w;
                        d[(k * nb + j, col)] -= tw;
                        for (p, &vp) in v.iter().enumerate() {
                            d[(i * nb + p, col)] -= tw * vp;
                        }
                    }
                }
            }
            // GEQRT(k) reflectors, reverse column order.
            let vt = self.tiles.tile(k, k);
            let taus = &self.taus[&(k, k)];
            for j in (0..nb).rev() {
                let tau = taus[j];
                if tau == 0.0 {
                    continue;
                }
                for col in 0..n {
                    let mut w = d[(k * nb + j, col)];
                    for p in (j + 1)..nb {
                        w += vt[p + j * nb] * d[(k * nb + p, col)];
                    }
                    let tw = tau * w;
                    d[(k * nb + j, col)] -= tw;
                    for p in (j + 1)..nb {
                        d[(k * nb + p, col)] -= tw * vt[p + j * nb];
                    }
                }
            }
        }
        d
    }

    /// Relative Frobenius residual `‖A − Q·R‖_F / ‖A‖_F`.
    pub fn residual(&self, original: &Matrix) -> f64 {
        let rec = self.reconstruct();
        let n = original.rows();
        let mut diff2 = 0.0f64;
        for c in 0..n {
            for r in 0..n {
                let d = rec[(r, c)] - original[(r, c)];
                diff2 += d * d;
            }
        }
        diff2.sqrt() / original.frobenius_norm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn random_dense(n: usize, seed: u64) -> Matrix {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        Matrix::from_fn(n, n, |_, _| rng.gen_range(-1.0..1.0))
    }

    #[test]
    fn householder_annihilates() {
        // H x = beta e1 exactly.
        let x = [3.0, 4.0, 0.0, 12.0];
        let mut rest = x[1..].to_vec();
        let (beta, tau) = householder(x[0], &mut rest);
        assert!((beta.abs() - 13.0).abs() < 1e-12, "|beta| = ||x||");
        // Apply H to x and check.
        let v: Vec<f64> = std::iter::once(1.0).chain(rest.iter().copied()).collect();
        let w: f64 = x[0] + rest.iter().zip(&x[1..]).map(|(v, x)| v * x).sum::<f64>();
        let hx0 = x[0] - tau * w * v[0];
        assert!((hx0 - beta).abs() < 1e-12);
        for p in 1..4 {
            let hxp = x[p] - tau * w * v[p];
            assert!(hxp.abs() < 1e-12, "tail must vanish, got {hxp}");
        }
        // Degenerate: zero vector -> identity reflector.
        let (b, t) = householder(0.0, &mut []);
        assert_eq!((b, t), (0.0, 0.0));
    }

    #[test]
    fn geqrt_single_tile_qr() {
        let nb = 8;
        let a = random_dense(nb, 5);
        let mut qr = QrMatrix::from_dense(&a, nb);
        qr.factorize().unwrap();
        let res = qr.residual(&a);
        assert!(res < 1e-13, "residual {res}");
        // R really is upper triangular.
        let r = qr.r_factor();
        for c in 0..nb {
            for row in (c + 1)..nb {
                assert_eq!(r[(row, c)], 0.0);
            }
        }
    }

    #[test]
    fn tiled_qr_factorizes_random_matrices() {
        let nb = 4;
        for n_tiles in 1..=4usize {
            let a = random_dense(n_tiles * nb, 100 + n_tiles as u64);
            let mut qr = QrMatrix::from_dense(&a, nb);
            qr.factorize().unwrap();
            let res = qr.residual(&a);
            assert!(res < 1e-12, "n_tiles={n_tiles}: residual {res}");
        }
    }

    #[test]
    fn r_diagonal_carries_column_norms() {
        // |R[0,0]| equals the norm of A's first column (first reflector).
        let nb = 6;
        let a = random_dense(nb, 9);
        let mut qr = QrMatrix::from_dense(&a, nb);
        qr.factorize().unwrap();
        let col_norm: f64 = (0..nb).map(|r| a[(r, 0)] * a[(r, 0)]).sum::<f64>().sqrt();
        let r = qr.r_factor();
        assert!((r[(0, 0)].abs() - col_norm).abs() < 1e-12);
    }

    #[test]
    fn dag_order_equivalence() {
        use hetchol_core::dag::TaskGraph;
        let nb = 4;
        let n_tiles = 3;
        let a = random_dense(n_tiles * nb, 31);
        let graph = TaskGraph::qr(n_tiles);

        let mut seq = QrMatrix::from_dense(&a, nb);
        seq.factorize().unwrap();

        let mut dag = QrMatrix::from_dense(&a, nb);
        for id in graph.topo_order() {
            dag.apply_task(graph.task(id).coords).unwrap();
        }
        for i in 0..n_tiles {
            for j in 0..n_tiles {
                assert_eq!(
                    seq.tiles().tile(i, j),
                    dag.tiles().tile(i, j),
                    "tile ({i},{j})"
                );
            }
        }
        assert!(dag.residual(&a) < 1e-12);
    }

    #[test]
    fn out_of_order_apply_is_reported() {
        let mut qr = QrMatrix::from_dense(&random_dense(8, 1), 4);
        // ORMQR before its GEQRT: reflectors missing.
        assert_eq!(
            qr.apply_task(TaskCoords::Ormqr { k: 0, j: 1 }),
            Err(TiledQrError::MissingReflectors { row: 0, col: 0 })
        );
        assert_eq!(
            qr.apply_task(TaskCoords::Potrf { k: 0 }),
            Err(TiledQrError::WrongAlgorithm)
        );
    }

    #[test]
    fn orthogonality_via_norm_preservation() {
        // ‖R‖_F must equal ‖A‖_F (Q orthogonal preserves the norm).
        let nb = 4;
        let n_tiles = 3;
        let a = random_dense(n_tiles * nb, 55);
        let mut qr = QrMatrix::from_dense(&a, nb);
        qr.factorize().unwrap();
        let r = qr.r_factor();
        assert!(
            (r.frobenius_norm() - a.frobenius_norm()).abs() < 1e-11,
            "{} vs {}",
            r.frobenius_norm(),
            a.frobenius_norm()
        );
    }
}
