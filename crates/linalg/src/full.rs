//! Full (square) tiled matrix storage, for the nonsymmetric
//! factorizations (LU); the symmetric Cholesky path uses the packed
//! [`crate::matrix::TiledMatrix`].

use crate::matrix::Matrix;

/// An `n × n`-tile dense matrix with every tile materialised
/// (column-major within tiles, row-major across tiles).
#[derive(Clone, Debug)]
pub struct FullTiledMatrix {
    n_tiles: usize,
    nb: usize,
    tiles: Vec<Vec<f64>>,
}

impl FullTiledMatrix {
    /// A zero matrix.
    pub fn zeros(n_tiles: usize, nb: usize) -> FullTiledMatrix {
        FullTiledMatrix {
            n_tiles,
            nb,
            tiles: vec![vec![0.0; nb * nb]; n_tiles * n_tiles],
        }
    }

    /// Tile decomposition of a dense matrix whose order is a multiple of
    /// `nb`.
    pub fn from_dense(dense: &Matrix, nb: usize) -> FullTiledMatrix {
        assert_eq!(dense.rows(), dense.cols(), "matrix must be square");
        assert_eq!(dense.rows() % nb, 0, "order must be a multiple of nb");
        let n_tiles = dense.rows() / nb;
        let mut m = FullTiledMatrix::zeros(n_tiles, nb);
        for ti in 0..n_tiles {
            for tj in 0..n_tiles {
                let t = m.tile_mut(ti, tj);
                for c in 0..nb {
                    for r in 0..nb {
                        t[r + c * nb] = dense[(ti * nb + r, tj * nb + c)];
                    }
                }
            }
        }
        m
    }

    /// Reassemble the dense matrix.
    pub fn to_dense(&self) -> Matrix {
        let n = self.n_tiles * self.nb;
        let mut m = Matrix::zeros(n, n);
        for ti in 0..self.n_tiles {
            for tj in 0..self.n_tiles {
                let t = self.tile(ti, tj);
                for c in 0..self.nb {
                    for r in 0..self.nb {
                        m[(ti * self.nb + r, tj * self.nb + c)] = t[r + c * self.nb];
                    }
                }
            }
        }
        m
    }

    /// Matrix order in tiles.
    pub fn n_tiles(&self) -> usize {
        self.n_tiles
    }

    /// Tile size.
    pub fn nb(&self) -> usize {
        self.nb
    }

    #[inline]
    fn idx(&self, row: usize, col: usize) -> usize {
        debug_assert!(row < self.n_tiles && col < self.n_tiles);
        row * self.n_tiles + col
    }

    /// Borrow a tile.
    #[inline]
    pub fn tile(&self, row: usize, col: usize) -> &[f64] {
        &self.tiles[self.idx(row, col)]
    }

    /// Mutably borrow a tile.
    #[inline]
    pub fn tile_mut(&mut self, row: usize, col: usize) -> &mut [f64] {
        let i = self.idx(row, col);
        &mut self.tiles[i]
    }

    /// Borrow two distinct tiles, the first mutably.
    pub fn tile_pair_mut(
        &mut self,
        out: (usize, usize),
        input: (usize, usize),
    ) -> (&mut [f64], &[f64]) {
        let oi = self.idx(out.0, out.1);
        let ii = self.idx(input.0, input.1);
        assert_ne!(oi, ii, "output and input tiles must differ");
        if oi < ii {
            let (lo, hi) = self.tiles.split_at_mut(ii);
            (&mut lo[oi], &hi[0])
        } else {
            let (lo, hi) = self.tiles.split_at_mut(oi);
            (&mut hi[0], &lo[ii])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let n = 6;
        let dense = Matrix::from_fn(n, n, |r, c| (r * n + c) as f64);
        let m = FullTiledMatrix::from_dense(&dense, 3);
        assert_eq!(m.n_tiles(), 2);
        assert_eq!(m.to_dense(), dense);
        // Upper tile (0,1) exists, unlike the packed storage.
        assert_eq!(m.tile(0, 1)[0], dense[(0, 3)]);
    }

    #[test]
    fn tile_pair_mut_disjoint() {
        let mut m = FullTiledMatrix::zeros(2, 2);
        m.tile_mut(0, 1)[0] = 3.0;
        let (out, input) = m.tile_pair_mut((1, 0), (0, 1));
        out[0] = input[0] * 2.0;
        assert_eq!(m.tile(1, 0)[0], 6.0);
    }

    #[test]
    #[should_panic(expected = "must differ")]
    fn same_tile_pair_panics() {
        let mut m = FullTiledMatrix::zeros(2, 2);
        let _ = m.tile_pair_mut((0, 1), (0, 1));
    }
}
