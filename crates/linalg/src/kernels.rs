//! The four tile kernels, operating on `nb × nb` column-major tiles.
//!
//! Conventions match the tiled Cholesky of the paper's Algorithm 1 with an
//! in-place lower factorization (`A = L·Lᵀ`):
//!
//! * [`potrf_tile`] — `A[k][k] ← chol(A[k][k])` (lower).
//! * [`trsm_solve`] — `A[i][k] ← A[i][k] · L[k][k]⁻ᵀ` (right solve).
//! * [`syrk_update`] — `A[j][j] ← A[j][j] − A[j][k] · A[j][k]ᵀ`.
//! * [`gemm_update`] — `A[i][j] ← A[i][j] − A[i][k] · A[j][k]ᵀ`.

/// Error from a numerically failed POTRF.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NotPositiveDefinite {
    /// Column at which the pivot became non-positive.
    pub column: usize,
}

impl std::fmt::Display for NotPositiveDefinite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "matrix is not positive definite (pivot at column {})",
            self.column
        )
    }
}

impl std::error::Error for NotPositiveDefinite {}

#[inline]
fn at(nb: usize, r: usize, c: usize) -> usize {
    r + c * nb
}

/// In-place lower Cholesky factorization of one `nb × nb` tile
/// (unblocked right-looking `dpotrf`). Only the lower triangle is read and
/// written; the strict upper triangle is left untouched.
pub fn potrf_tile(a: &mut [f64], nb: usize) -> Result<(), NotPositiveDefinite> {
    debug_assert_eq!(a.len(), nb * nb);
    for j in 0..nb {
        let mut d = a[at(nb, j, j)];
        for k in 0..j {
            let v = a[at(nb, j, k)];
            d -= v * v;
        }
        if d <= 0.0 || !d.is_finite() {
            return Err(NotPositiveDefinite { column: j });
        }
        let d = d.sqrt();
        a[at(nb, j, j)] = d;
        let inv = 1.0 / d;
        for i in (j + 1)..nb {
            let mut v = a[at(nb, i, j)];
            for k in 0..j {
                v -= a[at(nb, i, k)] * a[at(nb, j, k)];
            }
            a[at(nb, i, j)] = v * inv;
        }
    }
    Ok(())
}

/// Right triangular solve `B ← B · L⁻ᵀ` where `L` is the lower factor
/// stored in `l` (`dtrsm` with side=R, uplo=L, trans=T, diag=N).
pub fn trsm_solve(b: &mut [f64], l: &[f64], nb: usize) {
    debug_assert_eq!(b.len(), nb * nb);
    debug_assert_eq!(l.len(), nb * nb);
    // Column q of the result depends on columns < q:
    // X[p,q] = (B[p,q] - Σ_{r<q} X[p,r]·L[q,r]) / L[q,q].
    for q in 0..nb {
        for r in 0..q {
            let lqr = l[at(nb, q, r)];
            if lqr != 0.0 {
                let (xr, xq) = {
                    // Columns r and q are disjoint slices of `b`.
                    let (lo, hi) = b.split_at_mut(q * nb);
                    (&lo[r * nb..r * nb + nb], &mut hi[..nb])
                };
                for p in 0..nb {
                    xq[p] -= xr[p] * lqr;
                }
            }
        }
        let inv = 1.0 / l[at(nb, q, q)];
        for p in 0..nb {
            b[at(nb, p, q)] *= inv;
        }
    }
}

/// Symmetric rank-`nb` update `C ← C − A·Aᵀ` of a diagonal tile. The full
/// tile is updated (keeping it symmetric), which keeps the kernel simple;
/// POTRF only consumes the lower triangle anyway.
pub fn syrk_update(c: &mut [f64], a: &[f64], nb: usize) {
    debug_assert_eq!(c.len(), nb * nb);
    debug_assert_eq!(a.len(), nb * nb);
    // C[p,q] -= Σ_r A[p,r]·A[q,r]; loop order r-q-p streams columns of A.
    for r in 0..nb {
        let col = &a[r * nb..r * nb + nb];
        for q in 0..nb {
            let aqr = col[q];
            if aqr != 0.0 {
                let out = &mut c[q * nb..q * nb + nb];
                for p in 0..nb {
                    out[p] -= col[p] * aqr;
                }
            }
        }
    }
}

/// General update `C ← C − A·Bᵀ` of an off-diagonal tile.
pub fn gemm_update(c: &mut [f64], a: &[f64], b: &[f64], nb: usize) {
    debug_assert_eq!(c.len(), nb * nb);
    debug_assert_eq!(a.len(), nb * nb);
    debug_assert_eq!(b.len(), nb * nb);
    // C[p,q] -= Σ_r A[p,r]·B[q,r].
    for r in 0..nb {
        let acol = &a[r * nb..r * nb + nb];
        let bcol = &b[r * nb..r * nb + nb];
        for q in 0..nb {
            let bqr = bcol[q];
            if bqr != 0.0 {
                let out = &mut c[q * nb..q * nb + nb];
                for p in 0..nb {
                    out[p] -= acol[p] * bqr;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Matrix;

    fn to_tile(m: &Matrix) -> Vec<f64> {
        m.data().to_vec()
    }

    fn from_tile(t: &[f64], nb: usize) -> Matrix {
        Matrix::from_fn(nb, nb, |r, c| t[r + c * nb])
    }

    /// A small SPD matrix: Aᵢⱼ = n·[i=j] + 1/(1+|i-j|).
    fn spd(nb: usize) -> Matrix {
        Matrix::from_fn(nb, nb, |r, c| {
            let base = 1.0 / (1.0 + (r as f64 - c as f64).abs());
            if r == c {
                base + nb as f64
            } else {
                base
            }
        })
    }

    #[test]
    fn potrf_reconstructs_spd() {
        let nb = 8;
        let a = spd(nb);
        let mut t = to_tile(&a);
        potrf_tile(&mut t, nb).unwrap();
        let l = from_tile(&t, nb).lower_triangle();
        let llt = l.matmul(&l.transpose());
        let mut err = 0.0f64;
        for r in 0..nb {
            for c in 0..nb {
                err = err.max((llt[(r, c)] - a[(r, c)]).abs());
            }
        }
        assert!(err < 1e-12, "reconstruction error {err}");
    }

    #[test]
    fn potrf_2x2_hand_checked() {
        // [[4, 2], [2, 5]] -> L = [[2, 0], [1, 2]]
        let nb = 2;
        let mut t = vec![4.0, 2.0, 2.0, 5.0]; // col-major
        potrf_tile(&mut t, nb).unwrap();
        assert!((t[0] - 2.0).abs() < 1e-15); // L[0,0]
        assert!((t[1] - 1.0).abs() < 1e-15); // L[1,0]
        assert!((t[3] - 2.0).abs() < 1e-15); // L[1,1]
    }

    #[test]
    fn potrf_rejects_indefinite() {
        let nb = 2;
        let mut t = vec![1.0, 2.0, 2.0, 1.0]; // det < 0
        let err = potrf_tile(&mut t, nb).unwrap_err();
        assert_eq!(err.column, 1);
        let mut t = vec![-1.0, 0.0, 0.0, 1.0];
        assert_eq!(potrf_tile(&mut t, nb).unwrap_err().column, 0);
    }

    #[test]
    fn trsm_solves_right_transposed_system() {
        let nb = 6;
        let a = spd(nb);
        let mut lt = to_tile(&a);
        potrf_tile(&mut lt, nb).unwrap();
        let l = from_tile(&lt, nb).lower_triangle();
        let b = Matrix::from_fn(nb, nb, |r, c| (r * nb + c) as f64 / 7.0 - 1.5);
        let mut x = to_tile(&b);
        trsm_solve(&mut x, &lt, nb);
        // X·Lᵀ must equal B.
        let back = from_tile(&x, nb).matmul(&l.transpose());
        let mut err = 0.0f64;
        for r in 0..nb {
            for c in 0..nb {
                err = err.max((back[(r, c)] - b[(r, c)]).abs());
            }
        }
        assert!(err < 1e-11, "solve error {err}");
    }

    #[test]
    fn trsm_identity_factor_is_noop() {
        let nb = 4;
        let l = to_tile(&Matrix::identity(nb));
        let b = Matrix::from_fn(nb, nb, |r, c| (r + 2 * c) as f64);
        let mut x = to_tile(&b);
        trsm_solve(&mut x, &l, nb);
        assert_eq!(from_tile(&x, nb), b);
    }

    #[test]
    fn syrk_matches_matrix_algebra() {
        let nb = 5;
        let a = Matrix::from_fn(nb, nb, |r, c| ((r + 1) * (c + 2)) as f64 / 3.0);
        let c0 = spd(nb);
        let mut c = to_tile(&c0);
        syrk_update(&mut c, &to_tile(&a), nb);
        let expect = {
            let prod = a.matmul(&a.transpose());
            Matrix::from_fn(nb, nb, |r, q| c0[(r, q)] - prod[(r, q)])
        };
        let got = from_tile(&c, nb);
        for r in 0..nb {
            for q in 0..nb {
                assert!((got[(r, q)] - expect[(r, q)]).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn gemm_matches_matrix_algebra() {
        let nb = 5;
        let a = Matrix::from_fn(nb, nb, |r, c| (r as f64 - c as f64) * 0.7);
        let b = Matrix::from_fn(nb, nb, |r, c| (r * c) as f64 * 0.1 + 1.0);
        let c0 = Matrix::from_fn(nb, nb, |r, c| (r + c) as f64);
        let mut c = to_tile(&c0);
        gemm_update(&mut c, &to_tile(&a), &to_tile(&b), nb);
        let prod = a.matmul(&b.transpose());
        let got = from_tile(&c, nb);
        for r in 0..nb {
            for q in 0..nb {
                assert!((got[(r, q)] - (c0[(r, q)] - prod[(r, q)])).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn gemm_with_zero_b_is_noop() {
        let nb = 3;
        let a = Matrix::from_fn(nb, nb, |r, c| (r + c) as f64);
        let zero = Matrix::zeros(nb, nb);
        let c0 = spd(nb);
        let mut c = to_tile(&c0);
        gemm_update(&mut c, &to_tile(&a), &to_tile(&zero), nb);
        assert_eq!(from_tile(&c, nb), c0);
    }
}
