//! The serve-pool model: the sharded worker pool under the DPOR model
//! checker.
//!
//! A closed five-thread system — two pool workers ([`Pool::start_controlled`]),
//! two clients driving the real [`submit_job`] request
//! path with specs routed to different shards, and an admin thread that
//! kills shard 0 at a model-chosen point — is explored exhaustively over
//! every (DPOR-reduced) interleaving of its lock, channel and condvar
//! operations. The state is built *durable and memory-starved* — an
//! in-memory [`JobLog`] with a one-job residency cap — so commits
//! append to the log and evict each other under every explored
//! schedule. Four serving invariants are checked at every quiescent
//! state:
//!
//! * **answered-once** — every accepted request gets exactly one reply,
//!   and every `Done` reply is backed by the job store;
//! * **no-serve-after-kill** — a submission that began after a shard was
//!   killed is shed `shard-dead`, never answered as if the shard lived;
//! * **cache-accounting** — the result cache's `hits + misses == gets`
//!   with one counted get per client;
//! * **eviction-reload** — in runs where the cap forced evictions, every
//!   `Done` job is still fetchable by id with its identity intact,
//!   reloaded from the log backend.
//!
//! The log's internal lock is a plain `std` mutex (see [`crate::wal`]),
//! so durability adds **zero** schedule points: the stock tree stays the
//! same size and stays exhaustible.
//!
//! A blocked-forever handler (the `leak-killed-batch` mutation keeps a
//! killed worker's reply senders alive) surfaces as the engine's own
//! deadlock invariant. Violations serialize to minimized, replayable
//! [`Witness`]es tagged `"model": "serve-pool"`, the same format `repro
//! mc-replay` consumes.

use crate::pool::{Pool, PoolMutations, ServerState, StateOptions};
use crate::wal::JobLog;
use crate::{submit_job, SubmitOutcome};
use hetchol::job::JobSpec;
use hetchol_analyze::mc::{
    check_model, replay_model, Invariant, ModelReplay, ModelReport, Violation, Witness,
};
use hetchol_analyze::ExploreConfig;
use hetchol_core::fault::{FaultPlan, IoFaultPlan};
use parking_lot::explore;
use std::cell::RefCell;
use std::rc::Rc;
use std::sync::{Arc, Mutex as StdMutex};
use std::thread;

/// Controlled threads in the model: two workers, two clients, one admin.
pub const N_THREADS: usize = 5;

const N_SHARDS: usize = 2;
const CLIENTS: usize = 2;
const ADMIN: usize = N_SHARDS + CLIENTS;
const BUDGET_MS: u64 = 30_000;

/// The model's execution log, written by the harness threads through a
/// plain `std` mutex (invisible to the explorer — it records *when*
/// things happened under the chosen schedule, it is not part of the
/// system under test).
#[derive(Clone, Debug, PartialEq, Eq)]
enum LogEvent {
    /// `pool.kill(shard)` returned.
    Killed(usize),
    /// A client is about to submit (its spec routes to `shard`).
    Begin { client: usize, shard: usize },
    /// A client's submission resolved.
    End { client: usize, kind: EndKind },
}

#[derive(Clone, Debug, PartialEq, Eq)]
enum EndKind {
    Done(u64),
    Shed(&'static str),
    Rejected,
}

fn kind_of(outcome: &SubmitOutcome) -> EndKind {
    match outcome {
        SubmitOutcome::Hit(job) | SubmitOutcome::Done(job) => EndKind::Done(job.id),
        SubmitOutcome::Rejected(_) => EndKind::Rejected,
        SubmitOutcome::Shed { code, .. } => EndKind::Shed(code),
    }
}

/// The smallest cholesky spec whose content hash routes to `shard` of
/// [`N_SHARDS`], found by scanning seeds (the seed is hashed, the result
/// is not affected by it here — n=2 deterministic simulation).
fn spec_for_shard(shard: usize) -> JobSpec {
    let mut spec = JobSpec::new("cholesky", 2).expect("cholesky is a known workload");
    for seed in 0..1024 {
        spec.seed = seed;
        if spec.content_hash() % N_SHARDS as u64 == shard as u64 {
            return spec;
        }
    }
    unreachable!("1024 seeds cover both residues");
}

fn mutations_for(mutation: Option<&str>) -> Result<PoolMutations, String> {
    match mutation {
        None => Ok(PoolMutations::default()),
        #[cfg(feature = "race-mutations")]
        Some("leak-killed-batch") => Ok(PoolMutations {
            leak_killed_batch: true,
            ..PoolMutations::default()
        }),
        #[cfg(not(feature = "race-mutations"))]
        Some("leak-killed-batch") => Err(
            "mutation \"leak-killed-batch\" requires building hetchol-serve \
             with the race-mutations feature"
                .into(),
        ),
        Some(other) => Err(format!("unknown serve-pool mutation {other:?}")),
    }
}

/// The model's durability setup: a fresh in-memory log (no injected
/// faults — fault schedules are the storm's job, interleavings are
/// ours) and a one-job residency cap, so any run that commits two jobs
/// exercises eviction and the answered-once check exercises reload.
fn model_options() -> StateOptions {
    StateOptions {
        log: Some(Arc::new(JobLog::in_memory(&IoFaultPlan::none()))),
        max_resident_jobs: 1,
        ..StateOptions::default()
    }
}

fn state_for(muts: PoolMutations) -> ServerState {
    #[cfg(feature = "race-mutations")]
    {
        let mut state = ServerState::with_options(model_options());
        state.mutations = muts;
        state
    }
    #[cfg(not(feature = "race-mutations"))]
    {
        let _ = muts;
        ServerState::with_options(model_options())
    }
}

/// What one completed run leaves behind for the invariant engine.
struct RunArtifacts {
    log: Vec<LogEvent>,
    state: Arc<ServerState>,
}

fn evaluate(run: &RunArtifacts) -> Option<Violation> {
    // answered-once: one End per client, every Done backed by the store.
    for client in 0..CLIENTS {
        let ends: Vec<&EndKind> = run
            .log
            .iter()
            .filter_map(|e| match e {
                LogEvent::End { client: c, kind } if *c == client => Some(kind),
                _ => None,
            })
            .collect();
        if ends.len() != 1 {
            return Some(Violation {
                invariant: Invariant::AnsweredOnce,
                detail: format!("client {client} was answered {} times", ends.len()),
            });
        }
        if let EndKind::Done(id) = ends[0] {
            if run.state.store.get(*id).is_none() {
                return Some(Violation {
                    invariant: Invariant::AnsweredOnce,
                    detail: format!("client {client} got Done for job {id} absent from the store"),
                });
            }
        }
    }

    // no-serve-after-kill: a submission that began after its shard's kill
    // completed must be shed shard-dead.
    for client in 0..CLIENTS {
        let begin = run
            .log
            .iter()
            .position(|e| matches!(e, LogEvent::Begin { client: c, .. } if *c == client));
        let Some(begin) = begin else { continue };
        let LogEvent::Begin { shard, .. } = run.log[begin] else {
            unreachable!("position matched a Begin");
        };
        let killed_first = run.log[..begin].contains(&LogEvent::Killed(shard));
        if !killed_first {
            continue;
        }
        let served = run.log.iter().any(|e| {
            matches!(e, LogEvent::End { client: c, kind } if *c == client
                && *kind != EndKind::Shed("shard-dead"))
        });
        if served {
            return Some(Violation {
                invariant: Invariant::NoServeAfterKill,
                detail: format!(
                    "client {client} began after shard {shard} was killed \
                     but was not shed shard-dead"
                ),
            });
        }
    }

    // cache-accounting: one counted result-cache get per client, and the
    // counters cohere.
    let snap = run.state.results.snapshot();
    if snap.hits + snap.misses != snap.gets || snap.gets != CLIENTS as u64 {
        return Some(Violation {
            invariant: Invariant::CacheAccounting,
            detail: format!(
                "results cache counted hits={} misses={} gets={} (want hits+misses==gets=={})",
                snap.hits, snap.misses, snap.gets, CLIENTS
            ),
        });
    }

    // eviction-reload: in runs where the one-job cap forced evictions,
    // every answered job must still be fetchable by id — reloaded from
    // the log backend — with its identity intact.
    let store = run.state.store.lock_jobs().snapshot();
    if store.evicted > 0 {
        for event in &run.log {
            let LogEvent::End {
                client,
                kind: EndKind::Done(id),
            } = event
            else {
                continue;
            };
            match run.state.store.get(*id) {
                Some(job) if job.id == *id => {}
                Some(job) => {
                    return Some(Violation {
                        invariant: Invariant::EvictionReload,
                        detail: format!(
                            "client {client}'s job {id} reloaded as job {} after eviction",
                            job.id
                        ),
                    });
                }
                None => {
                    return Some(Violation {
                        invariant: Invariant::EvictionReload,
                        detail: format!(
                            "client {client}'s job {id} vanished after eviction \
                             (evicted={}, reloads={})",
                            store.evicted, store.reloads
                        ),
                    });
                }
            }
        }
    }
    None
}

/// One closed run of the model system. Fills `slot` with the artifacts
/// the invariant engine reads; a deadlocked or panicked run leaves it
/// empty (the engine reports those itself).
fn run_system(muts: PoolMutations, slot: &Rc<RefCell<Option<RunArtifacts>>>) {
    slot.borrow_mut().take();
    let state = Arc::new(state_for(muts));
    let pool = Pool::start_controlled(N_SHARDS, 1, 1, state.clone(), 0);
    let log = StdMutex::new(Vec::new());

    thread::scope(|s| {
        for client in 0..CLIENTS {
            let spec = spec_for_shard(client);
            let state = &state;
            let pool = &pool;
            let log = &log;
            s.spawn(move || {
                explore::checkin(N_SHARDS + client);
                let shard = pool.shard_of(spec.content_hash());
                log.lock()
                    .expect("log")
                    .push(LogEvent::Begin { client, shard });
                let outcome = submit_job(state, pool, spec, BUDGET_MS);
                log.lock().expect("log").push(LogEvent::End {
                    client,
                    kind: kind_of(&outcome),
                });
            });
        }
        let pool = &pool;
        let log = &log;
        s.spawn(move || {
            explore::checkin(ADMIN);
            // Kill both shards at model-chosen points relative to the
            // clients. The explorer covers every ordering: jobs served
            // before the kill, shed at submission, and orphaned in the
            // queue. The kills also guarantee both workers exit under
            // the model's schedule, so every run terminates.
            pool.kill(0);
            log.lock().expect("log").push(LogEvent::Killed(0));
            pool.kill(1);
            log.lock().expect("log").push(LogEvent::Killed(1));
        });
    });

    // Every controlled thread has exited; the real joins below are
    // immediate and invisible to the session.
    pool.shutdown();
    let log = std::mem::take(&mut *log.lock().expect("log"));
    *slot.borrow_mut() = Some(RunArtifacts { log, state });
}

/// Exhaustively model-check the serve pool, optionally with one seeded
/// mutation armed (`"leak-killed-batch"`). Errors on an unknown mutation
/// or one compiled out.
pub fn check_pool(cfg: ExploreConfig, mutation: Option<&str>) -> Result<ModelReport, String> {
    let muts = mutations_for(mutation)?;
    let slot = Rc::new(RefCell::new(None));
    let run_slot = slot.clone();
    let post_slot = slot.clone();
    Ok(check_model(
        N_THREADS,
        cfg,
        move || run_system(muts, &run_slot),
        move || post_slot.borrow_mut().take().as_ref().and_then(evaluate),
    ))
}

/// Build the serializable witness for a violating [`check_pool`] report.
pub fn pool_witness(report: &ModelReport, mutation: Option<&str>) -> Option<Witness> {
    let v = report.violation.as_ref()?;
    Some(Witness {
        version: 1,
        model: "serve-pool".to_string(),
        n_tiles: 0,
        n_workers: N_THREADS,
        mutation: mutation.map(str::to_string),
        plan: FaultPlan::none(),
        choices: report.choices.clone(),
        invariant: v.invariant,
        detail: v.detail.clone(),
        schedules_explored: report.schedules_run,
    })
}

/// Deterministically re-run a serve-pool witness: force its choice
/// prefix, free-run past it, and re-evaluate the invariants.
pub fn replay_pool(witness: &Witness, cfg: ExploreConfig) -> Result<ModelReplay, String> {
    if witness.model != "serve-pool" {
        return Err(format!(
            "witness is for model {:?}, not serve-pool",
            witness.model
        ));
    }
    let muts = mutations_for(witness.mutation.as_deref())?;
    let slot = Rc::new(RefCell::new(None));
    let run_slot = slot.clone();
    let post_slot = slot.clone();
    Ok(replay_model(
        N_THREADS,
        cfg,
        &witness.choices,
        move || run_system(muts, &run_slot),
        move || post_slot.borrow_mut().take().as_ref().and_then(evaluate),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_route_to_their_shards() {
        for shard in 0..N_SHARDS {
            let spec = spec_for_shard(shard);
            assert_eq!(spec.content_hash() % N_SHARDS as u64, shard as u64);
        }
        assert_ne!(
            spec_for_shard(0).content_hash(),
            spec_for_shard(1).content_hash()
        );
    }

    #[test]
    fn unknown_mutation_is_refused() {
        let err = check_pool(ExploreConfig::default(), Some("no-such-bug")).unwrap_err();
        assert!(err.contains("no-such-bug"), "{err}");
    }

    /// The model's one-job cap is not theater: running the exact system
    /// state outside the explorer, two committed jobs force an eviction,
    /// and both still answer by id — the cold one reloaded from the
    /// in-memory log backend.
    #[test]
    fn model_state_evicts_and_reloads_under_its_cap() {
        let state = Arc::new(state_for(PoolMutations::default()));
        let pool = Pool::start(N_SHARDS, 1, 1, state.clone());
        let mut ids = Vec::new();
        for shard in 0..N_SHARDS {
            match submit_job(&state, &pool, spec_for_shard(shard), BUDGET_MS) {
                SubmitOutcome::Done(job) => ids.push(job.id),
                other => panic!("expected Done, got {:?}", kind_of(&other)),
            }
        }
        pool.shutdown();

        let snap = state.store.lock_jobs().snapshot();
        assert!(snap.evicted >= 1, "cap of one forces an eviction: {snap:?}");
        for id in ids {
            let job = state.store.get(id).expect("evicted job reloads");
            assert_eq!(job.id, id);
        }
        assert!(
            state.store.lock_jobs().snapshot().reloads >= 1,
            "at least one fetch came back through the log"
        );
    }
}
