//! A deliberately small HTTP/1.1 subset over [`std::net`].
//!
//! The job API needs exactly five things from HTTP: a method, a path, a
//! body, a status line back, and connection reuse — no chunked encoding,
//! no content negotiation. Hand-rolling that subset keeps the workspace
//! free of external dependencies and keeps every byte on the wire
//! auditable.
//!
//! Persistence follows HTTP/1.1 semantics: connections stay open by
//! default, `Connection: close` (or an HTTP/1.0 request without
//! `Connection: keep-alive`) opts out, and every response states its
//! disposition explicitly. The server additionally closes on idle
//! timeout and after a per-connection request cap — both are transport
//! hygiene, invisible to a conforming client.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// Largest accepted request body. Specs are a few hundred bytes; a 1 MiB
/// cap leaves generous headroom while bounding per-connection memory.
pub const MAX_BODY: usize = 1 << 20;

/// Largest accepted request-line or header line.
pub const MAX_LINE: usize = 8 * 1024;

/// A parsed request: the routing triple plus connection disposition.
#[derive(Debug)]
pub struct Request {
    /// `GET`, `POST`, ...
    pub method: String,
    /// The path component as sent (query strings are not used by the API).
    pub path: String,
    /// The request body (empty when no `Content-Length` was sent).
    pub body: String,
    /// Whether the client asked to keep the connection open: HTTP/1.1
    /// unless `Connection: close`, HTTP/1.0 only with
    /// `Connection: keep-alive`.
    pub keep_alive: bool,
}

/// Why a request could not be parsed into a [`Request`].
#[derive(Debug)]
pub enum ReadError {
    /// The peer closed the connection before sending a request line.
    Eof,
    /// Transport-level failure (idle timeouts surface here).
    Io(io::Error),
    /// The bytes were not the HTTP subset we speak; the detail is safe to
    /// echo into a 400 body.
    Malformed(String),
}

impl From<io::Error> for ReadError {
    fn from(e: io::Error) -> ReadError {
        ReadError::Io(e)
    }
}

fn read_line(reader: &mut BufReader<TcpStream>) -> Result<String, ReadError> {
    let mut line = String::new();
    let n = reader
        .by_ref()
        .take(MAX_LINE as u64)
        .read_line(&mut line)
        .map_err(ReadError::Io)?;
    if n == 0 {
        return Err(ReadError::Eof);
    }
    if !line.ends_with('\n') && n >= MAX_LINE {
        return Err(ReadError::Malformed(format!(
            "header line exceeds {MAX_LINE} bytes"
        )));
    }
    while line.ends_with('\n') || line.ends_with('\r') {
        line.pop();
    }
    Ok(line)
}

/// Read and parse one request from the connection.
pub fn read_request(reader: &mut BufReader<TcpStream>) -> Result<Request, ReadError> {
    let request_line = read_line(reader)?;
    let mut parts = request_line.split_whitespace();
    let (method, path, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v)) => (m.to_string(), p.to_string(), v),
        _ => {
            return Err(ReadError::Malformed(format!(
                "bad request line {request_line:?}"
            )))
        }
    };
    if !version.starts_with("HTTP/1.") {
        return Err(ReadError::Malformed(format!(
            "unsupported protocol {version:?}"
        )));
    }
    let mut keep_alive = version != "HTTP/1.0";

    let mut content_length = 0usize;
    loop {
        let line = read_line(reader)?;
        if line.is_empty() {
            break;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(ReadError::Malformed(format!("bad header line {line:?}")));
        };
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value
                .trim()
                .parse::<usize>()
                .map_err(|_| ReadError::Malformed(format!("bad content-length {value:?}")))?;
            if content_length > MAX_BODY {
                return Err(ReadError::Malformed(format!(
                    "body of {content_length} bytes exceeds the {MAX_BODY}-byte limit"
                )));
            }
        } else if name.eq_ignore_ascii_case("connection") {
            let value = value.trim();
            if value.eq_ignore_ascii_case("close") {
                keep_alive = false;
            } else if value.eq_ignore_ascii_case("keep-alive") {
                keep_alive = true;
            }
        }
    }

    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).map_err(ReadError::Io)?;
    let body = String::from_utf8(body)
        .map_err(|_| ReadError::Malformed("request body is not UTF-8".into()))?;
    Ok(Request {
        method,
        path,
        body,
        keep_alive,
    })
}

/// The reason phrase for the handful of statuses the API uses.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Write a complete `application/json` response and flush it, stating
/// whether the connection stays open.
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    body: &str,
    keep_alive: bool,
) -> io::Result<()> {
    let connection = if keep_alive { "keep-alive" } else { "close" };
    // One write per response: a head-then-body pair of small writes
    // interacts with Nagle + delayed ACK on a kept-alive socket (the
    // second segment waits out the peer's ~40ms ACK timer).
    let mut message = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: {connection}\r\n\r\n",
        reason(status),
        body.len(),
    );
    message.push_str(body);
    stream.write_all(message.as_bytes())?;
    stream.flush()
}
