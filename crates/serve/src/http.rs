//! A deliberately small HTTP/1.1 subset over [`std::net`].
//!
//! The job API needs exactly four things from HTTP: a method, a path, a
//! body, and a status line back — no keep-alive, no chunked encoding, no
//! content negotiation. Hand-rolling that subset keeps the workspace free
//! of external dependencies and keeps every byte on the wire auditable.
//! Responses always carry `Connection: close`; one request per connection
//! is the protocol.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// Largest accepted request body. Specs are a few hundred bytes; a 1 MiB
/// cap leaves generous headroom while bounding per-connection memory.
pub const MAX_BODY: usize = 1 << 20;

/// Largest accepted request-line or header line.
pub const MAX_LINE: usize = 8 * 1024;

/// A parsed request: just the routing triple.
#[derive(Debug)]
pub struct Request {
    /// `GET`, `POST`, ...
    pub method: String,
    /// The path component as sent (query strings are not used by the API).
    pub path: String,
    /// The request body (empty when no `Content-Length` was sent).
    pub body: String,
}

/// Why a request could not be parsed into a [`Request`].
#[derive(Debug)]
pub enum ReadError {
    /// The peer closed the connection before sending a request line.
    Eof,
    /// Transport-level failure (timeouts surface here).
    Io(io::Error),
    /// The bytes were not the HTTP subset we speak; the detail is safe to
    /// echo into a 400 body.
    Malformed(String),
}

impl From<io::Error> for ReadError {
    fn from(e: io::Error) -> ReadError {
        ReadError::Io(e)
    }
}

fn read_line(reader: &mut BufReader<TcpStream>) -> Result<String, ReadError> {
    let mut line = String::new();
    let n = reader
        .by_ref()
        .take(MAX_LINE as u64)
        .read_line(&mut line)
        .map_err(ReadError::Io)?;
    if n == 0 {
        return Err(ReadError::Eof);
    }
    if !line.ends_with('\n') && n >= MAX_LINE {
        return Err(ReadError::Malformed(format!(
            "header line exceeds {MAX_LINE} bytes"
        )));
    }
    while line.ends_with('\n') || line.ends_with('\r') {
        line.pop();
    }
    Ok(line)
}

/// Read and parse one request from the connection.
pub fn read_request(reader: &mut BufReader<TcpStream>) -> Result<Request, ReadError> {
    let request_line = read_line(reader)?;
    let mut parts = request_line.split_whitespace();
    let (method, path, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v)) => (m.to_string(), p.to_string(), v),
        _ => {
            return Err(ReadError::Malformed(format!(
                "bad request line {request_line:?}"
            )))
        }
    };
    if !version.starts_with("HTTP/1.") {
        return Err(ReadError::Malformed(format!(
            "unsupported protocol {version:?}"
        )));
    }

    let mut content_length = 0usize;
    loop {
        let line = read_line(reader)?;
        if line.is_empty() {
            break;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(ReadError::Malformed(format!("bad header line {line:?}")));
        };
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value
                .trim()
                .parse::<usize>()
                .map_err(|_| ReadError::Malformed(format!("bad content-length {value:?}")))?;
            if content_length > MAX_BODY {
                return Err(ReadError::Malformed(format!(
                    "body of {content_length} bytes exceeds the {MAX_BODY}-byte limit"
                )));
            }
        }
    }

    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).map_err(ReadError::Io)?;
    let body = String::from_utf8(body)
        .map_err(|_| ReadError::Malformed("request body is not UTF-8".into()))?;
    Ok(Request { method, path, body })
}

/// The reason phrase for the handful of statuses the API uses.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Write a complete `application/json` response and flush it. Every
/// response closes the connection.
pub fn write_response(stream: &mut TcpStream, status: u16, body: &str) -> io::Result<()> {
    let head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        reason(status),
        body.len(),
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}
