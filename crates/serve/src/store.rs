//! Per-job result storage.
//!
//! Every completed job is kept (spec + summary + full simulation result)
//! so clients can come back for the heavyweight artifacts — the Chrome
//! trace (`GET /jobs/<id>/trace`) and an after-the-fact lint
//! (`GET /jobs/<id>/lint`) — without re-running anything.

use hetchol::job::{JobError, JobOutcome, JobSpec};
use hetchol_analyze::Report;
use hetchol_sim::SimResult;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A finished job: the spec that produced it, the wire summary, and the
/// full simulation result when one was run.
pub struct StoredJob {
    /// Server-assigned id (the `/jobs/<id>` path segment).
    pub id: u64,
    /// The spec, kept verbatim for replay and lint-on-demand.
    pub spec: JobSpec,
    /// The serializable result summary.
    pub outcome: JobOutcome,
    /// The full engine result (simulate/lint actions only).
    pub sim: Option<SimResult>,
}

impl StoredJob {
    /// Render the recorded observability spans as a Chrome `about:tracing`
    /// document. `None` when the job ran without `obs` or never simulated.
    pub fn chrome_trace(&self) -> Option<String> {
        if !self.spec.obs {
            return None;
        }
        self.sim.as_ref().map(|r| r.obs.to_chrome_trace())
    }

    /// Lint the stored trace on demand with the exact configuration the
    /// `lint` action would have used.
    pub fn lint(&self) -> Option<Result<Report, JobError>> {
        self.sim.as_ref().map(|r| self.spec.lint_sim(r))
    }
}

/// The id-indexed store behind `GET /jobs/<id>`.
pub struct JobStore {
    jobs: Mutex<HashMap<u64, Arc<StoredJob>>>,
    next_id: AtomicU64,
}

impl JobStore {
    /// An empty store; ids start at 1.
    pub fn new() -> JobStore {
        JobStore {
            jobs: Mutex::new(HashMap::new()),
            next_id: AtomicU64::new(1),
        }
    }

    /// Allocate the next job id.
    pub fn next_id(&self) -> u64 {
        self.next_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Store a finished job under its id.
    pub fn insert(&self, job: Arc<StoredJob>) {
        self.jobs.lock().expect("store lock").insert(job.id, job);
    }

    /// Fetch a job by id.
    pub fn get(&self, id: u64) -> Option<Arc<StoredJob>> {
        self.jobs.lock().expect("store lock").get(&id).cloned()
    }

    /// Number of stored jobs.
    pub fn len(&self) -> usize {
        self.jobs.lock().expect("store lock").len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Default for JobStore {
    fn default() -> JobStore {
        JobStore::new()
    }
}
