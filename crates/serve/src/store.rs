//! Per-job result storage with bounded residency and log rehydration.
//!
//! Every completed job is kept (spec + summary + rendered trace) so
//! clients can come back for the heavyweight artifacts — the Chrome
//! trace (`GET /jobs/<id>/trace`) and an after-the-fact lint
//! (`GET /jobs/<id>/lint`) — without re-running anything.
//!
//! A store built with [`JobStore::with_caps`] and an attached
//! [`JobLog`] bounds resident memory: jobs past the caps are evicted
//! least-recently-used down to their log offset, and a later `GET`
//! transparently reloads the record from disk ([`StoredJob::rehydrated`])
//! — the trace comes back bitwise-identical because the *rendered*
//! document is what the log stores. Jobs that were never persisted (no
//! log attached, or the log went unhealthy mid-commit) are pinned
//! resident: eviction only ever trades RAM for a disk read, never for
//! an answer.
//!
//! The slot map lives behind the instrumented `parking_lot` shim so the
//! happens-before recorder sees every insert, lookup, eviction and
//! reload; the labelled touchpoints make a dropped-lock mutation show up
//! as a reported data race rather than silent corruption. Rehydration
//! reads the log *while holding the store lock* — the log's own internal
//! lock is a plain `std` mutex (see [`crate::wal`]), so the only shim
//! lock order is still store → caches, and the DPOR model tree gains no
//! schedule points.

use crate::wal::{Appended, JobLog, ScannedRecord, WalRecord};
use hetchol::job::{JobError, JobOutcome, JobSpec};
use hetchol_analyze::Report;
use hetchol_sim::SimResult;
use parking_lot::{explore, Mutex, MutexGuard};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// The label the store's lock and touchpoints carry in analysis reports.
pub const STORE_LOCK_LABEL: &str = "serve.store.jobs";

/// A finished job: the spec that produced it, the wire summary, the
/// rendered trace, and the full simulation result when one was run.
pub struct StoredJob {
    /// Server-assigned id (the `/jobs/<id>` path segment).
    pub id: u64,
    /// The spec, kept verbatim for replay and lint-on-demand.
    pub spec: JobSpec,
    /// The serializable result summary.
    pub outcome: JobOutcome,
    /// The full engine result (simulate/lint actions only); `None` on
    /// jobs rehydrated from the log, whose trace is already rendered.
    pub sim: Option<SimResult>,
    trace_text: Option<String>,
}

impl StoredJob {
    /// A job finished by a live worker. The Chrome trace is rendered
    /// here, once, so serving it later is a clone and persisting it now
    /// writes the exact bytes a restarted server will re-serve.
    pub fn fresh(id: u64, spec: JobSpec, outcome: JobOutcome, sim: Option<SimResult>) -> StoredJob {
        let trace_text = if spec.obs {
            sim.as_ref().map(|r| r.obs.to_chrome_trace())
        } else {
            None
        };
        StoredJob {
            id,
            spec,
            outcome,
            sim,
            trace_text,
        }
    }

    /// A job reloaded from its log record: the trace is served verbatim
    /// from the record, and there is no `SimResult` to lint.
    pub fn rehydrated(record: WalRecord) -> StoredJob {
        StoredJob {
            id: record.id,
            spec: record.spec,
            outcome: record.outcome,
            sim: None,
            trace_text: record.trace,
        }
    }

    /// The Chrome `about:tracing` document. `None` when the job ran
    /// without `obs` or never simulated.
    pub fn chrome_trace(&self) -> Option<String> {
        self.trace_text.clone()
    }

    /// Lint the stored trace on demand with the exact configuration the
    /// `lint` action would have used. `None` when the job never simulated
    /// — including jobs rehydrated from the log, which keep their trace
    /// but not the in-memory simulation state a lint needs.
    pub fn lint(&self) -> Option<Result<Report, JobError>> {
        self.sim.as_ref().map(|r| self.spec.lint_sim(r))
    }

    /// The job's durable form for the log.
    pub fn wal_record(&self) -> WalRecord {
        WalRecord {
            id: self.id,
            spec: self.spec.clone(),
            outcome: self.outcome.clone(),
            trace: self.trace_text.clone(),
        }
    }

    /// Approximate resident bytes, for cache byte caps. The rendered
    /// trace dominates; the constant covers the spec and outcome.
    pub fn approx_bytes(&self) -> usize {
        256 + self.trace_text.as_ref().map_or(0, String::len)
    }
}

/// One job's slot: resident (`job` is `Some`), or evicted down to its
/// log offset, ready to reload.
struct Slot {
    job: Option<Arc<StoredJob>>,
    offset: Option<u64>,
    bytes: usize,
    last_used: u64,
}

struct Jobs {
    slots: HashMap<u64, Slot>,
    resident: usize,
    resident_bytes: usize,
    clock: u64,
    evicted: u64,
    evicted_bytes: u64,
    reloads: u64,
}

impl Jobs {
    fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    fn insert_slot(&mut self, job: Arc<StoredJob>, persisted: Option<&Appended>) {
        let stamp = self.tick();
        let bytes = persisted.map_or(0, |a| a.frame_bytes);
        let old = self.slots.insert(
            job.id,
            Slot {
                job: Some(job),
                offset: persisted.map(|a| a.offset),
                bytes,
                last_used: stamp,
            },
        );
        if let Some(old) = old {
            if old.job.is_some() {
                self.resident -= 1;
                self.resident_bytes -= old.bytes;
            }
        }
        self.resident += 1;
        self.resident_bytes += bytes;
    }

    /// Evict resident, *persisted* slots least-recently-used first until
    /// under both caps (0 = unbounded). Unpersisted jobs are pinned —
    /// they exist nowhere else — and at least one resident job always
    /// survives, so a single oversized trace cannot thrash the store
    /// empty.
    fn evict_over(&mut self, max_resident: usize, max_bytes: usize) {
        while self.resident > 1
            && ((max_resident > 0 && self.resident > max_resident)
                || (max_bytes > 0 && self.resident_bytes > max_bytes))
        {
            let victim = self
                .slots
                .iter()
                .filter(|(_, s)| s.job.is_some() && s.offset.is_some())
                .min_by_key(|(_, s)| s.last_used)
                .map(|(&id, _)| id);
            let Some(id) = victim else {
                break; // Everything left is pinned.
            };
            let slot = self.slots.get_mut(&id).expect("victim exists");
            slot.job = None;
            self.resident -= 1;
            self.resident_bytes -= slot.bytes;
            self.evicted += 1;
            self.evicted_bytes += slot.bytes as u64;
        }
    }
}

/// One coherent read of the store's accounting.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct StoreSnapshot {
    /// Jobs the store knows (resident or evicted-to-log).
    pub stored: usize,
    /// Jobs currently resident in memory.
    pub resident: usize,
    /// Approximate bytes of resident persisted jobs.
    pub resident_bytes: usize,
    /// Evictions over the store's lifetime.
    pub evicted: u64,
    /// Approximate bytes those evictions released.
    pub evicted_bytes: u64,
    /// Evicted jobs reloaded from the log on demand.
    pub reloads: u64,
}

/// The id-indexed store behind `GET /jobs/<id>`.
pub struct JobStore {
    jobs: Mutex<Jobs>,
    next_id: AtomicU64,
    max_resident: usize,
    max_resident_bytes: usize,
    log: OnceLock<Arc<JobLog>>,
}

/// Holds the store's lock after an insert so the commit path can update
/// the result cache while the store is still pinned — a reader holding
/// the store lock then never observes a job in one map but not the other.
pub struct StoreGuard<'a> {
    _guard: MutexGuard<'a, Jobs>,
}

/// The store's lock held for a multi-field read (`/stats`).
pub struct JobsGuard<'a> {
    guard: MutexGuard<'a, Jobs>,
}

impl JobsGuard<'_> {
    /// Number of stored jobs (resident or evicted), under the held lock.
    pub fn len(&self) -> usize {
        self.guard.slots.len()
    }

    /// Whether the store is empty, under the held lock.
    pub fn is_empty(&self) -> bool {
        self.guard.slots.is_empty()
    }

    /// One coherent accounting snapshot, under the held lock.
    pub fn snapshot(&self) -> StoreSnapshot {
        StoreSnapshot {
            stored: self.guard.slots.len(),
            resident: self.guard.resident,
            resident_bytes: self.guard.resident_bytes,
            evicted: self.guard.evicted,
            evicted_bytes: self.guard.evicted_bytes,
            reloads: self.guard.reloads,
        }
    }
}

impl JobStore {
    /// An empty, unbounded store with no log; ids start at 1.
    pub fn new() -> JobStore {
        JobStore::with_caps(0, 0)
    }

    /// An empty store keeping at most `max_resident` jobs /
    /// `max_resident_bytes` approximate bytes resident (0 = unbounded).
    /// The caps only bite once a log is attached — without one, nothing
    /// is evictable and every job stays pinned.
    pub fn with_caps(max_resident: usize, max_resident_bytes: usize) -> JobStore {
        let store = JobStore {
            jobs: Mutex::new(Jobs {
                slots: HashMap::new(),
                resident: 0,
                resident_bytes: 0,
                clock: 0,
                evicted: 0,
                evicted_bytes: 0,
                reloads: 0,
            }),
            next_id: AtomicU64::new(1),
            max_resident,
            max_resident_bytes,
            log: OnceLock::new(),
        };
        explore::label(&store.jobs, STORE_LOCK_LABEL);
        store
    }

    /// Attach the job log evicted slots reload from. Set once, at
    /// startup, before the pool runs.
    pub fn attach_log(&self, log: Arc<JobLog>) {
        assert!(self.log.set(log).is_ok(), "job log attached twice");
    }

    /// The attached log, if any.
    pub fn log(&self) -> Option<&Arc<JobLog>> {
        self.log.get()
    }

    /// Seed the store from recovered log records: every job enters
    /// *evicted* (offset-indexed, zero resident bytes) so a restarted
    /// server's memory stays bounded no matter how long the log is, and
    /// `next_id` moves past the highest recovered id.
    pub fn recover(&self, records: &[ScannedRecord]) {
        let mut jobs = self.jobs.lock();
        explore::touch(STORE_LOCK_LABEL, true);
        let mut max_id = 0;
        for rec in records {
            max_id = max_id.max(rec.record.id);
            jobs.slots.insert(
                rec.record.id,
                Slot {
                    job: None,
                    offset: Some(rec.offset),
                    bytes: rec.frame_bytes,
                    last_used: 0,
                },
            );
        }
        drop(jobs);
        self.next_id.fetch_max(max_id + 1, Ordering::Relaxed);
    }

    /// Re-emit the lock label at the store's current address (labels are
    /// address-keyed; see [`crate::cache::CountedCache::relabel`]).
    pub fn relabel(&self) {
        explore::label(&self.jobs, STORE_LOCK_LABEL);
    }

    /// Allocate the next job id.
    pub fn next_id(&self) -> u64 {
        self.next_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Store a finished job under its id, unpersisted (pinned resident).
    pub fn insert(&self, job: Arc<StoredJob>) {
        let mut jobs = self.jobs.lock();
        explore::touch(STORE_LOCK_LABEL, true);
        jobs.insert_slot(job, None);
        jobs.evict_over(self.max_resident, self.max_resident_bytes);
    }

    /// Store a finished job — with its log receipt when the commit was
    /// durably appended — and keep holding the store lock; the returned
    /// guard releases it. This is the first half of the commit path
    /// (store, then result cache, nested). Eviction runs in the same
    /// critical section, so a concurrent reader never sees the store
    /// over its caps.
    pub fn insert_locked(
        &self,
        job: Arc<StoredJob>,
        persisted: Option<&Appended>,
    ) -> StoreGuard<'_> {
        let mut jobs = self.jobs.lock();
        explore::touch(STORE_LOCK_LABEL, true);
        jobs.insert_slot(job, persisted);
        jobs.evict_over(self.max_resident, self.max_resident_bytes);
        StoreGuard { _guard: jobs }
    }

    /// Store a finished job with its declared touchpoint *outside* the
    /// critical section — the seeded `drop-store-lock` mutation. Two
    /// shards committing concurrently through this path are a data race
    /// the happens-before recorder reports under every real timing.
    #[cfg(feature = "race-mutations")]
    pub fn insert_unsynced(&self, job: Arc<StoredJob>) {
        {
            let mut jobs = self.jobs.lock();
            jobs.insert_slot(job, None);
        }
        explore::touch(STORE_LOCK_LABEL, true);
    }

    /// Lock the job map for a coherent multi-field read.
    pub fn lock_jobs(&self) -> JobsGuard<'_> {
        let guard = self.jobs.lock();
        explore::touch(STORE_LOCK_LABEL, false);
        JobsGuard { guard }
    }

    /// Fetch a job by id. An evicted job is reloaded from the log record
    /// at its slot's offset — transparently, counted in
    /// [`StoreSnapshot::reloads`] — and becomes resident again (possibly
    /// evicting a colder persisted job in its place). The log read
    /// happens under the store lock; the log's own lock is `std`, so no
    /// shim-lock cycle is possible.
    pub fn get(&self, id: u64) -> Option<Arc<StoredJob>> {
        let mut jobs = self.jobs.lock();
        explore::touch(STORE_LOCK_LABEL, false);
        let (resident, offset) = {
            let slot = jobs.slots.get_mut(&id)?;
            (slot.job.clone(), slot.offset)
        };
        if let Some(job) = resident {
            let stamp = jobs.tick();
            jobs.slots.get_mut(&id).expect("slot exists").last_used = stamp;
            return Some(job);
        }
        let offset = offset?;
        let record = self.log.get()?.read(offset).ok()?;
        if record.id != id {
            return None; // A log rewritten underneath us; refuse to lie.
        }
        explore::touch(STORE_LOCK_LABEL, true);
        let job = Arc::new(StoredJob::rehydrated(record));
        let stamp = jobs.tick();
        let slot = jobs.slots.get_mut(&id).expect("slot exists");
        slot.job = Some(job.clone());
        slot.last_used = stamp;
        let bytes = slot.bytes;
        jobs.resident += 1;
        jobs.resident_bytes += bytes;
        jobs.reloads += 1;
        jobs.evict_over(self.max_resident, self.max_resident_bytes);
        Some(job)
    }

    /// Number of stored jobs (resident or evicted).
    pub fn len(&self) -> usize {
        self.lock_jobs().len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Default for JobStore {
    fn default() -> JobStore {
        JobStore::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetchol_core::fault::IoFaultPlan;

    fn job(id: u64, seed: u64) -> Arc<StoredJob> {
        let mut spec = JobSpec::new("cholesky", 2).expect("cholesky is a known workload");
        spec.seed = seed;
        spec.obs = true;
        let run = spec
            .run_with_bounds(None)
            .expect("a stock cholesky(2) simulation cannot fail");
        Arc::new(StoredJob::fresh(id, spec, run.outcome, run.sim))
    }

    #[test]
    fn evicted_jobs_reload_from_the_log_bitwise_identical() {
        let log = Arc::new(JobLog::in_memory(&IoFaultPlan::none()));
        let store = JobStore::with_caps(1, 0);
        store.attach_log(log.clone());

        let first = job(1, 0);
        let first_trace = first.chrome_trace().expect("obs job has a trace");
        let a1 = log.append(&first.wal_record()).expect("append 1");
        drop(store.insert_locked(first, Some(&a1)));

        let second = job(2, 1);
        let a2 = log.append(&second.wal_record()).expect("append 2");
        drop(store.insert_locked(second, Some(&a2)));

        // Cap of one: the first job was evicted down to its offset...
        let snap = store.lock_jobs().snapshot();
        assert_eq!((snap.stored, snap.resident, snap.evicted), (2, 1, 1));

        // ...and a GET reloads it with the exact trace bytes, evicting
        // the now-colder second job in its place.
        let back = store.get(1).expect("evicted job reloads");
        assert_eq!(back.chrome_trace().as_deref(), Some(first_trace.as_str()));
        assert!(back.sim.is_none(), "rehydrated jobs carry no SimResult");
        let snap = store.lock_jobs().snapshot();
        assert_eq!((snap.resident, snap.evicted, snap.reloads), (1, 2, 1));
    }

    #[test]
    fn unpersisted_jobs_are_pinned_resident() {
        let store = JobStore::with_caps(1, 0);
        for id in 1..=3 {
            store.insert(job(id, id));
        }
        let snap = store.lock_jobs().snapshot();
        assert_eq!((snap.stored, snap.resident, snap.evicted), (3, 3, 0));
        assert!(store.get(1).is_some() && store.get(3).is_some());
    }

    #[test]
    fn recovery_seeds_evicted_slots_and_advances_next_id() {
        let log = Arc::new(JobLog::in_memory(&IoFaultPlan::none()));
        let a = job(7, 3);
        let trace = a.chrome_trace().expect("obs trace");
        log.append(&a.wal_record()).expect("append");
        let (records, report) = crate::wal::scan(&log.read(0).expect("readable").frame());
        assert!(report.is_clean());

        let store = JobStore::new();
        store.attach_log(log);
        store.recover(&records);
        assert_eq!(store.next_id(), 8, "next id moves past recovered ids");
        let snap = store.lock_jobs().snapshot();
        assert_eq!((snap.stored, snap.resident), (1, 0));
        let back = store.get(7).expect("recovered job loads on demand");
        assert_eq!(back.chrome_trace().as_deref(), Some(trace.as_str()));
    }
}
