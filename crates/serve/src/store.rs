//! Per-job result storage.
//!
//! Every completed job is kept (spec + summary + full simulation result)
//! so clients can come back for the heavyweight artifacts — the Chrome
//! trace (`GET /jobs/<id>/trace`) and an after-the-fact lint
//! (`GET /jobs/<id>/lint`) — without re-running anything.
//!
//! The job map lives behind the instrumented `parking_lot` shim so the
//! happens-before recorder sees every insert and lookup; the labelled
//! touchpoints make a dropped-lock mutation show up as a reported data
//! race rather than silent corruption.

use hetchol::job::{JobError, JobOutcome, JobSpec};
use hetchol_analyze::Report;
use hetchol_sim::SimResult;
use parking_lot::{explore, Mutex, MutexGuard};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The label the store's lock and touchpoints carry in analysis reports.
pub const STORE_LOCK_LABEL: &str = "serve.store.jobs";

/// A finished job: the spec that produced it, the wire summary, and the
/// full simulation result when one was run.
pub struct StoredJob {
    /// Server-assigned id (the `/jobs/<id>` path segment).
    pub id: u64,
    /// The spec, kept verbatim for replay and lint-on-demand.
    pub spec: JobSpec,
    /// The serializable result summary.
    pub outcome: JobOutcome,
    /// The full engine result (simulate/lint actions only).
    pub sim: Option<SimResult>,
}

impl StoredJob {
    /// Render the recorded observability spans as a Chrome `about:tracing`
    /// document. `None` when the job ran without `obs` or never simulated.
    pub fn chrome_trace(&self) -> Option<String> {
        if !self.spec.obs {
            return None;
        }
        self.sim.as_ref().map(|r| r.obs.to_chrome_trace())
    }

    /// Lint the stored trace on demand with the exact configuration the
    /// `lint` action would have used.
    pub fn lint(&self) -> Option<Result<Report, JobError>> {
        self.sim.as_ref().map(|r| self.spec.lint_sim(r))
    }
}

/// The id-indexed store behind `GET /jobs/<id>`.
pub struct JobStore {
    jobs: Mutex<HashMap<u64, Arc<StoredJob>>>,
    next_id: AtomicU64,
}

/// Holds the store's lock after an insert so the commit path can update
/// the result cache while the store is still pinned — a reader holding
/// the store lock then never observes a job in one map but not the other.
pub struct StoreGuard<'a> {
    _guard: MutexGuard<'a, HashMap<u64, Arc<StoredJob>>>,
}

/// The store's lock held for a multi-map read (`/stats`).
pub struct JobsGuard<'a> {
    guard: MutexGuard<'a, HashMap<u64, Arc<StoredJob>>>,
}

impl JobsGuard<'_> {
    /// Number of stored jobs, under the held lock.
    pub fn len(&self) -> usize {
        self.guard.len()
    }

    /// Whether the store is empty, under the held lock.
    pub fn is_empty(&self) -> bool {
        self.guard.is_empty()
    }
}

impl JobStore {
    /// An empty store; ids start at 1.
    pub fn new() -> JobStore {
        let store = JobStore {
            jobs: Mutex::new(HashMap::new()),
            next_id: AtomicU64::new(1),
        };
        explore::label(&store.jobs, STORE_LOCK_LABEL);
        store
    }

    /// Re-emit the lock label at the store's current address (labels are
    /// address-keyed; see [`crate::cache::CountedCache::relabel`]).
    pub fn relabel(&self) {
        explore::label(&self.jobs, STORE_LOCK_LABEL);
    }

    /// Allocate the next job id.
    pub fn next_id(&self) -> u64 {
        self.next_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Store a finished job under its id.
    pub fn insert(&self, job: Arc<StoredJob>) {
        let mut jobs = self.jobs.lock();
        explore::touch(STORE_LOCK_LABEL, true);
        jobs.insert(job.id, job);
    }

    /// Store a finished job and keep holding the store lock; the returned
    /// guard releases it. This is the first half of the commit path
    /// (store, then result cache, nested).
    pub fn insert_locked(&self, job: Arc<StoredJob>) -> StoreGuard<'_> {
        let mut jobs = self.jobs.lock();
        explore::touch(STORE_LOCK_LABEL, true);
        jobs.insert(job.id, job);
        StoreGuard { _guard: jobs }
    }

    /// Store a finished job with its declared touchpoint *outside* the
    /// critical section — the seeded `drop-store-lock` mutation. Two
    /// shards committing concurrently through this path are a data race
    /// the happens-before recorder reports under every real timing.
    #[cfg(feature = "race-mutations")]
    pub fn insert_unsynced(&self, job: Arc<StoredJob>) {
        {
            let mut jobs = self.jobs.lock();
            jobs.insert(job.id, job);
        }
        explore::touch(STORE_LOCK_LABEL, true);
    }

    /// Lock the job map for a coherent multi-field read.
    pub fn lock_jobs(&self) -> JobsGuard<'_> {
        let guard = self.jobs.lock();
        explore::touch(STORE_LOCK_LABEL, false);
        JobsGuard { guard }
    }

    /// Fetch a job by id.
    pub fn get(&self, id: u64) -> Option<Arc<StoredJob>> {
        let jobs = self.jobs.lock();
        explore::touch(STORE_LOCK_LABEL, false);
        jobs.get(&id).cloned()
    }

    /// Number of stored jobs.
    pub fn len(&self) -> usize {
        self.lock_jobs().len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Default for JobStore {
    fn default() -> JobStore {
        JobStore::new()
    }
}
