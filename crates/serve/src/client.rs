//! A blocking HTTP client for the job API — used by the integration
//! tests and `repro storm`; small enough to read in one sitting.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Issue one request and read the full response. Returns the status code
/// and the body.
pub fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: &str,
) -> io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(60)))?;
    stream.set_write_timeout(Some(Duration::from_secs(60)))?;
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len(),
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()?;

    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line)?;
    let status = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("bad status line {status_line:?}"),
            )
        })?;

    let mut content_length: Option<usize> = None;
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            break;
        }
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse::<usize>().ok();
            }
        }
    }

    let mut body = String::new();
    match content_length {
        Some(n) => {
            let mut buf = vec![0u8; n];
            reader.read_exact(&mut buf)?;
            body = String::from_utf8(buf)
                .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-UTF-8 body"))?;
        }
        None => {
            reader.read_to_string(&mut body)?;
        }
    }
    Ok((status, body))
}

/// `POST /jobs` with a spec body.
pub fn post_job(addr: SocketAddr, spec_json: &str) -> io::Result<(u16, String)> {
    request(addr, "POST", "/jobs", spec_json)
}

/// `GET` of any path.
pub fn get(addr: SocketAddr, path: &str) -> io::Result<(u16, String)> {
    request(addr, "GET", path, "")
}
