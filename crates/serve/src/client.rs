//! A blocking HTTP client for the job API — used by the integration
//! tests and `repro storm`; small enough to read in one sitting.
//!
//! Two entry points: the one-shot [`request`] (connect, ask, close) and
//! the persistent [`Conn`], which keeps its socket open across requests
//! under HTTP/1.1 keep-alive. Both read response bodies by `Content-
//! Length` exactly — never read-to-EOF, which on a kept-alive connection
//! would block until the server's idle timeout and then swallow the next
//! response's bytes.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

fn bad_data(detail: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, detail)
}

/// Read one response off the wire: status, body, and whether the server
/// will keep the connection open. The body is read to its exact
/// `Content-Length`; a response without one is read to EOF and treated
/// as closing.
fn read_response(reader: &mut BufReader<TcpStream>) -> io::Result<(u16, String, bool)> {
    let mut status_line = String::new();
    if reader.read_line(&mut status_line)? == 0 {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "connection closed before a status line",
        ));
    }
    let status = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| bad_data(format!("bad status line {status_line:?}")))?;

    let mut content_length: Option<usize> = None;
    let mut keep_alive = !status_line.starts_with("HTTP/1.0");
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            break;
        }
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse::<usize>().ok();
            } else if name.eq_ignore_ascii_case("connection") {
                keep_alive = !value.trim().eq_ignore_ascii_case("close");
            }
        }
    }

    let mut body = String::new();
    match content_length {
        Some(n) => {
            let mut buf = vec![0u8; n];
            reader.read_exact(&mut buf)?;
            body = String::from_utf8(buf).map_err(|_| bad_data("non-UTF-8 body".into()))?;
        }
        None => {
            reader.read_to_string(&mut body)?;
            keep_alive = false;
        }
    }
    Ok((status, body, keep_alive))
}

fn write_request(
    stream: &mut TcpStream,
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: &str,
    keep_alive: bool,
) -> io::Result<()> {
    let connection = if keep_alive { "keep-alive" } else { "close" };
    // One write per request — see `http::write_response` for why the
    // head and body must not go out as two small segments.
    let mut message = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: {connection}\r\n\r\n",
        body.len(),
    );
    message.push_str(body);
    stream.write_all(message.as_bytes())?;
    stream.flush()
}

fn connect(addr: SocketAddr, timeout: Duration) -> io::Result<TcpStream> {
    let stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    stream.set_nodelay(true)?;
    Ok(stream)
}

/// A persistent connection to the job API, reused across requests under
/// keep-alive. Reconnects transparently when the server closed the
/// previous exchange (idle timeout, request cap, or `Connection: close`).
pub struct Conn {
    addr: SocketAddr,
    timeout: Duration,
    reader: Option<BufReader<TcpStream>>,
    reused: u64,
}

impl Conn {
    /// A connection handle to `addr` (the socket opens on first use).
    pub fn new(addr: SocketAddr) -> Conn {
        Conn {
            addr,
            timeout: Duration::from_secs(60),
            reader: None,
            reused: 0,
        }
    }

    /// Exchanges that reused an already-open socket (for asserting that
    /// keep-alive actually kept the connection alive).
    pub fn reused(&self) -> u64 {
        self.reused
    }

    /// Issue one request on the persistent connection and read the full
    /// response. A send failure on a reused socket (the server closed it
    /// between requests) retries once on a fresh connection.
    pub fn request(&mut self, method: &str, path: &str, body: &str) -> io::Result<(u16, String)> {
        let had_socket = self.reader.is_some();
        match self.try_request(method, path, body) {
            Ok(done) => Ok(done),
            Err(err) if had_socket => {
                // A stale kept-alive socket: reconnect and retry once.
                self.reader = None;
                let _ = err;
                self.try_request(method, path, body)
            }
            Err(err) => Err(err),
        }
    }

    fn try_request(&mut self, method: &str, path: &str, body: &str) -> io::Result<(u16, String)> {
        let reused = self.reader.is_some();
        if self.reader.is_none() {
            self.reader = Some(BufReader::new(connect(self.addr, self.timeout)?));
        }
        let reader = self.reader.as_mut().expect("just ensured");
        write_request(reader.get_mut(), self.addr, method, path, body, true)?;
        let (status, body, keep) = match read_response(reader) {
            Ok(done) => done,
            Err(err) => {
                self.reader = None;
                return Err(err);
            }
        };
        if reused {
            self.reused += 1;
        }
        if !keep {
            self.reader = None;
        }
        Ok((status, body))
    }
}

/// Issue one request on a fresh connection and read the full response.
/// Returns the status code and the body.
pub fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: &str,
) -> io::Result<(u16, String)> {
    let mut stream = connect(addr, Duration::from_secs(60))?;
    write_request(&mut stream, addr, method, path, body, false)?;
    let mut reader = BufReader::new(stream);
    let (status, body, _keep) = read_response(&mut reader)?;
    Ok((status, body))
}

/// `POST /jobs` with a spec body.
pub fn post_job(addr: SocketAddr, spec_json: &str) -> io::Result<(u16, String)> {
    request(addr, "POST", "/jobs", spec_json)
}

/// `GET` of any path.
pub fn get(addr: SocketAddr, path: &str) -> io::Result<(u16, String)> {
    request(addr, "GET", path, "")
}
