//! The append-only on-disk job log (write-ahead log) behind the store.
//!
//! Every committed job is framed as one record — a little-endian length
//! prefix, an FNV-1a checksum, and a JSON payload reusing the exact
//! [`JobSpec`]/[`JobOutcome`] wire forms plus the *rendered* Chrome
//! trace — and appended through a [`LogBackend`]. On startup
//! [`scan`] replays the log and keeps exactly the longest checksummed
//! prefix: a torn or corrupt tail is truncated with a structured
//! [`RecoveryReport`] warning, never a crash, and never a phantom job.
//! Because the trace is persisted as the bytes the live server rendered,
//! a restarted server re-serves `GET /jobs/<id>/trace` bitwise-identical.
//!
//! Three backends share the framing code: a real [`FileBackend`], an
//! in-memory [`MemBackend`] (tests and the serve-pool model), and a
//! [`FaultBackend`] that injects a seeded
//! [`IoFaultPlan`] — short writes,
//! flush failures, disk-full — so the same chaos machinery that kills
//! simulated workers tortures the log. Any append or sync failure flips
//! the log unhealthy ([`JobLog::healthy`]): the server degrades to
//! read-only with structured `store-unavailable` 503s instead of
//! dropping connections or accepting torn records.
//!
//! The log's internal lock is deliberately a `std` mutex, not the
//! instrumented `parking_lot` shim: the log is an I/O resource whose
//! synchronization is entirely internal to this module, and every state
//! transition it causes in shared memory (inserts, evictions, reloads)
//! happens under the store's instrumented lock — keeping it invisible
//! to the DPOR explorer keeps the serve-pool model tree exhaustible
//! without hiding any distinct outcome.

use hetchol::job::{JobOutcome, JobSpec};
use hetchol_core::fault::{IoFault, IoFaultPlan};
use hetchol_core::hash::ContentHasher;
use hetchol_core::json::{parse_json, JsonValue};
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::Mutex as StdMutex;

/// Frame header size: a 4-byte length prefix plus an 8-byte checksum.
pub const HEADER_BYTES: usize = 12;

/// Largest accepted record payload. Traces dominate record size; 64 MiB
/// bounds the allocation a corrupt length prefix could demand.
pub const MAX_PAYLOAD: usize = 1 << 26;

/// FNV-1a over the raw payload bytes — the record checksum.
fn checksum(payload: &[u8]) -> u64 {
    let mut h = ContentHasher::new();
    h.write_bytes(payload);
    h.finish()
}

/// One durable job record: the spec and outcome in their wire forms plus
/// the rendered Chrome trace (when the job ran with `obs`).
#[derive(Clone, Debug, PartialEq)]
pub struct WalRecord {
    /// Server-assigned job id.
    pub id: u64,
    /// The spec, verbatim.
    pub spec: JobSpec,
    /// The serializable result summary.
    pub outcome: JobOutcome,
    /// The Chrome `about:tracing` document the live server rendered, or
    /// `None` when the job ran without `obs` or never simulated.
    pub trace: Option<String>,
}

impl WalRecord {
    /// The record payload: `{"v":1,"id":N,"spec":…,"outcome":…,"trace":…}`.
    pub fn to_payload(&self) -> String {
        JsonValue::Obj(vec![
            ("v".into(), JsonValue::uint(1)),
            ("id".into(), JsonValue::uint(self.id)),
            ("spec".into(), self.spec.to_json_value()),
            ("outcome".into(), self.outcome.to_json_value()),
            (
                "trace".into(),
                match &self.trace {
                    Some(t) => JsonValue::str(t),
                    None => JsonValue::Null,
                },
            ),
        ])
        .render()
    }

    /// Parse a payload emitted by [`WalRecord::to_payload`].
    pub fn from_payload(text: &str) -> Result<WalRecord, String> {
        let v = parse_json(text)?;
        let version = v.field("v")?.as_u64()?;
        if version != 1 {
            return Err(format!("unsupported record version {version}"));
        }
        Ok(WalRecord {
            id: v.field("id")?.as_u64()?,
            spec: JobSpec::from_json_value(v.field("spec")?).map_err(|e| e.to_string())?,
            outcome: JobOutcome::from_json_value(v.field("outcome")?)?,
            trace: match v.field("trace")? {
                JsonValue::Null => None,
                t => Some(t.as_str()?.to_string()),
            },
        })
    }

    /// Frame the record for the wire: length prefix, checksum, payload.
    pub fn frame(&self) -> Vec<u8> {
        let payload = self.to_payload().into_bytes();
        let mut buf = Vec::with_capacity(HEADER_BYTES + payload.len());
        buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        buf.extend_from_slice(&checksum(&payload).to_le_bytes());
        buf.extend_from_slice(&payload);
        buf
    }
}

// ---------------------------------------------------------------------------
// Backends
// ---------------------------------------------------------------------------

/// Where the log's bytes live. `append`/`sync` may fail (that is the
/// point — see [`FaultBackend`]); `read_at` serves rehydration of
/// evicted jobs and recovery-time reads.
pub trait LogBackend: Send {
    /// Append `buf` at the end of the log. An error may leave a torn
    /// prefix behind — recovery truncates it on the next startup.
    fn append(&mut self, buf: &[u8]) -> io::Result<()>;
    /// Durably flush everything appended so far.
    fn sync(&mut self) -> io::Result<()>;
    /// Read exactly `buf.len()` bytes at `offset`.
    fn read_at(&mut self, offset: u64, buf: &mut [u8]) -> io::Result<()>;
    /// Bytes in the log (valid bytes at open plus bytes appended since,
    /// including any torn prefix a failed append left behind).
    fn len(&self) -> u64;
    /// Whether the log holds no bytes.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The real thing: one read/write file handle.
pub struct FileBackend {
    file: File,
    len: u64,
}

impl FileBackend {
    /// Open (creating if absent) and truncate to `valid_len` — the
    /// recovery contract: the caller has scanned the bytes and knows
    /// where the longest checksummed prefix ends.
    pub fn open(path: &Path, valid_len: u64) -> io::Result<FileBackend> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        file.set_len(valid_len)?;
        Ok(FileBackend {
            file,
            len: valid_len,
        })
    }
}

impl LogBackend for FileBackend {
    fn append(&mut self, buf: &[u8]) -> io::Result<()> {
        self.file.seek(SeekFrom::Start(self.len))?;
        self.file.write_all(buf)?;
        self.len += buf.len() as u64;
        Ok(())
    }

    fn sync(&mut self) -> io::Result<()> {
        self.file.sync_data()
    }

    fn read_at(&mut self, offset: u64, buf: &mut [u8]) -> io::Result<()> {
        self.file.seek(SeekFrom::Start(offset))?;
        self.file.read_exact(buf)
    }

    fn len(&self) -> u64 {
        self.len
    }
}

/// An in-memory log for tests and the serve-pool model.
#[derive(Default)]
pub struct MemBackend {
    buf: Vec<u8>,
}

impl MemBackend {
    /// An empty in-memory log.
    pub fn new() -> MemBackend {
        MemBackend::default()
    }

    /// The log bytes so far (for corruption tests).
    pub fn bytes(&self) -> &[u8] {
        &self.buf
    }

    /// A log pre-seeded with `bytes` (for recovery tests).
    pub fn from_bytes(bytes: Vec<u8>) -> MemBackend {
        MemBackend { buf: bytes }
    }
}

impl LogBackend for MemBackend {
    fn append(&mut self, buf: &[u8]) -> io::Result<()> {
        self.buf.extend_from_slice(buf);
        Ok(())
    }

    fn sync(&mut self) -> io::Result<()> {
        Ok(())
    }

    fn read_at(&mut self, offset: u64, buf: &mut [u8]) -> io::Result<()> {
        let start = offset as usize;
        let end = start
            .checked_add(buf.len())
            .filter(|&e| e <= self.buf.len());
        match end {
            Some(end) => {
                buf.copy_from_slice(&self.buf[start..end]);
                Ok(())
            }
            None => Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "read past end of in-memory log",
            )),
        }
    }

    fn len(&self) -> u64 {
        self.buf.len() as u64
    }
}

/// A backend wrapper that injects a seeded [`IoFaultPlan`]: short
/// writes persist a prefix then error, flush failures error the sync,
/// disk-full refuses appends once the log reaches a byte threshold.
/// Reads always pass through — the faults are write-side.
pub struct FaultBackend<B: LogBackend> {
    inner: B,
    faults: Vec<IoFault>,
    appends: u64,
    flushes: u64,
}

impl<B: LogBackend> FaultBackend<B> {
    /// Wrap `inner`, arming `plan`.
    pub fn new(inner: B, plan: &IoFaultPlan) -> FaultBackend<B> {
        FaultBackend {
            inner,
            faults: plan.faults().to_vec(),
            appends: 0,
            flushes: 0,
        }
    }
}

impl<B: LogBackend> LogBackend for FaultBackend<B> {
    fn append(&mut self, buf: &[u8]) -> io::Result<()> {
        self.appends += 1;
        for fault in &self.faults {
            match *fault {
                IoFault::DiskFull { at_bytes } if self.inner.len() >= at_bytes => {
                    return Err(io::Error::other(format!(
                        "injected: disk full at {at_bytes} bytes (no space left)"
                    )));
                }
                IoFault::ShortWrite { append, keep } if append == self.appends => {
                    let keep = keep.min(buf.len());
                    // Best effort on the torn prefix; the injected error
                    // wins either way.
                    let _ = self.inner.append(&buf[..keep]);
                    return Err(io::Error::new(
                        io::ErrorKind::WriteZero,
                        format!("injected: short write kept {keep} of {} bytes", buf.len()),
                    ));
                }
                _ => {}
            }
        }
        self.inner.append(buf)
    }

    fn sync(&mut self) -> io::Result<()> {
        self.flushes += 1;
        for fault in &self.faults {
            if let IoFault::FlushFail { flush } = *fault {
                if flush == self.flushes {
                    return Err(io::Error::other(format!("injected: flush {flush} failed")));
                }
            }
        }
        self.inner.sync()
    }

    fn read_at(&mut self, offset: u64, buf: &mut [u8]) -> io::Result<()> {
        self.inner.read_at(offset, buf)
    }

    fn len(&self) -> u64 {
        self.inner.len()
    }
}

// ---------------------------------------------------------------------------
// Recovery scan
// ---------------------------------------------------------------------------

/// Why recovery stopped before the end of the log.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TornTail {
    /// Byte offset of the first unrecoverable record.
    pub offset: u64,
    /// What was wrong with it (stable, safe to log).
    pub reason: String,
}

/// What a startup scan of the log found — the structured warning the
/// server emits when it truncates a torn tail.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Records recovered (the longest checksummed prefix).
    pub recovered: usize,
    /// Bytes of that valid prefix — the log is truncated here.
    pub valid_bytes: u64,
    /// Bytes the log held before truncation.
    pub total_bytes: u64,
    /// The torn tail, when the scan stopped early.
    pub torn: Option<TornTail>,
}

impl RecoveryReport {
    /// `true` when the whole log was valid.
    pub fn is_clean(&self) -> bool {
        self.torn.is_none()
    }

    /// The report as a JSON object (the startup warning's wire shape):
    /// `{"status":"recovered","recovered":N,"valid_bytes":N,
    /// "total_bytes":N,"torn":null|{"offset":N,"reason":"…"}}`.
    pub fn to_json_value(&self) -> JsonValue {
        JsonValue::Obj(vec![
            ("status".into(), JsonValue::str("recovered")),
            ("recovered".into(), JsonValue::uint(self.recovered as u64)),
            ("valid_bytes".into(), JsonValue::uint(self.valid_bytes)),
            ("total_bytes".into(), JsonValue::uint(self.total_bytes)),
            (
                "torn".into(),
                match &self.torn {
                    None => JsonValue::Null,
                    Some(t) => JsonValue::Obj(vec![
                        ("offset".into(), JsonValue::uint(t.offset)),
                        ("reason".into(), JsonValue::str(&t.reason)),
                    ]),
                },
            ),
        ])
    }
}

/// One recovered record and where its frame starts (the store indexes
/// evicted jobs by this offset for transparent reload).
#[derive(Clone, Debug, PartialEq)]
pub struct ScannedRecord {
    /// Byte offset of the record's frame header.
    pub offset: u64,
    /// Bytes of the whole frame (header + payload).
    pub frame_bytes: usize,
    /// The parsed record.
    pub record: WalRecord,
}

/// Replay `bytes` and keep exactly the longest checksummed prefix of
/// well-formed records. Never panics: a torn or corrupt tail — short
/// header, impossible length, truncated payload, checksum mismatch,
/// unparseable JSON — stops the scan and is reported, not returned.
pub fn scan(bytes: &[u8]) -> (Vec<ScannedRecord>, RecoveryReport) {
    let mut records = Vec::new();
    let mut at = 0usize;
    let mut torn = None;
    while at < bytes.len() {
        let rest = &bytes[at..];
        if rest.len() < HEADER_BYTES {
            torn = Some(TornTail {
                offset: at as u64,
                reason: format!("truncated header ({} of {HEADER_BYTES} bytes)", rest.len()),
            });
            break;
        }
        let len = u32::from_le_bytes(rest[..4].try_into().expect("4 bytes")) as usize;
        let stored_sum = u64::from_le_bytes(rest[4..HEADER_BYTES].try_into().expect("8 bytes"));
        if len > MAX_PAYLOAD {
            torn = Some(TornTail {
                offset: at as u64,
                reason: format!("record length {len} exceeds the {MAX_PAYLOAD}-byte cap"),
            });
            break;
        }
        if rest.len() < HEADER_BYTES + len {
            torn = Some(TornTail {
                offset: at as u64,
                reason: format!(
                    "truncated record (need {} payload bytes, have {})",
                    len,
                    rest.len() - HEADER_BYTES
                ),
            });
            break;
        }
        let payload = &rest[HEADER_BYTES..HEADER_BYTES + len];
        let computed = checksum(payload);
        if computed != stored_sum {
            torn = Some(TornTail {
                offset: at as u64,
                reason: format!(
                    "checksum mismatch (stored {stored_sum:016x}, computed {computed:016x})"
                ),
            });
            break;
        }
        let text = match std::str::from_utf8(payload) {
            Ok(t) => t,
            Err(_) => {
                torn = Some(TornTail {
                    offset: at as u64,
                    reason: "payload is not UTF-8".into(),
                });
                break;
            }
        };
        match WalRecord::from_payload(text) {
            Ok(record) => {
                records.push(ScannedRecord {
                    offset: at as u64,
                    frame_bytes: HEADER_BYTES + len,
                    record,
                });
                at += HEADER_BYTES + len;
            }
            Err(e) => {
                torn = Some(TornTail {
                    offset: at as u64,
                    reason: format!("unparseable payload: {e}"),
                });
                break;
            }
        }
    }
    let report = RecoveryReport {
        recovered: records.len(),
        valid_bytes: at as u64,
        total_bytes: bytes.len() as u64,
        torn,
    };
    (records, report)
}

// ---------------------------------------------------------------------------
// The log handle
// ---------------------------------------------------------------------------

/// Why the log refused an operation. The detail is safe to echo into a
/// `store-unavailable` 503 body.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LogError {
    /// What failed, human-readable.
    pub detail: String,
}

impl std::fmt::Display for LogError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.detail)
    }
}

struct LogState {
    backend: Box<dyn LogBackend>,
    healthy: bool,
    appended: u64,
    synced: u64,
}

/// A shared handle on the job log: append-with-sync per commit, reads
/// for rehydration, and a sticky unhealthy state — the first append or
/// sync failure flips the log read-only for the rest of the process
/// (a torn on-disk tail must not be appended past; restart recovers).
pub struct JobLog {
    inner: StdMutex<LogState>,
}

/// What one durable append pins for the store's eviction index.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Appended {
    /// Frame offset of the record.
    pub offset: u64,
    /// Bytes of the whole frame.
    pub frame_bytes: usize,
}

impl JobLog {
    /// Wrap an already-recovered backend (positioned at its valid end).
    pub fn new(backend: Box<dyn LogBackend>) -> JobLog {
        JobLog {
            inner: StdMutex::new(LogState {
                backend,
                healthy: true,
                appended: 0,
                synced: 0,
            }),
        }
    }

    /// An in-memory log (tests, the serve-pool model), optionally with a
    /// fault plan armed.
    pub fn in_memory(plan: &IoFaultPlan) -> JobLog {
        if plan.is_empty() {
            JobLog::new(Box::new(MemBackend::new()))
        } else {
            JobLog::new(Box::new(FaultBackend::new(MemBackend::new(), plan)))
        }
    }

    /// Open a file-backed log: read it, recover the longest checksummed
    /// prefix, truncate the tail, and arm `plan` (when non-empty) on the
    /// writes going forward. Returns the recovered records and the
    /// structured recovery report alongside the live handle.
    pub fn open(
        path: &Path,
        plan: &IoFaultPlan,
    ) -> io::Result<(JobLog, Vec<ScannedRecord>, RecoveryReport)> {
        let bytes = match std::fs::read(path) {
            Ok(b) => b,
            Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(e),
        };
        let (records, report) = scan(&bytes);
        let backend = FileBackend::open(path, report.valid_bytes)?;
        let log = if plan.is_empty() {
            JobLog::new(Box::new(backend))
        } else {
            JobLog::new(Box::new(FaultBackend::new(backend, plan)))
        };
        Ok((log, records, report))
    }

    /// Durably append one record: frame, write, sync. On any failure the
    /// log flips unhealthy and stays that way — the job was *not*
    /// committed and no further appends are accepted.
    pub fn append(&self, record: &WalRecord) -> Result<Appended, LogError> {
        let frame = record.frame();
        let mut state = self.inner.lock().expect("log lock");
        if !state.healthy {
            return Err(LogError {
                detail: "job log is unavailable (an earlier write failed)".into(),
            });
        }
        let offset = state.backend.len();
        if let Err(e) = state.backend.append(&frame) {
            state.healthy = false;
            return Err(LogError {
                detail: format!("job log append failed: {e}"),
            });
        }
        if let Err(e) = state.backend.sync() {
            state.healthy = false;
            return Err(LogError {
                detail: format!("job log sync failed: {e}"),
            });
        }
        state.appended += 1;
        state.synced += 1;
        Ok(Appended {
            offset,
            frame_bytes: frame.len(),
        })
    }

    /// Read back one record by frame offset (rehydration of an evicted
    /// job). Reads stay available after the log turns unhealthy — the
    /// valid prefix is still good.
    pub fn read(&self, offset: u64) -> Result<WalRecord, LogError> {
        let mut state = self.inner.lock().expect("log lock");
        let mut header = [0u8; HEADER_BYTES];
        state
            .backend
            .read_at(offset, &mut header)
            .map_err(|e| LogError {
                detail: format!("job log read failed at {offset}: {e}"),
            })?;
        let len = u32::from_le_bytes(header[..4].try_into().expect("4 bytes")) as usize;
        let stored_sum = u64::from_le_bytes(header[4..].try_into().expect("8 bytes"));
        if len > MAX_PAYLOAD {
            return Err(LogError {
                detail: format!("job log record at {offset} has impossible length {len}"),
            });
        }
        let mut payload = vec![0u8; len];
        state
            .backend
            .read_at(offset + HEADER_BYTES as u64, &mut payload)
            .map_err(|e| LogError {
                detail: format!("job log read failed at {offset}: {e}"),
            })?;
        drop(state);
        if checksum(&payload) != stored_sum {
            return Err(LogError {
                detail: format!("job log record at {offset} failed its checksum"),
            });
        }
        let text = std::str::from_utf8(&payload).map_err(|_| LogError {
            detail: format!("job log record at {offset} is not UTF-8"),
        })?;
        WalRecord::from_payload(text).map_err(|e| LogError {
            detail: format!("job log record at {offset} unparseable: {e}"),
        })
    }

    /// Durably flush (the drain path's final fsync). Failure flips the
    /// log unhealthy like a failed append.
    pub fn sync(&self) -> Result<(), LogError> {
        let mut state = self.inner.lock().expect("log lock");
        if !state.healthy {
            return Err(LogError {
                detail: "job log is unavailable (an earlier write failed)".into(),
            });
        }
        if let Err(e) = state.backend.sync() {
            state.healthy = false;
            return Err(LogError {
                detail: format!("job log sync failed: {e}"),
            });
        }
        state.synced += 1;
        Ok(())
    }

    /// Whether the log is still accepting appends.
    pub fn healthy(&self) -> bool {
        self.inner.lock().expect("log lock").healthy
    }

    /// Records appended (and synced) by this process.
    pub fn appended(&self) -> u64 {
        self.inner.lock().expect("log lock").appended
    }

    /// Log size in bytes.
    pub fn len_bytes(&self) -> u64 {
        self.inner.lock().expect("log lock").backend.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(id: u64, seed: u64, trace: Option<&str>) -> WalRecord {
        let mut spec = JobSpec::new("cholesky", 4).expect("known workload");
        spec.seed = seed;
        let run = spec.run_with_bounds(None).expect("valid spec");
        WalRecord {
            id,
            spec,
            outcome: run.outcome,
            trace: trace.map(str::to_string),
        }
    }

    #[test]
    fn records_round_trip_through_the_frame() {
        let rec = record(7, 3, Some(r#"{"traceEvents":[]}"#));
        let parsed = WalRecord::from_payload(&rec.to_payload()).expect("payload parses");
        assert_eq!(rec, parsed);

        let log = JobLog::in_memory(&IoFaultPlan::none());
        let a = log.append(&rec).expect("append");
        assert_eq!(a.offset, 0);
        let b = log.append(&record(8, 4, None)).expect("append");
        assert_eq!(b.offset, a.frame_bytes as u64);
        assert_eq!(log.read(a.offset).expect("read back"), rec);
        assert_eq!(log.read(b.offset).expect("read back").id, 8);
        assert_eq!(log.appended(), 2);
    }

    #[test]
    fn scan_recovers_the_longest_valid_prefix() {
        let mut mem = MemBackend::new();
        let recs = [
            record(1, 0, None),
            record(2, 1, Some("{}")),
            record(3, 2, None),
        ];
        for r in &recs {
            mem.append(&r.frame()).expect("mem append");
        }
        let full = mem.bytes().to_vec();

        let (got, report) = scan(&full);
        assert_eq!(got.len(), 3);
        assert!(report.is_clean());
        assert_eq!(report.valid_bytes, full.len() as u64);

        // Flip a byte inside the second record's payload: exactly the
        // first record survives, and the tail is reported, not served.
        let second_start = got[0].frame_bytes;
        let mut corrupt = full.clone();
        corrupt[second_start + HEADER_BYTES + 5] ^= 0x40;
        let (got, report) = scan(&corrupt);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].record, recs[0]);
        let torn = report.torn.expect("tail reported");
        assert_eq!(torn.offset, second_start as u64);
        assert!(torn.reason.contains("checksum mismatch"), "{}", torn.reason);

        // Truncate mid-record: same story.
        let cut = &full[..second_start + HEADER_BYTES + 3];
        let (got, report) = scan(cut);
        assert_eq!(got.len(), 1);
        let torn = report.torn.expect("tail");
        assert!(torn.reason.contains("truncated record"), "{}", torn.reason);
    }

    #[test]
    fn injected_faults_flip_the_log_unhealthy_and_stay_sticky() {
        // Short write on the second append.
        let log = JobLog::in_memory(&IoFaultPlan::new().short_write(2, 5));
        log.append(&record(1, 0, None)).expect("first append clean");
        let err = log.append(&record(2, 1, None)).expect_err("short write");
        assert!(err.detail.contains("short write"), "{err}");
        assert!(!log.healthy());
        let err = log.append(&record(3, 2, None)).expect_err("sticky");
        assert!(err.detail.contains("unavailable"), "{err}");
        // Reads of the valid prefix still work.
        assert_eq!(log.read(0).expect("prefix readable").id, 1);

        // Disk-full by byte threshold.
        let log = JobLog::in_memory(&IoFaultPlan::new().disk_full(1));
        log.append(&record(1, 0, None)).expect("empty log fits");
        let err = log.append(&record(2, 1, None)).expect_err("disk full");
        assert!(err.detail.contains("disk full"), "{err}");

        // Flush failure.
        let log = JobLog::in_memory(&IoFaultPlan::new().flush_fail(1));
        let err = log.append(&record(1, 0, None)).expect_err("flush fails");
        assert!(err.detail.contains("flush"), "{err}");
        assert!(!log.healthy());
    }

    #[test]
    fn file_log_survives_reopen_with_a_torn_tail_truncated() {
        let nonce = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .expect("clock after epoch")
            .as_nanos();
        let dir =
            std::env::temp_dir().join(format!("hetchol-wal-test-{}-{nonce:x}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("jobs.wal");
        let _ = std::fs::remove_file(&path);

        let (log, recs, report) = JobLog::open(&path, &IoFaultPlan::none()).expect("open fresh");
        assert!(recs.is_empty());
        assert!(report.is_clean());
        let rec = record(1, 0, Some(r#"{"traceEvents":[]}"#));
        log.append(&rec).expect("append");
        drop(log);

        // Append garbage by hand: a torn tail.
        {
            use std::io::Write as _;
            let mut f = OpenOptions::new().append(true).open(&path).expect("open");
            f.write_all(&[0xde, 0xad, 0xbe]).expect("tear");
        }
        let (log, recs, report) = JobLog::open(&path, &IoFaultPlan::none()).expect("reopen");
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].record, rec);
        assert!(!report.is_clean());
        assert_eq!(report.total_bytes - report.valid_bytes, 3);
        // The tail was truncated on disk; a fresh append lands cleanly.
        log.append(&record(2, 1, None))
            .expect("append after recovery");
        drop(log);
        let (_, recs, report) = JobLog::open(&path, &IoFaultPlan::none()).expect("reopen again");
        assert_eq!(recs.len(), 2);
        assert!(report.is_clean());
        std::fs::remove_dir_all(&dir).ok();
    }
}
