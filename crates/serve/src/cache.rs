//! Content-hash caches with observable hit/miss accounting.
//!
//! Every cache in the serving layer is keyed by a 64-bit FNV content hash
//! ([`hetchol_core::hash::ContentHasher`]) and stores `Arc`'d values so a
//! hit never copies a trace or a bound set. The hit/miss counters feed
//! `GET /stats` — the acceptance test for the whole layer asserts cache
//! hits are *observable*, not inferred from latency.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A hash-keyed map with hit/miss counters.
pub struct CountedCache<V> {
    map: Mutex<HashMap<u64, Arc<V>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl<V> CountedCache<V> {
    /// An empty cache.
    pub fn new() -> CountedCache<V> {
        CountedCache {
            map: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Counting lookup: bumps the hit or miss counter. Use on request
    /// paths, where the counter answers "did caching help this client?".
    pub fn get(&self, key: u64) -> Option<Arc<V>> {
        let found = self.map.lock().expect("cache lock").get(&key).cloned();
        match &found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Non-counting lookup. Use for internal dedup (a shard re-checking
    /// the result cache before recomputing), which should not skew the
    /// client-facing counters.
    pub fn peek(&self, key: u64) -> Option<Arc<V>> {
        self.map.lock().expect("cache lock").get(&key).cloned()
    }

    /// Insert (last writer wins; values are pure functions of the key, so
    /// racing writers insert identical results).
    pub fn insert(&self, key: u64, value: Arc<V>) {
        self.map.lock().expect("cache lock").insert(key, value);
    }

    /// Counting-lookup hits so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Counting-lookup misses so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.map.lock().expect("cache lock").len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<V> Default for CountedCache<V> {
    fn default() -> CountedCache<V> {
        CountedCache::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_counts_and_peek_does_not() {
        let cache = CountedCache::<u32>::new();
        assert!(cache.get(7).is_none());
        assert_eq!((cache.hits(), cache.misses()), (0, 1));
        cache.insert(7, Arc::new(42));
        assert_eq!(*cache.get(7).unwrap(), 42);
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert_eq!(*cache.peek(7).unwrap(), 42);
        assert!(cache.peek(8).is_none());
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert_eq!(cache.len(), 1);
    }
}
