//! Content-hash caches with observable hit/miss accounting.
//!
//! Every cache in the serving layer is keyed by a 64-bit FNV content hash
//! ([`hetchol_core::hash::ContentHasher`]) and stores `Arc`'d values so a
//! hit never copies a trace or a bound set. The hit/miss counters feed
//! `GET /stats` — the acceptance test for the whole layer asserts cache
//! hits are *observable*, not inferred from latency.
//!
//! The map **and** the counters live under one instrumented mutex: a
//! counting lookup bumps `gets` and `hits`-or-`misses` in the same
//! critical section, so `hits + misses == gets` holds in every snapshot
//! ([`CountedCache::snapshot`]) — the `/stats` torn-read bug class is
//! structurally gone, and every access is visible to the happens-before
//! recorder and the model checker through the `parking_lot` compat shim.

use parking_lot::{explore, Mutex, MutexGuard};
use std::collections::HashMap;
use std::sync::Arc;

struct Inner<V> {
    map: HashMap<u64, Arc<V>>,
    hits: u64,
    misses: u64,
    gets: u64,
}

/// A hash-keyed map with hit/miss accounting under a single lock.
pub struct CountedCache<V> {
    name: &'static str,
    inner: Mutex<Inner<V>>,
}

/// One coherent read of a cache's accounting, taken under one guard.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct CacheSnapshot {
    /// Counting lookups that found an entry.
    pub hits: u64,
    /// Counting lookups that found nothing.
    pub misses: u64,
    /// Counting lookups total; always `hits + misses`.
    pub gets: u64,
    /// Entries currently cached.
    pub entries: usize,
}

/// Holds a cache's lock across an insert, so a caller can pin the cache
/// while touching other state (the seeded lock-order-inversion mutation
/// uses this; stock code never holds it across another acquisition).
pub struct CommitGuard<'a, V> {
    name: &'static str,
    guard: MutexGuard<'a, Inner<V>>,
}

impl<V> CommitGuard<'_, V> {
    /// Insert under the already-held lock.
    pub fn insert(&mut self, key: u64, value: Arc<V>) {
        explore::touch(self.name, true);
        self.guard.map.insert(key, value);
    }
}

impl<V> CountedCache<V> {
    /// An empty, anonymously named cache.
    pub fn new() -> CountedCache<V> {
        CountedCache::named("cache")
    }

    /// An empty cache whose lock is labelled `name` in analysis reports.
    pub fn named(name: &'static str) -> CountedCache<V> {
        let cache = CountedCache {
            name,
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                hits: 0,
                misses: 0,
                gets: 0,
            }),
        };
        explore::label(&cache.inner, name);
        cache
    }

    /// Re-emit the lock label at the cache's current address. Labels are
    /// keyed by address in the analyzers, so a cache that was *moved*
    /// after construction (into a struct, into an `Arc`) must relabel
    /// once it has settled for reports to name it.
    pub fn relabel(&self) {
        explore::label(&self.inner, self.name);
    }

    /// Counting lookup: bumps `gets` plus the hit or miss counter, all in
    /// one critical section. Use on request paths, where the counter
    /// answers "did caching help this client?".
    pub fn get(&self, key: u64) -> Option<Arc<V>> {
        let mut inner = self.inner.lock();
        explore::touch(self.name, true);
        inner.gets += 1;
        let found = inner.map.get(&key).cloned();
        match &found {
            Some(_) => inner.hits += 1,
            None => inner.misses += 1,
        }
        found
    }

    /// Non-counting lookup. Use for internal dedup (a shard re-checking
    /// the result cache before recomputing), which should not skew the
    /// client-facing counters.
    pub fn peek(&self, key: u64) -> Option<Arc<V>> {
        let inner = self.inner.lock();
        explore::touch(self.name, false);
        inner.map.get(&key).cloned()
    }

    /// Insert (last writer wins; values are pure functions of the key, so
    /// racing writers insert identical results).
    pub fn insert(&self, key: u64, value: Arc<V>) {
        let mut inner = self.inner.lock();
        explore::touch(self.name, true);
        inner.map.insert(key, value);
    }

    /// Lock the cache and return a guard for inserting while held.
    pub fn begin_commit(&self) -> CommitGuard<'_, V> {
        CommitGuard {
            name: self.name,
            guard: self.inner.lock(),
        }
    }

    /// One coherent snapshot of the accounting, under a single guard.
    pub fn snapshot(&self) -> CacheSnapshot {
        let inner = self.inner.lock();
        explore::touch(self.name, false);
        CacheSnapshot {
            hits: inner.hits,
            misses: inner.misses,
            gets: inner.gets,
            entries: inner.map.len(),
        }
    }

    /// Counting-lookup hits so far.
    pub fn hits(&self) -> u64 {
        self.snapshot().hits
    }

    /// Counting-lookup misses so far.
    pub fn misses(&self) -> u64 {
        self.snapshot().misses
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.snapshot().entries
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<V> Default for CountedCache<V> {
    fn default() -> CountedCache<V> {
        CountedCache::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_counts_and_peek_does_not() {
        let cache = CountedCache::<u32>::new();
        assert!(cache.get(7).is_none());
        assert_eq!((cache.hits(), cache.misses()), (0, 1));
        cache.insert(7, Arc::new(42));
        assert_eq!(*cache.get(7).unwrap(), 42);
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert_eq!(*cache.peek(7).unwrap(), 42);
        assert!(cache.peek(8).is_none());
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn snapshot_is_coherent() {
        let cache = CountedCache::<u32>::named("test.cache");
        cache.get(1);
        cache.insert(1, Arc::new(1));
        cache.get(1);
        let snap = cache.snapshot();
        assert_eq!(snap.hits + snap.misses, snap.gets);
        assert_eq!(
            snap,
            CacheSnapshot {
                hits: 1,
                misses: 1,
                gets: 2,
                entries: 1,
            }
        );
    }
}
