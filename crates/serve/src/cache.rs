//! Content-hash caches with observable hit/miss accounting and bounded
//! memory.
//!
//! Every cache in the serving layer is keyed by a 64-bit FNV content hash
//! ([`hetchol_core::hash::ContentHasher`]) and stores `Arc`'d values so a
//! hit never copies a trace or a bound set. The hit/miss counters feed
//! `GET /stats` — the acceptance test for the whole layer asserts cache
//! hits are *observable*, not inferred from latency.
//!
//! The map **and** the counters live under one instrumented mutex: a
//! counting lookup bumps `gets` and `hits`-or-`misses` in the same
//! critical section, so `hits + misses == gets` holds in every snapshot
//! ([`CountedCache::snapshot`]) — the `/stats` torn-read bug class is
//! structurally gone, and every access is visible to the happens-before
//! recorder and the model checker through the `parking_lot` compat shim.
//!
//! Caches built with [`CountedCache::with_caps`] are bounded: an entry
//! cap and an approximate byte cap (through a caller-supplied weigher)
//! evict least-recently-used entries on insert, with evictions counted
//! in the same snapshot. Values are pure functions of their keys, so an
//! eviction only ever costs recomputation, never correctness.

use parking_lot::{explore, Mutex, MutexGuard};
use std::collections::HashMap;
use std::sync::Arc;

fn zero_weight<V>(_: &V) -> usize {
    0
}

struct Entry<V> {
    value: Arc<V>,
    last_used: u64,
    weight: usize,
}

struct Inner<V> {
    map: HashMap<u64, Entry<V>>,
    hits: u64,
    misses: u64,
    gets: u64,
    bytes: usize,
    clock: u64,
    evicted: u64,
    evicted_bytes: u64,
}

impl<V> Inner<V> {
    fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    fn touch_entry(&mut self, key: u64) -> Option<Arc<V>> {
        let stamp = self.tick();
        let entry = self.map.get_mut(&key)?;
        entry.last_used = stamp;
        Some(entry.value.clone())
    }

    fn insert_weighed(&mut self, key: u64, value: Arc<V>, weight: usize) {
        let stamp = self.tick();
        if let Some(old) = self.map.insert(
            key,
            Entry {
                value,
                last_used: stamp,
                weight,
            },
        ) {
            self.bytes -= old.weight;
        }
        self.bytes += weight;
    }

    /// Evict least-recently-used entries until under both caps
    /// (0 = unbounded). At least one entry always survives, so a single
    /// oversized value cannot wedge the cache into thrashing emptiness.
    fn evict_over(&mut self, max_entries: usize, max_bytes: usize) {
        while self.map.len() > 1
            && ((max_entries > 0 && self.map.len() > max_entries)
                || (max_bytes > 0 && self.bytes > max_bytes))
        {
            let Some(&lru) = self
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k)
            else {
                break;
            };
            if let Some(gone) = self.map.remove(&lru) {
                self.bytes -= gone.weight;
                self.evicted += 1;
                self.evicted_bytes += gone.weight as u64;
            }
        }
    }
}

/// A hash-keyed map with hit/miss accounting under a single lock,
/// optionally bounded by entry count and approximate bytes (LRU).
pub struct CountedCache<V> {
    name: &'static str,
    max_entries: usize,
    max_bytes: usize,
    weigher: fn(&V) -> usize,
    inner: Mutex<Inner<V>>,
}

/// One coherent read of a cache's accounting, taken under one guard.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct CacheSnapshot {
    /// Counting lookups that found an entry.
    pub hits: u64,
    /// Counting lookups that found nothing.
    pub misses: u64,
    /// Counting lookups total; always `hits + misses`.
    pub gets: u64,
    /// Entries currently cached.
    pub entries: usize,
    /// Approximate bytes currently cached (0 on unweighed caches).
    pub bytes: usize,
    /// Entries evicted over the cache's lifetime.
    pub evicted: u64,
    /// Approximate bytes those evictions released.
    pub evicted_bytes: u64,
}

/// Holds a cache's lock across an insert, so a caller can pin the cache
/// while touching other state (the seeded lock-order-inversion mutation
/// uses this; stock code never holds it across another acquisition).
pub struct CommitGuard<'a, V> {
    name: &'static str,
    max_entries: usize,
    max_bytes: usize,
    weigher: fn(&V) -> usize,
    guard: MutexGuard<'a, Inner<V>>,
}

impl<V> CommitGuard<'_, V> {
    /// Insert under the already-held lock.
    pub fn insert(&mut self, key: u64, value: Arc<V>) {
        explore::touch(self.name, true);
        let weight = (self.weigher)(&value);
        self.guard.insert_weighed(key, value, weight);
        self.guard.evict_over(self.max_entries, self.max_bytes);
    }
}

impl<V> CountedCache<V> {
    /// An empty, anonymously named, unbounded cache.
    pub fn new() -> CountedCache<V> {
        CountedCache::named("cache")
    }

    /// An empty unbounded cache whose lock is labelled `name` in
    /// analysis reports.
    pub fn named(name: &'static str) -> CountedCache<V> {
        CountedCache::with_caps(name, 0, 0, zero_weight)
    }

    /// An empty cache bounded to `max_entries` entries and `max_bytes`
    /// approximate bytes (0 = unbounded for either), with `weigher`
    /// assessing each value's bytes at insert time.
    pub fn with_caps(
        name: &'static str,
        max_entries: usize,
        max_bytes: usize,
        weigher: fn(&V) -> usize,
    ) -> CountedCache<V> {
        let cache = CountedCache {
            name,
            max_entries,
            max_bytes,
            weigher,
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                hits: 0,
                misses: 0,
                gets: 0,
                bytes: 0,
                clock: 0,
                evicted: 0,
                evicted_bytes: 0,
            }),
        };
        explore::label(&cache.inner, name);
        cache
    }

    /// Re-emit the lock label at the cache's current address. Labels are
    /// keyed by address in the analyzers, so a cache that was *moved*
    /// after construction (into a struct, into an `Arc`) must relabel
    /// once it has settled for reports to name it.
    pub fn relabel(&self) {
        explore::label(&self.inner, self.name);
    }

    /// Counting lookup: bumps `gets` plus the hit or miss counter, all in
    /// one critical section. Use on request paths, where the counter
    /// answers "did caching help this client?". Hits refresh recency.
    pub fn get(&self, key: u64) -> Option<Arc<V>> {
        let mut inner = self.inner.lock();
        explore::touch(self.name, true);
        inner.gets += 1;
        let found = inner.touch_entry(key);
        match &found {
            Some(_) => inner.hits += 1,
            None => inner.misses += 1,
        }
        found
    }

    /// Non-counting lookup. Use for internal dedup (a shard re-checking
    /// the result cache before recomputing), which should not skew the
    /// client-facing counters. Still refreshes recency — a peeked entry
    /// is a used entry.
    pub fn peek(&self, key: u64) -> Option<Arc<V>> {
        let mut inner = self.inner.lock();
        explore::touch(self.name, true);
        inner.touch_entry(key)
    }

    /// Insert (last writer wins; values are pure functions of the key, so
    /// racing writers insert identical results), evicting LRU entries
    /// past the caps.
    pub fn insert(&self, key: u64, value: Arc<V>) {
        let mut inner = self.inner.lock();
        explore::touch(self.name, true);
        let weight = (self.weigher)(&value);
        inner.insert_weighed(key, value, weight);
        inner.evict_over(self.max_entries, self.max_bytes);
    }

    /// Lock the cache and return a guard for inserting while held.
    pub fn begin_commit(&self) -> CommitGuard<'_, V> {
        CommitGuard {
            name: self.name,
            max_entries: self.max_entries,
            max_bytes: self.max_bytes,
            weigher: self.weigher,
            guard: self.inner.lock(),
        }
    }

    /// One coherent snapshot of the accounting, under a single guard.
    pub fn snapshot(&self) -> CacheSnapshot {
        let inner = self.inner.lock();
        explore::touch(self.name, false);
        CacheSnapshot {
            hits: inner.hits,
            misses: inner.misses,
            gets: inner.gets,
            entries: inner.map.len(),
            bytes: inner.bytes,
            evicted: inner.evicted,
            evicted_bytes: inner.evicted_bytes,
        }
    }

    /// Counting-lookup hits so far.
    pub fn hits(&self) -> u64 {
        self.snapshot().hits
    }

    /// Counting-lookup misses so far.
    pub fn misses(&self) -> u64 {
        self.snapshot().misses
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.snapshot().entries
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<V> Default for CountedCache<V> {
    fn default() -> CountedCache<V> {
        CountedCache::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_counts_and_peek_does_not() {
        let cache = CountedCache::<u32>::new();
        assert!(cache.get(7).is_none());
        assert_eq!((cache.hits(), cache.misses()), (0, 1));
        cache.insert(7, Arc::new(42));
        assert_eq!(*cache.get(7).unwrap(), 42);
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert_eq!(*cache.peek(7).unwrap(), 42);
        assert!(cache.peek(8).is_none());
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn snapshot_is_coherent() {
        let cache = CountedCache::<u32>::named("test.cache");
        cache.get(1);
        cache.insert(1, Arc::new(1));
        cache.get(1);
        let snap = cache.snapshot();
        assert_eq!(snap.hits + snap.misses, snap.gets);
        assert_eq!(
            snap,
            CacheSnapshot {
                hits: 1,
                misses: 1,
                gets: 2,
                entries: 1,
                bytes: 0,
                evicted: 0,
                evicted_bytes: 0,
            }
        );
    }

    #[test]
    fn entry_cap_evicts_least_recently_used() {
        let cache = CountedCache::<u32>::with_caps("test.lru", 2, 0, zero_weight);
        cache.insert(1, Arc::new(10));
        cache.insert(2, Arc::new(20));
        cache.get(1); // 2 is now the LRU entry.
        cache.insert(3, Arc::new(30));
        assert!(cache.peek(2).is_none(), "LRU entry evicted");
        assert!(cache.peek(1).is_some() && cache.peek(3).is_some());
        let snap = cache.snapshot();
        assert_eq!((snap.entries, snap.evicted), (2, 1));
    }

    #[test]
    fn byte_cap_evicts_by_weight_but_keeps_one_entry() {
        let cache = CountedCache::<Vec<u8>>::with_caps("test.bytes", 0, 10, |v| v.len());
        cache.insert(1, Arc::new(vec![0; 6]));
        cache.insert(2, Arc::new(vec![0; 6])); // 12 bytes > 10: evict key 1.
        let snap = cache.snapshot();
        assert_eq!((snap.entries, snap.bytes), (1, 6));
        assert_eq!((snap.evicted, snap.evicted_bytes), (1, 6));
        // One oversized value survives alone instead of thrashing.
        cache.insert(3, Arc::new(vec![0; 64]));
        assert_eq!(cache.snapshot().entries, 1);
        assert!(cache.peek(3).is_some());
    }
}
