//! The sharded worker pool.
//!
//! Jobs are routed to a shard by spec content hash, queued on a bounded
//! channel, and executed by one worker thread per shard. The bounded
//! queue is the server's backpressure: a full queue answers *queue-full*
//! immediately instead of buffering unboundedly, and a killed shard
//! answers *shard-dead* instead of hanging — both as structured
//! `Degraded` HTTP responses, never dropped connections.
//!
//! Workers drain their queue in batches (up to `max_batch`) so the bound
//! computations of co-queued jobs amortize through
//! [`BoundSet::compute_batch`] and the shared bounds cache.
//!
//! All pool synchronization — the shard queues, the liveness flags, the
//! reply channels — goes through the instrumented `parking_lot` compat
//! shim, so the whole layer runs under the happens-before recorder
//! ([`hetchol_analyze::hb`]) at real speed and under the DPOR model
//! checker ([`Pool::start_controlled`]) exhaustively.

use crate::cache::{CacheSnapshot, CountedCache};
use crate::store::{JobStore, StoreSnapshot, StoredJob};
use crate::wal::JobLog;
use hetchol::job::{JobAction, JobError, JobSpec};
use hetchol_bounds::BoundSet;
use hetchol_core::algorithm::Algorithm;
use hetchol_core::hash::ContentHasher;
use hetchol_core::platform::Platform;
use hetchol_core::profiles::TimingProfile;
use parking_lot::{channel, explore, Mutex};
use std::sync::atomic::AtomicBool;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};

/// Seeded concurrency bugs for proving the analyzers' detection power.
///
/// Each flag re-introduces one historical bug class; `repro race
/// --mutate <bug>` flips exactly one and asserts the corresponding
/// analyzer catches it. All flags default to off, and the constructors
/// that set them only exist under the `race-mutations` feature, so none
/// of this is reachable from a stock build.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct PoolMutations {
    /// Commit jobs to the store with the declared touchpoint outside the
    /// lock — a data race the happens-before recorder reports.
    pub unsynced_store_touch: bool,
    /// Commit result-cache-first while holding it across the store insert
    /// — a lock-order inversion lockdep reports as a cycle.
    pub invert_commit_order: bool,
    /// Keep (leak) the batch a killed worker drained instead of dropping
    /// it — the reply senders stay alive, the waiting handler never gets
    /// its disconnect, and the model checker produces a deadlock witness.
    pub leak_killed_batch: bool,
}

/// Durability knobs for [`ServerState::with_options`]: the job log and
/// the residency caps. The default is the legacy in-RAM server — no log,
/// everything unbounded.
#[derive(Clone, Default)]
pub struct StateOptions {
    /// The append-only job log; `None` runs in-RAM (nothing persists,
    /// nothing evicts).
    pub log: Option<Arc<JobLog>>,
    /// Max jobs resident in the store (0 = unbounded).
    pub max_resident_jobs: usize,
    /// Max approximate bytes resident in the store (0 = unbounded).
    pub max_resident_bytes: usize,
    /// Max entries in the result cache (0 = unbounded).
    pub results_max_entries: usize,
    /// Max approximate bytes in the result cache (0 = unbounded).
    pub results_max_bytes: usize,
}

/// Shared server state: the caches, the job store, and the counters
/// surfaced by `GET /stats`.
pub struct ServerState {
    /// Completed jobs by spec content hash — the result cache.
    pub results: CountedCache<StoredJob>,
    /// Bound sets by (workload, n, platform, profile) hash.
    pub bounds: CountedCache<BoundSet>,
    /// Materialized (platform, profile) pairs by name hash.
    pub profiles: CountedCache<(Platform, TimingProfile)>,
    /// Completed jobs by server-assigned id.
    pub store: JobStore,
    /// The append-only job log commits go through (`None` = in-RAM).
    pub log: Option<Arc<JobLog>>,
    /// Jobs accepted into a shard queue.
    pub jobs_submitted: AtomicU64,
    /// Jobs a worker finished executing.
    pub jobs_completed: AtomicU64,
    /// Submissions shed because the target shard's queue was full.
    pub shed_queue_full: AtomicU64,
    /// Submissions answered Degraded because the deadline expired first.
    pub shed_deadline: AtomicU64,
    /// Submissions shed because the target shard was dead.
    pub shed_shard_dead: AtomicU64,
    /// Submissions shed because the job log went unhealthy (read-only
    /// mode: GETs still serve, POSTs answer *store-unavailable*).
    pub shed_store_unavailable: AtomicU64,
    /// Jobs that were executed as part of a multi-job batch.
    pub batched: AtomicU64,
    /// Which seeded bugs are active (all off outside `repro race`).
    pub mutations: PoolMutations,
    /// Batches a killed worker leaked instead of dropping (the
    /// `leak-killed-batch` mutation). Plain `std` mutex on purpose: the
    /// leak itself must stay invisible to the analyzers so what they
    /// catch is its *consequence* — the reply that never disconnects.
    #[cfg(feature = "race-mutations")]
    pub leaked: std::sync::Mutex<Vec<JobRequest>>,
}

/// One coherent `/stats` snapshot: the store size and every cache's
/// accounting, read while holding the store lock so no concurrent commit
/// can tear it.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Job-store accounting (stored, resident, evictions, reloads).
    pub store: StoreSnapshot,
    /// Result-cache accounting.
    pub results: CacheSnapshot,
    /// Bounds-cache accounting.
    pub bounds: CacheSnapshot,
    /// Profile-cache accounting.
    pub profiles: CacheSnapshot,
}

fn job_weight(job: &StoredJob) -> usize {
    job.approx_bytes()
}

impl ServerState {
    /// Fresh in-RAM state with zeroed counters (no log, no caps).
    pub fn new() -> ServerState {
        ServerState::with_options(StateOptions::default())
    }

    /// Fresh state with the given durability options. When a log is
    /// present it is attached to the store, so evicted jobs reload from
    /// it transparently.
    pub fn with_options(opts: StateOptions) -> ServerState {
        let store = JobStore::with_caps(opts.max_resident_jobs, opts.max_resident_bytes);
        if let Some(log) = &opts.log {
            store.attach_log(log.clone());
        }
        ServerState {
            results: CountedCache::with_caps(
                "serve.cache.results",
                opts.results_max_entries,
                opts.results_max_bytes,
                job_weight,
            ),
            bounds: CountedCache::named("serve.cache.bounds"),
            profiles: CountedCache::named("serve.cache.profiles"),
            store,
            log: opts.log,
            jobs_submitted: AtomicU64::new(0),
            jobs_completed: AtomicU64::new(0),
            shed_queue_full: AtomicU64::new(0),
            shed_deadline: AtomicU64::new(0),
            shed_shard_dead: AtomicU64::new(0),
            shed_store_unavailable: AtomicU64::new(0),
            batched: AtomicU64::new(0),
            mutations: PoolMutations::default(),
            #[cfg(feature = "race-mutations")]
            leaked: std::sync::Mutex::new(Vec::new()),
        }
    }

    /// Whether the job log can still accept appends. `true` with no log
    /// attached — an in-RAM server is never read-only.
    pub fn log_healthy(&self) -> bool {
        self.log.as_ref().is_none_or(|log| log.healthy())
    }

    /// Fresh state with the given seeded bugs armed.
    #[cfg(feature = "race-mutations")]
    pub fn with_mutations(mutations: PoolMutations) -> ServerState {
        let mut state = ServerState::new();
        state.mutations = mutations;
        state
    }

    /// Re-emit every lock label at the state's final address. The
    /// constructors label their locks, but labels are address-keyed and
    /// the state is usually moved afterwards (into an `Arc`); call this
    /// once it has settled so analyzer reports name the locks.
    pub fn label_locks(&self) {
        self.results.relabel();
        self.bounds.relabel();
        self.profiles.relabel();
        self.store.relabel();
    }

    /// The cached (platform, profile) pair for a spec, building and
    /// caching it on first use.
    pub fn profile_pair(&self, spec: &JobSpec) -> Arc<(Platform, TimingProfile)> {
        let key = profile_key(spec);
        if let Some(pair) = self.profiles.get(key) {
            return pair;
        }
        let pair = Arc::new((spec.platform.build(), spec.profile.build()));
        self.profiles.insert(key, pair.clone());
        pair
    }

    /// Commit a finished job: durably append it to the log (when one is
    /// attached and healthy), then into the store, then into the result
    /// cache while the store lock is still held, so a
    /// [`Self::consistent_stats`] reader never counts a job in one map
    /// but not the other. The shim-lock order is store → results,
    /// everywhere; the log append happens *before* the store lock and
    /// the log's own lock is `std`, so no cycle is possible.
    ///
    /// A failed append flips the log unhealthy (sticky, inside
    /// [`JobLog`]); the job is still committed in RAM and answered — it
    /// just is not durable, and every *subsequent* submission is shed
    /// *store-unavailable* by the handler.
    pub fn commit_job(&self, spec_hash: u64, job: Arc<StoredJob>) {
        #[cfg(feature = "race-mutations")]
        {
            if self.mutations.invert_commit_order {
                // Seeded inversion: pin the result cache, then take the
                // store lock inside it — results → store, the reverse of
                // the stats path. Lockdep closes the cycle.
                let mut results = self.results.begin_commit();
                results.insert(spec_hash, job.clone());
                self.store.insert(job);
                return;
            }
            if self.mutations.unsynced_store_touch {
                self.store.insert_unsynced(job.clone());
                self.results.insert(spec_hash, job);
                return;
            }
        }
        let appended = self
            .log
            .as_ref()
            .and_then(|log| log.append(&job.wal_record()).ok());
        let pinned = self.store.insert_locked(job.clone(), appended.as_ref());
        self.results.insert(spec_hash, job);
        drop(pinned);
    }

    /// One coherent snapshot of store size and cache accounting, taken
    /// while holding the store lock (order store → caches, matching
    /// [`Self::commit_job`]). Each cache snapshot is a single guard, so
    /// `hits + misses == gets` holds field-wise in every observation.
    pub fn consistent_stats(&self) -> StatsSnapshot {
        let jobs = self.store.lock_jobs();
        let snap = StatsSnapshot {
            store: jobs.snapshot(),
            results: self.results.snapshot(),
            bounds: self.bounds.snapshot(),
            profiles: self.profiles.snapshot(),
        };
        drop(jobs);
        snap
    }
}

impl Default for ServerState {
    fn default() -> ServerState {
        ServerState::new()
    }
}

/// Whether the action computes a bound set (and so benefits from the
/// bounds cache and batching).
pub fn needs_bounds(action: JobAction) -> bool {
    matches!(
        action,
        JobAction::Bounds | JobAction::Certify | JobAction::Lint
    )
}

/// Cache key for a spec's (platform, profile) pair.
pub fn profile_key(spec: &JobSpec) -> u64 {
    let mut h = ContentHasher::new();
    h.write_str(&spec.platform.name());
    h.write_str(&spec.profile.name());
    h.finish()
}

/// Cache key for a spec's bound set. Bounds depend only on the workload,
/// the size, and the (platform, profile) pair — not the scheduler, seed
/// or faults — so many distinct jobs share one entry.
pub fn bounds_key(spec: &JobSpec) -> u64 {
    let mut h = ContentHasher::new();
    h.write_str(spec.workload.label());
    h.write_usize(spec.n);
    h.write_str(&spec.platform.name());
    h.write_str(&spec.profile.name());
    h.finish()
}

/// One queued job: the assigned id, the spec, and the channel the
/// connection handler is blocked on.
pub struct JobRequest {
    /// Server-assigned job id.
    pub id: u64,
    /// The job to run.
    pub spec: JobSpec,
    /// Where the worker sends the result. Send errors are ignored: a
    /// handler whose deadline expired has hung up, but the result is
    /// still cached for the next request.
    pub reply: channel::Sender<ShardReply>,
}

/// What a worker sends back per job.
pub enum ShardReply {
    /// The job ran (possibly degraded *inside* the simulation — the
    /// stored outcome says); it is in the store and the result cache.
    Done(Arc<StoredJob>),
    /// The spec failed validation at execution time.
    Rejected(JobError),
}

enum ShardMsg {
    Job(JobRequest),
    Stop,
}

/// Why a submission was refused without queueing.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// The shard's bounded queue is full (backpressure).
    QueueFull,
    /// The shard's worker is dead (killed or exited).
    ShardDead,
}

struct Shard {
    tx: channel::SyncSender<ShardMsg>,
    // Deliberately an atomic, not a shim mutex: liveness is a monotonic
    // flag whose readers tolerate staleness by design (a stale `true`
    // just means the queued job is answered shard-dead a step later).
    // Keeping it invisible to the explorer keeps the model tree small
    // without hiding any distinct outcome — kill-vs-submit orderings are
    // still explored through the Stop message on the shard queue.
    alive: Arc<AtomicBool>,
}

/// The worker pool: `n_shards` bounded queues, one worker thread each.
pub struct Pool {
    shards: Vec<Shard>,
    handles: Mutex<Vec<JoinHandle<()>>>,
}

impl Pool {
    /// Start `n_shards` workers over the shared state.
    pub fn start(
        n_shards: usize,
        queue_depth: usize,
        max_batch: usize,
        state: Arc<ServerState>,
    ) -> Pool {
        Pool::start_inner(n_shards, queue_depth, max_batch, state, None)
    }

    /// Start a pool whose workers check in with the interleaving explorer
    /// as threads `checkin_base .. checkin_base + n_shards`, so a DPOR
    /// session can schedule them exhaustively alongside model clients.
    pub fn start_controlled(
        n_shards: usize,
        queue_depth: usize,
        max_batch: usize,
        state: Arc<ServerState>,
        checkin_base: usize,
    ) -> Pool {
        Pool::start_inner(n_shards, queue_depth, max_batch, state, Some(checkin_base))
    }

    fn start_inner(
        n_shards: usize,
        queue_depth: usize,
        max_batch: usize,
        state: Arc<ServerState>,
        checkin_base: Option<usize>,
    ) -> Pool {
        let n_shards = n_shards.max(1);
        let max_batch = max_batch.max(1);
        let mut shards = Vec::with_capacity(n_shards);
        let mut handles = Vec::with_capacity(n_shards);
        for i in 0..n_shards {
            let (tx, rx) = channel::sync_channel(queue_depth.max(1));
            let alive = Arc::new(AtomicBool::new(true));
            let worker_alive = alive.clone();
            let worker_state = state.clone();
            let checkin = checkin_base.map(|base| base + i);
            handles.push(thread::spawn(move || {
                worker(rx, worker_alive, worker_state, max_batch, checkin)
            }));
            shards.push(Shard { tx, alive });
        }
        Pool {
            shards,
            handles: Mutex::new(handles),
        }
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// The shard a spec hash routes to.
    pub fn shard_of(&self, spec_hash: u64) -> usize {
        (spec_hash % self.shards.len() as u64) as usize
    }

    /// Liveness of every shard, in order.
    pub fn alive(&self) -> Vec<bool> {
        self.shards
            .iter()
            .map(|s| s.alive.load(Ordering::Acquire))
            .collect()
    }

    /// Route and enqueue a job. Returns the shard index it was queued on,
    /// or the shard index plus the reason it was shed.
    pub fn submit(&self, spec_hash: u64, req: JobRequest) -> Result<usize, (usize, SubmitError)> {
        let idx = self.shard_of(spec_hash);
        let shard = &self.shards[idx];
        if !shard.alive.load(Ordering::Acquire) {
            return Err((idx, SubmitError::ShardDead));
        }
        match shard.tx.try_send(ShardMsg::Job(req)) {
            Ok(()) => Ok(idx),
            Err(channel::TrySendError::Full(_)) => Err((idx, SubmitError::QueueFull)),
            Err(channel::TrySendError::Disconnected(_)) => Err((idx, SubmitError::ShardDead)),
        }
    }

    /// Kill a shard: its worker stops, its queued jobs are answered
    /// *shard-dead* (their reply channels disconnect), and future
    /// submissions routed to it are refused. Returns `false` for an
    /// out-of-range index.
    pub fn kill(&self, shard: usize) -> bool {
        let Some(s) = self.shards.get(shard) else {
            return false;
        };
        s.alive.store(false, Ordering::Release);
        // Wake a worker blocked on an empty queue; if the queue is full
        // the worker is busy and will observe the flag after its batch.
        let _ = s.tx.try_send(ShardMsg::Stop);
        true
    }

    /// Gracefully drain the pool: every job already queued is processed
    /// and answered, then the workers exit and are joined. The caller
    /// must stop submitting first (the server flips its accepting flag);
    /// the `Stop` message rides the same FIFO queue as the jobs, so a
    /// worker sees it only after everything queued ahead of it. Blocks
    /// until every worker has exited.
    pub fn drain(&self) {
        for shard in &self.shards {
            // Blocking send: a full queue waits for the worker to drain
            // it rather than skipping the stop (contrast `kill`, which
            // uses try_send because its workers stop mid-queue anyway).
            let _ = shard.tx.send(ShardMsg::Stop);
        }
        let handles = std::mem::take(&mut *self.handles.lock());
        for handle in handles {
            let _ = handle.join();
        }
        for shard in &self.shards {
            shard.alive.store(false, Ordering::Release);
        }
    }

    /// Stop every worker and join them.
    pub fn shutdown(&self) {
        for shard in &self.shards {
            shard.alive.store(false, Ordering::Release);
            let _ = shard.tx.try_send(ShardMsg::Stop);
        }
        let handles = std::mem::take(&mut *self.handles.lock());
        for handle in handles {
            let _ = handle.join();
        }
    }
}

fn worker(
    rx: channel::Receiver<ShardMsg>,
    alive: Arc<AtomicBool>,
    state: Arc<ServerState>,
    max_batch: usize,
    checkin: Option<usize>,
) {
    if let Some(id) = checkin {
        explore::checkin(id);
    }
    loop {
        if !alive.load(Ordering::Acquire) {
            break;
        }
        let first = match rx.recv() {
            Ok(msg) => msg,
            Err(_) => break,
        };
        let mut batch = Vec::new();
        match first {
            ShardMsg::Stop => break,
            ShardMsg::Job(req) => batch.push(req),
        }
        let mut stop_after = false;
        while batch.len() < max_batch {
            match rx.try_recv() {
                Ok(ShardMsg::Job(req)) => batch.push(req),
                Ok(ShardMsg::Stop) => {
                    stop_after = true;
                    break;
                }
                Err(_) => break,
            }
        }
        if alive.load(Ordering::Acquire) {
            process_batch(&state, batch);
        } else {
            // A batch picked up by a just-killed worker is dropped
            // instead: the reply senders disconnect and every waiting
            // handler answers shard-dead rather than blocking on a
            // corpse. (The leak-killed-batch mutation keeps the batch —
            // and the senders — alive, which is exactly the hang the
            // model checker's deadlock detector witnesses.)
            drop_batch(&state, batch);
        }
        if stop_after {
            break;
        }
    }
    alive.store(false, Ordering::Release);
}

#[cfg(feature = "race-mutations")]
fn drop_batch(state: &ServerState, batch: Vec<JobRequest>) {
    if state.mutations.leak_killed_batch {
        state.leaked.lock().expect("leak lock").extend(batch);
    }
}

#[cfg(not(feature = "race-mutations"))]
fn drop_batch(_state: &ServerState, batch: Vec<JobRequest>) {
    drop(batch);
}

/// Run one drained batch: prefetch the batch's distinct bound sets in one
/// [`BoundSet::compute_batch`] call per (platform, profile) group, then
/// execute each job with its bounds spliced in.
fn process_batch(state: &ServerState, batch: Vec<JobRequest>) {
    struct Group {
        profile_key: u64,
        exemplar: JobSpec,
        requests: Vec<(u64, Algorithm, usize)>,
    }
    let mut groups: Vec<Group> = Vec::new();
    for req in &batch {
        if !needs_bounds(req.spec.action) {
            continue;
        }
        let bkey = bounds_key(&req.spec);
        // Counting lookup: the stats answer "how many jobs found their
        // bounds precomputed?".
        if state.bounds.get(bkey).is_some() {
            continue;
        }
        let pkey = profile_key(&req.spec);
        let group = match groups.iter_mut().find(|g| g.profile_key == pkey) {
            Some(g) => g,
            None => {
                groups.push(Group {
                    profile_key: pkey,
                    exemplar: req.spec.clone(),
                    requests: Vec::new(),
                });
                groups.last_mut().expect("just pushed")
            }
        };
        if !group.requests.iter().any(|&(k, _, _)| k == bkey) {
            group.requests.push((bkey, req.spec.workload, req.spec.n));
        }
    }
    for group in groups {
        let pair = state.profile_pair(&group.exemplar);
        let wanted: Vec<(Algorithm, usize)> =
            group.requests.iter().map(|&(_, a, n)| (a, n)).collect();
        let sets = BoundSet::compute_batch(&wanted, &pair.0, &pair.1);
        for (&(bkey, _, _), set) in group.requests.iter().zip(sets) {
            state.bounds.insert(bkey, Arc::new(set));
        }
    }

    if batch.len() > 1 {
        state
            .batched
            .fetch_add(batch.len() as u64, Ordering::Relaxed);
    }
    for req in batch {
        let spec_hash = req.spec.content_hash();
        // An identical spec may have completed on another shard while this
        // one sat in the queue; reuse it (non-counting, internal dedup).
        if let Some(done) = state.results.peek(spec_hash) {
            state.jobs_completed.fetch_add(1, Ordering::Relaxed);
            let _ = req.reply.send(ShardReply::Done(done));
            continue;
        }
        let precomputed = if needs_bounds(req.spec.action) {
            state
                .bounds
                .peek(bounds_key(&req.spec))
                .map(|set| (*set).clone())
        } else {
            None
        };
        match req.spec.run_with_bounds(precomputed) {
            Ok(run) => {
                let job = Arc::new(StoredJob::fresh(req.id, req.spec, run.outcome, run.sim));
                state.commit_job(spec_hash, job.clone());
                state.jobs_completed.fetch_add(1, Ordering::Relaxed);
                let _ = req.reply.send(ShardReply::Done(job));
            }
            Err(err) => {
                let _ = req.reply.send(ShardReply::Rejected(err));
            }
        }
    }
}
