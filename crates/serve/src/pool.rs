//! The sharded worker pool.
//!
//! Jobs are routed to a shard by spec content hash, queued on a bounded
//! channel, and executed by one worker thread per shard. The bounded
//! queue is the server's backpressure: a full queue answers *queue-full*
//! immediately instead of buffering unboundedly, and a killed shard
//! answers *shard-dead* instead of hanging — both as structured
//! `Degraded` HTTP responses, never dropped connections.
//!
//! Workers drain their queue in batches (up to `max_batch`) so the bound
//! computations of co-queued jobs amortize through
//! [`BoundSet::compute_batch`] and the shared bounds cache.

use crate::cache::CountedCache;
use crate::store::{JobStore, StoredJob};
use hetchol::job::{JobAction, JobError, JobSpec};
use hetchol_bounds::BoundSet;
use hetchol_core::algorithm::Algorithm;
use hetchol_core::hash::ContentHasher;
use hetchol_core::platform::Platform;
use hetchol_core::profiles::TimingProfile;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::{self, JoinHandle};

/// Shared server state: the caches, the job store, and the counters
/// surfaced by `GET /stats`.
pub struct ServerState {
    /// Completed jobs by spec content hash — the result cache.
    pub results: CountedCache<StoredJob>,
    /// Bound sets by (workload, n, platform, profile) hash.
    pub bounds: CountedCache<BoundSet>,
    /// Materialized (platform, profile) pairs by name hash.
    pub profiles: CountedCache<(Platform, TimingProfile)>,
    /// Completed jobs by server-assigned id.
    pub store: JobStore,
    /// Jobs accepted into a shard queue.
    pub jobs_submitted: AtomicU64,
    /// Jobs a worker finished executing.
    pub jobs_completed: AtomicU64,
    /// Submissions shed because the target shard's queue was full.
    pub shed_queue_full: AtomicU64,
    /// Submissions answered Degraded because the deadline expired first.
    pub shed_deadline: AtomicU64,
    /// Submissions shed because the target shard was dead.
    pub shed_shard_dead: AtomicU64,
    /// Jobs that were executed as part of a multi-job batch.
    pub batched: AtomicU64,
}

impl ServerState {
    /// Fresh state with zeroed counters.
    pub fn new() -> ServerState {
        ServerState {
            results: CountedCache::new(),
            bounds: CountedCache::new(),
            profiles: CountedCache::new(),
            store: JobStore::new(),
            jobs_submitted: AtomicU64::new(0),
            jobs_completed: AtomicU64::new(0),
            shed_queue_full: AtomicU64::new(0),
            shed_deadline: AtomicU64::new(0),
            shed_shard_dead: AtomicU64::new(0),
            batched: AtomicU64::new(0),
        }
    }

    /// The cached (platform, profile) pair for a spec, building and
    /// caching it on first use.
    pub fn profile_pair(&self, spec: &JobSpec) -> Arc<(Platform, TimingProfile)> {
        let key = profile_key(spec);
        if let Some(pair) = self.profiles.get(key) {
            return pair;
        }
        let pair = Arc::new((spec.platform.build(), spec.profile.build()));
        self.profiles.insert(key, pair.clone());
        pair
    }
}

impl Default for ServerState {
    fn default() -> ServerState {
        ServerState::new()
    }
}

/// Whether the action computes a bound set (and so benefits from the
/// bounds cache and batching).
pub fn needs_bounds(action: JobAction) -> bool {
    matches!(
        action,
        JobAction::Bounds | JobAction::Certify | JobAction::Lint
    )
}

/// Cache key for a spec's (platform, profile) pair.
pub fn profile_key(spec: &JobSpec) -> u64 {
    let mut h = ContentHasher::new();
    h.write_str(&spec.platform.name());
    h.write_str(&spec.profile.name());
    h.finish()
}

/// Cache key for a spec's bound set. Bounds depend only on the workload,
/// the size, and the (platform, profile) pair — not the scheduler, seed
/// or faults — so many distinct jobs share one entry.
pub fn bounds_key(spec: &JobSpec) -> u64 {
    let mut h = ContentHasher::new();
    h.write_str(spec.workload.label());
    h.write_usize(spec.n);
    h.write_str(&spec.platform.name());
    h.write_str(&spec.profile.name());
    h.finish()
}

/// One queued job: the assigned id, the spec, and the channel the
/// connection handler is blocked on.
pub struct JobRequest {
    /// Server-assigned job id.
    pub id: u64,
    /// The job to run.
    pub spec: JobSpec,
    /// Where the worker sends the result. Send errors are ignored: a
    /// handler whose deadline expired has hung up, but the result is
    /// still cached for the next request.
    pub reply: mpsc::Sender<ShardReply>,
}

/// What a worker sends back per job.
pub enum ShardReply {
    /// The job ran (possibly degraded *inside* the simulation — the
    /// stored outcome says); it is in the store and the result cache.
    Done(Arc<StoredJob>),
    /// The spec failed validation at execution time.
    Rejected(JobError),
}

enum ShardMsg {
    Job(JobRequest),
    Stop,
}

/// Why a submission was refused without queueing.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// The shard's bounded queue is full (backpressure).
    QueueFull,
    /// The shard's worker is dead (killed or exited).
    ShardDead,
}

struct Shard {
    tx: mpsc::SyncSender<ShardMsg>,
    alive: Arc<AtomicBool>,
}

/// The worker pool: `n_shards` bounded queues, one worker thread each.
pub struct Pool {
    shards: Vec<Shard>,
    handles: Mutex<Vec<JoinHandle<()>>>,
}

impl Pool {
    /// Start `n_shards` workers over the shared state.
    pub fn start(
        n_shards: usize,
        queue_depth: usize,
        max_batch: usize,
        state: Arc<ServerState>,
    ) -> Pool {
        let n_shards = n_shards.max(1);
        let max_batch = max_batch.max(1);
        let mut shards = Vec::with_capacity(n_shards);
        let mut handles = Vec::with_capacity(n_shards);
        for _ in 0..n_shards {
            let (tx, rx) = mpsc::sync_channel(queue_depth.max(1));
            let alive = Arc::new(AtomicBool::new(true));
            let worker_alive = alive.clone();
            let worker_state = state.clone();
            handles.push(thread::spawn(move || {
                worker(rx, worker_alive, worker_state, max_batch)
            }));
            shards.push(Shard { tx, alive });
        }
        Pool {
            shards,
            handles: Mutex::new(handles),
        }
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// The shard a spec hash routes to.
    pub fn shard_of(&self, spec_hash: u64) -> usize {
        (spec_hash % self.shards.len() as u64) as usize
    }

    /// Liveness of every shard, in order.
    pub fn alive(&self) -> Vec<bool> {
        self.shards
            .iter()
            .map(|s| s.alive.load(Ordering::Acquire))
            .collect()
    }

    /// Route and enqueue a job. Returns the shard index it was queued on,
    /// or the shard index plus the reason it was shed.
    pub fn submit(&self, spec_hash: u64, req: JobRequest) -> Result<usize, (usize, SubmitError)> {
        let idx = self.shard_of(spec_hash);
        let shard = &self.shards[idx];
        if !shard.alive.load(Ordering::Acquire) {
            return Err((idx, SubmitError::ShardDead));
        }
        match shard.tx.try_send(ShardMsg::Job(req)) {
            Ok(()) => Ok(idx),
            Err(mpsc::TrySendError::Full(_)) => Err((idx, SubmitError::QueueFull)),
            Err(mpsc::TrySendError::Disconnected(_)) => Err((idx, SubmitError::ShardDead)),
        }
    }

    /// Kill a shard: its worker stops, its queued jobs are answered
    /// *shard-dead* (their reply channels disconnect), and future
    /// submissions routed to it are refused. Returns `false` for an
    /// out-of-range index.
    pub fn kill(&self, shard: usize) -> bool {
        let Some(s) = self.shards.get(shard) else {
            return false;
        };
        s.alive.store(false, Ordering::Release);
        // Wake a worker blocked on an empty queue; if the queue is full
        // the worker is busy and will observe the flag after its batch.
        let _ = s.tx.try_send(ShardMsg::Stop);
        true
    }

    /// Stop every worker and join them.
    pub fn shutdown(&self) {
        for shard in &self.shards {
            shard.alive.store(false, Ordering::Release);
            let _ = shard.tx.try_send(ShardMsg::Stop);
        }
        let handles = std::mem::take(&mut *self.handles.lock().expect("pool lock"));
        for handle in handles {
            let _ = handle.join();
        }
    }
}

fn worker(
    rx: mpsc::Receiver<ShardMsg>,
    alive: Arc<AtomicBool>,
    state: Arc<ServerState>,
    max_batch: usize,
) {
    loop {
        if !alive.load(Ordering::Acquire) {
            break;
        }
        let first = match rx.recv() {
            Ok(msg) => msg,
            Err(_) => break,
        };
        let mut batch = Vec::new();
        match first {
            ShardMsg::Stop => break,
            ShardMsg::Job(req) => batch.push(req),
        }
        let mut stop_after = false;
        while batch.len() < max_batch {
            match rx.try_recv() {
                Ok(ShardMsg::Job(req)) => batch.push(req),
                Ok(ShardMsg::Stop) => {
                    stop_after = true;
                    break;
                }
                Err(_) => break,
            }
        }
        if alive.load(Ordering::Acquire) {
            process_batch(&state, batch);
        }
        // A batch picked up by a just-killed worker is dropped instead:
        // the reply senders disconnect and every waiting handler answers
        // shard-dead rather than blocking on a corpse.
        if stop_after {
            break;
        }
    }
    alive.store(false, Ordering::Release);
}

/// Run one drained batch: prefetch the batch's distinct bound sets in one
/// [`BoundSet::compute_batch`] call per (platform, profile) group, then
/// execute each job with its bounds spliced in.
fn process_batch(state: &ServerState, batch: Vec<JobRequest>) {
    struct Group {
        profile_key: u64,
        exemplar: JobSpec,
        requests: Vec<(u64, Algorithm, usize)>,
    }
    let mut groups: Vec<Group> = Vec::new();
    for req in &batch {
        if !needs_bounds(req.spec.action) {
            continue;
        }
        let bkey = bounds_key(&req.spec);
        // Counting lookup: the stats answer "how many jobs found their
        // bounds precomputed?".
        if state.bounds.get(bkey).is_some() {
            continue;
        }
        let pkey = profile_key(&req.spec);
        let group = match groups.iter_mut().find(|g| g.profile_key == pkey) {
            Some(g) => g,
            None => {
                groups.push(Group {
                    profile_key: pkey,
                    exemplar: req.spec.clone(),
                    requests: Vec::new(),
                });
                groups.last_mut().expect("just pushed")
            }
        };
        if !group.requests.iter().any(|&(k, _, _)| k == bkey) {
            group.requests.push((bkey, req.spec.workload, req.spec.n));
        }
    }
    for group in groups {
        let pair = state.profile_pair(&group.exemplar);
        let wanted: Vec<(Algorithm, usize)> =
            group.requests.iter().map(|&(_, a, n)| (a, n)).collect();
        let sets = BoundSet::compute_batch(&wanted, &pair.0, &pair.1);
        for (&(bkey, _, _), set) in group.requests.iter().zip(sets) {
            state.bounds.insert(bkey, Arc::new(set));
        }
    }

    if batch.len() > 1 {
        state
            .batched
            .fetch_add(batch.len() as u64, Ordering::Relaxed);
    }
    for req in batch {
        let spec_hash = req.spec.content_hash();
        // An identical spec may have completed on another shard while this
        // one sat in the queue; reuse it (non-counting, internal dedup).
        if let Some(done) = state.results.peek(spec_hash) {
            state.jobs_completed.fetch_add(1, Ordering::Relaxed);
            let _ = req.reply.send(ShardReply::Done(done));
            continue;
        }
        let precomputed = if needs_bounds(req.spec.action) {
            state
                .bounds
                .peek(bounds_key(&req.spec))
                .map(|set| (*set).clone())
        } else {
            None
        };
        match req.spec.run_with_bounds(precomputed) {
            Ok(run) => {
                let job = Arc::new(StoredJob {
                    id: req.id,
                    spec: req.spec,
                    outcome: run.outcome,
                    sim: run.sim,
                });
                state.store.insert(job.clone());
                state.results.insert(spec_hash, job.clone());
                state.jobs_completed.fetch_add(1, Ordering::Relaxed);
                let _ = req.reply.send(ShardReply::Done(job));
            }
            Err(err) => {
                let _ = req.reply.send(ShardReply::Rejected(err));
            }
        }
    }
}
