//! `hetchol-serve` — a job API over the `hetchol` facade.
//!
//! A hand-rolled HTTP/1.1 server (over [`std::net`], zero external
//! dependencies) exposing simulation, bound computation, certification
//! and linting as one JSON endpoint:
//!
//! ```text
//! POST /jobs                    submit a JobSpec; answers the JobOutcome
//! GET  /jobs/<id>               re-fetch a stored result
//! GET  /jobs/<id>/trace         the run's Chrome about:tracing document
//! GET  /jobs/<id>/lint          lint the stored trace on demand
//! GET  /health                  liveness probe
//! GET  /stats                   counters: cache hits, sheds, evictions
//! POST /admin/shards/<i>/kill   chaos: stop one shard's worker
//! POST /admin/drain             graceful drain: finish queued jobs,
//!                               fsync the log, stop taking new ones
//! ```
//!
//! Connections are kept alive per HTTP/1.1 (with an idle timeout and a
//! per-connection request cap); `Connection: close` opts out. With a
//! [`ServeConfig::log_path`], every committed job is appended to a
//! crash-safe [`wal::JobLog`] before its response is sent, startup
//! replays the log (truncating a torn tail with a structured
//! [`wal::RecoveryReport`], never a crash), and a restarted server
//! re-serves `GET /jobs/<id>/trace` bitwise-identical. A log that stops
//! accepting writes flips the server read-only: stored jobs still serve,
//! new submissions answer 503 `store-unavailable`.
//!
//! Requests route by spec content hash to a sharded worker pool
//! ([`pool`]); each shard drains its bounded queue in batches so bound
//! computations amortize through [`hetchol_bounds::BoundSet::compute_batch`]
//! and three content-hash caches ([`cache`]): results by spec hash,
//! bound sets by (workload, n, platform, profile), materialized
//! platform/profile pairs by name.
//!
//! **Degradation is a response, not a dropped connection.** A full queue,
//! an expired per-request deadline, or a killed shard each answer HTTP
//! 503 with a structured body whose `outcome` member is the same
//! [`RunOutcome::Degraded`] wire shape the resilient simulator reports —
//! clients parse one vocabulary for "the system shed my job" and "the
//! simulated platform lost workers".
//!
//! ```
//! use hetchol_serve::{client, ServeConfig, Server};
//!
//! let server = Server::start(ServeConfig::default()).unwrap();
//! let (status, body) = client::post_job(
//!     server.addr(),
//!     r#"{"workload":"cholesky","n":4,"action":"bounds"}"#,
//! )
//! .unwrap();
//! assert_eq!(status, 200, "{body}");
//! assert!(body.contains(r#""status":"ok""#));
//! server.shutdown();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod http;
pub mod model;
pub mod pool;
pub mod store;
pub mod wal;

use hetchol::job::{outcome_to_json, JobError, JobSpec};
use hetchol_core::fault::{IoFaultPlan, RunOutcome};
use hetchol_core::json::{parse_json, JsonValue};
use parking_lot::channel;
use pool::{JobRequest, Pool, ServerState, ShardReply, StateOptions, SubmitError};
use std::io::{self};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex as StdMutex};
use std::thread::{self, JoinHandle};
use std::time::Duration;
use wal::{JobLog, RecoveryReport};

/// Server tuning knobs.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Worker shards.
    pub shards: usize,
    /// Bounded queue depth per shard (backpressure).
    pub queue_depth: usize,
    /// Max jobs a worker drains per batch.
    pub max_batch: usize,
    /// Deadline for jobs that do not carry their own `budget_ms`.
    pub default_budget_ms: u64,
    /// Largest accepted matrix size in tiles; bigger specs answer 400
    /// `over-budget` instead of monopolizing a worker.
    pub max_n: usize,
    /// Path of the append-only job log. `None` runs in-RAM: nothing
    /// persists, nothing evicts, a restart starts empty.
    pub log_path: Option<PathBuf>,
    /// Seeded I/O faults injected into the log's backend (chaos testing;
    /// only takes effect with a `log_path`).
    pub io_faults: IoFaultPlan,
    /// Close kept-alive connections idle this long.
    pub idle_timeout_ms: u64,
    /// Close kept-alive connections after this many requests.
    pub max_requests_per_conn: usize,
    /// Max jobs resident in the store; colder persisted jobs evict to
    /// the log and reload on demand (0 = unbounded).
    pub max_resident_jobs: usize,
    /// Max approximate bytes resident in the store (0 = unbounded).
    pub max_resident_bytes: usize,
    /// Max entries in the result cache (0 = unbounded).
    pub results_max_entries: usize,
    /// Max approximate bytes in the result cache (0 = unbounded).
    pub results_max_bytes: usize,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            shards: 4,
            queue_depth: 128,
            max_batch: 8,
            default_budget_ms: 30_000,
            max_n: 64,
            log_path: None,
            io_faults: IoFaultPlan::none(),
            idle_timeout_ms: 5_000,
            max_requests_per_conn: 1_000,
            max_resident_jobs: 0,
            max_resident_bytes: 0,
            results_max_entries: 0,
            results_max_bytes: 0,
        }
    }
}

struct Ctx {
    config: ServeConfig,
    state: Arc<ServerState>,
    pool: Pool,
    /// Cleared by the first drain; a false value sheds new submissions
    /// with 503 `draining` while queued work finishes.
    accepting: AtomicBool,
    /// Set (under `drained`/`drained_cv`) once the pool has drained and
    /// the log is synced.
    drained: StdMutex<bool>,
    drained_cv: Condvar,
}

impl Ctx {
    /// Drain once, idempotently: the first caller stops new submissions,
    /// waits for every queued job to be answered, fsyncs the log, and
    /// signals; later callers just wait for that to finish.
    fn drain(&self) {
        if self.accepting.swap(false, Ordering::SeqCst) {
            self.pool.drain();
            if let Some(log) = &self.state.log {
                let _ = log.sync();
            }
            let mut done = self.drained.lock().expect("drained flag");
            *done = true;
            self.drained_cv.notify_all();
        } else {
            let mut done = self.drained.lock().expect("drained flag");
            while !*done {
                done = self.drained_cv.wait(done).expect("drained flag");
            }
        }
    }
}

/// A running server. Dropping it does **not** stop the threads; call
/// [`Server::shutdown`].
pub struct Server {
    addr: SocketAddr,
    ctx: Arc<Ctx>,
    stop: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    recovery: Option<RecoveryReport>,
}

impl Server {
    /// Bind, replay the job log (when configured), start the worker pool
    /// and the acceptor thread, and return. A torn log tail is truncated
    /// and reported through [`Server::recovery`] — never a startup
    /// failure; only an unopenable log file errors here.
    pub fn start(config: ServeConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;

        let (log, recovered, recovery) = match &config.log_path {
            Some(path) => {
                let (log, records, report) = JobLog::open(path, &config.io_faults)?;
                (Some(Arc::new(log)), records, Some(report))
            }
            None => (None, Vec::new(), None),
        };
        let state = Arc::new(ServerState::with_options(StateOptions {
            log,
            max_resident_jobs: config.max_resident_jobs,
            max_resident_bytes: config.max_resident_bytes,
            results_max_entries: config.results_max_entries,
            results_max_bytes: config.results_max_bytes,
        }));
        state.store.recover(&recovered);
        drop(recovered);

        let pool = Pool::start(
            config.shards,
            config.queue_depth,
            config.max_batch,
            state.clone(),
        );
        let ctx = Arc::new(Ctx {
            config,
            state,
            pool,
            accepting: AtomicBool::new(true),
            drained: StdMutex::new(false),
            drained_cv: Condvar::new(),
        });
        let stop = Arc::new(AtomicBool::new(false));
        let acceptor_ctx = ctx.clone();
        let acceptor_stop = stop.clone();
        let acceptor = thread::spawn(move || {
            for conn in listener.incoming() {
                if acceptor_stop.load(Ordering::Acquire) {
                    break;
                }
                if let Ok(stream) = conn {
                    let ctx = acceptor_ctx.clone();
                    thread::spawn(move || handle_connection(stream, &ctx));
                }
            }
        });
        Ok(Server {
            addr,
            ctx,
            stop,
            acceptor: Some(acceptor),
            recovery,
        })
    }

    /// The bound address (with the resolved ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared state — counters and caches — for in-process callers.
    pub fn state(&self) -> &ServerState {
        &self.ctx.state
    }

    /// What startup log replay found (`None` without a log). A torn tail
    /// shows up here as [`RecoveryReport::torn`], already truncated.
    pub fn recovery(&self) -> Option<&RecoveryReport> {
        self.recovery.as_ref()
    }

    /// Kill one shard (the in-process twin of `POST /admin/shards/<i>/kill`).
    pub fn kill_shard(&self, shard: usize) -> bool {
        self.ctx.pool.kill(shard)
    }

    /// Gracefully drain (the in-process twin of `POST /admin/drain`):
    /// stop taking new jobs, answer everything queued, fsync the log.
    /// Blocks until done; idempotent.
    pub fn drain(&self) {
        self.ctx.drain();
    }

    /// Block until a drain — ours or one requested over HTTP — has
    /// completed. `repro serve` parks here instead of sleeping forever.
    pub fn wait_drained(&self) {
        let mut done = self.ctx.drained.lock().expect("drained flag");
        while !*done {
            done = self.ctx.drained_cv.wait(done).expect("drained flag");
        }
    }

    /// Stop accepting, stop the workers, join the acceptor. In-flight
    /// connection handlers finish on their own; kept-alive connections
    /// close at their next idle timeout.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::Release);
        // Wake the acceptor out of `accept`.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.acceptor.take() {
            let _ = handle.join();
        }
        self.ctx.pool.shutdown();
    }
}

/// Serve one connection until it closes: per HTTP/1.1 keep-alive,
/// bounded by the idle timeout (reads time out) and the per-connection
/// request cap. The last response before the cap — and any response to a
/// `Connection: close` request — says `Connection: close`.
fn handle_connection(stream: TcpStream, ctx: &Arc<Ctx>) {
    let idle = Duration::from_millis(ctx.config.idle_timeout_ms.max(1));
    let _ = stream.set_read_timeout(Some(idle));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(60)));
    // Nagle holds small responses back behind un-ACKed data on a
    // kept-alive socket; every response here is one small write.
    let _ = stream.set_nodelay(true);
    let Ok(mut write_half) = stream.try_clone() else {
        return;
    };
    let mut reader = std::io::BufReader::new(stream);
    let cap = ctx.config.max_requests_per_conn.max(1);
    for served in 1..=cap {
        let (status, body, client_keep) = match http::read_request(&mut reader) {
            Ok(req) => {
                let keep = req.keep_alive;
                let (status, body) = route(&req, ctx);
                (status, body, keep)
            }
            Err(http::ReadError::Eof) | Err(http::ReadError::Io(_)) => return,
            Err(http::ReadError::Malformed(detail)) => {
                // A malformed request leaves the stream position
                // unknowable; answer and close.
                (400, error_body("bad-request", &detail), false)
            }
        };
        let keep = client_keep && served < cap;
        if http::write_response(&mut write_half, status, &body, keep).is_err() || !keep {
            return;
        }
    }
}

fn route(req: &http::Request, ctx: &Arc<Ctx>) -> (u16, String) {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/health") => (
            200,
            JsonValue::Obj(vec![("status".into(), JsonValue::str("ok"))]).render(),
        ),
        ("GET", "/stats") => (200, stats_body(ctx)),
        ("POST", "/jobs") => submit(&req.body, ctx),
        ("POST", "/admin/drain") => {
            // Blocks until every queued job is answered and the log is
            // synced — when the 200 arrives, the log is durable.
            ctx.drain();
            (
                200,
                JsonValue::Obj(vec![
                    ("status".into(), JsonValue::str("drained")),
                    (
                        "jobs_completed".into(),
                        JsonValue::uint(ctx.state.jobs_completed.load(Ordering::Relaxed)),
                    ),
                    (
                        "log_healthy".into(),
                        JsonValue::Bool(ctx.state.log_healthy()),
                    ),
                ])
                .render(),
            )
        }
        (method, path) if path.starts_with("/jobs/") => jobs_subresource(method, path, ctx),
        ("POST", path) if path.starts_with("/admin/shards/") && path.ends_with("/kill") => {
            let middle = &path["/admin/shards/".len()..path.len() - "/kill".len()];
            match middle.parse::<usize>() {
                Ok(shard) if ctx.pool.kill(shard) => (
                    200,
                    JsonValue::Obj(vec![
                        ("status".into(), JsonValue::str("ok")),
                        ("shard".into(), JsonValue::uint(shard as u64)),
                        ("alive".into(), JsonValue::Bool(false)),
                    ])
                    .render(),
                ),
                _ => (
                    404,
                    error_body("not-found", &format!("no shard {middle:?}")),
                ),
            }
        }
        ("GET" | "POST", path) => (404, error_body("not-found", &format!("no route {path:?}"))),
        (method, _) => (
            405,
            error_body("bad-method", &format!("method {method:?} not supported")),
        ),
    }
}

/// What became of one submitted job, transport-free.
///
/// [`submit_job`] is the whole `POST /jobs` request path minus HTTP:
/// loopback handlers render this to JSON, while analysis harnesses (the
/// happens-before recorder's serve exercise, the serve-pool model) call
/// it in-process and assert on the variants directly.
pub enum SubmitOutcome {
    /// Answered from the result cache (a counted hit).
    Hit(Arc<store::StoredJob>),
    /// Executed by a shard within the deadline (a counted miss).
    Done(Arc<store::StoredJob>),
    /// The spec failed validation at execution time.
    Rejected(JobError),
    /// Shed without a result: queue-full, shard-dead, or deadline.
    Shed {
        /// Stable machine-readable reason (`queue-full`, `shard-dead`,
        /// `deadline`).
        code: &'static str,
        /// Human-readable detail (the HTTP `detail` member, verbatim).
        detail: String,
        /// The shard the job routed to.
        shard: usize,
    },
}

/// Submit one job: consult the result cache, queue on the routed shard,
/// and wait out the deadline. This is `POST /jobs` without the HTTP.
pub fn submit_job(
    state: &ServerState,
    pool: &Pool,
    spec: JobSpec,
    default_budget_ms: u64,
) -> SubmitOutcome {
    let spec_hash = spec.content_hash();
    if let Some(hit) = state.results.get(spec_hash) {
        return SubmitOutcome::Hit(hit);
    }

    // Read-only mode: an unhealthy log means new work could complete but
    // never persist; cached and stored jobs still serve above and via
    // `GET /jobs/<id>`, new submissions shed with a structured 503.
    if !state.log_healthy() {
        state.shed_store_unavailable.fetch_add(1, Ordering::Relaxed);
        let shard = pool.shard_of(spec_hash);
        return SubmitOutcome::Shed {
            code: "store-unavailable",
            detail: "the job log stopped accepting writes; serving stored results only".into(),
            shard,
        };
    }

    let id = state.store.next_id();
    let budget = Duration::from_millis(spec.budget_ms.unwrap_or(default_budget_ms));
    let (reply_tx, reply_rx) = channel::channel();
    let shard = match pool.submit(
        spec_hash,
        JobRequest {
            id,
            spec,
            reply: reply_tx,
        },
    ) {
        Ok(shard) => shard,
        Err((shard, SubmitError::QueueFull)) => {
            state.shed_queue_full.fetch_add(1, Ordering::Relaxed);
            return SubmitOutcome::Shed {
                code: "queue-full",
                detail: format!("shard {shard} queue is full; retry later"),
                shard,
            };
        }
        Err((shard, SubmitError::ShardDead)) => {
            state.shed_shard_dead.fetch_add(1, Ordering::Relaxed);
            return SubmitOutcome::Shed {
                code: "shard-dead",
                detail: format!("shard {shard} is dead"),
                shard,
            };
        }
    };
    state.jobs_submitted.fetch_add(1, Ordering::Relaxed);

    match reply_rx.recv_timeout(budget) {
        Ok(ShardReply::Done(job)) => SubmitOutcome::Done(job),
        Ok(ShardReply::Rejected(err)) => SubmitOutcome::Rejected(err),
        Err(channel::RecvTimeoutError::Timeout) => {
            state.shed_deadline.fetch_add(1, Ordering::Relaxed);
            SubmitOutcome::Shed {
                code: "deadline",
                detail: format!("job {id} missed its {}ms budget", budget.as_millis()),
                shard,
            }
        }
        Err(channel::RecvTimeoutError::Disconnected) => {
            state.shed_shard_dead.fetch_add(1, Ordering::Relaxed);
            SubmitOutcome::Shed {
                code: "shard-dead",
                detail: format!("shard {shard} died with job {id} queued"),
                shard,
            }
        }
    }
}

/// `POST /jobs`: parse, budget-check, then [`submit_job`] and render.
fn submit(body: &str, ctx: &Ctx) -> (u16, String) {
    let spec = match JobSpec::from_json(body) {
        Ok(spec) => spec,
        Err(err) => return (400, err.to_json_value().render()),
    };
    if !ctx.accepting.load(Ordering::Acquire) {
        let shard = ctx.pool.shard_of(spec.content_hash());
        return (
            503,
            degraded_body("draining", "the server is draining; no new jobs", shard),
        );
    }
    if spec.n > ctx.config.max_n {
        return (
            400,
            error_body(
                "over-budget",
                &format!(
                    "n={} exceeds this server's limit of {} tiles",
                    spec.n, ctx.config.max_n
                ),
            ),
        );
    }
    match submit_job(&ctx.state, &ctx.pool, spec, ctx.config.default_budget_ms) {
        SubmitOutcome::Hit(job) => (200, envelope(&job, "hit")),
        SubmitOutcome::Done(job) => (200, envelope(&job, "miss")),
        SubmitOutcome::Rejected(err) => (400, err.to_json_value().render()),
        SubmitOutcome::Shed {
            code,
            detail,
            shard,
        } => (503, degraded_body(code, &detail, shard)),
    }
}

/// `GET /jobs/<id>`, `/jobs/<id>/trace`, `/jobs/<id>/lint`.
fn jobs_subresource(method: &str, path: &str, ctx: &Ctx) -> (u16, String) {
    if method != "GET" {
        return (
            405,
            error_body("bad-method", &format!("{path} only supports GET")),
        );
    }
    let rest = &path["/jobs/".len()..];
    let (id_text, sub) = match rest.split_once('/') {
        None => (rest, ""),
        Some((id, sub)) => (id, sub),
    };
    let Ok(id) = id_text.parse::<u64>() else {
        return (
            404,
            error_body("not-found", &format!("bad job id {id_text:?}")),
        );
    };
    let Some(job) = ctx.state.store.get(id) else {
        return (404, error_body("not-found", &format!("no job {id}")));
    };
    match sub {
        "" => (200, envelope(&job, "stored")),
        "trace" => match job.chrome_trace() {
            Some(trace) => (200, trace),
            None => (
                400,
                error_body(
                    "no-trace",
                    &format!("job {id} ran without obs; resubmit with \"obs\":true"),
                ),
            ),
        },
        "lint" => match job.lint() {
            Some(Ok(report)) => {
                let report_value = parse_json(&report.to_json()).unwrap_or(JsonValue::Null);
                (
                    200,
                    JsonValue::Obj(vec![
                        ("status".into(), JsonValue::str("ok")),
                        ("job_id".into(), JsonValue::uint(id)),
                        ("errors".into(), JsonValue::uint(report.n_errors() as u64)),
                        (
                            "warnings".into(),
                            JsonValue::uint(report.n_warnings() as u64),
                        ),
                        ("clean".into(), JsonValue::Bool(report.is_clean())),
                        ("report".into(), report_value),
                    ])
                    .render(),
                )
            }
            Some(Err(err)) => (400, err.to_json_value().render()),
            None => (
                400,
                error_body(
                    "no-trace",
                    &format!("job {id} never simulated; nothing to lint"),
                ),
            ),
        },
        other => (
            404,
            error_body("not-found", &format!("no job subresource {other:?}")),
        ),
    }
}

/// The success envelope: the job's `JobOutcome` wire object with the
/// server-assigned id and the cache disposition prepended.
fn envelope(job: &store::StoredJob, cache: &str) -> String {
    let mut members = vec![
        ("job_id".into(), JsonValue::uint(job.id)),
        ("cache".into(), JsonValue::str(cache)),
    ];
    if let JsonValue::Obj(rest) = job.outcome.to_json_value() {
        members.extend(rest);
    }
    JsonValue::Obj(members).render()
}

/// A structured shed: HTTP 503 whose `outcome` reuses the simulator's
/// `RunOutcome::Degraded` wire shape, with the shed shard as the lost
/// worker.
fn degraded_body(code: &str, detail: &str, shard: usize) -> String {
    JsonValue::Obj(vec![
        ("status".into(), JsonValue::str("degraded")),
        ("code".into(), JsonValue::str(code)),
        ("detail".into(), JsonValue::str(detail)),
        (
            "outcome".into(),
            outcome_to_json(&RunOutcome::Degraded {
                lost_workers: vec![shard],
                retries: 0,
            }),
        ),
    ])
    .render()
}

fn error_body(code: &str, detail: &str) -> String {
    JsonValue::Obj(vec![
        ("status".into(), JsonValue::str("error")),
        ("code".into(), JsonValue::str(code)),
        ("detail".into(), JsonValue::str(detail)),
    ])
    .render()
}

fn stats_body(ctx: &Ctx) -> String {
    let s = &ctx.state;
    // One lock-ordered snapshot (store → caches, each cache under a
    // single guard): `hits + misses == gets` holds in every response, no
    // matter how many requests are in flight.
    let snap = s.consistent_stats();
    let cache_obj = |c: cache::CacheSnapshot| {
        JsonValue::Obj(vec![
            ("hits".into(), JsonValue::uint(c.hits)),
            ("misses".into(), JsonValue::uint(c.misses)),
            ("gets".into(), JsonValue::uint(c.gets)),
            ("entries".into(), JsonValue::uint(c.entries as u64)),
            ("evicted".into(), JsonValue::uint(c.evicted)),
        ])
    };
    let log_obj = match &s.log {
        None => JsonValue::Obj(vec![("attached".into(), JsonValue::Bool(false))]),
        Some(log) => JsonValue::Obj(vec![
            ("attached".into(), JsonValue::Bool(true)),
            ("healthy".into(), JsonValue::Bool(log.healthy())),
            ("appended".into(), JsonValue::uint(log.appended())),
            ("bytes".into(), JsonValue::uint(log.len_bytes())),
        ]),
    };
    JsonValue::Obj(vec![
        ("status".into(), JsonValue::str("ok")),
        (
            "jobs".into(),
            JsonValue::Obj(vec![
                (
                    "submitted".into(),
                    JsonValue::uint(s.jobs_submitted.load(Ordering::Relaxed)),
                ),
                (
                    "completed".into(),
                    JsonValue::uint(s.jobs_completed.load(Ordering::Relaxed)),
                ),
                ("stored".into(), JsonValue::uint(snap.store.stored as u64)),
                (
                    "batched".into(),
                    JsonValue::uint(s.batched.load(Ordering::Relaxed)),
                ),
            ]),
        ),
        (
            "store".into(),
            JsonValue::Obj(vec![
                (
                    "resident".into(),
                    JsonValue::uint(snap.store.resident as u64),
                ),
                (
                    "resident_bytes".into(),
                    JsonValue::uint(snap.store.resident_bytes as u64),
                ),
                ("evicted".into(), JsonValue::uint(snap.store.evicted)),
                (
                    "evicted_bytes".into(),
                    JsonValue::uint(snap.store.evicted_bytes),
                ),
                ("reloads".into(), JsonValue::uint(snap.store.reloads)),
            ]),
        ),
        ("log".into(), log_obj),
        (
            "cache".into(),
            JsonValue::Obj(vec![
                ("results".into(), cache_obj(snap.results)),
                ("bounds".into(), cache_obj(snap.bounds)),
                ("profiles".into(), cache_obj(snap.profiles)),
            ]),
        ),
        (
            "shed".into(),
            JsonValue::Obj(vec![
                (
                    "queue_full".into(),
                    JsonValue::uint(s.shed_queue_full.load(Ordering::Relaxed)),
                ),
                (
                    "deadline".into(),
                    JsonValue::uint(s.shed_deadline.load(Ordering::Relaxed)),
                ),
                (
                    "shard_dead".into(),
                    JsonValue::uint(s.shed_shard_dead.load(Ordering::Relaxed)),
                ),
                (
                    "store_unavailable".into(),
                    JsonValue::uint(s.shed_store_unavailable.load(Ordering::Relaxed)),
                ),
            ]),
        ),
        (
            "shards".into(),
            JsonValue::Arr(ctx.pool.alive().into_iter().map(JsonValue::Bool).collect()),
        ),
    ])
    .render()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn start() -> Server {
        Server::start(ServeConfig {
            shards: 2,
            ..ServeConfig::default()
        })
        .expect("bind loopback")
    }

    #[test]
    fn health_and_stats_respond() {
        let server = start();
        let (status, body) = client::get(server.addr(), "/health").unwrap();
        assert_eq!((status, body.as_str()), (200, r#"{"status":"ok"}"#));
        let (status, body) = client::get(server.addr(), "/stats").unwrap();
        assert_eq!(status, 200);
        assert!(body.contains(r#""shards":[true,true]"#), "{body}");
        server.shutdown();
    }

    #[test]
    fn submit_then_refetch_and_cache_hit() {
        let server = start();
        let spec = r#"{"workload":"cholesky","n":6,"scheduler":"dmdas","obs":true}"#;
        let (status, body) = client::post_job(server.addr(), spec).unwrap();
        assert_eq!(status, 200, "{body}");
        assert!(body.contains(r#""cache":"miss""#), "{body}");
        let v = parse_json(&body).unwrap();
        let id = v.field("job_id").unwrap().as_u64().unwrap();

        // Same spec again: a counted cache hit with the original id.
        let (status, body2) = client::post_job(server.addr(), spec).unwrap();
        assert_eq!(status, 200, "{body2}");
        assert!(body2.contains(r#""cache":"hit""#), "{body2}");
        assert_eq!(server.state().results.hits(), 1);

        // Refetch by id, then its trace and on-demand lint.
        let (status, body3) = client::get(server.addr(), &format!("/jobs/{id}")).unwrap();
        assert_eq!(status, 200, "{body3}");
        assert!(body3.contains(r#""cache":"stored""#), "{body3}");
        let (status, trace) = client::get(server.addr(), &format!("/jobs/{id}/trace")).unwrap();
        assert_eq!(status, 200, "{trace}");
        assert!(trace.contains("traceEvents"), "{trace}");
        let (status, lint) = client::get(server.addr(), &format!("/jobs/{id}/lint")).unwrap();
        assert_eq!(status, 200, "{lint}");
        assert!(lint.contains(r#""errors":0"#), "{lint}");
        server.shutdown();
    }

    #[test]
    fn killed_shard_answers_shard_dead_not_a_hang() {
        let server = start();
        let (status, body) =
            client::request(server.addr(), "POST", "/admin/shards/0/kill", "").unwrap();
        assert_eq!(status, 200, "{body}");
        let (status, body) =
            client::request(server.addr(), "POST", "/admin/shards/1/kill", "").unwrap();
        assert_eq!(status, 200, "{body}");
        let (status, body) =
            client::post_job(server.addr(), r#"{"workload":"cholesky","n":4}"#).unwrap();
        assert_eq!(status, 503, "{body}");
        assert!(body.contains(r#""status":"degraded""#), "{body}");
        assert!(body.contains(r#""code":"shard-dead""#), "{body}");
        assert!(body.contains(r#""label":"degraded""#), "{body}");
        server.shutdown();
    }

    #[test]
    fn bad_routes_and_methods_have_stable_codes() {
        let server = start();
        let (status, body) = client::get(server.addr(), "/nope").unwrap();
        assert_eq!(status, 404);
        assert!(body.contains(r#""code":"not-found""#), "{body}");
        let (status, body) = client::request(server.addr(), "DELETE", "/jobs", "").unwrap();
        assert_eq!(status, 405);
        assert!(body.contains(r#""code":"bad-method""#), "{body}");
        let (status, body) = client::get(server.addr(), "/jobs/999").unwrap();
        assert_eq!(status, 404, "{body}");
        server.shutdown();
    }
}
