//! The serve-pool model under the DPOR engine: the stock pool must
//! exhaust its interleaving tree with no invariant violation.
//!
//! Full exhaustion (~59k schedules) runs in release builds — the CI
//! `race` job and `repro race` both do it — while debug builds run a
//! bounded prefix so `cargo test` stays quick.

use hetchol_analyze::ExploreConfig;
use hetchol_serve::model;

#[cfg(debug_assertions)]
const MAX_SCHEDULES: usize = 4_000;
#[cfg(not(debug_assertions))]
const MAX_SCHEDULES: usize = 200_000;

#[test]
fn stock_pool_model_explores_clean() {
    let cfg = ExploreConfig {
        max_schedules: MAX_SCHEDULES,
        max_steps: 20_000,
        sleep_sets: true,
    };
    let report = model::check_pool(cfg, None).expect("stock model runs");
    assert!(
        report.is_clean(),
        "stock pool violated an invariant: {:?} (failures: {:?})",
        report.violation,
        report.failures
    );
    assert!(report.schedules_run > 1, "model explored only one schedule");
    // The stock tree is ~59k schedules; release builds must cover it all.
    #[cfg(not(debug_assertions))]
    assert!(
        report.exhausted,
        "stock pool model did not exhaust in {} schedules",
        report.schedules_run
    );
}
