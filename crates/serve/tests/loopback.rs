//! Loopback-socket integration tests: a real server on an ephemeral
//! port, driven through the blocking client — results bitwise-matched
//! against direct in-process [`Run`] calls, golden error bodies pinned
//! verbatim, cache-hit accounting exercised under real concurrency, and
//! the durability surface (crash restart, keep-alive, drain, eviction)
//! driven end to end.

use hetchol::core::platform::Platform;
use hetchol::job::JobSpec;
use hetchol::prelude::*;
use hetchol_core::json::parse_json;
use hetchol_sched::registry;
use hetchol_serve::{client, ServeConfig, Server};
use hetchol_sim::SimOptions;

fn start(config: ServeConfig) -> Server {
    Server::start(config).expect("bind ephemeral loopback port")
}

fn default_server() -> Server {
    start(ServeConfig {
        shards: 2,
        ..ServeConfig::default()
    })
}

#[test]
fn paper_grid_results_match_direct_run_bitwise() {
    let server = default_server();
    for &(workload, n) in &[("cholesky", 4), ("cholesky", 8), ("lu", 6), ("qr", 6)] {
        for sched in ["dmda", "dmdas"] {
            let mut spec = JobSpec::new(workload, n).unwrap().scheduler(sched);
            spec.seed = 5;
            let (status, body) = client::post_job(server.addr(), &spec.to_json()).unwrap();
            assert_eq!(status, 200, "{body}");
            let v = parse_json(&body).unwrap();
            let served_makespan = v.field("makespan_ns").unwrap().as_u64().unwrap();
            let served_gflops = v.field("gflops").unwrap().as_f64().unwrap();

            let graph = spec.workload.graph(n);
            let direct = Run::new(&graph)
                .scheduler_boxed(registry::build(sched, 5).unwrap())
                .try_simulate(
                    &Platform::mirage(),
                    &SimOptions {
                        seed: 5,
                        ..SimOptions::default()
                    },
                )
                .unwrap();
            assert_eq!(
                served_makespan,
                direct.makespan.as_nanos(),
                "{workload} n={n} {sched}: served makespan must be the direct Run's, bit for bit"
            );
            let direct_gflops = spec.workload.gflops(
                n,
                hetchol::core::profiles::TimingProfile::mirage().nb(),
                direct.makespan,
            );
            assert_eq!(
                served_gflops.to_bits(),
                direct_gflops.to_bits(),
                "{workload} n={n} {sched}: gflops bit pattern"
            );
            // The wire hash is the spec's content hash.
            let hex = v.field("spec_hash").unwrap().as_str().unwrap().to_string();
            assert_eq!(hex, spec.hash_hex());
        }
    }
    server.shutdown();
}

#[test]
fn golden_error_bodies_are_stable() {
    let server = start(ServeConfig {
        shards: 2,
        max_n: 16,
        ..ServeConfig::default()
    });

    // Unknown scheduler name: rejected at parse time with the registry list.
    let (status, body) = client::post_job(
        server.addr(),
        r#"{"workload":"cholesky","n":4,"scheduler":"dmdax"}"#,
    )
    .unwrap();
    assert_eq!(status, 400, "{body}");
    let v = parse_json(&body).unwrap();
    assert_eq!(v.field("status").unwrap().as_str().unwrap(), "error");
    assert_eq!(
        v.field("code").unwrap().as_str().unwrap(),
        "unknown-scheduler"
    );
    let detail = v.field("detail").unwrap().as_str().unwrap();
    assert!(detail.contains("dmdax"), "{detail}");
    assert!(
        detail.contains("dmdas"),
        "detail lists known names: {detail}"
    );

    // A plan that kills every worker: typed ConfigError code.
    let (status, body) = client::post_job(
        server.addr(),
        concat!(
            r#"{"workload":"cholesky","n":4,"platform":"homogeneous:2","#,
            r#""profile":"mirage-homogeneous","#,
            r#""faults":[{"kind":"worker_death","worker":0,"after_starts":0},"#,
            r#"{"kind":"worker_death","worker":1,"after_starts":0}]}"#
        ),
    )
    .unwrap();
    assert_eq!(status, 400, "{body}");
    let v = parse_json(&body).unwrap();
    assert_eq!(
        v.field("code").unwrap().as_str().unwrap(),
        "plan-kills-all-workers"
    );

    // Over the server's size budget: refused before queueing.
    let (status, body) =
        client::post_job(server.addr(), r#"{"workload":"cholesky","n":32}"#).unwrap();
    assert_eq!(status, 400, "{body}");
    let v = parse_json(&body).unwrap();
    assert_eq!(v.field("code").unwrap().as_str().unwrap(), "over-budget");
    assert!(
        v.field("detail").unwrap().as_str().unwrap().contains("16"),
        "{body}"
    );

    // Unknown workload: bad-spec.
    let (status, body) = client::post_job(server.addr(), r#"{"workload":"svd","n":4}"#).unwrap();
    assert_eq!(status, 400, "{body}");
    let v = parse_json(&body).unwrap();
    assert_eq!(v.field("code").unwrap().as_str().unwrap(), "bad-spec");

    // Not JSON at all: bad-spec from the shared parser.
    let (status, body) = client::post_job(server.addr(), "not json").unwrap();
    assert_eq!(status, 400, "{body}");
    assert!(body.contains(r#""code":"bad-spec""#), "{body}");
    server.shutdown();
}

#[test]
fn concurrent_identical_specs_hit_the_cache_after_warmup() {
    let server = default_server();
    let spec = r#"{"workload":"cholesky","n":6,"action":"bounds"}"#;

    // Warm the cache with one synchronous request.
    let (status, body) = client::post_job(server.addr(), spec).unwrap();
    assert_eq!(status, 200, "{body}");
    assert!(body.contains(r#""cache":"miss""#), "{body}");

    // 16 concurrent identical submissions: every one is a counted hit
    // answering the original job id.
    let addr = server.addr();
    let first_id = parse_json(&body)
        .unwrap()
        .field("job_id")
        .unwrap()
        .as_u64()
        .unwrap();
    let handles: Vec<_> = (0..16)
        .map(|_| {
            std::thread::spawn(move || client::post_job(addr, spec).expect("loopback request"))
        })
        .collect();
    for handle in handles {
        let (status, body) = handle.join().unwrap();
        assert_eq!(status, 200, "{body}");
        assert!(body.contains(r#""cache":"hit""#), "{body}");
        let id = parse_json(&body)
            .unwrap()
            .field("job_id")
            .unwrap()
            .as_u64()
            .unwrap();
        assert_eq!(id, first_id, "hits echo the original job id");
    }
    assert_eq!(server.state().results.hits(), 16);
    assert_eq!(server.state().results.misses(), 1);

    // The counters were read in one critical section: no interleaving of
    // the 16 concurrent lookups can tear hits/misses/gets apart.
    let snap = server.state().results.snapshot();
    assert_eq!(snap.hits + snap.misses, snap.gets, "torn snapshot");
    assert_eq!(snap.gets, 17, "one counted get per POST");

    // The stats endpoint reports the same numbers over the wire.
    let (status, stats) = client::get(addr, "/stats").unwrap();
    assert_eq!(status, 200);
    let v = parse_json(&stats).unwrap();
    let results = v.field("cache").unwrap().field("results").unwrap();
    assert_eq!(
        results.field("hits").unwrap().as_u64().unwrap(),
        16,
        "{stats}"
    );
    assert_eq!(
        results.field("misses").unwrap().as_u64().unwrap(),
        1,
        "{stats}"
    );
    assert_eq!(
        results.field("gets").unwrap().as_u64().unwrap(),
        17,
        "{stats}"
    );
    server.shutdown();
}

#[test]
fn degraded_responses_reuse_the_simulator_wire_shape() {
    let server = start(ServeConfig {
        shards: 1,
        ..ServeConfig::default()
    });
    // Kill the only shard, then submit: a structured shard-dead 503.
    assert!(server.kill_shard(0));
    let (status, body) =
        client::post_job(server.addr(), r#"{"workload":"cholesky","n":4}"#).unwrap();
    assert_eq!(status, 503, "{body}");
    let v = parse_json(&body).unwrap();
    assert_eq!(v.field("status").unwrap().as_str().unwrap(), "degraded");
    assert_eq!(v.field("code").unwrap().as_str().unwrap(), "shard-dead");
    let outcome = v.field("outcome").unwrap();
    assert_eq!(
        outcome.field("label").unwrap().as_str().unwrap(),
        "degraded"
    );
    let lost = outcome.field("lost_workers").unwrap().as_arr().unwrap();
    assert_eq!(lost.len(), 1);
    assert_eq!(lost[0].as_u64().unwrap(), 0, "shard 0 is the lost worker");
    server.shutdown();
}

#[test]
fn per_request_budget_sheds_as_deadline_degradation() {
    // One shard, and a first job that occupies the worker long enough for
    // a second, tightly-budgeted job to miss its deadline in the queue.
    let server = start(ServeConfig {
        shards: 1,
        max_batch: 1,
        ..ServeConfig::default()
    });
    let addr = server.addr();
    // Back the single worker up with a queue of distinct heavyweight jobs
    // (jittered lint at n=32, different seeds → different content hashes,
    // no dedup), then submit a 1 ms-budget job behind them.
    let slow: Vec<_> = (0..8)
        .map(|seed| {
            std::thread::spawn(move || {
                let body = format!(
                    r#"{{"workload":"cholesky","n":32,"action":"lint","obs":true,"jitter":true,"seed":{seed}}}"#
                );
                client::post_job(addr, &body).expect("slow job answers")
            })
        })
        .collect();
    // Wait until the backlog is actually enqueued before racing it.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
    loop {
        let (_, stats) = client::get(addr, "/stats").unwrap();
        let v = parse_json(&stats).unwrap();
        let submitted = v
            .field("jobs")
            .unwrap()
            .field("submitted")
            .unwrap()
            .as_u64()
            .unwrap();
        let completed = v
            .field("jobs")
            .unwrap()
            .field("completed")
            .unwrap()
            .as_u64()
            .unwrap();
        if submitted >= 8 && completed < 7 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline && completed < 7,
            "backlog drained before the deadline job could race it: {stats}"
        );
        std::thread::yield_now();
    }
    let (status, body) =
        client::post_job(addr, r#"{"workload":"qr","n":12,"budget_ms":1,"seed":77}"#).unwrap();
    assert_eq!(status, 503, "{body}");
    let v = parse_json(&body).unwrap();
    assert_eq!(
        v.field("code").unwrap().as_str().unwrap(),
        "deadline",
        "{body}"
    );
    assert_eq!(
        v.field("outcome")
            .unwrap()
            .field("label")
            .unwrap()
            .as_str()
            .unwrap(),
        "degraded"
    );
    for handle in slow {
        let (status, _) = handle.join().unwrap();
        assert_eq!(status, 200);
    }
    server.shutdown();
}

/// A unique scratch directory for a log-backed server.
fn scratch(tag: &str) -> std::path::PathBuf {
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .expect("clock after the epoch")
        .as_nanos();
    let dir = std::env::temp_dir().join(format!(
        "hetchol-loopback-{tag}-{}-{nanos}",
        std::process::id()
    ));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

#[test]
fn restart_reserves_committed_traces_bitwise_identical() {
    let dir = scratch("restart");
    let log = dir.join("jobs.jlog");
    let spec = r#"{"workload":"cholesky","n":6,"obs":true,"seed":9}"#;

    let server = start(ServeConfig {
        shards: 2,
        log_path: Some(log.clone()),
        ..ServeConfig::default()
    });
    let (status, body) = client::post_job(server.addr(), spec).unwrap();
    assert_eq!(status, 200, "{body}");
    let id = parse_json(&body)
        .unwrap()
        .field("job_id")
        .unwrap()
        .as_u64()
        .unwrap();
    let (status, trace) = client::get(server.addr(), &format!("/jobs/{id}/trace")).unwrap();
    assert_eq!(status, 200);
    let (_, summary) = client::get(server.addr(), &format!("/jobs/{id}")).unwrap();
    server.shutdown();

    // Same log, new process-equivalent: the job and its trace survive.
    let server = start(ServeConfig {
        shards: 2,
        log_path: Some(log),
        ..ServeConfig::default()
    });
    let report = server
        .recovery()
        .expect("log-backed servers report recovery");
    assert!(report.is_clean(), "{report:?}");
    assert_eq!(report.recovered, 1, "{report:?}");
    let (status, replayed) = client::get(server.addr(), &format!("/jobs/{id}/trace")).unwrap();
    assert_eq!(status, 200);
    assert_eq!(
        replayed, trace,
        "a restarted server re-serves the trace bitwise-identical"
    );
    let (status, resummary) = client::get(server.addr(), &format!("/jobs/{id}")).unwrap();
    assert_eq!(status, 200, "{resummary}");
    assert_eq!(resummary, summary, "the job summary survives too");
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn keep_alive_reuses_one_connection_across_requests() {
    let server = default_server();
    let mut conn = client::Conn::new(server.addr());
    for _ in 0..5 {
        let (status, body) = conn.request("GET", "/health", "").unwrap();
        assert_eq!(status, 200, "{body}");
    }
    assert_eq!(conn.reused(), 4, "four of five exchanges reuse the socket");
    server.shutdown();
}

#[test]
fn request_cap_closes_the_connection_and_the_client_reconnects() {
    let server = start(ServeConfig {
        shards: 1,
        max_requests_per_conn: 2,
        ..ServeConfig::default()
    });
    let mut conn = client::Conn::new(server.addr());
    for _ in 0..4 {
        let (status, _) = conn.request("GET", "/health", "").unwrap();
        assert_eq!(status, 200);
    }
    // Per pair: one fresh exchange, one reused, then the server's cap
    // answers `Connection: close` and the client reconnects.
    assert_eq!(conn.reused(), 2);
    server.shutdown();
}

#[test]
fn drain_finishes_commits_then_sheds_draining() {
    let dir = scratch("drain");
    let log = dir.join("jobs.jlog");
    let server = start(ServeConfig {
        shards: 2,
        log_path: Some(log.clone()),
        ..ServeConfig::default()
    });
    let (status, body) =
        client::post_job(server.addr(), r#"{"workload":"cholesky","n":4,"seed":3}"#).unwrap();
    assert_eq!(status, 200, "{body}");

    let (status, body) = client::request(server.addr(), "POST", "/admin/drain", "").unwrap();
    assert_eq!(status, 200, "{body}");
    assert!(body.contains(r#""status":"drained""#), "{body}");

    // Post-drain submissions shed a structured 503, never a dropped
    // connection; reads still work.
    let (status, body) =
        client::post_job(server.addr(), r#"{"workload":"cholesky","n":5,"seed":3}"#).unwrap();
    assert_eq!(status, 503, "{body}");
    assert!(body.contains(r#""code":"draining""#), "{body}");
    let (status, _) = client::get(server.addr(), "/stats").unwrap();
    assert_eq!(status, 200);

    server.wait_drained(); // already drained: returns immediately
    server.shutdown();

    // The drain's final fsync left the commit durable and the log clean.
    let bytes = std::fs::read(&log).unwrap();
    let (records, report) = hetchol_serve::wal::scan(&bytes);
    assert_eq!(records.len(), 1, "{report:?}");
    assert!(report.is_clean(), "{report:?}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn eviction_under_memory_pressure_reloads_from_the_log() {
    let dir = scratch("evict");
    let log = dir.join("jobs.jlog");
    let server = start(ServeConfig {
        shards: 1,
        log_path: Some(log),
        max_resident_jobs: 1,
        ..ServeConfig::default()
    });
    let addr = server.addr();

    let (status, body) =
        client::post_job(addr, r#"{"workload":"cholesky","n":4,"obs":true,"seed":1}"#).unwrap();
    assert_eq!(status, 200, "{body}");
    let id1 = parse_json(&body)
        .unwrap()
        .field("job_id")
        .unwrap()
        .as_u64()
        .unwrap();
    let (_, trace1) = client::get(addr, &format!("/jobs/{id1}/trace")).unwrap();

    // A second commit over the 1-job residency cap evicts the first.
    let (status, body) =
        client::post_job(addr, r#"{"workload":"cholesky","n":4,"obs":true,"seed":2}"#).unwrap();
    assert_eq!(status, 200, "{body}");
    let (_, stats) = client::get(addr, "/stats").unwrap();
    let v = parse_json(&stats).unwrap();
    let store = v.field("store").unwrap();
    assert!(
        store.field("evicted").unwrap().as_u64().unwrap() >= 1,
        "{stats}"
    );

    // The evicted job transparently reloads from the log, bit for bit.
    let (status, reloaded) = client::get(addr, &format!("/jobs/{id1}/trace")).unwrap();
    assert_eq!(status, 200);
    assert_eq!(reloaded, trace1);
    let (_, stats) = client::get(addr, "/stats").unwrap();
    let v = parse_json(&stats).unwrap();
    assert!(
        v.field("store")
            .unwrap()
            .field("reloads")
            .unwrap()
            .as_u64()
            .unwrap()
            >= 1,
        "{stats}"
    );
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
