//! Crash-recovery property tests for the append-only job log: on a log
//! of random records, any truncation or byte-flip recovers exactly the
//! longest checksummed prefix — no panic, no phantom jobs — and the
//! torn-tail warning renders a stable wire shape.

use hetchol::job::{JobOutcome, JobSpec};
use hetchol_core::fault::RunOutcome;
use hetchol_serve::wal::{scan, WalRecord};
use proptest::prelude::*;

/// A deterministic synthetic record: a real spec and outcome in their
/// wire forms, with a trace on even seeds so both payload shapes occur.
fn record(id: u64, seed: u64) -> WalRecord {
    let mut spec = JobSpec::new("cholesky", 4 + (seed % 5) as usize).expect("known workload");
    spec.seed = seed;
    spec.obs = seed.is_multiple_of(2);
    let outcome = JobOutcome {
        spec_hash: spec.content_hash(),
        workload: spec.workload,
        n: spec.n,
        scheduler: spec.scheduler.clone(),
        action: spec.action,
        outcome: RunOutcome::Completed,
        makespan: None,
        gflops: None,
        bounds: None,
        certified: None,
        lint: None,
    };
    WalRecord {
        id,
        spec,
        outcome,
        trace: seed
            .is_multiple_of(2)
            .then(|| format!("{{\"traceEvents\":[],\"seed\":{seed}}}")),
    }
}

/// Frame `n` records into one log image; returns the bytes, the
/// records, and each frame's end offset.
fn build_log(n: usize, seed: u64) -> (Vec<u8>, Vec<WalRecord>, Vec<usize>) {
    let mut bytes = Vec::new();
    let mut records = Vec::new();
    let mut ends = Vec::new();
    for i in 0..n {
        let rec = record(1 + i as u64, seed.wrapping_add(i as u64));
        bytes.extend_from_slice(&rec.frame());
        ends.push(bytes.len());
        records.push(rec);
    }
    (bytes, records, ends)
}

/// The shared postcondition: the scan of a (possibly corrupt) log image
/// must hand back exactly the first `expect` of `records`, bit for bit,
/// and the report must be internally consistent.
fn assert_longest_prefix(
    corrupted: &[u8],
    records: &[WalRecord],
    ends: &[usize],
    expect: usize,
) -> Result<(), String> {
    let (scanned, report) = scan(corrupted);
    if scanned.len() != expect {
        return Err(format!(
            "recovered {} record(s), expected the {expect}-record prefix: {report:?}",
            scanned.len()
        ));
    }
    for (i, s) in scanned.iter().enumerate() {
        if s.record != records[i] {
            return Err(format!("recovered record {i} is not the one written"));
        }
        let start = if i == 0 { 0 } else { ends[i - 1] };
        if s.offset != start as u64 || s.frame_bytes != ends[i] - start {
            return Err(format!("recovered record {i} has the wrong frame geometry"));
        }
    }
    let valid = if expect == 0 {
        0
    } else {
        ends[expect - 1] as u64
    };
    if report.recovered != expect || report.valid_bytes != valid {
        return Err(format!("inconsistent report: {report:?}"));
    }
    if report.total_bytes != corrupted.len() as u64 {
        return Err(format!("report total_bytes wrong: {report:?}"));
    }
    if report.torn.is_some() != (valid < corrupted.len() as u64) {
        return Err(format!(
            "torn tail must be reported iff bytes were dropped: {report:?}"
        ));
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Truncating the log at any byte recovers exactly the records whose
    /// whole frame survived.
    #[test]
    fn truncation_recovers_the_longest_whole_prefix(
        n in 1usize..6,
        seed in 0u64..1_000_000,
        cut_seed in 0u64..1_000_000,
    ) {
        let (bytes, records, ends) = build_log(n, seed);
        let cut = (cut_seed % (bytes.len() as u64 + 1)) as usize;
        let expect = ends.iter().filter(|&&e| e <= cut).count();
        assert_longest_prefix(&bytes[..cut], &records, &ends, expect)?;
    }

    /// Flipping any single byte stops recovery at the record containing
    /// it — never past it (phantom) and never before it (lost commit).
    #[test]
    fn byte_flip_stops_recovery_at_the_corrupt_record(
        n in 1usize..6,
        seed in 0u64..1_000_000,
        pos_seed in 0u64..1_000_000,
    ) {
        let (mut bytes, records, ends) = build_log(n, seed);
        let pos = (pos_seed % bytes.len() as u64) as usize;
        bytes[pos] ^= 0xff;
        let expect = ends.iter().filter(|&&e| e <= pos).count();
        assert_longest_prefix(&bytes, &records, &ends, expect)?;
    }

    /// An uncorrupted log always scans clean and whole.
    #[test]
    fn clean_logs_recover_everything(n in 0usize..6, seed in 0u64..1_000_000) {
        let (bytes, records, ends) = build_log(n, seed);
        assert_longest_prefix(&bytes, &records, &ends, n)?;
        let (_, report) = scan(&bytes);
        prop_assert!(report.is_clean());
    }
}

/// The startup warning's wire shape is golden-pinned: garbage shorter
/// than one header renders this exact report.
#[test]
fn torn_tail_warning_renders_the_golden_shape() {
    let (scanned, report) = scan(b"xxxxx");
    assert!(scanned.is_empty());
    assert_eq!(
        report.to_json_value().render(),
        r#"{"status":"recovered","recovered":0,"valid_bytes":0,"total_bytes":5,"torn":{"offset":0,"reason":"truncated header (5 of 12 bytes)"}}"#
    );

    // A clean scan renders `torn: null`.
    let rec = record(7, 4);
    let (_, clean) = scan(&rec.frame());
    let rendered = clean.to_json_value().render();
    assert!(rendered.contains(r#""recovered":1"#), "{rendered}");
    assert!(rendered.ends_with(r#""torn":null}"#), "{rendered}");
}
