//! Simulated-annealing local search over the (classes, priorities)
//! encoding.
//!
//! Moves: flip one task's resource class, swap two tasks' priorities, or
//! nudge one task's priority. Each candidate is decoded by
//! [`crate::list::list_schedule`]; acceptance follows the Metropolis rule
//! with geometric cooling. The paper's observation that the CP solution's
//! value lies in its *precise ordering* (Section VI-B) is exactly why the
//! priority moves matter as much as the mapping moves.

use crate::list::{encode, list_schedule};
use crate::CpOptions;
use hetchol_core::dag::TaskGraph;
use hetchol_core::platform::Platform;
use hetchol_core::profiles::TimingProfile;
use hetchol_core::schedule::Schedule;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Improve `seed_schedule` by simulated annealing; returns the best
/// schedule observed (never worse than the decoded seed).
pub fn anneal(
    graph: &TaskGraph,
    platform: &Platform,
    profile: &TimingProfile,
    seed_schedule: &Schedule,
    opts: &CpOptions,
) -> Schedule {
    let n = graph.len();
    let (mut classes, mut priorities) = encode(seed_schedule, platform);
    let mut rng = ChaCha8Rng::seed_from_u64(opts.seed);

    let mut current = list_schedule(graph, platform, profile, &classes, &priorities);
    let mut current_cost = current.makespan().as_secs_f64();
    let mut best = current.clone();
    let mut best_cost = current_cost;

    // Temperature scaled to the makespan: initial moves worth ~2% of the
    // makespan are accepted readily, then cooled geometrically.
    let mut temperature = 0.02 * current_cost.max(1e-9);
    let cooling = (1e-3f64).powf(1.0 / opts.anneal_iters.max(1) as f64);

    for _ in 0..opts.anneal_iters {
        // Propose a move: flip a class, swap two priorities, reassign one
        // priority anywhere in the observed range, or jointly retarget a
        // task (class flip + priority reassignment) — the joint move is
        // what lets a task migrate *and* land at a sensible position in
        // its new queue within a single acceptance test.
        let mut new_classes = classes.clone();
        let mut new_priorities = priorities.clone();
        let (lo, hi) = {
            let lo = priorities.iter().copied().min().unwrap_or(0);
            let hi = priorities.iter().copied().max().unwrap_or(0);
            (lo - 1, hi + 1)
        };
        match rng.gen_range(0..4u8) {
            0 if platform.n_classes() > 1 => {
                let t = rng.gen_range(0..n);
                let shift = rng.gen_range(1..platform.n_classes());
                new_classes[t] = (new_classes[t] + shift) % platform.n_classes();
            }
            1 => {
                let a = rng.gen_range(0..n);
                let b = rng.gen_range(0..n);
                new_priorities.swap(a, b);
            }
            2 => {
                let t = rng.gen_range(0..n);
                new_priorities[t] = rng.gen_range(lo..=hi);
            }
            _ => {
                let t = rng.gen_range(0..n);
                if platform.n_classes() > 1 {
                    let shift = rng.gen_range(1..platform.n_classes());
                    new_classes[t] = (new_classes[t] + shift) % platform.n_classes();
                }
                new_priorities[t] = rng.gen_range(lo..=hi);
            }
        }

        let candidate = list_schedule(graph, platform, profile, &new_classes, &new_priorities);
        let cost = candidate.makespan().as_secs_f64();
        let accept =
            cost <= current_cost || rng.gen::<f64>() < ((current_cost - cost) / temperature).exp();
        if accept {
            classes = new_classes;
            priorities = new_priorities;
            current = candidate;
            current_cost = cost;
            if cost < best_cost {
                best_cost = cost;
                best = current.clone();
            }
        }
        temperature *= cooling;
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetchol_core::schedule::DurationCheck;
    use hetchol_sched::heft_schedule;

    #[test]
    fn annealing_never_regresses_below_seed() {
        let graph = TaskGraph::cholesky(5);
        let platform = Platform::mirage().without_comm();
        let profile = TimingProfile::mirage();
        let seed = heft_schedule(&graph, &platform, &profile);
        let opts = CpOptions {
            anneal_iters: 3_000,
            node_limit: 0,
            seed: 3,
        };
        let out = anneal(&graph, &platform, &profile, &seed, &opts);
        out.validate(&graph, &platform, &profile, DurationCheck::Exact)
            .unwrap();
        // `anneal` returns the best schedule *observed*, which includes the
        // decoded seed itself.
        let (c, p) = crate::list::encode(&seed, &platform);
        let decoded_seed = crate::list::list_schedule(&graph, &platform, &profile, &c, &p);
        assert!(out.makespan() <= decoded_seed.makespan());
    }

    #[test]
    fn annealing_is_deterministic_per_seed() {
        let graph = TaskGraph::cholesky(4);
        let platform = Platform::mirage().without_comm();
        let profile = TimingProfile::mirage();
        let seed = heft_schedule(&graph, &platform, &profile);
        let opts = CpOptions {
            anneal_iters: 500,
            node_limit: 0,
            seed: 9,
        };
        let a = anneal(&graph, &platform, &profile, &seed, &opts);
        let b = anneal(&graph, &platform, &profile, &seed, &opts);
        assert_eq!(a.makespan(), b.makespan());
    }

    #[test]
    fn annealing_improves_a_bad_seed() {
        // Seed: everything serial on one CPU. Annealing must find
        // something dramatically better on a 12-worker machine.
        let graph = TaskGraph::cholesky(4);
        let platform = Platform::mirage().without_comm();
        let profile = TimingProfile::mirage();
        let serial = {
            use hetchol_core::schedule::ScheduleEntry;
            use hetchol_core::time::Time;
            let mut t = Time::ZERO;
            Schedule::from_entries(
                graph
                    .tasks()
                    .iter()
                    .map(|task| {
                        let d = profile.time(task.kernel(), 0);
                        let e = ScheduleEntry {
                            task: task.id,
                            worker: 0,
                            start: t,
                            end: t + d,
                        };
                        t += d;
                        e
                    })
                    .collect(),
            )
        };
        let opts = CpOptions {
            anneal_iters: 4_000,
            node_limit: 0,
            seed: 1,
        };
        let out = anneal(&graph, &platform, &profile, &serial, &opts);
        assert!(
            out.makespan().as_secs_f64() < 0.6 * serial.makespan().as_secs_f64(),
            "{} vs serial {}",
            out.makespan(),
            serial.makespan()
        );
    }
}
