//! # hetchol-cp
//!
//! A constraint-programming-style schedule optimizer, substituting for the
//! paper's IBM CP Optimizer runs (Section III-B): same relaxed model (no
//! data transfers), same role (very good *feasible* schedules used as a
//! comparison point and replayed through the runtime), same anytime
//! behaviour (seeded with a HEFT solution, budget-limited, rarely able to
//! *prove* optimality beyond tiny matrices — the paper could not either).
//!
//! Three cooperating pieces:
//!
//! * [`list`] — a deterministic evaluator turning a *(class assignment,
//!   priority vector)* pair into a feasible schedule by priority list
//!   scheduling;
//! * [`anneal`] — simulated-annealing local search over that encoding;
//! * [`search`] — chronological branch-and-bound with earliest-start
//!   propagation and area/critical-path pruning, which can prove
//!   optimality on small instances.
//!
//! [`optimize_schedule`] chains them: HEFT seed → annealing → (optionally)
//! exact search, returning the best schedule found within the budget.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod anneal;
pub mod list;
pub mod search;

use hetchol_core::dag::TaskGraph;
use hetchol_core::platform::Platform;
use hetchol_core::profiles::TimingProfile;
use hetchol_core::schedule::Schedule;
use hetchol_core::time::Time;
use hetchol_sched::heft_schedule;

/// Budget knobs for the optimizer.
#[derive(Copy, Clone, Debug)]
pub struct CpOptions {
    /// Simulated-annealing iterations (0 disables local search).
    pub anneal_iters: usize,
    /// Branch-and-bound node budget (0 disables exact search).
    pub node_limit: usize,
    /// RNG seed for the annealer.
    pub seed: u64,
}

impl Default for CpOptions {
    fn default() -> Self {
        CpOptions {
            anneal_iters: 20_000,
            node_limit: 50_000,
            seed: 0,
        }
    }
}

impl CpOptions {
    /// A fast budget for tests and sweeps.
    pub fn quick(seed: u64) -> CpOptions {
        CpOptions {
            anneal_iters: 2_000,
            node_limit: 5_000,
            seed,
        }
    }
}

/// Result of an optimization run.
#[derive(Clone, Debug)]
pub struct CpSolution {
    /// Best feasible schedule found.
    pub schedule: Schedule,
    /// Its makespan.
    pub makespan: Time,
    /// Whether the exact search proved this optimal (for the relaxed,
    /// communication-free model).
    pub proved_optimal: bool,
    /// Branch-and-bound nodes explored.
    pub nodes: usize,
}

/// Run the full pipeline: HEFT seed, annealing improvement, exact search.
///
/// ```
/// use hetchol_core::{dag::TaskGraph, platform::Platform, profiles::TimingProfile};
/// use hetchol_cp::{optimize_schedule, CpOptions};
///
/// let graph = TaskGraph::cholesky(2); // a pure chain: provably optimal
/// let platform = Platform::mirage().without_comm();
/// let profile = TimingProfile::mirage();
/// let sol = optimize_schedule(&graph, &platform, &profile, &CpOptions::default());
/// assert!(sol.proved_optimal);
/// ```
pub fn optimize_schedule(
    graph: &TaskGraph,
    platform: &Platform,
    profile: &TimingProfile,
    opts: &CpOptions,
) -> CpSolution {
    optimize_from(graph, platform, profile, &[], opts)
}

/// [`optimize_schedule`] with additional warm-start schedules (e.g. the
/// schedule a `dmdas` simulation produced), mirroring the paper's practice
/// of seeding CP Optimizer with a heuristic solution. The best seed is
/// both the incumbent and the annealing start, so the result never falls
/// below any provided seed.
pub fn optimize_from(
    graph: &TaskGraph,
    platform: &Platform,
    profile: &TimingProfile,
    extra_seeds: &[&Schedule],
    opts: &CpOptions,
) -> CpSolution {
    // 1. HEFT seed, challenged by any caller-provided schedules.
    let heft = heft_schedule(graph, platform, profile);
    let mut best = heft;
    let mut best_makespan = best.makespan();
    for &seed in extra_seeds {
        if seed.makespan() < best_makespan {
            best_makespan = seed.makespan();
            best = seed.clone();
        }
    }

    // 2. Local search on the (classes, priorities) encoding.
    if opts.anneal_iters > 0 && !graph.is_empty() {
        let annealed = anneal::anneal(graph, platform, profile, &best, opts);
        if annealed.makespan() < best_makespan {
            best_makespan = annealed.makespan();
            best = annealed;
        }
    }

    // 3. Exact chronological search (anytime, prunes with the incumbent).
    let mut proved = false;
    let mut nodes = 0;
    if opts.node_limit > 0 && !graph.is_empty() {
        let outcome = search::branch_and_bound(graph, platform, profile, best_makespan, opts);
        nodes = outcome.nodes;
        proved = outcome.proved_optimal;
        if let Some(s) = outcome.schedule {
            if s.makespan() < best_makespan {
                best_makespan = s.makespan();
                best = s;
            }
        }
    }

    // In debug builds, run the full linter over the winning schedule: a
    // search bug (broken neighbor move, bad bound pruning) must surface
    // here as a structured report, not as a silently-impossible result.
    #[cfg(debug_assertions)]
    {
        let report = hetchol_analyze::Linter::new(graph, platform, profile).lint_schedule(&best);
        debug_assert!(
            report.is_clean(),
            "optimizer produced an invalid schedule: {}",
            report.to_json()
        );
    }

    CpSolution {
        makespan: best_makespan,
        schedule: best,
        proved_optimal: proved,
        nodes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetchol_core::schedule::DurationCheck;

    #[test]
    fn pipeline_beats_or_matches_heft() {
        let graph = TaskGraph::cholesky(4);
        let platform = Platform::mirage().without_comm();
        let profile = TimingProfile::mirage();
        let heft = heft_schedule(&graph, &platform, &profile).makespan();
        let sol = optimize_schedule(&graph, &platform, &profile, &CpOptions::quick(1));
        assert!(sol.makespan <= heft, "{} vs heft {heft}", sol.makespan);
        sol.schedule
            .validate(&graph, &platform, &profile, DurationCheck::Exact)
            .unwrap();
    }

    #[test]
    fn chain_instance_is_solved_optimally() {
        // n = 2 tiles: the DAG is the pure chain POTRF-TRSM-SYRK-POTRF, so
        // the optimum is the sum of the fastest execution times.
        let graph = TaskGraph::cholesky(2);
        let platform = Platform::mirage().without_comm();
        let profile = TimingProfile::mirage();
        let expected: Time = graph
            .tasks()
            .iter()
            .map(|t| profile.fastest_time(t.kernel()))
            .sum();
        let sol = optimize_schedule(&graph, &platform, &profile, &CpOptions::default());
        assert_eq!(sol.makespan, expected);
        assert!(sol.proved_optimal, "4-task chain must be closed");
    }

    #[test]
    fn empty_graph_is_trivial() {
        let graph = TaskGraph::cholesky(0);
        let platform = Platform::mirage().without_comm();
        let profile = TimingProfile::mirage();
        let sol = optimize_schedule(&graph, &platform, &profile, &CpOptions::quick(0));
        assert_eq!(sol.makespan, Time::ZERO);
    }
}
