//! Chronological branch-and-bound over (task order, class) decisions.
//!
//! Each node schedules one more ready task on a resource class (placed on
//! the earliest-free worker of that class — workers within a class are
//! interchangeable, so this loses no schedules from the semi-active set,
//! which contains an optimum for makespan). Pruning combines:
//!
//! * the partial makespan,
//! * earliest-start + bottom-level (critical-path propagation, as a CP
//!   solver's precedence propagation would),
//! * a work-conservation (area) bound over the remaining tasks.
//!
//! Like the paper's CP Optimizer runs, the search is *anytime*: it
//! improves the incumbent within a node budget and only occasionally
//! proves optimality (tiny matrices).

use crate::CpOptions;
use hetchol_core::dag::TaskGraph;
use hetchol_core::platform::Platform;
use hetchol_core::profiles::TimingProfile;
use hetchol_core::schedule::{Schedule, ScheduleEntry};
use hetchol_core::task::TaskId;
use hetchol_core::time::Time;

/// Outcome of the exact search.
#[derive(Clone, Debug)]
pub struct SearchOutcome {
    /// Best schedule found that strictly improves on the caller's
    /// incumbent makespan (`None` if the incumbent stands).
    pub schedule: Option<Schedule>,
    /// Whether the search space was exhausted (optimality proof for the
    /// communication-free model).
    pub proved_optimal: bool,
    /// Nodes explored.
    pub nodes: usize,
}

struct SearchState<'a> {
    graph: &'a TaskGraph,
    platform: &'a Platform,
    profile: &'a TimingProfile,
    /// Bottom levels at fastest times (ns), for pruning.
    bottom: Vec<Time>,
    /// Fastest duration per task (ns), for the area bound.
    fastest: Vec<Time>,
    /// Sum of fastest durations of unscheduled tasks.
    remaining_work: Time,
    n_workers: u64,
    indeg: Vec<usize>,
    deps_done: Vec<Time>,
    /// Earliest-free time of each worker, grouped by class.
    worker_free: Vec<Time>,
    /// Partial schedule under construction (entries pushed/popped).
    partial: Vec<ScheduleEntry>,
    partial_makespan: Vec<Time>, // stack of running maxima
    ready: Vec<TaskId>,
    best_makespan: Time,
    best: Option<Vec<ScheduleEntry>>,
    nodes: usize,
    node_limit: usize,
    aborted: bool,
}

impl SearchState<'_> {
    fn lower_bound(&self) -> Time {
        let current = *self.partial_makespan.last().expect("stack seeded");
        // Critical-path propagation over ready tasks.
        let mut lb = current;
        for &t in &self.ready {
            lb = lb.max(self.deps_done[t.index()] + self.bottom[t.index()]);
        }
        // Area bound: remaining work must fit in the workers' free time.
        let free_sum: u64 = self.worker_free.iter().map(|t| t.as_nanos()).sum();
        let area = (self.remaining_work.as_nanos() + free_sum) / self.n_workers;
        lb.max(Time::from_nanos(area))
    }

    fn dfs(&mut self) {
        if self.nodes >= self.node_limit {
            self.aborted = true;
            return;
        }
        self.nodes += 1;

        if self.ready.is_empty() {
            debug_assert_eq!(self.partial.len(), self.graph.len());
            let makespan = *self.partial_makespan.last().expect("stack seeded");
            if makespan < self.best_makespan {
                self.best_makespan = makespan;
                self.best = Some(self.partial.clone());
            }
            return;
        }
        if self.lower_bound() >= self.best_makespan {
            return; // dominated
        }

        // Branch on ready tasks in decreasing bottom level (most critical
        // first), then on classes in increasing execution time.
        let mut task_order: Vec<usize> = (0..self.ready.len()).collect();
        task_order.sort_by_key(|&i| std::cmp::Reverse(self.bottom[self.ready[i].index()]));

        for ti in task_order {
            let task = self.ready[ti];
            let kernel = self.graph.task(task).kernel();
            let mut class_order: Vec<usize> = (0..self.platform.n_classes()).collect();
            class_order.sort_by_key(|&c| self.profile.time(kernel, c));

            for class in class_order {
                // Earliest-free worker of the class.
                let w = self
                    .platform
                    .workers_in_class(class)
                    .min_by_key(|&w| self.worker_free[w])
                    .expect("class has workers");
                let start = self.worker_free[w].max(self.deps_done[task.index()]);
                let dur = self.profile.time(kernel, class);
                let end = start + dur;

                // Apply.
                let saved_free = self.worker_free[w];
                self.worker_free[w] = end;
                self.ready.swap_remove(ti);
                self.remaining_work -= self.fastest[task.index()];
                let prev_makespan = *self.partial_makespan.last().expect("seeded");
                self.partial_makespan.push(prev_makespan.max(end));
                self.partial.push(ScheduleEntry {
                    task,
                    worker: w,
                    start,
                    end,
                });
                let mut released = Vec::new();
                let mut saved_deps = Vec::new();
                for &succ in self.graph.successors(task) {
                    saved_deps.push((succ, self.deps_done[succ.index()]));
                    let d = &mut self.deps_done[succ.index()];
                    *d = (*d).max(end);
                    self.indeg[succ.index()] -= 1;
                    if self.indeg[succ.index()] == 0 {
                        self.ready.push(succ);
                        released.push(succ);
                    }
                }

                self.dfs();

                // Undo.
                for &succ in &released {
                    let pos = self
                        .ready
                        .iter()
                        .position(|&t| t == succ)
                        .expect("released task is ready");
                    self.ready.swap_remove(pos);
                }
                for &(succ, old) in &saved_deps {
                    self.deps_done[succ.index()] = old;
                    self.indeg[succ.index()] += 1;
                }
                self.partial.pop();
                self.partial_makespan.pop();
                self.remaining_work += self.fastest[task.index()];
                // Restore `ready` membership of `task` at index `ti`:
                // swap_remove moved the last element into `ti`.
                self.ready.push(task);
                let last = self.ready.len() - 1;
                self.ready.swap(ti, last);
                self.worker_free[w] = saved_free;

                if self.aborted {
                    return;
                }
            }
        }
    }
}

/// Exhaustive (budgeted) search below the caller's incumbent makespan.
pub fn branch_and_bound(
    graph: &TaskGraph,
    platform: &Platform,
    profile: &TimingProfile,
    incumbent: Time,
    opts: &CpOptions,
) -> SearchOutcome {
    let fastest: Vec<Time> = graph
        .tasks()
        .iter()
        .map(|t| profile.fastest_time(t.kernel()))
        .collect();
    let bottom = graph.bottom_levels(|t| fastest[t.index()]);
    let remaining_work: Time = fastest.iter().copied().sum();
    let indeg = graph.indegrees();
    let ready: Vec<TaskId> = graph
        .tasks()
        .iter()
        .filter(|t| indeg[t.id.index()] == 0)
        .map(|t| t.id)
        .collect();

    let mut state = SearchState {
        graph,
        platform,
        profile,
        bottom,
        fastest,
        remaining_work,
        n_workers: platform.n_workers() as u64,
        indeg,
        deps_done: vec![Time::ZERO; graph.len()],
        worker_free: vec![Time::ZERO; platform.n_workers()],
        partial: Vec::with_capacity(graph.len()),
        partial_makespan: vec![Time::ZERO],
        ready,
        best_makespan: incumbent,
        best: None,
        nodes: 0,
        node_limit: opts.node_limit,
        aborted: false,
    };
    state.dfs();

    SearchOutcome {
        schedule: state.best.map(Schedule::from_entries),
        proved_optimal: !state.aborted,
        nodes: state.nodes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetchol_core::schedule::DurationCheck;
    use hetchol_sched::heft_schedule;

    #[test]
    fn proves_chain_optimum() {
        let graph = TaskGraph::cholesky(2);
        let platform = Platform::mirage().without_comm();
        let profile = TimingProfile::mirage();
        let heft = heft_schedule(&graph, &platform, &profile).makespan();
        let out = branch_and_bound(
            &graph,
            &platform,
            &profile,
            heft + Time::from_millis(1),
            &CpOptions::default(),
        );
        assert!(out.proved_optimal);
        let s = out.schedule.expect("chain must improve loose incumbent");
        let expected: Time = graph
            .tasks()
            .iter()
            .map(|t| profile.fastest_time(t.kernel()))
            .sum();
        assert_eq!(s.makespan(), expected);
        s.validate(&graph, &platform, &profile, DurationCheck::Exact)
            .unwrap();
    }

    #[test]
    fn budget_abort_is_reported() {
        let graph = TaskGraph::cholesky(6);
        let platform = Platform::mirage().without_comm();
        let profile = TimingProfile::mirage();
        let out = branch_and_bound(
            &graph,
            &platform,
            &profile,
            Time::from_secs(100),
            &CpOptions {
                anneal_iters: 0,
                node_limit: 200,
                seed: 0,
            },
        );
        assert!(!out.proved_optimal);
        assert!(out.nodes <= 200);
        // With a huge incumbent, some complete schedule is usually found
        // even under a tiny budget (DFS dives); if found, it validates.
        if let Some(s) = out.schedule {
            s.validate(&graph, &platform, &profile, DurationCheck::Exact)
                .unwrap();
        }
    }

    #[test]
    fn never_returns_worse_than_incumbent() {
        let graph = TaskGraph::cholesky(3);
        let platform = Platform::mirage().without_comm();
        let profile = TimingProfile::mirage();
        let incumbent = heft_schedule(&graph, &platform, &profile).makespan();
        let out = branch_and_bound(
            &graph,
            &platform,
            &profile,
            incumbent,
            &CpOptions {
                anneal_iters: 0,
                node_limit: 100_000,
                seed: 0,
            },
        );
        if let Some(s) = out.schedule {
            assert!(s.makespan() < incumbent);
        }
    }

    #[test]
    fn tight_incumbent_prunes_everything() {
        // An incumbent equal to the critical-path bound cannot be improved;
        // the search must close quickly and return nothing.
        let graph = TaskGraph::cholesky(2);
        let platform = Platform::mirage().without_comm();
        let profile = TimingProfile::mirage();
        let cp: Time = graph
            .tasks()
            .iter()
            .map(|t| profile.fastest_time(t.kernel()))
            .sum();
        let out = branch_and_bound(&graph, &platform, &profile, cp, &CpOptions::default());
        assert!(out.proved_optimal);
        assert!(out.schedule.is_none());
        assert!(
            out.nodes < 100,
            "pruning should kill the tree, {} nodes",
            out.nodes
        );
    }
}
