//! Priority list scheduling: the deterministic evaluator behind the local
//! search.
//!
//! An individual of the search space is a pair *(class per task, priority
//! per task)*. The evaluator builds a feasible schedule by repeatedly
//! taking the highest-priority ready task and placing it on the
//! earliest-available worker of its class — the classic list-scheduling
//! decode, matching how the runtime replays injected schedules.

use hetchol_core::dag::TaskGraph;
use hetchol_core::platform::{ClassId, Platform};
use hetchol_core::profiles::TimingProfile;
use hetchol_core::schedule::{Schedule, ScheduleEntry};
use hetchol_core::task::TaskId;
use hetchol_core::time::Time;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Decode `(classes, priorities)` into a feasible schedule.
///
/// Ties in priority break towards the smaller task id, making the decode
/// a deterministic function of its inputs.
pub fn list_schedule(
    graph: &TaskGraph,
    platform: &Platform,
    profile: &TimingProfile,
    classes: &[ClassId],
    priorities: &[i64],
) -> Schedule {
    assert_eq!(classes.len(), graph.len());
    assert_eq!(priorities.len(), graph.len());

    let mut indeg = graph.indegrees();
    let mut deps_done = vec![Time::ZERO; graph.len()];
    let mut worker_free = vec![Time::ZERO; platform.n_workers()];
    // Max-heap on (priority, Reverse(task id)).
    let mut ready: BinaryHeap<(i64, Reverse<TaskId>)> = graph
        .tasks()
        .iter()
        .filter(|t| indeg[t.id.index()] == 0)
        .map(|t| (priorities[t.id.index()], Reverse(t.id)))
        .collect();

    let mut entries = Vec::with_capacity(graph.len());
    while let Some((_, Reverse(task))) = ready.pop() {
        let class = classes[task.index()];
        let w = platform
            .workers_in_class(class)
            .min_by_key(|&w| worker_free[w])
            .expect("class has at least one worker");
        let start = worker_free[w].max(deps_done[task.index()]);
        let dur = profile.time(graph.task(task).kernel(), class);
        let end = start + dur;
        worker_free[w] = end;
        entries.push(ScheduleEntry {
            task,
            worker: w,
            start,
            end,
        });
        for &succ in graph.successors(task) {
            let d = &mut deps_done[succ.index()];
            *d = (*d).max(end);
            indeg[succ.index()] -= 1;
            if indeg[succ.index()] == 0 {
                ready.push((priorities[succ.index()], Reverse(succ)));
            }
        }
    }
    assert_eq!(entries.len(), graph.len(), "DAG has a cycle?");
    Schedule::from_entries(entries)
}

/// Extract the `(classes, priorities)` encoding of an explicit schedule:
/// the class of each task's worker, and priorities that reproduce the
/// schedule's global start order.
pub fn encode(schedule: &Schedule, platform: &Platform) -> (Vec<ClassId>, Vec<i64>) {
    let n = schedule.len();
    let mut classes = vec![0usize; n];
    let mut priorities = vec![0i64; n];
    let mut order: Vec<_> = schedule.entries().to_vec();
    order.sort_by_key(|e| (e.start, e.task));
    for (rank, e) in order.iter().enumerate() {
        classes[e.task.index()] = platform.class_of(e.worker);
        priorities[e.task.index()] = (n - rank) as i64;
    }
    (classes, priorities)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetchol_core::schedule::DurationCheck;
    use hetchol_sched::{bottom_level_priorities, heft_schedule};
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Any (classes, priorities) individual decodes to a feasible
        /// schedule — the property the local search depends on: the whole
        /// encoding space is valid, so moves never need repair.
        #[test]
        fn decode_is_total(
            n in 1usize..8,
            class_seed in 0u64..1000,
            prio_seed in 0u64..1000,
        ) {
            use rand::{Rng, SeedableRng};
            let graph = TaskGraph::cholesky(n);
            let platform = Platform::mirage().without_comm();
            let profile = TimingProfile::mirage();
            let mut crng = rand_chacha::ChaCha8Rng::seed_from_u64(class_seed);
            let mut prng = rand_chacha::ChaCha8Rng::seed_from_u64(prio_seed);
            let classes: Vec<usize> =
                (0..graph.len()).map(|_| crng.gen_range(0..2)).collect();
            let priorities: Vec<i64> =
                (0..graph.len()).map(|_| prng.gen_range(-100..100)).collect();
            let s = list_schedule(&graph, &platform, &profile, &classes, &priorities);
            s.validate(&graph, &platform, &profile, DurationCheck::Exact)
                .unwrap();
        }
    }

    fn fixture() -> (TaskGraph, Platform, TimingProfile) {
        (
            TaskGraph::cholesky(5),
            Platform::mirage().without_comm(),
            TimingProfile::mirage(),
        )
    }

    #[test]
    fn decode_is_feasible_for_arbitrary_inputs() {
        let (graph, platform, profile) = fixture();
        // Everything on CPUs with submission-order priorities.
        let classes = vec![0usize; graph.len()];
        let prios: Vec<i64> = (0..graph.len() as i64).collect();
        let s = list_schedule(&graph, &platform, &profile, &classes, &prios);
        s.validate(&graph, &platform, &profile, DurationCheck::Exact)
            .unwrap();
        // Everything on GPUs with bottom-level priorities.
        let classes = vec![1usize; graph.len()];
        let prios = bottom_level_priorities(&graph, &profile);
        let s = list_schedule(&graph, &platform, &profile, &classes, &prios);
        s.validate(&graph, &platform, &profile, DurationCheck::Exact)
            .unwrap();
    }

    #[test]
    fn gpu_only_beats_cpu_only() {
        let (graph, platform, profile) = fixture();
        let prios = bottom_level_priorities(&graph, &profile);
        let cpu = list_schedule(&graph, &platform, &profile, &vec![0; graph.len()], &prios);
        let gpu = list_schedule(&graph, &platform, &profile, &vec![1; graph.len()], &prios);
        assert!(gpu.makespan() < cpu.makespan());
    }

    #[test]
    fn encode_decode_round_trips_makespan_shape() {
        let (graph, platform, profile) = fixture();
        let heft = heft_schedule(&graph, &platform, &profile);
        let (classes, prios) = encode(&heft, &platform);
        let replay = list_schedule(&graph, &platform, &profile, &classes, &prios);
        replay
            .validate(&graph, &platform, &profile, DurationCheck::Exact)
            .unwrap();
        // The decode may differ slightly from HEFT (worker choice within a
        // class), but must stay in the same ballpark.
        let ratio = replay.makespan().as_secs_f64() / heft.makespan().as_secs_f64();
        assert!((0.8..1.3).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn priorities_control_order_on_single_worker() {
        // Two independent TRSMs after POTRF on a 1-CPU platform: the one
        // with the higher priority must run first.
        let graph = TaskGraph::cholesky(3);
        let platform = Platform::homogeneous(1);
        let profile = TimingProfile::mirage_homogeneous();
        let t1 = graph
            .find(hetchol_core::task::TaskCoords::Trsm { k: 0, i: 1 })
            .unwrap();
        let t2 = graph
            .find(hetchol_core::task::TaskCoords::Trsm { k: 0, i: 2 })
            .unwrap();
        let mut prios = vec![0i64; graph.len()];
        prios[t1.index()] = 1;
        prios[t2.index()] = 2;
        let s = list_schedule(&graph, &platform, &profile, &vec![0; graph.len()], &prios);
        assert!(s.entry(t2).unwrap().start < s.entry(t1).unwrap().start);
        let mut prios2 = prios;
        prios2[t1.index()] = 3;
        let s2 = list_schedule(&graph, &platform, &profile, &vec![0; graph.len()], &prios2);
        assert!(s2.entry(t1).unwrap().start < s2.entry(t2).unwrap().start);
    }
}
