//! A loom-lite interleaving explorer for the threaded runtime.
//!
//! The real runtime (`hetchol_rt::execute_workload`) synchronizes its worker
//! threads with one mutex-protected state block and one condvar. Bugs in
//! that protocol — a missed `notify_all` after dispatching successors, a
//! double release in the dependency tracker — are interleaving-dependent:
//! a stress test can pass a million times and still miss them. This module
//! explores the interleavings *systematically*, in the spirit of `loom`
//! but over the real `std` threads the runtime actually spawns:
//!
//! * the `parking_lot` compat shim reports every lock acquire/release,
//!   condvar wait and notify of checked-in worker threads to an installed
//!   [`parking_lot::explore::ExploreHook`];
//! * the `Session` hook enforces a *cooperative* model — exactly one
//!   worker thread runs at a time, each step spanning from one blocking
//!   operation (checkin, lock acquire, condvar wait) to the next;
//! * whenever every live thread is parked, the last parker picks which
//!   thread runs next — replaying a prescribed prefix of choices, then
//!   following a deterministic first-choice rule;
//! * the driver ([`explore()`]) runs the scenario repeatedly, depth-first
//!   over the tree of choices, pruning provably-equivalent branches with
//!   sleep sets (two steps with disjoint sync-object footprints commute);
//! * a state where no parked thread can make progress is a **deadlock** —
//!   which is precisely what a lost wakeup becomes once controlled waits
//!   never sleep on the real condvar.
//!
//! The explored state space is bounded: the scheduler under test must be
//! timing-blind (see [`RoundRobin`]) so that thread-schedule choices are
//! the only source of nondeterminism, and the run is capped by
//! [`ExploreConfig`]. See DESIGN.md §4 for the model's guarantees.

use hetchol_core::dag::TaskGraph;
use hetchol_core::platform::WorkerId;
use hetchol_core::profiles::TimingProfile;
use hetchol_core::scheduler::{ExecutionView, SchedContext, Scheduler};
use hetchol_core::task::TaskId;
use parking_lot::explore::{self, ExploreHook, SyncEvent};
use std::cell::Cell;
use std::collections::HashMap;
use std::panic::{self, AssertUnwindSafe};
use std::sync::{Arc, Condvar as StdCondvar, Mutex as StdMutex};

/// Panic payload used to tear a run down after a verdict (deadlock found,
/// step cap hit, replay divergence). The driver's panic hook swallows it.
pub(crate) const ABORT_MSG: &str = "hetchol-analyze explorer abort";

/// The payload `std::thread::scope` panics with when a child panicked; the
/// child's own payload was already captured by the panic hook, so this
/// secondary message must never overwrite it.
pub(crate) const SCOPE_MSG: &str = "a scoped thread panicked";

pub(crate) fn lock_of<'a, T>(m: &'a StdMutex<T>) -> std::sync::MutexGuard<'a, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

// ---------------------------------------------------------------------------
// Configuration and report
// ---------------------------------------------------------------------------

/// Bounds on one exploration.
#[derive(Copy, Clone, Debug)]
pub struct ExploreConfig {
    /// Maximum number of complete thread schedules (runs) to try.
    pub max_schedules: usize,
    /// Maximum decisions within a single run (runaway-scenario guard).
    pub max_steps: usize,
    /// Prune equivalent branches with sleep sets. Turning this off
    /// explores the raw tree — useful to cross-check the pruning.
    pub sleep_sets: bool,
}

impl Default for ExploreConfig {
    fn default() -> ExploreConfig {
        ExploreConfig {
            max_schedules: 100_000,
            max_steps: 10_000,
            sleep_sets: true,
        }
    }
}

/// One deadlocked interleaving found by the explorer.
#[derive(Clone, Debug)]
pub struct Deadlock {
    /// Index of the run (0-based) that deadlocked.
    pub schedule: usize,
    /// Workers left parked with no enabled step, with a description of
    /// what each was blocked on.
    pub parked: Vec<(usize, String)>,
}

/// Outcome of one [`explore()`] call.
#[derive(Clone, Debug, Default)]
pub struct ExploreReport {
    /// Number of runs executed.
    pub schedules_run: usize,
    /// `true` when the whole (pruned) interleaving tree was covered.
    pub complete: bool,
    /// Deadlocks found (exploration stops at the first).
    pub deadlocks: Vec<Deadlock>,
    /// Panic messages from runs that failed for any other reason
    /// (assertion failures, double release, replay divergence…).
    pub failures: Vec<String>,
}

impl ExploreReport {
    /// `true` when no deadlock and no failure was found.
    pub fn is_clean(&self) -> bool {
        self.deadlocks.is_empty() && self.failures.is_empty()
    }
}

// ---------------------------------------------------------------------------
// The session: one ExploreHook driving the cooperative model
// ---------------------------------------------------------------------------

thread_local! {
    /// Which controlled worker the current thread is (explorer-side
    /// identity, set at checkin).
    static WORKER: Cell<Option<usize>> = const { Cell::new(None) };
}

/// The kind of synchronization operation a step performed on an object —
/// recorded in step footprints so a driver can compute happens-before
/// (the DPOR driver in [`crate::mc`]) while the sleep-set independence
/// check keeps comparing objects only.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub(crate) enum OpKind {
    /// The step was granted a mutex (including re-acquire after a wakeup).
    Acquire,
    /// The step released a mutex (guard drop, or entering a wait).
    Release,
    /// The step entered a condvar wait.
    Wait,
    /// The step notified a condvar.
    Notify,
}

/// One sync operation in a step's footprint: which object, and how.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub(crate) struct Op {
    /// Normalized (first-appearance) id of the sync object.
    pub(crate) obj: u64,
    /// What the step did to it.
    pub(crate) kind: OpKind,
}

/// What a parked thread is blocked on.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
enum Pending {
    /// Checked in, has not run yet. Always enabled.
    Start,
    /// Wants the mutex. Enabled when unowned in the model.
    Lock(u64),
    /// Was waiting on a condvar, has been notified, and now needs the
    /// mutex back. Enabled when unowned in the model.
    Wake(u64),
    /// Waiting on a condvar. Never enabled; only a notify converts it.
    Wait { cv: u64, mutex: u64 },
}

impl Pending {
    fn enabled(self, owner: &HashMap<u64, usize>) -> bool {
        match self {
            Pending::Start => true,
            Pending::Lock(m) | Pending::Wake(m) => !owner.contains_key(&m),
            Pending::Wait { .. } => false,
        }
    }

    fn describe(self) -> String {
        match self {
            Pending::Start => "not yet started".to_string(),
            Pending::Lock(m) => format!("acquiring mutex #{m}"),
            Pending::Wake(m) => format!("re-acquiring mutex #{m} after wakeup"),
            Pending::Wait { cv, mutex } => {
                format!("waiting on condvar #{cv} (released mutex #{mutex})")
            }
        }
    }
}

/// Per-worker wake channel: a thread parks here between its steps.
struct Gate {
    cmd: StdMutex<GateCmd>,
    cv: StdCondvar,
}

#[derive(Copy, Clone, Debug, PartialEq, Eq)]
enum GateCmd {
    Park,
    Go,
    /// Sticky: once set, any park (current or future) panics the thread
    /// with [`ABORT_MSG`], unwinding the run.
    Abort,
}

impl Gate {
    fn new() -> Gate {
        Gate {
            cmd: StdMutex::new(GateCmd::Park),
            cv: StdCondvar::new(),
        }
    }

    fn park(&self) {
        let mut cmd = lock_of(&self.cmd);
        loop {
            match *cmd {
                GateCmd::Park => {
                    cmd = self.cv.wait(cmd).unwrap_or_else(|e| e.into_inner());
                }
                GateCmd::Go => {
                    *cmd = GateCmd::Park;
                    return;
                }
                GateCmd::Abort => {
                    drop(cmd);
                    panic!("{ABORT_MSG}");
                }
            }
        }
    }

    fn wake(&self, new: GateCmd) {
        let mut cmd = lock_of(&self.cmd);
        if *cmd != GateCmd::Abort {
            *cmd = new;
        }
        self.cv.notify_all();
    }
}

struct ThreadState {
    alive: bool,
    parked: bool,
    pending: Pending,
}

/// One decision point, as recorded for the driver.
#[derive(Clone, Debug)]
pub(crate) struct TrailEntry {
    /// Workers that were enabled, ascending.
    pub(crate) enabled: Vec<usize>,
    /// The worker that ran.
    pub(crate) chosen: usize,
    /// Sync operations the chosen step performed (grant + releases +
    /// notifies), in order, for independence and happens-before checks.
    pub(crate) footprint: Vec<Op>,
    /// Sleep set in effect at this state (fresh decisions only).
    pub(crate) sleep: Vec<(usize, Vec<Op>)>,
}

struct Inner {
    n_workers: usize,
    checked_in: usize,
    threads: Vec<ThreadState>,
    /// Model ownership of each mutex (by normalized object id).
    owner: HashMap<u64, usize>,
    running: Option<usize>,
    /// Forced choices to replay, then free search.
    prefix: Vec<usize>,
    pos: usize,
    /// Sleep set seeded at the branch point (last prefix decision).
    seed_sleep: Vec<(usize, Vec<Op>)>,
    sleep: Vec<(usize, Vec<Op>)>,
    trail: Vec<TrailEntry>,
    /// Address → small id, by first appearance (stable across replays of
    /// an identical prefix, even though stack addresses are not).
    obj_ids: HashMap<usize, u64>,
    aborting: bool,
    deadlocked: Option<Vec<(usize, String)>>,
    capped: bool,
    failure: Option<String>,
    max_steps: usize,
    use_sleep: bool,
}

impl Inner {
    fn obj(&mut self, addr: usize) -> u64 {
        let next = self.obj_ids.len() as u64;
        *self.obj_ids.entry(addr).or_insert(next)
    }

    /// Append an operation on `o` to the running step's footprint and wake
    /// sleepers whose step is dependent on it. Sleep-set independence is
    /// object-overlap only — the op kind is recorded for the DPOR driver's
    /// finer happens-before model, not consumed here.
    fn touch(&mut self, o: u64, kind: OpKind) {
        if self.aborting {
            return;
        }
        if let Some(step) = self.trail.last_mut() {
            step.footprint.push(Op { obj: o, kind });
        }
        if self.use_sleep {
            self.sleep
                .retain(|(_, fp)| !fp.iter().any(|op| op.obj == o));
        }
    }

    fn abort_all(&mut self) -> Vec<(usize, GateCmd)> {
        self.aborting = true;
        (0..self.n_workers).map(|w| (w, GateCmd::Abort)).collect()
    }

    /// When no thread runs and every live thread is parked, pick the next
    /// one. Returns the gate commands to send after unlocking.
    fn maybe_decide(&mut self) -> Vec<(usize, GateCmd)> {
        if self.running.is_some() || self.aborting || self.checked_in < self.n_workers {
            return Vec::new();
        }
        let parked: Vec<usize> = (0..self.n_workers)
            .filter(|&w| self.threads[w].alive && self.threads[w].parked)
            .collect();
        let any_alive = self.threads.iter().any(|t| t.alive);
        if !any_alive {
            return Vec::new(); // run finished cleanly
        }
        let enabled: Vec<usize> = parked
            .iter()
            .copied()
            .filter(|&w| self.threads[w].pending.enabled(&self.owner))
            .collect();
        if self.trail.len() >= self.max_steps {
            self.capped = true;
            return self.abort_all();
        }
        if enabled.is_empty() {
            self.deadlocked = Some(
                parked
                    .iter()
                    .map(|&w| (w, self.threads[w].pending.describe()))
                    .collect(),
            );
            return self.abort_all();
        }
        let chosen = if self.pos < self.prefix.len() {
            let c = self.prefix[self.pos];
            if !enabled.contains(&c) {
                self.failure = Some(format!(
                    "replay divergence at decision {}: worker {c} not enabled (enabled: {enabled:?}) \
                     — the scenario is not deterministic under thread-schedule control",
                    self.pos
                ));
                return self.abort_all();
            }
            if self.pos + 1 == self.prefix.len() {
                // Entering the branch: arm the sleep set the driver seeded.
                self.sleep = self.seed_sleep.clone();
            }
            self.trail.push(TrailEntry {
                enabled,
                chosen: c,
                footprint: Vec::new(),
                sleep: Vec::new(),
            });
            c
        } else {
            let snapshot = self.sleep.clone();
            let c = enabled
                .iter()
                .copied()
                .find(|w| !self.sleep.iter().any(|(s, _)| s == w))
                .unwrap_or_else(|| {
                    // Every enabled step is asleep: sound fallback is to run
                    // the first anyway (forfeits pruning, never coverage).
                    let c = enabled[0];
                    self.sleep.retain(|(s, _)| *s != c);
                    c
                });
            self.trail.push(TrailEntry {
                enabled,
                chosen: c,
                footprint: Vec::new(),
                sleep: snapshot,
            });
            c
        };
        self.pos += 1;
        match self.threads[chosen].pending {
            Pending::Start => {}
            Pending::Lock(m) | Pending::Wake(m) => {
                self.owner.insert(m, chosen);
                self.touch(m, OpKind::Acquire);
            }
            Pending::Wait { .. } => unreachable!("a waiting thread is never enabled"),
        }
        self.threads[chosen].parked = false;
        self.running = Some(chosen);
        vec![(chosen, GateCmd::Go)]
    }
}

/// The installed hook: cooperative scheduling over real threads.
///
/// Shared between the sleep-set DFS driver ([`explore()`]) and the DPOR
/// driver in [`crate::mc`] — the session only enforces the cooperative
/// model and records the trail; which branches get explored is entirely
/// the driver's business.
pub(crate) struct Session {
    inner: StdMutex<Inner>,
    gates: Vec<Gate>,
    /// Signaled by the thread-exit event; [`Session::drain`] waits on it
    /// between runs.
    exit_cv: StdCondvar,
}

impl Session {
    pub(crate) fn new(n_workers: usize, cfg: &ExploreConfig) -> Session {
        Session {
            inner: StdMutex::new(Inner {
                n_workers,
                checked_in: 0,
                threads: (0..n_workers)
                    .map(|_| ThreadState {
                        alive: false,
                        parked: false,
                        pending: Pending::Start,
                    })
                    .collect(),
                owner: HashMap::new(),
                running: None,
                prefix: Vec::new(),
                pos: 0,
                seed_sleep: Vec::new(),
                sleep: Vec::new(),
                trail: Vec::new(),
                obj_ids: HashMap::new(),
                aborting: false,
                deadlocked: None,
                capped: false,
                failure: None,
                max_steps: cfg.max_steps,
                use_sleep: cfg.sleep_sets,
            }),
            gates: (0..n_workers).map(|_| Gate::new()).collect(),
            exit_cv: StdCondvar::new(),
        }
    }

    /// Wait until every controlled thread of the finished run has reported
    /// its exit. `std::thread::scope` unblocks when the worker *closures*
    /// return, which is before the TLS destructor that fires
    /// the exit event — without this barrier a straggling exit from run
    /// N could corrupt the freshly reset state of run N+1.
    pub(crate) fn drain(&self) {
        let mut inner = lock_of(&self.inner);
        while inner.threads.iter().any(|t| t.alive) {
            let (g, _) = self
                .exit_cv
                .wait_timeout(inner, std::time::Duration::from_millis(100))
                .unwrap_or_else(|e| e.into_inner());
            inner = g;
        }
    }

    /// Prepare for the next run: replay `prefix`, then search with the
    /// given sleep set armed at the branch point.
    pub(crate) fn reset(&self, prefix: Vec<usize>, seed_sleep: Vec<(usize, Vec<Op>)>) {
        let mut inner = lock_of(&self.inner);
        inner.checked_in = 0;
        for t in &mut inner.threads {
            *t = ThreadState {
                alive: false,
                parked: false,
                pending: Pending::Start,
            };
        }
        inner.owner.clear();
        inner.running = None;
        inner.prefix = prefix;
        inner.pos = 0;
        inner.seed_sleep = seed_sleep;
        inner.sleep = Vec::new();
        inner.trail = Vec::new();
        inner.obj_ids.clear();
        inner.aborting = false;
        inner.deadlocked = None;
        inner.capped = false;
        inner.failure = None;
        for g in &self.gates {
            *lock_of(&g.cmd) = GateCmd::Park;
        }
    }

    /// Harvest the run's outcome: (trail, deadlock, capped, failure).
    #[allow(clippy::type_complexity)]
    pub(crate) fn take_outcome(
        &self,
    ) -> (
        Vec<TrailEntry>,
        Option<Vec<(usize, String)>>,
        bool,
        Option<String>,
    ) {
        let mut inner = lock_of(&self.inner);
        (
            std::mem::take(&mut inner.trail),
            inner.deadlocked.take(),
            inner.capped,
            inner.failure.take(),
        )
    }

    fn dispatch_wakes(&self, wakes: Vec<(usize, GateCmd)>) {
        for (w, cmd) in wakes {
            self.gates[w].wake(cmd);
        }
    }

    /// Register the current step boundary: the thread parks with `pending`
    /// and the next decision is made.
    fn park_at(&self, w: usize, pending: Pending) {
        let wakes = {
            let mut inner = lock_of(&self.inner);
            if inner.running == Some(w) {
                inner.running = None;
            }
            inner.threads[w].pending = pending;
            inner.threads[w].parked = true;
            inner.maybe_decide()
        };
        self.dispatch_wakes(wakes);
        self.gates[w].park();
    }
}

impl ExploreHook for Session {
    fn on_event(&self, event: SyncEvent) {
        match event {
            SyncEvent::Checkin { worker } => self.on_checkin(worker),
            SyncEvent::Acquire { mutex } => self.on_lock(mutex),
            SyncEvent::Release { mutex } => self.on_unlock(mutex),
            SyncEvent::Wait { condvar, mutex } => self.on_wait(condvar, mutex),
            SyncEvent::Notify { condvar, all } => self.on_notify(condvar, all),
            SyncEvent::ThreadExit { worker } => self.on_thread_exit(worker),
            // Bookkeeping events that never block: channel send/recv are
            // already ordered by their underlying mutex+condvar traffic,
            // and touchpoints/labels only feed the passive happens-before
            // recorder. None is a schedule point for the explorer.
            SyncEvent::WakeAcquire { .. }
            | SyncEvent::Send { .. }
            | SyncEvent::Recv { .. }
            | SyncEvent::Touch { .. }
            | SyncEvent::Label { .. } => {}
        }
    }
}

/// Per-event handlers; each runs on the checked-in thread that produced
/// the event, and may park it (that is how the cooperative model works).
impl Session {
    fn on_checkin(&self, worker: usize) {
        WORKER.with(|c| c.set(Some(worker)));
        let wakes = {
            let mut inner = lock_of(&self.inner);
            if worker >= inner.n_workers || inner.threads[worker].alive {
                let msg = format!(
                    "checkin of unexpected worker {worker} (session has {})",
                    inner.n_workers
                );
                inner.failure.get_or_insert(msg);
                let wakes = inner.abort_all();
                drop(inner);
                self.dispatch_wakes(wakes);
                panic!("{ABORT_MSG}");
            }
            inner.checked_in += 1;
            inner.threads[worker] = ThreadState {
                alive: true,
                parked: true,
                pending: Pending::Start,
            };
            inner.maybe_decide()
        };
        self.dispatch_wakes(wakes);
        self.gates[worker].park();
    }

    fn on_lock(&self, mutex: usize) {
        let Some(w) = WORKER.with(|c| c.get()) else {
            return;
        };
        let m = lock_of(&self.inner).obj(mutex);
        self.park_at(w, Pending::Lock(m));
    }

    fn on_unlock(&self, mutex: usize) {
        if WORKER.with(|c| c.get()).is_none() {
            return;
        }
        let mut inner = lock_of(&self.inner);
        if inner.aborting {
            return; // mid-unwind bookkeeping is pointless
        }
        let m = inner.obj(mutex);
        inner.owner.remove(&m);
        inner.touch(m, OpKind::Release);
        // No decision here: the thread keeps running until its next park.
    }

    fn on_wait(&self, condvar: usize, mutex: usize) {
        let Some(w) = WORKER.with(|c| c.get()) else {
            return;
        };
        let (cv, m) = {
            let mut inner = lock_of(&self.inner);
            let cv = inner.obj(condvar);
            let m = inner.obj(mutex);
            // The shim already released the real lock; mirror that in the
            // model, as part of the step that is ending.
            inner.owner.remove(&m);
            inner.touch(m, OpKind::Release);
            inner.touch(cv, OpKind::Wait);
            (cv, m)
        };
        self.park_at(w, Pending::Wait { cv, mutex: m });
        // Woken *and* re-granted the mutex (Wake was chosen): the shim now
        // re-acquires the real lock directly.
    }

    fn on_notify(&self, condvar: usize, all: bool) {
        if WORKER.with(|c| c.get()).is_none() {
            return;
        }
        let mut inner = lock_of(&self.inner);
        if inner.aborting {
            return;
        }
        let cv = inner.obj(condvar);
        inner.touch(cv, OpKind::Notify);
        let waiters: Vec<usize> = (0..inner.n_workers)
            .filter(|&t| {
                inner.threads[t].alive
                    && inner.threads[t].parked
                    && matches!(inner.threads[t].pending, Pending::Wait { cv: c, .. } if c == cv)
            })
            .collect();
        // notify_one wakes the lowest-id waiter — a deterministic stand-in
        // for the unordered real semantics (the runtime only uses
        // notify_all, where the order does not matter).
        let chosen: &[usize] = if all {
            &waiters
        } else {
            &waiters[..waiters.len().min(1)]
        };
        for &t in chosen {
            if let Pending::Wait { mutex, .. } = inner.threads[t].pending {
                inner.threads[t].pending = Pending::Wake(mutex);
            }
        }
    }

    fn on_thread_exit(&self, worker: usize) {
        // Runs from a TLS destructor, possibly during a panic unwind: it
        // must never panic and never rely on our own thread-locals.
        let wakes = {
            let mut inner = lock_of(&self.inner);
            if worker >= inner.n_workers || !inner.threads[worker].alive {
                return;
            }
            inner.threads[worker].alive = false;
            inner.threads[worker].parked = false;
            if inner.running == Some(worker) {
                inner.running = None;
            }
            let wakes = inner.maybe_decide();
            self.exit_cv.notify_all();
            wakes
        };
        self.dispatch_wakes(wakes);
    }
}

// ---------------------------------------------------------------------------
// Session teardown guard
// ---------------------------------------------------------------------------

/// RAII setup/teardown for one exploration: installs the session as the
/// compat shim's explore hook and swaps in a panic hook that swallows the
/// explorer's own teardown panics while capturing the first *real* panic
/// message of each run (a worker assertion, a DepTracker double-release…)
/// — `std::thread::scope` rethrows only a generic payload, so the hook is
/// where the real message is visible.
///
/// Both hooks are process-global state; restoring them in `Drop` (rather
/// than at the driver's tail) guarantees every exit path — first finding,
/// step-cap abort, replay divergence, an unexpected driver panic —
/// reinstates whatever panic hook the caller had installed.
type PanicHook = Box<dyn Fn(&panic::PanicHookInfo<'_>) + Send + Sync + 'static>;

pub(crate) struct SessionGuard {
    captured: Arc<StdMutex<Option<String>>>,
    prev: Option<PanicHook>,
}

impl SessionGuard {
    /// Install `session` and the capturing panic hook.
    pub(crate) fn install(session: Arc<Session>) -> SessionGuard {
        explore::install(session);
        let captured: Arc<StdMutex<Option<String>>> = Arc::new(StdMutex::new(None));
        let prev = panic::take_hook();
        {
            let captured = captured.clone();
            panic::set_hook(Box::new(move |info| {
                let msg = if let Some(s) = info.payload().downcast_ref::<&str>() {
                    (*s).to_string()
                } else if let Some(s) = info.payload().downcast_ref::<String>() {
                    s.clone()
                } else {
                    "non-string panic payload".to_string()
                };
                if msg.contains(ABORT_MSG) || msg.contains(SCOPE_MSG) {
                    return;
                }
                let mut slot = captured.lock().unwrap_or_else(|e| e.into_inner());
                slot.get_or_insert(msg);
            }));
        }
        SessionGuard {
            captured,
            prev: Some(prev),
        }
    }

    /// Forget any message captured so far (called before each run).
    pub(crate) fn clear(&self) {
        *lock_of(&self.captured) = None;
    }

    /// Take the first real panic message of the current run, if any.
    pub(crate) fn take_panic(&self) -> Option<String> {
        lock_of(&self.captured).take()
    }
}

impl Drop for SessionGuard {
    fn drop(&mut self) {
        let _ = panic::take_hook();
        if let Some(prev) = self.prev.take() {
            panic::set_hook(prev);
        }
        explore::uninstall();
    }
}

// ---------------------------------------------------------------------------
// The DFS driver
// ---------------------------------------------------------------------------

/// One node on the current DFS path.
struct Frame {
    enabled: Vec<usize>,
    /// Choices already explored from this state, with the footprint each
    /// step had when executed.
    explored: Vec<(usize, Vec<Op>)>,
    /// Sleep set in effect when this state was first reached.
    sleep: Vec<(usize, Vec<Op>)>,
}

/// Serializes explorations: the hook registry and the panic hook are
/// process-global.
pub(crate) static SESSION_LOCK: StdMutex<()> = StdMutex::new(());

/// Explore the interleavings of `run_once`, a scenario that spawns exactly
/// `n_workers` threads which check in via `parking_lot::explore::checkin`
/// (as `hetchol_rt::execute_workload` does) and asserts its own postconditions.
///
/// Runs the scenario repeatedly under depth-first control of every
/// lock/wait/notify decision point until the (sleep-set-pruned) tree is
/// exhausted or a bound of `cfg` is hit. Stops at the first deadlock or
/// failure. The scenario must be deterministic apart from thread timing.
pub fn explore(n_workers: usize, cfg: ExploreConfig, mut run_once: impl FnMut()) -> ExploreReport {
    assert!(n_workers > 0, "need at least one controlled thread");
    let _serial = lock_of(&SESSION_LOCK);
    let session = Arc::new(Session::new(n_workers, &cfg));
    let guard = SessionGuard::install(session.clone());

    let mut report = ExploreReport::default();
    let mut frames: Vec<Frame> = Vec::new();
    let mut prefix: Vec<usize> = Vec::new();
    let mut seed: Vec<(usize, Vec<Op>)> = Vec::new();

    loop {
        session.reset(prefix.clone(), seed.clone());
        guard.clear();
        let outcome = panic::catch_unwind(AssertUnwindSafe(&mut run_once));
        session.drain();
        let run_index = report.schedules_run;
        report.schedules_run += 1;
        let (trail, deadlocked, capped, failure) = session.take_outcome();
        let panic_msg = guard.take_panic();

        if outcome.is_err() || failure.is_some() {
            if let Some(msg) = failure.or(panic_msg) {
                report.failures.push(msg);
            } else if let Some(parked) = deadlocked {
                report.deadlocks.push(Deadlock {
                    schedule: run_index,
                    parked,
                });
            } else if capped {
                // Bounded out, not a verdict; the tree was not covered.
            } else {
                report
                    .failures
                    .push("run panicked without a message".to_string());
            }
            break; // stop at the first finding (or cap)
        }

        // Fold the clean run's trail into the DFS frames.
        for (depth, t) in trail.iter().enumerate() {
            if depth < frames.len() {
                if !frames[depth].explored.iter().any(|(w, _)| *w == t.chosen) {
                    frames[depth].explored.push((t.chosen, t.footprint.clone()));
                }
            } else {
                frames.push(Frame {
                    enabled: t.enabled.clone(),
                    explored: vec![(t.chosen, t.footprint.clone())],
                    sleep: t.sleep.clone(),
                });
            }
        }
        let last_choices: Vec<usize> = trail.iter().map(|t| t.chosen).collect();

        // Backtrack to the deepest state with an untried, awake candidate.
        let next = (0..frames.len()).rev().find_map(|d| {
            let f = &frames[d];
            f.enabled
                .iter()
                .copied()
                .find(|w| {
                    let tried = f.explored.iter().any(|(e, _)| e == w);
                    let asleep = cfg.sleep_sets && f.sleep.iter().any(|(s, _)| s == w);
                    !tried && !asleep
                })
                .map(|u| (d, u))
        });
        let Some((d, u)) = next else {
            report.complete = true;
            break;
        };
        if report.schedules_run >= cfg.max_schedules {
            break; // tree not exhausted: complete stays false
        }
        prefix = last_choices[..d].to_vec();
        prefix.push(u);
        seed = if cfg.sleep_sets {
            frames[d]
                .sleep
                .iter()
                .chain(frames[d].explored.iter())
                .cloned()
                .collect()
        } else {
            Vec::new()
        };
        frames.truncate(d + 1);
    }

    drop(guard); // restore the caller's panic hook, uninstall the session
    report
}

// ---------------------------------------------------------------------------
// Runtime convenience
// ---------------------------------------------------------------------------

/// A timing-blind scheduler for model checking: worker = task index modulo
/// worker count, FIFO queues, no priorities. With it, the runtime's
/// behaviour depends *only* on the thread schedule, which is exactly what
/// the explorer controls — `dmda`'s wall-clock completion estimates would
/// make replay diverge.
#[derive(Clone, Debug, Default)]
pub struct RoundRobin;

impl Scheduler for RoundRobin {
    fn name(&self) -> &str {
        "round-robin"
    }

    fn assign(&mut self, task: TaskId, ctx: &SchedContext, _view: &dyn ExecutionView) -> WorkerId {
        task.index() % ctx.platform.n_workers()
    }
}

/// Model-check `hetchol_rt::execute_workload` on `graph` with `n_workers`
/// threads: explore the worker-loop interleavings with a no-op task body
/// and the [`RoundRobin`] scheduler, asserting every run executes the
/// whole DAG.
pub fn explore_runtime(graph: &TaskGraph, n_workers: usize, cfg: ExploreConfig) -> ExploreReport {
    let profile = TimingProfile::mirage_homogeneous();
    explore(n_workers, cfg, || {
        let mut sched = RoundRobin;
        let workload = hetchol_rt::FnWorkload(|_| Ok::<(), std::convert::Infallible>(()));
        let r = hetchol_rt::execute_workload(
            &workload,
            graph,
            &mut sched,
            &profile,
            n_workers,
            hetchol_core::obs::ObsSink::disabled(),
        )
        .expect("no-op tasks cannot fail");
        assert_eq!(
            r.trace.events.len(),
            graph.len(),
            "run completed without executing every task"
        );
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_is_timing_blind() {
        use hetchol_core::platform::Platform;
        use hetchol_core::scheduler::StaticView;
        let graph = TaskGraph::cholesky(3);
        let platform = Platform::homogeneous(2);
        let profile = TimingProfile::mirage_homogeneous();
        let ctx = SchedContext {
            graph: &graph,
            platform: &platform,
            profile: &profile,
        };
        let mut s = RoundRobin;
        assert_eq!(s.assign(TaskId(0), &ctx, &StaticView::default()), 0);
        assert_eq!(s.assign(TaskId(1), &ctx, &StaticView::default()), 1);
        assert_eq!(s.assign(TaskId(2), &ctx, &StaticView::default()), 0);
        assert!(!s.sorted_queues());
        assert_eq!(s.priority(TaskId(1), &ctx), 0);
    }

    #[test]
    fn pending_enabledness() {
        let mut owner = HashMap::new();
        assert!(Pending::Start.enabled(&owner));
        assert!(Pending::Lock(0).enabled(&owner));
        assert!(Pending::Wake(0).enabled(&owner));
        assert!(!Pending::Wait { cv: 1, mutex: 0 }.enabled(&owner));
        owner.insert(0, 1);
        assert!(!Pending::Lock(0).enabled(&owner));
        assert!(!Pending::Wake(0).enabled(&owner));
    }
}
