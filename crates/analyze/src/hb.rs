//! Passive happens-before race detection and lock-order (lockdep)
//! analysis over the compat `parking_lot` shim's event stream.
//!
//! Where the explorer ([`crate::race`]) and model checker ([`crate::mc`])
//! *control* checked-in threads and enumerate interleavings, this module
//! only *listens*: [`record`] installs a passive [`ExploreHook`] that
//! every thread in the process reports to, runs the workload once at real
//! speed, and evaluates two analyses over the serialized event stream
//! (whose order the shim guarantees is consistent with the real lock
//! order — see the shim's passive-mode contract):
//!
//! * **Happens-before races** — FastTrack-style vector clocks, one per
//!   thread, joined on release→acquire, notify→wake and send→recv edges.
//!   Shared state is declared with [`touch`] at its critical sections; a
//!   pair of conflicting touches (write/write or read/write) that the
//!   clocks leave unordered is a race *candidate*: no interleaving of the
//!   recorded sync operations orders the two accesses, so some real
//!   schedule lets them collide. Each side of a reported pair carries its
//!   thread, held locks and recent sync footprint.
//!
//! * **Lockdep** — a global lock-order graph: an edge `a → b` whenever
//!   some thread acquired `b` while holding `a`. Any cycle is a
//!   potential deadlock, reported with the acquisition chains that close
//!   it. Unlike the race analysis this needs no unlucky timing at all:
//!   one clean pass through each path adds its edges.
//!
//! What passive mode can and cannot catch, versus DPOR, is discussed in
//! DESIGN.md §16. The short version: a clean [`record`] pass proves
//! nothing about schedules that were not run, but a *reported* race or
//! cycle is evidence independent of the observed timing — the vector
//! clocks certify that the recorded synchronization itself fails to
//! order the pair, whichever way the OS happened to schedule it.

use parking_lot::explore::{self, ExploreHook, SyncEvent};
use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Mutex as StdMutex};
use std::thread::ThreadId;

use crate::race::{lock_of, SESSION_LOCK};

/// How a [`touch`] accesses its object.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Access {
    /// A read of the shared state.
    Read,
    /// A write (or read-modify-write) of the shared state.
    Write,
}

/// Declare that the calling thread is accessing the logical shared
/// object named `obj`. Free (one relaxed load) when no recorder is
/// installed, so serve keeps its touchpoints compiled into production.
pub fn touch(obj: &'static str, access: Access) {
    explore::touch(obj, access == Access::Write);
}

// ---------------------------------------------------------------------------
// Vector clocks (growable: threads appear as they are first seen)
// ---------------------------------------------------------------------------

#[derive(Clone, Debug, Default, PartialEq, Eq)]
struct VClock(Vec<u64>);

impl VClock {
    fn get(&self, t: usize) -> u64 {
        self.0.get(t).copied().unwrap_or(0)
    }

    fn tick(&mut self, t: usize) {
        if self.0.len() <= t {
            self.0.resize(t + 1, 0);
        }
        self.0[t] += 1;
    }

    fn join(&mut self, other: &VClock) {
        if self.0.len() < other.0.len() {
            self.0.resize(other.0.len(), 0);
        }
        for (a, b) in self.0.iter_mut().zip(&other.0) {
            *a = (*a).max(*b);
        }
    }
}

// ---------------------------------------------------------------------------
// The recorder
// ---------------------------------------------------------------------------

/// One recorded access to a touched object: enough context to report a
/// meaningful race candidate long after the access happened.
#[derive(Clone, Debug)]
struct AccessRec {
    thread: usize,
    /// The accessing thread's clock at the touch.
    clock: VClock,
    /// Sync-object ids of the locks held at the touch.
    held: Vec<usize>,
    /// The thread's most recent sync operations, oldest first.
    recent: Vec<String>,
}

#[derive(Default)]
struct TouchState {
    last_write: Option<AccessRec>,
    /// At most one retained read per thread (the latest).
    reads: Vec<AccessRec>,
}

struct ThreadState {
    clock: VClock,
    name: String,
    /// Stack (not strictly LIFO — released by identity) of held locks.
    held: Vec<usize>,
    /// Ring of the last few sync operations, for race footprints.
    recent: VecDeque<String>,
}

const RECENT_CAP: usize = 6;

/// A lock-order edge `from → to` with the acquisition that created it.
struct Edge {
    to: usize,
    /// "thread: acquired B while holding [A, …]" for the first instance.
    chain: String,
}

#[derive(Default)]
struct RecState {
    /// Dense thread index by OS thread identity, first-appearance order.
    threads: HashMap<ThreadId, usize>,
    states: Vec<ThreadState>,
    /// Dense sync-object id by address, first-appearance order.
    obj_ids: HashMap<usize, usize>,
    labels: HashMap<usize, &'static str>,
    /// Release clock per mutex (the `L_m` of FastTrack).
    lock_clocks: HashMap<usize, VClock>,
    /// Accumulated notify clock per condvar.
    notify_clocks: HashMap<usize, VClock>,
    /// Accumulated send clock per channel.
    chan_clocks: HashMap<usize, VClock>,
    touches: HashMap<&'static str, TouchState>,
    /// Lock-order graph, adjacency by dense obj id; one edge per pair.
    edges: HashMap<usize, Vec<Edge>>,
    races: Vec<RaceCandidate>,
    events: usize,
}

impl RecState {
    fn thread_index(&mut self, id: ThreadId) -> usize {
        if let Some(&t) = self.threads.get(&id) {
            return t;
        }
        let t = self.states.len();
        self.threads.insert(id, t);
        let mut clock = VClock::default();
        // Tick the new thread's own component immediately: two threads
        // that never synchronized must compare as *unordered*, which the
        // epoch test below only gets right when each clock is ahead of
        // everyone else's knowledge of it from the start.
        clock.tick(t);
        self.states.push(ThreadState {
            clock,
            name: format!("thread {t}"),
            held: Vec::new(),
            recent: VecDeque::new(),
        });
        t
    }

    fn obj_id(&mut self, addr: usize) -> usize {
        let next = self.obj_ids.len();
        *self.obj_ids.entry(addr).or_insert(next)
    }

    fn obj_name(&self, id: usize) -> String {
        // Labels are keyed by dense id once resolved.
        match self.labels.get(&id) {
            Some(l) => (*l).to_string(),
            None => format!("#{id}"),
        }
    }

    fn note(&mut self, t: usize, what: String) {
        let recent = &mut self.states[t].recent;
        if recent.len() == RECENT_CAP {
            recent.pop_front();
        }
        recent.push_back(what);
    }

    fn add_edge(&mut self, t: usize, from: usize, to: usize) {
        if from == to {
            return;
        }
        let known = self
            .edges
            .get(&from)
            .is_some_and(|es| es.iter().any(|e| e.to == to));
        if known {
            return;
        }
        let held: Vec<String> = self.states[t]
            .held
            .iter()
            .map(|&h| self.obj_name(h))
            .collect();
        let chain = format!(
            "{}: acquired {} while holding [{}]",
            self.states[t].name,
            self.obj_name(to),
            held.join(", ")
        );
        self.edges.entry(from).or_default().push(Edge { to, chain });
    }

    fn on_acquire(&mut self, t: usize, obj: usize) {
        if let Some(l) = self.lock_clocks.get(&obj) {
            let l = l.clone();
            self.states[t].clock.join(&l);
        }
        for i in 0..self.states[t].held.len() {
            let h = self.states[t].held[i];
            self.add_edge(t, h, obj);
        }
        self.states[t].held.push(obj);
        let name = self.obj_name(obj);
        self.note(t, format!("acquire {name}"));
    }

    fn on_release(&mut self, t: usize, obj: usize, verb: &str) {
        let clock = self.states[t].clock.clone();
        self.lock_clocks.insert(obj, clock);
        self.states[t].clock.tick(t);
        if let Some(pos) = self.states[t].held.iter().rposition(|&h| h == obj) {
            self.states[t].held.remove(pos);
        }
        let name = self.obj_name(obj);
        self.note(t, format!("{verb} {name}"));
    }

    fn on_touch(&mut self, t: usize, obj: &'static str, write: bool) {
        let rec = AccessRec {
            thread: t,
            clock: self.states[t].clock.clone(),
            held: self.states[t].held.clone(),
            recent: self.states[t].recent.iter().cloned().collect(),
        };
        // The FastTrack epoch test: `prev` happens-before `cur` iff
        // cur's clock has caught up with prev's own component.
        let ordered = |prev: &AccessRec, cur: &AccessRec| {
            prev.thread == cur.thread || prev.clock.get(prev.thread) <= cur.clock.get(prev.thread)
        };
        // Collect conflicting prior accesses (tagged write/read)…
        let mut conflicts: Vec<(AccessRec, bool)> = Vec::new();
        let state = self.touches.entry(obj).or_default();
        if let Some(w) = &state.last_write {
            if !ordered(w, &rec) {
                conflicts.push((w.clone(), true));
            }
        }
        if write {
            for r in &state.reads {
                if !ordered(r, &rec) {
                    conflicts.push((r.clone(), false));
                }
            }
            state.last_write = Some(rec.clone());
            state.reads.clear();
        } else {
            state.reads.retain(|r| r.thread != t);
            state.reads.push(rec.clone());
        }
        // …then report each pair once per (object, threads, kinds).
        for (prev, prev_write) in conflicts {
            let first = side_of(self, &prev, prev_write);
            let second = side_of(self, &rec, write);
            let dup = self.races.iter().any(|r| {
                r.obj == obj
                    && r.first.thread == first.thread
                    && r.second.thread == second.thread
                    && r.first.access == first.access
                    && r.second.access == second.access
            });
            if !dup {
                self.races.push(RaceCandidate {
                    obj: obj.to_string(),
                    first,
                    second,
                });
            }
        }
    }
}

/// One side of a reported race candidate.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RaceSide {
    /// Thread display name (`worker N` after a checkin, else `thread N`).
    pub thread: String,
    /// `"read"` or `"write"`.
    pub access: &'static str,
    /// Display names of the locks held at the access.
    pub held: Vec<String>,
    /// The thread's recent sync operations at the access, oldest first.
    pub recent: Vec<String>,
}

/// A pair of conflicting accesses the recorded synchronization leaves
/// unordered.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RaceCandidate {
    /// The touched object's declared name.
    pub obj: String,
    /// The earlier access (in recorded order).
    pub first: RaceSide,
    /// The later access.
    pub second: RaceSide,
}

/// A cycle in the lock-order graph: a potential deadlock.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LockCycle {
    /// Display names of the locks on the cycle, in cycle order.
    pub locks: Vec<String>,
    /// The acquisition chains (one per edge) that close the cycle.
    pub chains: Vec<String>,
}

/// The result of one [`record`] pass.
#[derive(Clone, Debug, Default)]
pub struct HbReport {
    /// Conflicting unordered access pairs, in detection order.
    pub races: Vec<RaceCandidate>,
    /// Lock-order cycles, deduplicated by node set.
    pub cycles: Vec<LockCycle>,
    /// Threads observed.
    pub threads: usize,
    /// Sync events recorded.
    pub events: usize,
}

impl HbReport {
    /// `true` when no race candidate and no lock-order cycle was found.
    pub fn is_clean(&self) -> bool {
        self.races.is_empty() && self.cycles.is_empty()
    }

    /// Serialize to plain JSON (the golden-tested report format).
    pub fn to_json(&self) -> String {
        fn esc(s: &str) -> String {
            let mut quoted = String::with_capacity(s.len() + 2);
            hetchol_core::json::escape_into(s, &mut quoted);
            quoted
        }
        fn strs(items: &[String]) -> String {
            items.iter().map(|s| esc(s)).collect::<Vec<_>>().join(", ")
        }
        fn side(s: &RaceSide) -> String {
            format!(
                "{{\"thread\": {}, \"access\": {}, \"held\": [{}], \"recent\": [{}]}}",
                esc(&s.thread),
                esc(s.access),
                strs(&s.held),
                strs(&s.recent)
            )
        }
        let mut out = String::from("{\n  \"races\": [");
        for (i, r) in self.races.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"obj\": {}, \"first\": {}, \"second\": {}}}",
                esc(&r.obj),
                side(&r.first),
                side(&r.second)
            ));
        }
        if !self.races.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n  \"cycles\": [");
        for (i, c) in self.cycles.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"locks\": [{}], \"chains\": [{}]}}",
                strs(&c.locks),
                strs(&c.chains)
            ));
        }
        if !self.cycles.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str(&format!(
            "],\n  \"threads\": {},\n  \"events\": {}\n}}",
            self.threads, self.events
        ));
        out
    }
}

/// The passive hook: serializes every event into one state under a std
/// mutex (deliberately *not* the shim's own, which would recurse).
struct Recorder {
    state: StdMutex<RecState>,
}

impl ExploreHook for Recorder {
    fn on_event(&self, event: SyncEvent) {
        let id = std::thread::current().id();
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        st.events += 1;
        let t = st.thread_index(id);
        match event {
            SyncEvent::Checkin { worker } => {
                st.states[t].name = format!("worker {worker}");
            }
            SyncEvent::Acquire { mutex } => {
                let m = st.obj_id(mutex);
                st.on_acquire(t, m);
            }
            SyncEvent::Release { mutex } => {
                let m = st.obj_id(mutex);
                st.on_release(t, m, "release");
            }
            SyncEvent::Wait { condvar, mutex } => {
                let cv = st.obj_id(condvar);
                let m = st.obj_id(mutex);
                // A wait releases the mutex (publishing the clock) and
                // parks; the cv identity only matters at wakeup.
                let _ = cv;
                st.on_release(t, m, "wait-release");
            }
            SyncEvent::WakeAcquire { condvar, mutex } => {
                let cv = st.obj_id(condvar);
                let m = st.obj_id(mutex);
                if let Some(n) = st.notify_clocks.get(&cv) {
                    let n = n.clone();
                    st.states[t].clock.join(&n);
                }
                st.on_acquire(t, m);
            }
            SyncEvent::Notify { condvar, .. } => {
                let cv = st.obj_id(condvar);
                let clock = st.states[t].clock.clone();
                st.notify_clocks.entry(cv).or_default().join(&clock);
                st.states[t].clock.tick(t);
                let name = st.obj_name(cv);
                st.note(t, format!("notify {name}"));
            }
            SyncEvent::Send { chan } => {
                let ch = st.obj_id(chan);
                let clock = st.states[t].clock.clone();
                st.chan_clocks.entry(ch).or_default().join(&clock);
                st.states[t].clock.tick(t);
                let name = st.obj_name(ch);
                st.note(t, format!("send {name}"));
            }
            SyncEvent::Recv { chan } => {
                let ch = st.obj_id(chan);
                if let Some(s) = st.chan_clocks.get(&ch) {
                    let s = s.clone();
                    st.states[t].clock.join(&s);
                }
                let name = st.obj_name(ch);
                st.note(t, format!("recv {name}"));
            }
            SyncEvent::Touch { obj, write } => {
                st.on_touch(t, obj, write);
            }
            SyncEvent::Label { obj, label } => {
                let id = st.obj_id(obj);
                st.labels.insert(id, label);
            }
            SyncEvent::ThreadExit { .. } => {}
        }
    }
}

fn side_of(st: &RecState, rec: &AccessRec, write: bool) -> RaceSide {
    RaceSide {
        thread: st.states[rec.thread].name.clone(),
        access: if write { "write" } else { "read" },
        held: rec.held.iter().map(|&h| st.obj_name(h)).collect(),
        recent: rec.recent.clone(),
    }
}

/// Cycle detection over the accumulated lock-order graph: for every edge
/// `a → b`, search a path `b ⇝ a`; the edge plus the path is a cycle.
/// Deduplicated by (rotation-normalized) node set.
fn find_cycles(st: &RecState) -> Vec<LockCycle> {
    let mut cycles = Vec::new();
    let mut seen: Vec<Vec<usize>> = Vec::new();
    let mut froms: Vec<usize> = st.edges.keys().copied().collect();
    froms.sort_unstable();
    for &a in &froms {
        for e in &st.edges[&a] {
            let b = e.to;
            // BFS from b back to a.
            let mut prev: HashMap<usize, usize> = HashMap::new();
            let mut queue = VecDeque::from([b]);
            let mut found = false;
            while let Some(n) = queue.pop_front() {
                if n == a {
                    found = true;
                    break;
                }
                let Some(next) = st.edges.get(&n) else {
                    continue;
                };
                let mut tos: Vec<usize> = next.iter().map(|e| e.to).collect();
                tos.sort_unstable();
                for to in tos {
                    if to != b && !prev.contains_key(&to) {
                        prev.insert(to, n);
                        queue.push_back(to);
                    }
                }
            }
            if !found {
                continue;
            }
            // Reconstruct a → b ⇝ a as a node list starting at a, by
            // following the BFS predecessors from a back to b.
            let mut path = vec![a];
            let mut back = vec![a];
            let mut cur = a;
            while cur != b {
                cur = prev[&cur];
                back.push(cur);
            }
            back.reverse(); // b, …, a
            back.pop(); // drop the trailing a
            path.extend(back); // a, b, …, last-before-a
                               // Normalize: rotate so the smallest id leads.
            let min_pos = path
                .iter()
                .enumerate()
                .min_by_key(|(_, &v)| v)
                .map(|(i, _)| i)
                .unwrap_or(0);
            let mut norm = path.clone();
            norm.rotate_left(min_pos);
            if seen.contains(&norm) {
                continue;
            }
            seen.push(norm.clone());
            // Chains: for each consecutive edge on the normalized cycle,
            // the first recorded acquisition example.
            let mut chains = Vec::new();
            for i in 0..norm.len() {
                let from = norm[i];
                let to = norm[(i + 1) % norm.len()];
                if let Some(edge) = st
                    .edges
                    .get(&from)
                    .and_then(|es| es.iter().find(|e| e.to == to))
                {
                    chains.push(edge.chain.clone());
                }
            }
            cycles.push(LockCycle {
                locks: norm.iter().map(|&n| st.obj_name(n)).collect(),
                chains,
            });
        }
    }
    cycles
}

/// RAII: uninstall the passive hook even if the workload panics.
struct Uninstall;

impl Drop for Uninstall {
    fn drop(&mut self) {
        explore::uninstall();
    }
}

/// Run `f` under the passive happens-before recorder and return its
/// result together with the [`HbReport`].
///
/// Serialized against the explorer/model-checker sessions (they share
/// the process-global shim hook); the workload runs exactly once, at
/// real speed, with every thread instrumented.
pub fn record<R>(f: impl FnOnce() -> R) -> (R, HbReport) {
    let _serial = lock_of(&SESSION_LOCK);
    let recorder = Arc::new(Recorder {
        state: StdMutex::new(RecState::default()),
    });
    explore::install_passive(recorder.clone());
    let guard = Uninstall;
    let result = f();
    drop(guard);
    let st = recorder.state.lock().unwrap_or_else(|e| e.into_inner());
    let report = HbReport {
        races: st.races.clone(),
        cycles: find_cycles(&st),
        threads: st.states.len(),
        events: st.events,
    };
    (result, report)
}
