//! Structured lint diagnostics and the JSON report.
//!
//! Unlike [`hetchol_core::schedule::Schedule::validate`], which stops at
//! the first structural error, the linter collects *every* finding into a
//! [`Report`] of [`Diagnostic`]s — each carrying a stable rule id, a
//! severity, and an optional task/worker location — so CI and the `repro
//! --analyze` harness can show the complete damage of a bad schedule at
//! once and machine-consume it as JSON.

use hetchol_core::platform::WorkerId;
use hetchol_core::task::TaskId;
use std::fmt;

/// The lint rule catalog. Each variant has a stable kebab-case id used in
/// the JSON report and CI output; see DESIGN.md §4 for the full catalog
/// with rationale.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rule {
    /// Entry count differs from the graph's task count.
    TaskSetSize,
    /// Entry count matches but some task is duplicated/missing.
    TaskMisnumbered,
    /// An entry references a worker outside the platform.
    BadWorker,
    /// A task ends before it starts.
    NegativeDuration,
    /// A task's duration disagrees with the timing profile (Exact mode).
    WrongDuration,
    /// A successor starts before a predecessor ends.
    DependencyViolated,
    /// Two tasks overlap on one worker.
    WorkerOverlap,
    /// Makespan beats the area lower bound — an impossible result.
    BoundArea,
    /// Makespan beats the mixed (LP) lower bound.
    BoundMixed,
    /// Makespan beats the critical-path lower bound.
    BoundCriticalPath,
    /// A hint-pinned TRSM ran off its forced resource class.
    HintConformance,
    /// Queue discipline violated: a higher-ranked queued task started
    /// after a lower-ranked one on the same worker.
    PriorityInversion,
    /// A worker idled while a startable task sat in its queue.
    IdleGap,
    /// A replayed trace deviates from its prescribed schedule.
    ReplayDivergence,
    /// An observability span is internally inconsistent or disagrees with
    /// the plain trace (phase timestamps out of order, span/event
    /// mismatch, missing spans).
    SpanConsistency,
    /// A bound verdict rests on f64 arithmetic only: either no exact
    /// certificate was supplied for the armed bounds, or the supplied one
    /// was rejected by the independent checker. Bound findings without
    /// this warning are CONFIRMED in exact rational arithmetic.
    UncertifiedBound,
    /// A fault-recovery invariant broke: a task executed on a worker at or
    /// after that worker's recorded death, or a failed attempt was neither
    /// retried to success on a then-live worker nor recorded as aborted.
    RecoveryConsistency,
    /// A trace replayed from a model-checker witness reproduces the
    /// violated invariant (CONFIRMED), or fails to (the witness is stale
    /// or the replay diverged — a warning).
    McWitness,
    /// A happens-before race or lock-order cycle witnessed by the passive
    /// sync recorder: two conflicting touchpoint accesses with no
    /// release→acquire or send→recv path between them, or a cycle in the
    /// global lock acquisition graph (potential deadlock).
    RaceWitness,
}

impl Rule {
    /// The stable kebab-case rule id.
    pub fn id(self) -> &'static str {
        match self {
            Rule::TaskSetSize => "task-set-size",
            Rule::TaskMisnumbered => "task-misnumbered",
            Rule::BadWorker => "bad-worker",
            Rule::NegativeDuration => "negative-duration",
            Rule::WrongDuration => "wrong-duration",
            Rule::DependencyViolated => "dependency-violated",
            Rule::WorkerOverlap => "worker-overlap",
            Rule::BoundArea => "bound-area",
            Rule::BoundMixed => "bound-mixed",
            Rule::BoundCriticalPath => "bound-critical-path",
            Rule::HintConformance => "hint-conformance",
            Rule::PriorityInversion => "priority-inversion",
            Rule::IdleGap => "idle-gap",
            Rule::ReplayDivergence => "replay-divergence",
            Rule::SpanConsistency => "span-consistency",
            Rule::UncertifiedBound => "uncertified-bound",
            Rule::RecoveryConsistency => "recovery-consistency",
            Rule::McWitness => "mc-witness",
            Rule::RaceWitness => "race-witness",
        }
    }

    /// All rules, for catalog listings and coverage tests.
    pub const ALL: [Rule; 19] = [
        Rule::TaskSetSize,
        Rule::TaskMisnumbered,
        Rule::BadWorker,
        Rule::NegativeDuration,
        Rule::WrongDuration,
        Rule::DependencyViolated,
        Rule::WorkerOverlap,
        Rule::BoundArea,
        Rule::BoundMixed,
        Rule::BoundCriticalPath,
        Rule::HintConformance,
        Rule::PriorityInversion,
        Rule::IdleGap,
        Rule::ReplayDivergence,
        Rule::SpanConsistency,
        Rule::UncertifiedBound,
        Rule::RecoveryConsistency,
        Rule::McWitness,
        Rule::RaceWitness,
    ];
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// How bad a finding is.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Suspicious but possibly intended (e.g. an idle gap caused by a
    /// deliberate `may_start` hold).
    Warning,
    /// The artifact is invalid or physically impossible.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// One lint finding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// Which rule fired.
    pub rule: Rule,
    /// Error or warning.
    pub severity: Severity,
    /// The offending task, when the finding is task-located.
    pub task: Option<TaskId>,
    /// The offending worker, when the finding is worker-located.
    pub worker: Option<WorkerId>,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]: {}", self.severity, self.rule, self.message)
    }
}

/// The complete result of one lint pass.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Report {
    /// All findings, in rule-catalog order then discovery order.
    pub diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// `true` when nothing at all was found.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Number of error-severity findings.
    pub fn n_errors(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    /// Number of warning-severity findings.
    pub fn n_warnings(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warning)
            .count()
    }

    /// Findings that fired for `rule`.
    pub fn by_rule(&self, rule: Rule) -> Vec<&Diagnostic> {
        self.diagnostics.iter().filter(|d| d.rule == rule).collect()
    }

    /// Whether any finding names `task`.
    pub fn names_task(&self, task: TaskId) -> bool {
        self.diagnostics.iter().any(|d| d.task == Some(task))
    }

    /// Serialize to JSON (hand-rolled; the workspace has no serde).
    ///
    /// Stable format, golden-tested:
    /// `{"errors":E,"warnings":W,"diagnostics":[{...},...]}` with each
    /// diagnostic carrying `rule`, `severity`, `task` (id or null),
    /// `worker` (id or null) and `message`.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{{\"errors\":{},\"warnings\":{},\"diagnostics\":[",
            self.n_errors(),
            self.n_warnings()
        ));
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"rule\":\"{}\",\"severity\":\"{}\",\"task\":{},\"worker\":{},\"message\":\"{}\"}}",
                d.rule,
                d.severity,
                d.task.map_or("null".to_string(), |t| t.index().to_string()),
                d.worker.map_or("null".to_string(), |w| w.to_string()),
                escape_json(&d.message),
            ));
        }
        out.push_str("]}");
        out
    }
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_ids_are_distinct_kebab_case() {
        let mut seen = std::collections::BTreeSet::new();
        for r in Rule::ALL {
            assert!(seen.insert(r.id()), "duplicate id {}", r.id());
            assert!(r.id().chars().all(|c| c.is_ascii_lowercase() || c == '-'));
        }
        assert!(seen.len() >= 8, "catalog must stay ≥ 8 rules");
    }

    #[test]
    fn json_escapes_and_nulls() {
        let report = Report {
            diagnostics: vec![Diagnostic {
                rule: Rule::BadWorker,
                severity: Severity::Error,
                task: Some(TaskId(3)),
                worker: None,
                message: "say \"no\"".to_string(),
            }],
        };
        assert_eq!(
            report.to_json(),
            "{\"errors\":1,\"warnings\":0,\"diagnostics\":[{\"rule\":\"bad-worker\",\
             \"severity\":\"error\",\"task\":3,\"worker\":null,\"message\":\"say \\\"no\\\"\"}]}"
        );
    }
}
