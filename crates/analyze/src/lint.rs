//! The schedule/trace linter.
//!
//! [`Linter`] runs the full rule battery over a [`Schedule`] or a
//! [`Trace`] and reports *all* findings (unlike `Schedule::validate`,
//! which is fail-fast). The structural rules mirror the validator; the
//! remaining rules need extra context the caller opts into:
//!
//! * bound consistency — give the linter a [`BoundSet`] and any makespan
//!   *below* a lower bound is flagged as physically impossible;
//! * hint conformance — declare the TRSM-triangle hint parameters and
//!   off-class placements of pinned TRSMs are flagged;
//! * queue discipline — declare `dmda` (FIFO) or `dmdas` (sorted) and the
//!   per-task dispatch records are audited for priority inversions;
//! * idle gaps — workers idling over a startable queued task;
//! * replay divergence — give the prescribed [`Schedule`] and the trace's
//!   placements and per-worker orders are compared against the plan;
//! * span consistency — give the run's [`ObsReport`] and its phase spans
//!   are checked internally and against the plain trace.
//!
//! The queue-discipline and idle-gap rules consume per-task records
//! `(seq, prio, queued, data_ready, start)`. With [`Linter::with_obs`]
//! they read those straight from the structured [`ObsReport`] spans; with
//! only a plain trace they reconstruct them by joining the dispatcher's
//! `QueueEvent` stream against the execution events.

use crate::diag::{Diagnostic, Report, Rule, Severity};
use crate::mc::Invariant;
use hetchol_bounds::cert::{Rat, VerifiedBounds};
use hetchol_bounds::{BoundSet, CertifiedBoundSet};
use hetchol_core::dag::TaskGraph;
use hetchol_core::fault::RunOutcome;
use hetchol_core::obs::ObsReport;
use hetchol_core::platform::{ClassId, Platform};
use hetchol_core::profiles::TimingProfile;
use hetchol_core::schedule::{DurationCheck, Schedule};
use hetchol_core::task::{TaskCoords, TaskId};
use hetchol_core::time::Time;
use hetchol_core::trace::Trace;

/// Which per-worker queue discipline the engine was configured with — the
/// paper's `dmda` (FIFO) versus `dmdas` (priority-sorted) distinction.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum QueueDiscipline {
    /// FIFO queues: same-worker start order must follow enqueue order.
    Fifo,
    /// Priority-sorted queues: an earlier-enqueued, higher-or-equal
    /// priority task must not start after a lower-ranked one.
    Sorted,
}

/// Relative slack applied to bound comparisons: the LP-based bounds carry
/// ~1e-4 duality gaps, so only makespans *meaningfully* below a bound are
/// impossible.
const BOUND_REL_TOL: f64 = 1e-6;

/// The diagnostic engine. Build with [`Linter::new`], opt into the
/// context-dependent rules with the builder methods, then run
/// [`Linter::lint_schedule`] or [`Linter::lint_trace`].
pub struct Linter<'a> {
    graph: &'a TaskGraph,
    platform: &'a Platform,
    profile: &'a TimingProfile,
    duration_check: DurationCheck,
    bounds: Option<BoundSet>,
    certified: Option<CertifiedBoundSet>,
    trsm_cpu_hint: Option<(u32, ClassId)>,
    queue_discipline: Option<QueueDiscipline>,
    prescribed: Option<&'a Schedule>,
    idle_gap_threshold: Time,
    obs: Option<&'a ObsReport>,
    mc_witness: Option<(Invariant, RunOutcome)>,
}

/// One task's dispatch-to-start record, the common input of the
/// queue-discipline and idle-gap rules.
#[derive(Copy, Clone, Debug)]
struct TaskRecord {
    seq: u64,
    prio: i64,
    task: TaskId,
    queued: Time,
    data_ready: Time,
    start: Time,
}

impl<'a> Linter<'a> {
    /// A linter with only the structural rules armed, checking durations
    /// exactly (the deterministic-simulation contract).
    pub fn new(
        graph: &'a TaskGraph,
        platform: &'a Platform,
        profile: &'a TimingProfile,
    ) -> Linter<'a> {
        Linter {
            graph,
            platform,
            profile,
            duration_check: DurationCheck::Exact,
            bounds: None,
            certified: None,
            trsm_cpu_hint: None,
            queue_discipline: None,
            prescribed: None,
            idle_gap_threshold: Time::from_micros(10),
            obs: None,
            mc_witness: None,
        }
    }

    /// Use `check` for the duration rule (`Loose` for wall-clock traces).
    pub fn duration_check(mut self, check: DurationCheck) -> Self {
        self.duration_check = check;
        self
    }

    /// Arm the bound-consistency rules against `bounds`, comparing in f64
    /// with `BOUND_REL_TOL` slack. Any bound finding is accompanied by
    /// an [`Rule::UncertifiedBound`] warning — use
    /// [`Linter::with_certified_bounds`] for exact verdicts.
    pub fn with_bounds(mut self, bounds: BoundSet) -> Self {
        self.bounds = Some(bounds);
        self
    }

    /// Arm the bound-consistency rules against exactly-certified bounds.
    /// The certificates are re-verified by the independent checker at lint
    /// time; when they hold, bound verdicts are issued in exact rational
    /// arithmetic (CONFIRMED errors, or FLOAT-SLOP warnings when only the
    /// tolerant f64 comparison fires). A rejected certificate downgrades
    /// to the f64 path with an [`Rule::UncertifiedBound`] warning.
    pub fn with_certified_bounds(mut self, certified: CertifiedBoundSet) -> Self {
        self.certified = Some(certified);
        self
    }

    /// Arm hint conformance: every TRSM at least `k_offset` tiles below
    /// the diagonal must run on a worker of `cpu_class`.
    pub fn with_trsm_cpu_hint(mut self, k_offset: u32, cpu_class: ClassId) -> Self {
        self.trsm_cpu_hint = Some((k_offset, cpu_class));
        self
    }

    /// Arm priority-inversion detection for the given queue discipline.
    pub fn with_queue_discipline(mut self, discipline: QueueDiscipline) -> Self {
        self.queue_discipline = Some(discipline);
        self
    }

    /// Arm replay-divergence detection against a prescribed schedule.
    pub fn with_prescribed(mut self, schedule: &'a Schedule) -> Self {
        self.prescribed = Some(schedule);
        self
    }

    /// Only report idle gaps longer than `threshold` (absorbs wall-clock
    /// scheduling latency on the real runtime; default 10 µs).
    pub fn idle_gap_threshold(mut self, threshold: Time) -> Self {
        self.idle_gap_threshold = threshold;
        self
    }

    /// Feed the run's structured observability report: the
    /// queue-discipline and idle-gap rules then read their per-task
    /// records straight from the phase spans (strictly richer than the
    /// `QueueEvent` reconstruction), and the span-consistency rule is
    /// armed. An [`ObsReport`] from a disabled sink is ignored.
    pub fn with_obs(mut self, obs: &'a ObsReport) -> Self {
        self.obs = Some(obs);
        self
    }

    /// Arm rule 18 (`mc-witness`): the trace being linted was replayed
    /// from a model-checker witness recording a violation of `invariant`,
    /// and the replay classified the run as `outcome`. The rule re-runs
    /// the invariant engine ([`crate::mc::trace_invariants`]) over the
    /// trace: reproducing the recorded invariant is flagged **CONFIRMED**
    /// (an error — the witnessed bug is real in this build); a trace that
    /// checks clean, or violates a *different* invariant, gets a warning
    /// (stale witness or divergent replay).
    pub fn with_mc_witness(mut self, invariant: Invariant, outcome: RunOutcome) -> Self {
        self.mc_witness = Some((invariant, outcome));
        self
    }

    /// Lint a schedule: structural rules, bound consistency, and hint
    /// conformance.
    pub fn lint_schedule(&self, schedule: &Schedule) -> Report {
        let mut diags = Vec::new();
        self.check_structure(schedule, &mut diags);
        let task_set_ok = !diags
            .iter()
            .any(|d| matches!(d.rule, Rule::TaskSetSize | Rule::TaskMisnumbered));
        if task_set_ok {
            // An incomplete schedule has an artificially small makespan;
            // comparing it against bounds would produce phantom findings.
            self.check_bounds(schedule, &mut diags);
            self.check_hints(schedule, &mut diags);
        }
        finish(diags)
    }

    /// Lint a trace: everything [`Linter::lint_schedule`] checks on the
    /// trace's derived schedule, plus the queue-discipline, idle-gap and
    /// replay-divergence rules that need the raw event stream.
    pub fn lint_trace(&self, trace: &Trace) -> Report {
        let schedule = trace.to_schedule();
        let mut report = self.lint_schedule(&schedule);
        let mut diags = std::mem::take(&mut report.diagnostics);
        let records = self.task_records(trace);
        self.check_priority_inversion(&records, &mut diags);
        self.check_idle_gaps(trace, &records, &mut diags);
        if let Some(prescribed) = self.prescribed {
            self.check_replay(trace, prescribed, &mut diags);
        }
        self.check_span_consistency(trace, &mut diags);
        self.check_recovery_consistency(trace, &mut diags);
        self.check_mc_witness(trace, &mut diags);
        finish(diags)
    }

    /// The per-worker dispatch records the queue-discipline and idle-gap
    /// rules run on: read from the observability spans when armed, else
    /// reconstructed by joining `QueueEvent`s with execution events.
    /// Sorted by `(start, seq)` within each worker.
    fn task_records(&self, trace: &Trace) -> Vec<Vec<TaskRecord>> {
        let mut per_worker: Vec<Vec<TaskRecord>> = vec![Vec::new(); trace.n_workers];
        if let Some(obs) = self.obs.filter(|o| o.enabled) {
            for s in &obs.spans {
                if s.worker < trace.n_workers {
                    per_worker[s.worker].push(TaskRecord {
                        seq: s.seq,
                        prio: s.prio,
                        task: s.task,
                        queued: s.queued,
                        data_ready: s.data_ready,
                        start: s.start,
                    });
                }
            }
        } else {
            for qe in &trace.queue_events {
                let Some(ev) = trace.events.iter().find(|e| e.task == qe.task) else {
                    continue; // enqueued but never executed: set rules cover it
                };
                if qe.worker < trace.n_workers {
                    per_worker[qe.worker].push(TaskRecord {
                        seq: qe.seq,
                        prio: qe.prio,
                        task: qe.task,
                        queued: qe.at,
                        data_ready: qe.data_ready,
                        start: ev.start,
                    });
                }
            }
        }
        for records in &mut per_worker {
            records.sort_by_key(|r| (r.start, r.seq));
        }
        per_worker
    }

    /// The fail-fast validator's rules, exhaustively.
    fn check_structure(&self, schedule: &Schedule, diags: &mut Vec<Diagnostic>) {
        let entries = schedule.entries();
        if entries.len() != self.graph.len() {
            diags.push(Diagnostic {
                rule: Rule::TaskSetSize,
                severity: Severity::Error,
                task: None,
                worker: None,
                message: format!(
                    "schedule has {} entries, graph has {} tasks",
                    entries.len(),
                    self.graph.len()
                ),
            });
            // Name the missing tasks so the report localizes the damage.
            let mut present = vec![false; self.graph.len()];
            for e in entries {
                if let Some(slot) = present.get_mut(e.task.index()) {
                    *slot = true;
                }
            }
            for (idx, _) in present.iter().enumerate().filter(|(_, p)| !**p) {
                let task = TaskId(idx as u32);
                diags.push(Diagnostic {
                    rule: Rule::TaskMisnumbered,
                    severity: Severity::Error,
                    task: Some(task),
                    worker: None,
                    message: format!("{task} is missing from the schedule"),
                });
            }
        } else {
            for (idx, e) in entries.iter().enumerate() {
                if e.task.index() != idx {
                    diags.push(Diagnostic {
                        rule: Rule::TaskMisnumbered,
                        severity: Severity::Error,
                        task: Some(e.task),
                        worker: None,
                        message: format!(
                            "slot {idx} of the sorted entries holds {}: a task is duplicated or missing",
                            e.task
                        ),
                    });
                }
            }
        }
        for e in entries {
            if e.worker >= self.platform.n_workers() {
                diags.push(Diagnostic {
                    rule: Rule::BadWorker,
                    severity: Severity::Error,
                    task: Some(e.task),
                    worker: Some(e.worker),
                    message: format!(
                        "{} assigned to nonexistent worker {} (platform has {})",
                        e.task,
                        e.worker,
                        self.platform.n_workers()
                    ),
                });
                continue; // duration rules need a valid class
            }
            if e.end < e.start {
                diags.push(Diagnostic {
                    rule: Rule::NegativeDuration,
                    severity: Severity::Error,
                    task: Some(e.task),
                    worker: Some(e.worker),
                    message: format!(
                        "{} ends at {} before it starts at {}",
                        e.task, e.end, e.start
                    ),
                });
                continue;
            }
            if self.duration_check == DurationCheck::Exact && e.task.index() < self.graph.len() {
                let expected = self.profile.time(
                    self.graph.task(e.task).kernel(),
                    self.platform.class_of(e.worker),
                );
                let got = e.end - e.start;
                if got != expected {
                    diags.push(Diagnostic {
                        rule: Rule::WrongDuration,
                        severity: Severity::Error,
                        task: Some(e.task),
                        worker: Some(e.worker),
                        message: format!(
                            "{} runs for {got} on worker {}, profile says {expected}",
                            e.task, e.worker
                        ),
                    });
                }
            }
        }
        for (pred, succ) in self.graph.edges() {
            let (Some(ep), Some(es)) = (schedule.entry(pred), schedule.entry(succ)) else {
                continue; // missing entries already flagged by the set rules
            };
            if es.start < ep.end {
                diags.push(Diagnostic {
                    rule: Rule::DependencyViolated,
                    severity: Severity::Error,
                    task: Some(succ),
                    worker: Some(es.worker),
                    message: format!(
                        "{succ} starts at {} before its predecessor {pred} ends at {}",
                        es.start, ep.end
                    ),
                });
            }
        }
        let mut per_worker: Vec<Vec<usize>> = vec![Vec::new(); self.platform.n_workers()];
        for (i, e) in entries.iter().enumerate() {
            if e.worker < self.platform.n_workers() {
                per_worker[e.worker].push(i);
            }
        }
        for (worker, mut idxs) in per_worker.into_iter().enumerate() {
            idxs.sort_by_key(|&i| (entries[i].start, entries[i].end));
            for pair in idxs.windows(2) {
                let (a, b) = (&entries[pair[0]], &entries[pair[1]]);
                if b.start < a.end {
                    diags.push(Diagnostic {
                        rule: Rule::WorkerOverlap,
                        severity: Severity::Error,
                        task: Some(b.task),
                        worker: Some(worker),
                        message: format!(
                            "worker {worker}: {} starting at {} overlaps {} ending at {}",
                            b.task, b.start, a.task, a.end
                        ),
                    });
                }
            }
        }
    }

    /// Makespan must not beat any lower bound — "better than bound" means
    /// the schedule (or the bound) is wrong.
    ///
    /// With [`Linter::with_certified_bounds`] and a checker-accepted
    /// certificate the verdicts are exact; otherwise the f64 comparison
    /// applies and any finding is flagged [`Rule::UncertifiedBound`].
    fn check_bounds(&self, schedule: &Schedule, diags: &mut Vec<Diagnostic>) {
        let bounds = match (&self.certified, &self.bounds) {
            (Some(c), _) => &c.set,
            (None, Some(b)) => b,
            (None, None) => return,
        };
        let makespan = schedule.makespan();

        if let Some(certified) = &self.certified {
            match certified.verify(self.platform, self.profile) {
                Ok(verified) => {
                    self.check_bounds_exact(makespan, bounds, &verified, diags);
                    return;
                }
                Err(reject) => diags.push(Diagnostic {
                    rule: Rule::UncertifiedBound,
                    severity: Severity::Warning,
                    task: None,
                    worker: None,
                    message: format!(
                        "bound certificate rejected by the independent checker ({reject}); \
                         bound verdicts fall back to f64 arithmetic"
                    ),
                }),
            }
        }

        let before = diags.len();
        let mut check = |rule: Rule, name: &str, bound: Time| {
            let limit = bound.as_secs_f64() * (1.0 - BOUND_REL_TOL);
            if makespan.as_secs_f64() < limit {
                diags.push(Diagnostic {
                    rule,
                    severity: Severity::Error,
                    task: None,
                    worker: None,
                    message: format!(
                        "makespan {makespan} beats the {name} lower bound {bound}: impossible result"
                    ),
                });
            }
        };
        check(Rule::BoundArea, "area", bounds.area);
        check(Rule::BoundMixed, "mixed", bounds.mixed);
        check(
            Rule::BoundCriticalPath,
            "critical-path",
            bounds.critical_path,
        );
        if diags.len() > before && self.certified.is_none() {
            diags.push(Diagnostic {
                rule: Rule::UncertifiedBound,
                severity: Severity::Warning,
                task: None,
                worker: None,
                message: "bound verdicts above rest on f64 arithmetic only; certify the \
                          bounds (BoundSet::certify) for an exact-rational confirmation"
                    .to_string(),
            });
        }
    }

    /// Exact bound verdicts, available once the certificate checker has
    /// accepted the supplied certificates. The makespan is integer
    /// nanoseconds, so comparisons against the verified rational bounds
    /// (and the integer critical-path bound) are exact: violations are
    /// CONFIRMED errors, and makespans the tolerant f64 comparison would
    /// flag but the exact one does not are FLOAT-SLOP warnings.
    fn check_bounds_exact(
        &self,
        makespan: Time,
        bounds: &BoundSet,
        verified: &VerifiedBounds,
        diags: &mut Vec<Diagnostic>,
    ) {
        let mk = Rat::from_nanos(makespan.as_nanos());
        let mut check = |rule: Rule, name: &str, fbound: Time, exact: &Rat| {
            if mk < *exact {
                diags.push(Diagnostic {
                    rule,
                    severity: Severity::Error,
                    task: None,
                    worker: None,
                    message: format!(
                        "makespan {makespan} beats the {name} lower bound {fbound}: impossible \
                         result [CONFIRMED by exact-rational certificate, bound = {exact} s]"
                    ),
                });
            } else if makespan.as_secs_f64() < fbound.as_secs_f64() * (1.0 - BOUND_REL_TOL) {
                diags.push(Diagnostic {
                    rule,
                    severity: Severity::Warning,
                    task: None,
                    worker: None,
                    message: format!(
                        "f64 comparison flags makespan {makespan} as beating the {name} lower \
                         bound {fbound}, but the exact certificate (bound = {exact} s) does not \
                         confirm the violation [FLOAT-SLOP]"
                    ),
                });
            }
        };
        check(Rule::BoundArea, "area", bounds.area, &verified.area);
        check(Rule::BoundMixed, "mixed", bounds.mixed, &verified.mixed);
        // The critical-path bound is computed in integer nanoseconds and
        // needs no LP certificate: the comparison is already exact.
        if makespan < bounds.critical_path {
            diags.push(Diagnostic {
                rule: Rule::BoundCriticalPath,
                severity: Severity::Error,
                task: None,
                worker: None,
                message: format!(
                    "makespan {makespan} beats the critical-path lower bound {}: impossible \
                     result [CONFIRMED in integer nanoseconds]",
                    bounds.critical_path
                ),
            });
        }
    }

    /// Pinned TRSMs must sit on the forced class.
    fn check_hints(&self, schedule: &Schedule, diags: &mut Vec<Diagnostic>) {
        let Some((k_offset, cpu_class)) = self.trsm_cpu_hint else {
            return;
        };
        for e in schedule.entries() {
            if e.worker >= self.platform.n_workers() {
                continue;
            }
            let coords = self.graph.task(e.task).coords;
            let pinned =
                matches!(coords, TaskCoords::Trsm { .. }) && coords.diagonal_offset() >= k_offset;
            if pinned && self.platform.class_of(e.worker) != cpu_class {
                diags.push(Diagnostic {
                    rule: Rule::HintConformance,
                    severity: Severity::Error,
                    task: Some(e.task),
                    worker: Some(e.worker),
                    message: format!(
                        "{coords} is {} tiles below the diagonal (hint pins offsets ≥ {k_offset} \
                         to class {cpu_class}) but ran on worker {} of class {}",
                        coords.diagonal_offset(),
                        e.worker,
                        self.platform.class_of(e.worker)
                    ),
                });
            }
        }
    }

    /// Audit per-worker start order against the dispatch records under
    /// the declared discipline.
    fn check_priority_inversion(&self, records: &[Vec<TaskRecord>], diags: &mut Vec<Diagnostic>) {
        let Some(discipline) = self.queue_discipline else {
            return;
        };
        for (worker, evs) in records.iter().enumerate() {
            for (i, b) in evs.iter().enumerate() {
                // Find an earlier-started task that was enqueued after this
                // one yet outranked it under the declared discipline.
                let offender = evs[..i].iter().find(|a| {
                    let enqueued_later = a.seq > b.seq;
                    let outranked = match discipline {
                        QueueDiscipline::Fifo => true,
                        QueueDiscipline::Sorted => b.prio >= a.prio,
                    };
                    a.start < b.start && enqueued_later && outranked
                });
                if let Some(a) = offender {
                    diags.push(Diagnostic {
                        rule: Rule::PriorityInversion,
                        severity: Severity::Warning,
                        task: Some(b.task),
                        worker: Some(worker),
                        message: format!(
                            "worker {worker}: {} (seq {}, prio {}) started after \
                             {} (seq {}, prio {}) despite outranking it under the \
                             {} discipline",
                            b.task,
                            b.seq,
                            b.prio,
                            a.task,
                            a.seq,
                            a.prio,
                            match discipline {
                                QueueDiscipline::Fifo => "FIFO",
                                QueueDiscipline::Sorted => "sorted",
                            }
                        ),
                    });
                }
            }
        }
    }

    /// A worker idling across a gap while a startable task sat in its
    /// queue is scheduling anomaly (or a deliberate `may_start` hold).
    fn check_idle_gaps(
        &self,
        trace: &Trace,
        records: &[Vec<TaskRecord>],
        diags: &mut Vec<Diagnostic>,
    ) {
        for (worker, worker_records) in records.iter().enumerate().take(trace.n_workers) {
            let evs = trace.worker_events(worker);
            // Gaps: from t=0 to the first start, and between executions.
            let mut gaps: Vec<(Time, Time)> = Vec::new();
            let mut prev_end = Time::ZERO;
            for e in &evs {
                if e.start > prev_end {
                    gaps.push((prev_end, e.start));
                }
                prev_end = prev_end.max(e.end);
            }
            for (g0, g1) in gaps {
                if g1 - g0 <= self.idle_gap_threshold {
                    continue;
                }
                for r in worker_records {
                    if r.queued > g0 || r.data_ready > g0 {
                        continue; // not yet startable when the gap opened
                    }
                    if r.start >= g1 {
                        diags.push(Diagnostic {
                            rule: Rule::IdleGap,
                            severity: Severity::Warning,
                            task: Some(r.task),
                            worker: Some(worker),
                            message: format!(
                                "worker {worker} idled over [{g0}, {g1}) while {} (enqueued at {}, \
                                 data ready at {}) was startable in its queue",
                                r.task, r.queued, r.data_ready
                            ),
                        });
                    }
                }
            }
        }
    }

    /// The observability spans must be internally consistent and agree
    /// with the plain trace (armed by [`Linter::with_obs`]).
    fn check_span_consistency(&self, trace: &Trace, diags: &mut Vec<Diagnostic>) {
        let Some(obs) = self.obs.filter(|o| o.enabled) else {
            return;
        };
        if obs.spans.len() != trace.events.len() {
            diags.push(Diagnostic {
                rule: Rule::SpanConsistency,
                severity: Severity::Error,
                task: None,
                worker: None,
                message: format!(
                    "observability recorded {} spans but the trace has {} executions",
                    obs.spans.len(),
                    trace.events.len()
                ),
            });
        }
        for s in &obs.spans {
            if s.end < s.start || s.queued > s.start {
                diags.push(Diagnostic {
                    rule: Rule::SpanConsistency,
                    severity: Severity::Error,
                    task: Some(s.task),
                    worker: Some(s.worker),
                    message: format!(
                        "{}: phase timestamps out of order (queued {}, start {}, end {})",
                        s.task, s.queued, s.start, s.end
                    ),
                });
                continue;
            }
            match trace.events.iter().find(|e| e.task == s.task) {
                None => diags.push(Diagnostic {
                    rule: Rule::SpanConsistency,
                    severity: Severity::Error,
                    task: Some(s.task),
                    worker: Some(s.worker),
                    message: format!("{} has a span but no trace event", s.task),
                }),
                Some(e) if (e.worker, e.start, e.end) != (s.worker, s.start, s.end) => {
                    diags.push(Diagnostic {
                        rule: Rule::SpanConsistency,
                        severity: Severity::Error,
                        task: Some(s.task),
                        worker: Some(s.worker),
                        message: format!(
                            "{}: span (worker {}, [{}, {})) disagrees with trace event \
                             (worker {}, [{}, {}))",
                            s.task, s.worker, s.start, s.end, e.worker, e.start, e.end
                        ),
                    });
                }
                Some(_) => {}
            }
        }
    }

    /// Fault-recovery invariants over the trace's fault-event stream
    /// (a no-op on fault-free traces, so the rule is always armed):
    ///
    /// 1. no task executes on a worker at or after that worker's recorded
    ///    death — a dead worker's queue must have been re-dispatched, not
    ///    drained by the corpse;
    /// 2. every failed attempt is eventually answered: a later successful
    ///    execution of the task on a worker still alive at that start, or
    ///    an explicit abort record. A failure that just vanishes means the
    ///    engine dropped a task on the floor.
    fn check_recovery_consistency(&self, trace: &Trace, diags: &mut Vec<Diagnostic>) {
        use hetchol_core::fault::FaultEventKind;
        if trace.fault_events.is_empty() {
            return;
        }
        let mut death: Vec<Option<Time>> = vec![None; trace.n_workers];
        for fe in &trace.fault_events {
            if let FaultEventKind::WorkerDied { worker } = fe.kind {
                if worker < trace.n_workers && death[worker].is_none() {
                    death[worker] = Some(fe.at);
                }
            }
        }
        for e in &trace.events {
            if let Some(&Some(died)) = death.get(e.worker) {
                if e.start >= died {
                    diags.push(Diagnostic {
                        rule: Rule::RecoveryConsistency,
                        severity: Severity::Error,
                        task: Some(e.task),
                        worker: Some(e.worker),
                        message: format!(
                            "{} started at {} on worker {}, which died at {died}",
                            e.task, e.start, e.worker
                        ),
                    });
                }
            }
        }
        let aborted: std::collections::BTreeSet<TaskId> = trace
            .fault_events
            .iter()
            .filter_map(|fe| match fe.kind {
                FaultEventKind::Aborted { task, .. } => Some(task),
                _ => None,
            })
            .collect();
        let mut unanswered: Vec<TaskId> = Vec::new();
        for fe in &trace.fault_events {
            let FaultEventKind::AttemptFailed { task, .. } = fe.kind else {
                continue;
            };
            if aborted.contains(&task) || unanswered.contains(&task) {
                continue;
            }
            let recovered = trace.events.iter().any(|e| {
                e.task == task
                    && e.start >= fe.at
                    && death
                        .get(e.worker)
                        .is_none_or(|d| d.is_none_or(|died| e.start < died))
            });
            if !recovered {
                unanswered.push(task);
                diags.push(Diagnostic {
                    rule: Rule::RecoveryConsistency,
                    severity: Severity::Error,
                    task: Some(task),
                    worker: None,
                    message: format!(
                        "{task} failed an attempt at {} but was neither retried to success \
                         on a live worker nor recorded as aborted",
                        fe.at
                    ),
                });
            }
        }
    }

    /// Rule 18 (`mc-witness`), armed via [`Linter::with_mc_witness`]: the
    /// trace was replayed from a model-checker witness. Re-run the model
    /// checker's invariant engine over the replayed trace and compare with
    /// the invariant the witness recorded. Reproducing it is an *error*
    /// labelled CONFIRMED — the model-checked bug is real in this build.
    /// A clean trace, or a different invariant, downgrades to a warning:
    /// the witness is stale (fixed bug) or the replay diverged.
    fn check_mc_witness(&self, trace: &Trace, diags: &mut Vec<Diagnostic>) {
        let Some((expected, outcome)) = &self.mc_witness else {
            return;
        };
        let violations = crate::mc::trace_invariants(self.graph, trace, outcome);
        match violations.iter().find(|v| v.invariant == *expected) {
            Some(v) => diags.push(Diagnostic {
                rule: Rule::McWitness,
                severity: Severity::Error,
                task: None,
                worker: None,
                message: format!(
                    "CONFIRMED: replayed witness reproduces {expected}: {}",
                    v.detail
                ),
            }),
            None => diags.push(Diagnostic {
                rule: Rule::McWitness,
                severity: Severity::Warning,
                task: None,
                worker: None,
                message: match violations.first() {
                    Some(other) => format!(
                        "replayed witness violated {} instead of the recorded {expected}",
                        other.invariant
                    ),
                    None => format!(
                        "replayed witness did not reproduce {expected}: the trace checks clean"
                    ),
                },
            }),
        }
    }

    /// The trace must follow the prescribed schedule: same placements and
    /// the same per-worker execution order.
    fn check_replay(&self, trace: &Trace, prescribed: &Schedule, diags: &mut Vec<Diagnostic>) {
        let mut diverged: Vec<TaskId> = Vec::new();
        for ev in &trace.events {
            let Some(plan) = prescribed.entry(ev.task) else {
                diags.push(Diagnostic {
                    rule: Rule::ReplayDivergence,
                    severity: Severity::Error,
                    task: Some(ev.task),
                    worker: Some(ev.worker),
                    message: format!(
                        "{} executed but absent from the prescribed schedule",
                        ev.task
                    ),
                });
                continue;
            };
            if plan.worker != ev.worker {
                diverged.push(ev.task);
                diags.push(Diagnostic {
                    rule: Rule::ReplayDivergence,
                    severity: Severity::Error,
                    task: Some(ev.task),
                    worker: Some(ev.worker),
                    message: format!(
                        "{} ran on worker {} but the prescribed schedule places it on worker {}",
                        ev.task, ev.worker, plan.worker
                    ),
                });
            }
        }
        // Per-worker order, over correctly-placed tasks only.
        for worker in 0..trace.n_workers {
            let ran: Vec<TaskId> = trace
                .worker_events(worker)
                .iter()
                .map(|e| e.task)
                .filter(|t| !diverged.contains(t))
                .collect();
            let mut planned: Vec<(Time, TaskId)> = prescribed
                .entries()
                .iter()
                .filter(|e| e.worker == worker && !diverged.contains(&e.task))
                .map(|e| (e.start, e.task))
                .collect();
            planned.sort();
            for (got, &(_, want)) in ran.iter().zip(planned.iter()) {
                if *got != want {
                    diags.push(Diagnostic {
                        rule: Rule::ReplayDivergence,
                        severity: Severity::Error,
                        task: Some(*got),
                        worker: Some(worker),
                        message: format!(
                            "worker {worker} ran {got} where the prescribed order expects {want}"
                        ),
                    });
                    break; // one order diagnostic per worker
                }
            }
        }
    }
}

/// Stable output order: rule-catalog order first, discovery order within.
fn finish(mut diags: Vec<Diagnostic>) -> Report {
    diags.sort_by_key(|d| d.rule);
    Report { diagnostics: diags }
}

/// Rule 19 (`race-witness`): convert a passive happens-before pass
/// ([`crate::hb::record`]) into the linter's report format. Every race
/// candidate and every lock-order cycle becomes one error diagnostic —
/// both are schedule-independent evidence (the vector clocks certify the
/// recorded synchronization cannot order the pair; the cycle needs no
/// timing at all), so there is no warning tier here. A clean pass yields
/// an empty report, which as usual proves only the schedules that ran.
pub fn race_report(hb: &crate::hb::HbReport) -> Report {
    let mut diags = Vec::new();
    for r in &hb.races {
        let held = |h: &[String]| {
            if h.is_empty() {
                "nothing".to_string()
            } else {
                format!("[{}]", h.join(", "))
            }
        };
        diags.push(Diagnostic {
            rule: Rule::RaceWitness,
            severity: Severity::Error,
            task: None,
            worker: None,
            message: format!(
                "data race on \"{}\": {} {} holding {} is unordered with {} {} holding {}",
                r.obj,
                r.first.thread,
                r.first.access,
                held(&r.first.held),
                r.second.thread,
                r.second.access,
                held(&r.second.held),
            ),
        });
    }
    for c in &hb.cycles {
        diags.push(Diagnostic {
            rule: Rule::RaceWitness,
            severity: Severity::Error,
            task: None,
            worker: None,
            message: format!(
                "lock-order cycle {} (potential deadlock): {}",
                c.locks.join(" -> "),
                c.chains.join("; "),
            ),
        });
    }
    finish(diags)
}
