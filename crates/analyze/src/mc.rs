//! Model checking for the resilient runtime: source-DPOR exploration,
//! fault nondeterminism, an invariant engine and replayable witnesses.
//!
//! The sleep-set explorer in [`crate::race`] prunes branches whose first
//! divergent steps have *disjoint* sync-object footprints. This module
//! layers the stronger classic dynamic-partial-order-reduction argument on
//! top (Flanagan & Godefroid): after every complete run it computes the
//! happens-before relation of the trail with per-thread **vector clocks**
//! over the acquire/release/wait/notify events the `parking_lot` compat
//! shim reports, finds the pairs of dependent steps that are *not*
//! ordered, and only schedules the alternatives those races justify
//! (everything else provably commutes). Combined with the inherited sleep
//! sets, the DPOR tree is never larger than the sleep-set tree.
//!
//! On top of thread nondeterminism the recovery checker
//! ([`check_recovery`]) adds **fault nondeterminism**: the driver runs the
//! whole interleaving exploration once per fault plan drawn from
//! [`FaultPlan::choice_space`] — no fault, every "worker `w` dies at
//! global start count `k`" point, every single-task transient failure.
//! Deaths are progress-keyed (global start count), so "the driver fires a
//! fault at exploration step `k`" and "a plan naming progress point `k`"
//! explore the same behaviours; enumerating plans is fault nondeterminism
//! in canonical form.
//!
//! Every quiescent state is checked against the **invariant engine**
//! ([`trace_invariants`] plus the model-level deadlock/livelock checks).
//! A violation stops the search; the choice prefix is minimized by linear
//! replay and serialized as a [`Witness`] — a plain-JSON artifact that
//! [`replay_witness`] turns back into the same violation, deterministically,
//! and that linter rule 18 (`mc-witness`) confirms from the replayed trace.
//!
//! See DESIGN.md §14 for the model and its guarantees.

use crate::race::{
    lock_of, Deadlock as DeadlockReport, ExploreConfig, ExploreReport, Op, OpKind, RoundRobin,
    Session, SessionGuard, TrailEntry, SESSION_LOCK,
};
use hetchol_core::dag::TaskGraph;
use hetchol_core::fault::{
    ConfigError, FailureCause, Fault, FaultEventKind, FaultKind, FaultPlan, RetryPolicy, RunOutcome,
};
use hetchol_core::json::{parse_json, JsonValue};
use hetchol_core::obs::ObsSink;
use hetchol_core::platform::WorkerId;
use hetchol_core::profiles::TimingProfile;
use hetchol_core::task::TaskId;
use hetchol_core::time::Time;
use hetchol_core::trace::Trace;
use hetchol_rt::RtResult;
use std::cell::RefCell;
use std::collections::{BTreeSet, HashMap};
use std::fmt;
use std::panic::{self, AssertUnwindSafe};
use std::sync::Arc;

// ---------------------------------------------------------------------------
// Vector clocks and the post-run race pass
// ---------------------------------------------------------------------------

/// A per-thread vector clock over the controlled workers.
#[derive(Clone, Debug, PartialEq, Eq)]
struct VClock(Vec<u64>);

impl VClock {
    fn zero(n: usize) -> VClock {
        VClock(vec![0; n])
    }

    fn tick(&mut self, p: usize) {
        self.0[p] += 1;
    }

    fn join(&mut self, other: &VClock) {
        for (a, b) in self.0.iter_mut().zip(&other.0) {
            *a = (*a).max(*b);
        }
    }

    /// Pointwise ≤: `self` happens-before (or equals) `other`.
    fn le(&self, other: &VClock) -> bool {
        self.0.iter().zip(&other.0).all(|(a, b)| a <= b)
    }
}

/// One node on the current DPOR path: the sleep-set frame data plus the
/// backtrack set the race pass grows.
struct DporFrame {
    enabled: Vec<usize>,
    explored: Vec<(usize, Vec<Op>)>,
    sleep: Vec<(usize, Vec<Op>)>,
    /// Workers that *must* be tried from this state: seeded with the first
    /// choice, extended whenever a later race points back here. Candidates
    /// outside this set provably commute with the explored run.
    backtrack: BTreeSet<usize>,
}

/// Two ops on the same object are dependent unless both are notifies:
/// `notify_all`s (and the model's deterministic `notify_one`) commute as
/// state transformers, while everything else on a mutex or condvar does
/// not. Each object therefore keeps two "last access" classes, and a step
/// depends on the other class plus (for non-notify ops) its own.
fn dependent_classes(kind: OpKind) -> &'static [bool] {
    const NOTIFY_DEPS: [bool; 1] = [false];
    const OTHER_DEPS: [bool; 2] = [false, true];
    if kind == OpKind::Notify {
        &NOTIFY_DEPS
    } else {
        &OTHER_DEPS
    }
}

/// The classic DPOR race pass, post-hoc over one complete trail: replays
/// the happens-before relation with vector clocks and, for every pair of
/// dependent-but-unordered steps `(j, k)`, requests the thread of `k` be
/// tried from the state before `j` (falling back to all enabled threads
/// when it was not enabled there — the conservative persistent-set rule).
fn add_backtracks(trail: &[TrailEntry], n_workers: usize, frames: &mut [DporFrame]) {
    let mut thread_clock: Vec<VClock> = vec![VClock::zero(n_workers); n_workers];
    let mut step_clocks: Vec<VClock> = Vec::with_capacity(trail.len());
    // (object, class) -> (last step touching it, join of all such steps).
    let mut objs: HashMap<(u64, bool), (usize, VClock)> = HashMap::new();
    for (k, t) in trail.iter().enumerate() {
        let p = t.chosen;
        let mut clock = thread_clock[p].clone();
        clock.tick(p);
        for op in &t.footprint {
            for &cls in dependent_classes(op.kind) {
                let Some((j, ocl)) = objs.get(&(op.obj, cls)) else {
                    continue;
                };
                let j = *j;
                if trail[j].chosen != p && !step_clocks[j].le(&clock) {
                    if let Some(f) = frames.get_mut(j) {
                        if f.enabled.contains(&p) {
                            f.backtrack.insert(p);
                        } else {
                            f.backtrack.extend(f.enabled.iter().copied());
                        }
                    }
                }
                // Join as we go: an op ordered through an earlier object in
                // this same footprint is genuinely ordered.
                clock.join(ocl);
            }
        }
        for op in &t.footprint {
            let is_notify = op.kind == OpKind::Notify;
            let entry = objs
                .entry((op.obj, is_notify))
                .or_insert_with(|| (k, VClock::zero(n_workers)));
            entry.0 = k;
            entry.1.join(&clock);
        }
        thread_clock[p] = clock.clone();
        step_clocks.push(clock);
    }
}

// ---------------------------------------------------------------------------
// The DPOR drive loop
// ---------------------------------------------------------------------------

/// How one exploration (for a fixed fault plan) ended.
enum DriveEnd {
    /// Every branch the backtrack sets justified was covered.
    Exhausted,
    /// `max_schedules` hit before exhaustion.
    Budget,
    /// A run deadlocked (model-level: no enabled parked thread).
    Deadlock {
        schedule: usize,
        parked: Vec<(usize, String)>,
        choices: Vec<usize>,
    },
    /// A run hit `max_steps` decisions — the no-livelock invariant.
    Capped { choices: Vec<usize> },
    /// A run panicked (worker assertion, replay divergence…).
    Failure(String),
    /// The post-run invariant check flagged a completed run.
    Finding {
        violation: Violation,
        choices: Vec<usize>,
    },
}

struct Drive {
    schedules_run: usize,
    end: DriveEnd,
}

/// Run `run_once` repeatedly under source-DPOR control until the tree is
/// exhausted, a bound is hit, or a verdict is found. `post_run` is
/// invoked after every *clean* run (the quiescent final state) and may
/// return an invariant violation to stop the search.
fn drive(
    session: &Session,
    guard: &SessionGuard,
    n_workers: usize,
    cfg: &ExploreConfig,
    run_once: &mut dyn FnMut(),
    post_run: &mut dyn FnMut() -> Option<Violation>,
) -> Drive {
    let mut frames: Vec<DporFrame> = Vec::new();
    let mut prefix: Vec<usize> = Vec::new();
    let mut seed: Vec<(usize, Vec<Op>)> = Vec::new();
    let mut schedules_run = 0usize;
    let end = loop {
        session.reset(prefix.clone(), seed.clone());
        guard.clear();
        let outcome = panic::catch_unwind(AssertUnwindSafe(&mut *run_once));
        session.drain();
        let run_index = schedules_run;
        schedules_run += 1;
        let (trail, deadlocked, capped, failure) = session.take_outcome();
        let panic_msg = guard.take_panic();
        let choices: Vec<usize> = trail.iter().map(|t| t.chosen).collect();

        if outcome.is_err() || failure.is_some() {
            if let Some(msg) = failure.or(panic_msg) {
                break DriveEnd::Failure(msg);
            }
            if let Some(parked) = deadlocked {
                break DriveEnd::Deadlock {
                    schedule: run_index,
                    parked,
                    choices,
                };
            }
            if capped {
                break DriveEnd::Capped { choices };
            }
            break DriveEnd::Failure("run panicked without a message".to_string());
        }

        // Fold the clean run's trail into the DPOR frames.
        for (depth, t) in trail.iter().enumerate() {
            if depth < frames.len() {
                if !frames[depth].explored.iter().any(|(w, _)| *w == t.chosen) {
                    frames[depth].explored.push((t.chosen, t.footprint.clone()));
                }
            } else {
                frames.push(DporFrame {
                    enabled: t.enabled.clone(),
                    explored: vec![(t.chosen, t.footprint.clone())],
                    sleep: t.sleep.clone(),
                    backtrack: BTreeSet::from([t.chosen]),
                });
            }
        }
        add_backtracks(&trail, n_workers, &mut frames);

        if let Some(violation) = post_run() {
            break DriveEnd::Finding { violation, choices };
        }

        // Backtrack to the deepest state with a race-justified, untried,
        // awake candidate. (The sleep-set DFS differs in exactly one way:
        // it considers every enabled candidate, not just `backtrack`.)
        let next = (0..frames.len()).rev().find_map(|d| {
            let f = &frames[d];
            f.backtrack
                .iter()
                .copied()
                .find(|w| {
                    f.enabled.contains(w)
                        && !f.explored.iter().any(|(e, _)| e == w)
                        && !(cfg.sleep_sets && f.sleep.iter().any(|(s, _)| s == w))
                })
                .map(|u| (d, u))
        });
        let Some((d, u)) = next else {
            break DriveEnd::Exhausted;
        };
        if schedules_run >= cfg.max_schedules {
            break DriveEnd::Budget;
        }
        prefix = choices[..d].to_vec();
        prefix.push(u);
        seed = if cfg.sleep_sets {
            frames[d]
                .sleep
                .iter()
                .chain(frames[d].explored.iter())
                .cloned()
                .collect()
        } else {
            Vec::new()
        };
        frames.truncate(d + 1);
    };
    Drive { schedules_run, end }
}

/// What a single (replayed) run was observed to do.
enum Observed {
    Clean,
    Deadlock(Vec<(usize, String)>),
    Capped,
    /// Panicked for a non-verdict reason; never matches a target.
    Failure,
    Trace(Violation),
}

/// One run with a forced choice prefix and free (deterministic
/// first-choice) search past it; no branching, no backtracking.
fn run_observed(
    session: &Session,
    guard: &SessionGuard,
    run_once: &mut dyn FnMut(),
    post_run: &mut dyn FnMut() -> Option<Violation>,
    prefix: &[usize],
) -> Observed {
    session.reset(prefix.to_vec(), Vec::new());
    guard.clear();
    let outcome = panic::catch_unwind(AssertUnwindSafe(&mut *run_once));
    session.drain();
    let (_trail, deadlocked, capped, failure) = session.take_outcome();
    let _ = guard.take_panic();
    if outcome.is_err() || failure.is_some() {
        if failure.is_none() {
            if let Some(parked) = deadlocked {
                return Observed::Deadlock(parked);
            }
            if capped {
                return Observed::Capped;
            }
        }
        return Observed::Failure;
    }
    match post_run() {
        Some(v) => Observed::Trace(v),
        None => Observed::Clean,
    }
}

/// What the minimizer must reproduce.
enum Target {
    /// A trace-level violation of this invariant.
    Invariant(&'static str),
    /// A model deadlock with exactly this parked set.
    Deadlock(Vec<(usize, String)>),
    /// A step-cap abort.
    Capped,
}

impl Target {
    fn matches(&self, obs: &Observed) -> bool {
        match (self, obs) {
            (Target::Invariant(id), Observed::Trace(v)) => v.invariant.id() == *id,
            (Target::Deadlock(p), Observed::Deadlock(q)) => p == q,
            (Target::Capped, Observed::Capped) => true,
            _ => false,
        }
    }
}

/// Shrink a violating choice prefix: find the shortest prefix whose
/// deterministic free-run continuation reproduces the same verdict. The
/// scan is linear from the empty prefix up; the full prefix always
/// reproduces, so the result is never longer than the input.
fn minimize_prefix(
    session: &Session,
    guard: &SessionGuard,
    run_once: &mut dyn FnMut(),
    post_run: &mut dyn FnMut() -> Option<Violation>,
    choices: &[usize],
    target: &Target,
) -> Vec<usize> {
    for k in 0..=choices.len() {
        let obs = run_observed(session, guard, run_once, post_run, &choices[..k]);
        if target.matches(&obs) {
            return choices[..k].to_vec();
        }
    }
    choices.to_vec()
}

// ---------------------------------------------------------------------------
// Generic DPOR entry points (thread nondeterminism only)
// ---------------------------------------------------------------------------

/// Explore the interleavings of `run_once` with source-DPOR + sleep sets.
///
/// Drop-in replacement for [`crate::race::explore`] with the same report
/// type and the same verdicts, exploring a subset of its (already pruned)
/// tree: only branches justified by an actual race — a pair of dependent,
/// happens-before-unordered steps — are scheduled.
pub fn explore_dpor(
    n_workers: usize,
    cfg: ExploreConfig,
    mut run_once: impl FnMut(),
) -> ExploreReport {
    assert!(n_workers > 0, "need at least one controlled thread");
    let _serial = lock_of(&SESSION_LOCK);
    let session = Arc::new(Session::new(n_workers, &cfg));
    let guard = SessionGuard::install(session.clone());
    let mut no_check = || -> Option<Violation> { None };
    let d = drive(
        &session,
        &guard,
        n_workers,
        &cfg,
        &mut run_once,
        &mut no_check,
    );
    drop(guard);
    let mut report = ExploreReport {
        schedules_run: d.schedules_run,
        ..ExploreReport::default()
    };
    match d.end {
        DriveEnd::Exhausted => report.complete = true,
        DriveEnd::Budget | DriveEnd::Capped { .. } => {}
        DriveEnd::Deadlock {
            schedule, parked, ..
        } => report.deadlocks.push(DeadlockReport { schedule, parked }),
        DriveEnd::Failure(msg) => report.failures.push(msg),
        DriveEnd::Finding { .. } => unreachable!("no invariant checker installed"),
    }
    report
}

/// DPOR counterpart of [`crate::race::explore_runtime`]: model-check the
/// fault-free `hetchol_rt::execute_workload` on `graph`. Used by
/// `repro mc --compare-pruning` to measure the reduction on an identical
/// scenario.
pub fn explore_runtime_dpor(
    graph: &TaskGraph,
    n_workers: usize,
    cfg: ExploreConfig,
) -> ExploreReport {
    let profile = TimingProfile::mirage_homogeneous();
    explore_dpor(n_workers, cfg, || {
        let mut sched = RoundRobin;
        let workload = hetchol_rt::FnWorkload(|_| Ok::<(), std::convert::Infallible>(()));
        let r = hetchol_rt::execute_workload(
            &workload,
            graph,
            &mut sched,
            &profile,
            n_workers,
            ObsSink::disabled(),
        )
        .expect("no-op tasks cannot fail");
        assert_eq!(
            r.trace.events.len(),
            graph.len(),
            "run completed without executing every task"
        );
    })
}

/// Outcome of one [`check_model`] call: the generic counterpart of
/// [`McReport`] for models that are not the resilient runtime.
#[derive(Clone, Debug)]
pub struct ModelReport {
    /// Branches run before the verdict.
    pub schedules_run: usize,
    /// `true` when the DPOR tree was covered with no finding.
    pub exhausted: bool,
    /// The first invariant violation found (model deadlocks surface as
    /// [`Invariant::Deadlock`], step-cap aborts as
    /// [`Invariant::NoLivelock`]).
    pub violation: Option<Violation>,
    /// Minimized choice prefix reaching `violation`; empty when clean.
    pub choices: Vec<usize>,
    /// Panic messages from runs that failed for any other reason.
    pub failures: Vec<String>,
}

impl ModelReport {
    /// `true` when no violation and no failure was found.
    pub fn is_clean(&self) -> bool {
        self.violation.is_none() && self.failures.is_empty()
    }
}

/// Exhaustively model-check an arbitrary closed system: explore every
/// (DPOR-reduced) interleaving of `run_once`'s `n_threads` checked-in
/// threads, evaluating `post_run` at every quiescent state. Stops at the
/// first violation and minimizes its choice prefix. This is the engine
/// behind the serve-pool model (`hetchol_serve::model`); the resilient
/// runtime keeps its richer [`check_recovery`] wrapper.
pub fn check_model(
    n_threads: usize,
    cfg: ExploreConfig,
    mut run_once: impl FnMut(),
    mut post_run: impl FnMut() -> Option<Violation>,
) -> ModelReport {
    assert!(n_threads > 0, "need at least one controlled thread");
    let _serial = lock_of(&SESSION_LOCK);
    let session = Arc::new(Session::new(n_threads, &cfg));
    let guard = SessionGuard::install(session.clone());

    let d = drive(
        &session,
        &guard,
        n_threads,
        &cfg,
        &mut run_once,
        &mut post_run,
    );
    let mut report = ModelReport {
        schedules_run: d.schedules_run,
        exhausted: false,
        violation: None,
        choices: Vec::new(),
        failures: Vec::new(),
    };
    let (violation, choices, target) = match d.end {
        DriveEnd::Exhausted => {
            report.exhausted = true;
            drop(guard);
            return report;
        }
        DriveEnd::Budget => {
            drop(guard);
            return report;
        }
        DriveEnd::Failure(msg) => {
            report.failures.push(msg);
            drop(guard);
            return report;
        }
        DriveEnd::Deadlock {
            parked, choices, ..
        } => {
            let detail = parked
                .iter()
                .map(|(w, what)| format!("worker {w}: {what}"))
                .collect::<Vec<_>>()
                .join("; ");
            (
                Violation {
                    invariant: Invariant::Deadlock,
                    detail,
                },
                choices,
                Target::Deadlock(parked),
            )
        }
        DriveEnd::Capped { choices } => (
            Violation {
                invariant: Invariant::NoLivelock,
                detail: format!(
                    "a run exceeded {} scheduling decisions — livelock",
                    cfg.max_steps
                ),
            },
            choices,
            Target::Capped,
        ),
        DriveEnd::Finding { violation, choices } => {
            let target = Target::Invariant(violation.invariant.id());
            (violation, choices, target)
        }
    };
    report.choices = minimize_prefix(
        &session,
        &guard,
        &mut run_once,
        &mut post_run,
        &choices,
        &target,
    );
    report.violation = Some(violation);
    drop(guard);
    report
}

/// Outcome of [`replay_model`].
#[derive(Clone, Debug)]
pub struct ModelReplay {
    /// The invariant violation the replay observed, if any.
    pub observed: Option<Violation>,
    /// A panic/assertion failure outside the invariant engine.
    pub error: Option<String>,
}

/// Deterministically re-run a model witness: force the choice prefix,
/// free-run past it, and re-evaluate `post_run`. The generic counterpart
/// of [`replay_witness`].
pub fn replay_model(
    n_threads: usize,
    cfg: ExploreConfig,
    choices: &[usize],
    mut run_once: impl FnMut(),
    mut post_run: impl FnMut() -> Option<Violation>,
) -> ModelReplay {
    assert!(n_threads > 0, "need at least one controlled thread");
    let _serial = lock_of(&SESSION_LOCK);
    let session = Arc::new(Session::new(n_threads, &cfg));
    let guard = SessionGuard::install(session.clone());

    session.reset(choices.to_vec(), Vec::new());
    guard.clear();
    let outcome = panic::catch_unwind(AssertUnwindSafe(&mut run_once));
    session.drain();
    let (_trail, deadlocked, capped, failure) = session.take_outcome();
    let panic_msg = guard.take_panic();
    drop(guard);

    let mut replay = ModelReplay {
        observed: None,
        error: None,
    };
    if outcome.is_err() || failure.is_some() {
        if let Some(parked) = deadlocked {
            replay.observed = Some(Violation {
                invariant: Invariant::Deadlock,
                detail: parked
                    .iter()
                    .map(|(w, what)| format!("worker {w}: {what}"))
                    .collect::<Vec<_>>()
                    .join("; "),
            });
        } else if capped {
            replay.observed = Some(Violation {
                invariant: Invariant::NoLivelock,
                detail: format!(
                    "a run exceeded {} scheduling decisions — livelock",
                    cfg.max_steps
                ),
            });
        } else {
            replay.error = failure
                .or(panic_msg)
                .or_else(|| Some("run panicked without a message".to_string()));
        }
    } else {
        replay.observed = post_run();
    }
    replay
}

// ---------------------------------------------------------------------------
// The invariant engine
// ---------------------------------------------------------------------------

/// The safety properties checked at every quiescent state.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Invariant {
    /// No enabled thread while some are parked (model-level; a lost
    /// wakeup or a stranded task queue becomes exactly this).
    Deadlock,
    /// Every task retires exactly once — never twice, and never zero
    /// times in a run that claims success.
    RetireOnce,
    /// No task execution starts at or after its worker's recorded death.
    NoExecAfterDeath,
    /// No task is enqueued to a worker strictly after its recorded death.
    /// (At-death enqueues are legitimate: a completion dispatches
    /// successors and reaps a due death in one lock section sharing one
    /// clock read, and the reap immediately re-queues them.)
    NoQueueAfterDeath,
    /// The [`RunOutcome`] classification matches the observed deaths,
    /// retries and aborts.
    OutcomeConsistent,
    /// A run stays under the decision budget — retry backoff must not
    /// spin the engine forever (model-level step cap).
    NoLivelock,
    /// Serve-pool model: every accepted request is answered exactly once
    /// — one reply per client, and every non-degraded reply is backed by
    /// a stored job.
    AnsweredOnce,
    /// Serve-pool model: once a shard's death is observed, no later
    /// request routed to it gets a non-degraded reply.
    NoServeAfterKill,
    /// Serve-pool model: cache accounting balances — hits + misses equals
    /// the counted gets on every cache.
    CacheAccounting,
    /// Serve-pool model: a job evicted from the store under memory
    /// pressure and then requested again is reloaded from the log
    /// backend with its identity intact — eviction must never turn an
    /// answered job into a 404 or a different job.
    EvictionReload,
}

impl Invariant {
    /// Every invariant, in severity-agnostic declaration order.
    pub const ALL: [Invariant; 10] = [
        Invariant::Deadlock,
        Invariant::RetireOnce,
        Invariant::NoExecAfterDeath,
        Invariant::NoQueueAfterDeath,
        Invariant::OutcomeConsistent,
        Invariant::NoLivelock,
        Invariant::AnsweredOnce,
        Invariant::NoServeAfterKill,
        Invariant::CacheAccounting,
        Invariant::EvictionReload,
    ];

    /// Stable kebab-case id, used in witnesses and diagnostics.
    pub fn id(self) -> &'static str {
        match self {
            Invariant::Deadlock => "deadlock",
            Invariant::RetireOnce => "retire-once",
            Invariant::NoExecAfterDeath => "no-exec-after-death",
            Invariant::NoQueueAfterDeath => "no-queue-after-death",
            Invariant::OutcomeConsistent => "outcome-consistent",
            Invariant::NoLivelock => "no-livelock",
            Invariant::AnsweredOnce => "answered-once",
            Invariant::NoServeAfterKill => "no-serve-after-kill",
            Invariant::CacheAccounting => "cache-accounting",
            Invariant::EvictionReload => "eviction-reload",
        }
    }

    /// Inverse of [`Invariant::id`].
    pub fn from_id(id: &str) -> Option<Invariant> {
        Invariant::ALL.iter().copied().find(|i| i.id() == id)
    }
}

impl fmt::Display for Invariant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// One invariant violation: which, and the concrete evidence.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// The violated invariant.
    pub invariant: Invariant,
    /// Human-readable evidence (task/worker ids, counts, timestamps).
    pub detail: String,
}

/// Check the trace-level invariants of one completed resilient run:
/// retire-once, no-exec-after-death, no-queue-after-death and
/// outcome-consistent. (Deadlock and no-livelock are model-level — they
/// abort the run before a trace exists.) Also the engine behind linter
/// rule 18 (`mc-witness`).
pub fn trace_invariants(graph: &TaskGraph, trace: &Trace, outcome: &RunOutcome) -> Vec<Violation> {
    let mut out = Vec::new();

    // retire-once
    let mut counts = vec![0usize; graph.len()];
    for e in &trace.events {
        if let Some(c) = counts.get_mut(e.task.index()) {
            *c += 1;
        }
    }
    for (i, &c) in counts.iter().enumerate() {
        if c > 1 {
            out.push(Violation {
                invariant: Invariant::RetireOnce,
                detail: format!("task {i} retired {c} times"),
            });
        }
    }
    if outcome.is_success() {
        for (i, &c) in counts.iter().enumerate() {
            if c == 0 {
                out.push(Violation {
                    invariant: Invariant::RetireOnce,
                    detail: format!("task {i} never executed though the outcome claims success"),
                });
            }
        }
    }

    // First recorded death instant per worker.
    let mut death: HashMap<WorkerId, Time> = HashMap::new();
    for fe in &trace.fault_events {
        if let FaultEventKind::WorkerDied { worker } = fe.kind {
            death.entry(worker).or_insert(fe.at);
        }
    }

    // no-exec-after-death
    for e in &trace.events {
        if let Some(&d) = death.get(&e.worker) {
            if e.start >= d {
                out.push(Violation {
                    invariant: Invariant::NoExecAfterDeath,
                    detail: format!(
                        "task {} started on worker {} at {:?}, at/after its death at {:?}",
                        e.task.index(),
                        e.worker,
                        e.start,
                        d
                    ),
                });
            }
        }
    }

    // no-queue-after-death (strictly after: an enqueue sharing the death's
    // timestamp is the same lock section, whose reap re-queues it at once)
    for q in &trace.queue_events {
        if let Some(&d) = death.get(&q.worker) {
            if q.at > d {
                out.push(Violation {
                    invariant: Invariant::NoQueueAfterDeath,
                    detail: format!(
                        "task {} enqueued to worker {} at {:?}, after its death at {:?}",
                        q.task.index(),
                        q.worker,
                        q.at,
                        d
                    ),
                });
            }
        }
    }

    // outcome-consistent
    let mut deaths: Vec<WorkerId> = death.keys().copied().collect();
    deaths.sort_unstable();
    let retries = trace
        .fault_events
        .iter()
        .filter(|e| matches!(e.kind, FaultEventKind::Retried { .. }))
        .count() as u64;
    match outcome {
        RunOutcome::Completed => {
            if !deaths.is_empty() || retries > 0 {
                out.push(Violation {
                    invariant: Invariant::OutcomeConsistent,
                    detail: format!(
                        "classified Completed but observed {} death(s) and {retries} retry(ies)",
                        deaths.len()
                    ),
                });
            }
        }
        RunOutcome::Degraded {
            lost_workers,
            retries: r,
        } => {
            let mut lw = lost_workers.clone();
            lw.sort_unstable();
            if lw != deaths {
                out.push(Violation {
                    invariant: Invariant::OutcomeConsistent,
                    detail: format!(
                        "classified lost workers {lw:?} but the trace records deaths of {deaths:?}"
                    ),
                });
            }
            if *r != retries {
                out.push(Violation {
                    invariant: Invariant::OutcomeConsistent,
                    detail: format!(
                        "classified {r} retry(ies) but the trace records {retries} Retried event(s)"
                    ),
                });
            }
            if deaths.is_empty() && retries == 0 {
                out.push(Violation {
                    invariant: Invariant::OutcomeConsistent,
                    detail: "classified Degraded with no observed deaths or retries".to_string(),
                });
            }
        }
        RunOutcome::Failed { cause } => match cause {
            FailureCause::RetriesExhausted { task, .. } => {
                let aborted = trace.fault_events.iter().any(
                    |e| matches!(e.kind, FaultEventKind::Aborted { task: t, .. } if t == *task),
                );
                if !aborted {
                    out.push(Violation {
                        invariant: Invariant::OutcomeConsistent,
                        detail: format!(
                            "classified RetriesExhausted for task {} but no Aborted event was recorded",
                            task.index()
                        ),
                    });
                }
            }
            FailureCause::AllWorkersLost if deaths.len() < trace.n_workers => {
                out.push(Violation {
                    invariant: Invariant::OutcomeConsistent,
                    detail: format!(
                        "classified AllWorkersLost but only {} of {} workers died",
                        deaths.len(),
                        trace.n_workers
                    ),
                });
            }
            _ => {}
        },
    }
    out
}

// ---------------------------------------------------------------------------
// Witnesses
// ---------------------------------------------------------------------------

/// A replayable counterexample: everything needed to re-create the
/// violating run — the scenario shape, the fault plan, the (minimized)
/// choice prefix — plus the verdict it reproduces. Serializes to plain
/// JSON via [`Witness::to_json`] / [`Witness::from_json`].
#[derive(Clone, Debug, PartialEq)]
pub struct Witness {
    /// Format version (currently 1).
    pub version: u32,
    /// Which model produced the witness: `"rt"` (the resilient runtime,
    /// the default — omitted from the JSON for compatibility) or
    /// `"serve-pool"` (the serve sharded-pool model).
    pub model: String,
    /// Cholesky tile count of the checked scenario.
    pub n_tiles: usize,
    /// Worker (thread) count of the checked scenario.
    pub n_workers: usize,
    /// Name of the seeded runtime mutation, if the scenario ran one
    /// (e.g. `"skip-dead-requeue"`); `None` for the stock runtime.
    pub mutation: Option<String>,
    /// The fault plan active when the violation was found.
    pub plan: FaultPlan,
    /// Minimized scheduling-choice prefix; the free run past it
    /// deterministically reaches the violation.
    pub choices: Vec<usize>,
    /// The violated invariant.
    pub invariant: Invariant,
    /// Evidence recorded at discovery time.
    pub detail: String,
    /// Branches explored before the violation was found.
    pub schedules_explored: usize,
}

/// The shared [`hetchol_core::json`] escaper, minus the surrounding quotes
/// (this emitter's format strings supply their own).
fn json_escape(s: &str) -> String {
    let mut quoted = String::with_capacity(s.len() + 2);
    hetchol_core::json::escape_into(s, &mut quoted);
    quoted[1..quoted.len() - 1].to_string()
}

impl Witness {
    /// Serialize to the versioned plain-JSON witness format.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str(&format!("  \"version\": {},\n", self.version));
        // The model tag is omitted for "rt" so rt witnesses serialize
        // byte-identically to the pre-serve-model format.
        let model_tag = if self.model == "rt" {
            String::new()
        } else {
            format!("\"model\": \"{}\", ", json_escape(&self.model))
        };
        s.push_str(&format!(
            "  \"scenario\": {{{model_tag}\"n_tiles\": {}, \"n_workers\": {}, \"mutation\": {}}},\n",
            self.n_tiles,
            self.n_workers,
            match &self.mutation {
                Some(m) => format!("\"{}\"", json_escape(m)),
                None => "null".to_string(),
            }
        ));
        let faults: Vec<String> = self
            .plan
            .faults()
            .iter()
            .map(|f| match f {
                Fault::WorkerDeath {
                    worker,
                    after_starts,
                } => format!(
                    "{{\"kind\": \"worker_death\", \"worker\": {worker}, \"after_starts\": {after_starts}}}"
                ),
                Fault::Transient {
                    task,
                    failures,
                    kind,
                } => format!(
                    "{{\"kind\": \"transient\", \"task\": {}, \"failures\": {failures}, \"fault\": \"{}\"}}",
                    task.index(),
                    kind.label()
                ),
                Fault::Straggler { worker, factor } => {
                    format!("{{\"kind\": \"straggler\", \"worker\": {worker}, \"factor\": {factor}}}")
                }
            })
            .collect();
        s.push_str(&format!("  \"fault\": [{}],\n", faults.join(", ")));
        let choices: Vec<String> = self.choices.iter().map(|c| c.to_string()).collect();
        s.push_str(&format!("  \"choices\": [{}],\n", choices.join(", ")));
        s.push_str(&format!(
            "  \"violation\": {{\"invariant\": \"{}\", \"detail\": \"{}\"}},\n",
            self.invariant.id(),
            json_escape(&self.detail)
        ));
        s.push_str(&format!(
            "  \"schedules_explored\": {}\n",
            self.schedules_explored
        ));
        s.push('}');
        s
    }

    /// Parse a witness serialized by [`Witness::to_json`].
    pub fn from_json(text: &str) -> Result<Witness, String> {
        let v = parse_json(text)?;
        let version = v.field("version")?.as_u64()? as u32;
        if version != 1 {
            return Err(format!("unsupported witness version {version}"));
        }
        let scenario = v.field("scenario")?;
        let model = match scenario.field("model") {
            Ok(m) => m.as_str()?.to_string(),
            Err(_) => "rt".to_string(),
        };
        let n_tiles = scenario.field("n_tiles")?.as_u64()? as usize;
        let n_workers = scenario.field("n_workers")?.as_u64()? as usize;
        let mutation = match scenario.field("mutation")? {
            JsonValue::Null => None,
            JsonValue::Str(s) => Some(s.clone()),
            other => return Err(format!("mutation must be a string or null, got {other:?}")),
        };
        let mut plan = FaultPlan::new();
        for f in v.field("fault")?.as_arr()? {
            let kind = f.field("kind")?.as_str()?;
            match kind {
                "worker_death" => {
                    plan = plan.kill_worker(
                        f.field("worker")?.as_u64()? as WorkerId,
                        f.field("after_starts")?.as_u64()? as u32,
                    );
                }
                "transient" => {
                    let task = TaskId(f.field("task")?.as_u64()? as u32);
                    let failures = f.field("failures")?.as_u64()? as u32;
                    match f.field("fault")?.as_str()? {
                        l if l == FaultKind::Transient.label() => {
                            plan = plan.transient(task, failures);
                        }
                        l if l == FaultKind::Numerical.label() && failures == 1 => {
                            plan = plan.corrupt_tile(task);
                        }
                        other => {
                            return Err(format!("unsupported transient fault kind {other:?}"));
                        }
                    }
                }
                "straggler" => {
                    plan = plan.straggler(
                        f.field("worker")?.as_u64()? as WorkerId,
                        f.field("factor")?.as_f64()?,
                    );
                }
                other => return Err(format!("unknown fault kind {other:?}")),
            }
        }
        let choices = v
            .field("choices")?
            .as_arr()?
            .iter()
            .map(|c| c.as_u64().map(|n| n as usize))
            .collect::<Result<Vec<usize>, String>>()?;
        let violation = v.field("violation")?;
        let inv_id = violation.field("invariant")?.as_str()?;
        let invariant =
            Invariant::from_id(inv_id).ok_or_else(|| format!("unknown invariant id {inv_id:?}"))?;
        let detail = violation.field("detail")?.as_str()?.to_string();
        let schedules_explored = v.field("schedules_explored")?.as_u64()? as usize;
        Ok(Witness {
            version,
            model,
            n_tiles,
            n_workers,
            mutation,
            plan,
            choices,
            invariant,
            detail,
            schedules_explored,
        })
    }
}
// ---------------------------------------------------------------------------
// The recovery checker
// ---------------------------------------------------------------------------

/// What [`check_recovery`] model-checks: an `n_tiles` tile Cholesky DAG on
/// `n_workers` runtime threads under the [`RoundRobin`] timing-blind
/// scheduler. `mutation` is a label recorded into witnesses so a replay
/// can rebuild the same (possibly seeded-buggy) runner.
#[derive(Clone, Debug)]
pub struct RecoveryScenario {
    /// Cholesky tile count (task count grows cubically).
    pub n_tiles: usize,
    /// Worker thread count.
    pub n_workers: usize,
    /// Seeded-mutation label for witnesses, `None` for the stock runtime.
    pub mutation: Option<String>,
}

/// Outcome of one [`check_recovery`] call.
#[derive(Clone, Debug)]
pub struct McReport {
    /// Fault plans explored (each gets its own interleaving tree).
    pub plans: usize,
    /// Total branches run across all plans.
    pub schedules_run: usize,
    /// `true` when every plan's DPOR tree was covered with no finding.
    pub exhausted: bool,
    /// The first invariant violation found, minimized and replayable.
    pub witness: Option<Witness>,
    /// Panic messages from runs that failed for any other reason.
    pub failures: Vec<String>,
}

impl McReport {
    /// `true` when no violation and no failure was found.
    pub fn is_clean(&self) -> bool {
        self.witness.is_none() && self.failures.is_empty()
    }
}

fn plan_label(plan: &FaultPlan) -> String {
    if plan.is_empty() {
        "no faults".to_string()
    } else {
        plan.faults()
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join(" + ")
    }
}

/// The stock runner for [`check_recovery`]: the real
/// `hetchol_rt::execute_resilient_controlled` on a no-op Cholesky
/// workload, deterministic (logical clock) so a choice prefix replays to
/// the same behaviour.
pub fn resilient_runner(
    n_tiles: usize,
    n_workers: usize,
) -> impl FnMut(&FaultPlan) -> Result<RtResult, ConfigError> {
    let graph = TaskGraph::cholesky(n_tiles);
    let profile = TimingProfile::mirage_homogeneous();
    let policy = RetryPolicy::default();
    move |plan| {
        let mut sched = RoundRobin;
        let workload = hetchol_rt::FnWorkload(|_| Ok::<(), std::convert::Infallible>(()));
        hetchol_rt::execute_resilient_controlled(
            &workload,
            &graph,
            &mut sched,
            &profile,
            n_workers,
            ObsSink::disabled(),
            plan,
            &policy,
            true,
        )
    }
}

/// Exhaustively model-check the resilient runtime: for every fault plan
/// in `fault_space`, explore every (DPOR-reduced) thread interleaving of
/// `runner`, checking the invariant engine at every quiescent state.
/// Stops at the first violation, minimizes its choice prefix and returns
/// it as a replayable [`Witness`].
///
/// `runner` must be deterministic given a thread schedule and must run the
/// scenario `scenario` describes ([`resilient_runner`] is the stock one;
/// tests substitute seeded-mutation runners).
pub fn check_recovery(
    scenario: &RecoveryScenario,
    fault_space: &[FaultPlan],
    cfg: ExploreConfig,
    mut runner: impl FnMut(&FaultPlan) -> Result<RtResult, ConfigError>,
) -> McReport {
    assert!(scenario.n_workers > 0, "need at least one worker");
    let graph = TaskGraph::cholesky(scenario.n_tiles);
    let _serial = lock_of(&SESSION_LOCK);
    let session = Arc::new(Session::new(scenario.n_workers, &cfg));
    let guard = SessionGuard::install(session.clone());

    let mut report = McReport {
        plans: fault_space.len(),
        schedules_run: 0,
        exhausted: true,
        witness: None,
        failures: Vec::new(),
    };

    for plan in fault_space {
        let slot: RefCell<Option<RtResult>> = RefCell::new(None);
        let mut run_once = || {
            let r = runner(plan).expect("fault plan rejected by the runtime");
            *slot.borrow_mut() = Some(r);
        };
        let mut post_run = || -> Option<Violation> {
            let r = slot.borrow_mut().take()?;
            trace_invariants(&graph, &r.trace, &r.outcome)
                .into_iter()
                .next()
        };

        let d = drive(
            &session,
            &guard,
            scenario.n_workers,
            &cfg,
            &mut run_once,
            &mut post_run,
        );
        report.schedules_run += d.schedules_run;

        let (violation, choices, target) = match d.end {
            DriveEnd::Exhausted => continue,
            DriveEnd::Budget => {
                report.exhausted = false;
                continue;
            }
            DriveEnd::Failure(msg) => {
                report.exhausted = false;
                report
                    .failures
                    .push(format!("[{}] {msg}", plan_label(plan)));
                break;
            }
            DriveEnd::Deadlock {
                parked, choices, ..
            } => {
                let detail = parked
                    .iter()
                    .map(|(w, what)| format!("worker {w}: {what}"))
                    .collect::<Vec<_>>()
                    .join("; ");
                (
                    Violation {
                        invariant: Invariant::Deadlock,
                        detail,
                    },
                    choices,
                    Target::Deadlock(parked),
                )
            }
            DriveEnd::Capped { choices } => (
                Violation {
                    invariant: Invariant::NoLivelock,
                    detail: format!(
                        "a run exceeded {} scheduling decisions — livelock under retry backoff",
                        cfg.max_steps
                    ),
                },
                choices,
                Target::Capped,
            ),
            DriveEnd::Finding { violation, choices } => {
                let target = Target::Invariant(violation.invariant.id());
                (violation, choices, target)
            }
        };

        let min_choices = minimize_prefix(
            &session,
            &guard,
            &mut run_once,
            &mut post_run,
            &choices,
            &target,
        );
        report.exhausted = false;
        report.witness = Some(Witness {
            version: 1,
            model: "rt".to_string(),
            n_tiles: scenario.n_tiles,
            n_workers: scenario.n_workers,
            mutation: scenario.mutation.clone(),
            plan: plan.clone(),
            choices: min_choices,
            invariant: violation.invariant,
            detail: violation.detail,
            schedules_explored: report.schedules_run,
        });
        break;
    }

    drop(guard);
    report
}

// ---------------------------------------------------------------------------
// Witness replay
// ---------------------------------------------------------------------------

/// Outcome of [`replay_witness`].
#[derive(Debug)]
pub struct Replay {
    /// The invariant violation the replay observed, if any.
    pub observed: Option<Violation>,
    /// A panic/assertion failure outside the invariant engine.
    pub error: Option<String>,
    /// `true` when the observed violation matches the witness's invariant.
    pub reproduced: bool,
    /// The run's result, when the run completed — the trace feeds the
    /// linter (rule 18). `None` for deadlocked/aborted replays.
    pub result: Option<RtResult>,
}

/// Deterministically re-run a witness: force its choice prefix, free-run
/// past it, and re-evaluate the invariant engine. `runner` must rebuild
/// the scenario the witness describes (same tile/worker counts, same
/// mutation — the witness's `mutation` label says which).
pub fn replay_witness(
    witness: &Witness,
    cfg: ExploreConfig,
    mut runner: impl FnMut(&FaultPlan) -> Result<RtResult, ConfigError>,
) -> Replay {
    assert!(witness.n_workers > 0, "witness names zero workers");
    let graph = TaskGraph::cholesky(witness.n_tiles);
    let _serial = lock_of(&SESSION_LOCK);
    let session = Arc::new(Session::new(witness.n_workers, &cfg));
    let guard = SessionGuard::install(session.clone());

    let slot: RefCell<Option<RtResult>> = RefCell::new(None);
    let mut run_once = || {
        let r = runner(&witness.plan).expect("fault plan rejected by the runtime");
        *slot.borrow_mut() = Some(r);
    };

    session.reset(witness.choices.clone(), Vec::new());
    guard.clear();
    let outcome = panic::catch_unwind(AssertUnwindSafe(&mut run_once));
    session.drain();
    let (_trail, deadlocked, capped, failure) = session.take_outcome();
    let panic_msg = guard.take_panic();
    drop(guard);

    let mut replay = Replay {
        observed: None,
        error: None,
        reproduced: false,
        result: None,
    };
    if outcome.is_err() || failure.is_some() {
        if let Some(parked) = deadlocked {
            replay.observed = Some(Violation {
                invariant: Invariant::Deadlock,
                detail: parked
                    .iter()
                    .map(|(w, what)| format!("worker {w}: {what}"))
                    .collect::<Vec<_>>()
                    .join("; "),
            });
        } else if capped {
            replay.observed = Some(Violation {
                invariant: Invariant::NoLivelock,
                detail: format!(
                    "a run exceeded {} scheduling decisions — livelock under retry backoff",
                    cfg.max_steps
                ),
            });
        } else {
            replay.error = failure
                .or(panic_msg)
                .or_else(|| Some("run panicked without a message".to_string()));
        }
    } else if let Some(r) = slot.into_inner() {
        replay.observed = trace_invariants(&graph, &r.trace, &r.outcome)
            .into_iter()
            .next();
        replay.result = Some(r);
    }
    replay.reproduced = replay
        .observed
        .as_ref()
        .is_some_and(|v| v.invariant == witness.invariant);
    replay
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetchol_core::kernel::Kernel;
    use hetchol_core::trace::{QueueEvent, TraceEvent};

    #[test]
    fn vclock_ordering() {
        let mut a = VClock::zero(2);
        let mut b = VClock::zero(2);
        a.tick(0);
        assert!(!a.le(&b));
        b.join(&a);
        b.tick(1);
        assert!(a.le(&b));
        assert!(!b.le(&a));
    }

    #[test]
    fn invariant_ids_round_trip() {
        for inv in Invariant::ALL {
            assert_eq!(Invariant::from_id(inv.id()), Some(inv));
        }
        assert_eq!(Invariant::from_id("nonsense"), None);
    }

    fn event(task: u32, worker: usize, start_ns: u64) -> TraceEvent {
        TraceEvent {
            worker,
            task: TaskId(task),
            kernel: Kernel::Potrf,
            start: Time::from_nanos(start_ns),
            end: Time::from_nanos(start_ns + 1),
        }
    }

    #[test]
    fn retire_once_flags_double_and_missing_retirement() {
        let graph = TaskGraph::cholesky(2);
        let mut trace = Trace {
            n_workers: 1,
            events: (0..graph.len() as u32)
                .map(|t| event(t, 0, t as u64))
                .collect(),
            transfers: Vec::new(),
            queue_events: Vec::new(),
            fault_events: Vec::new(),
        };
        assert!(trace_invariants(&graph, &trace, &RunOutcome::Completed).is_empty());
        trace.events.push(event(0, 0, 99));
        let v = trace_invariants(&graph, &trace, &RunOutcome::Completed);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].invariant, Invariant::RetireOnce);
        trace.events.truncate(graph.len() - 1); // drop the dup and task 3
        let v = trace_invariants(&graph, &trace, &RunOutcome::Completed);
        assert!(v
            .iter()
            .any(|v| v.invariant == Invariant::RetireOnce && v.detail.contains("never executed")));
    }

    #[test]
    fn death_invariants_flag_late_exec_and_enqueue() {
        use hetchol_core::fault::FaultEvent;
        let graph = TaskGraph::cholesky(2);
        let death_at = Time::from_nanos(10);
        let trace = Trace {
            n_workers: 2,
            events: vec![
                event(0, 0, 1),
                event(1, 1, 20), // starts after worker 1's death
                event(2, 0, 3),
                event(3, 0, 4),
            ],
            transfers: Vec::new(),
            queue_events: vec![QueueEvent {
                worker: 1,
                task: TaskId(1),
                prio: 0,
                seq: 0,
                at: Time::from_nanos(15), // enqueued after death
                data_ready: Time::from_nanos(15),
            }],
            fault_events: vec![FaultEvent {
                at: death_at,
                kind: FaultEventKind::WorkerDied { worker: 1 },
            }],
        };
        let outcome = RunOutcome::Degraded {
            lost_workers: vec![1],
            retries: 0,
        };
        let v = trace_invariants(&graph, &trace, &outcome);
        assert!(v.iter().any(|v| v.invariant == Invariant::NoExecAfterDeath));
        assert!(v
            .iter()
            .any(|v| v.invariant == Invariant::NoQueueAfterDeath));
    }

    #[test]
    fn outcome_consistency_flags_misclassification() {
        use hetchol_core::fault::FaultEvent;
        let graph = TaskGraph::cholesky(2);
        let trace = Trace {
            n_workers: 2,
            events: (0..graph.len() as u32)
                .map(|t| event(t, 0, 100 + t as u64))
                .collect(),
            transfers: Vec::new(),
            queue_events: Vec::new(),
            fault_events: vec![FaultEvent {
                at: Time::from_nanos(5),
                kind: FaultEventKind::WorkerDied { worker: 1 },
            }],
        };
        // Claims Completed though a worker died.
        let v = trace_invariants(&graph, &trace, &RunOutcome::Completed);
        assert!(v
            .iter()
            .any(|v| v.invariant == Invariant::OutcomeConsistent));
        // Correct classification is clean.
        let ok = RunOutcome::Degraded {
            lost_workers: vec![1],
            retries: 0,
        };
        assert!(trace_invariants(&graph, &trace, &ok).is_empty());
        // Degraded with nothing observed is also a misclassification.
        let quiet = Trace {
            fault_events: Vec::new(),
            ..trace
        };
        let v = trace_invariants(&graph, &quiet, &ok);
        assert!(v
            .iter()
            .any(|v| v.invariant == Invariant::OutcomeConsistent));
    }

    #[test]
    fn witness_json_round_trips() {
        let w = Witness {
            version: 1,
            model: "rt".to_string(),
            n_tiles: 3,
            n_workers: 2,
            mutation: Some("skip-dead-requeue".to_string()),
            plan: FaultPlan::new()
                .kill_worker(1, 3)
                .transient(TaskId(2), 1)
                .straggler(0, 2.5),
            choices: vec![0, 1, 1, 0],
            invariant: Invariant::Deadlock,
            detail: "worker 0: waiting on condvar #1 (released mutex #0)".to_string(),
            schedules_explored: 17,
        };
        let json = w.to_json();
        let back = Witness::from_json(&json).expect("round trip");
        assert_eq!(back, w);
        // Stock-runtime witness (no mutation) round-trips too.
        let w2 = Witness {
            mutation: None,
            plan: FaultPlan::none(),
            ..w.clone()
        };
        assert_eq!(Witness::from_json(&w2.to_json()).unwrap(), w2);
        // An rt witness never mentions a model tag (wire compatibility)…
        assert!(!w.to_json().contains("\"model\""));
        // …while a serve-pool witness carries and round-trips it.
        let w3 = Witness {
            model: "serve-pool".to_string(),
            mutation: Some("leak-killed-batch".to_string()),
            invariant: Invariant::AnsweredOnce,
            ..w
        };
        let json = w3.to_json();
        assert!(json.contains("\"model\": \"serve-pool\""));
        assert_eq!(Witness::from_json(&json).unwrap(), w3);
    }

    #[test]
    fn witness_parser_rejects_garbage() {
        assert!(Witness::from_json("").is_err());
        assert!(Witness::from_json("{}").is_err());
        assert!(Witness::from_json("{\"version\": 2}").is_err());
        let w = Witness {
            version: 1,
            model: "rt".to_string(),
            n_tiles: 2,
            n_workers: 2,
            mutation: None,
            plan: FaultPlan::none(),
            choices: vec![],
            invariant: Invariant::RetireOnce,
            detail: String::new(),
            schedules_explored: 0,
        };
        let json = w.to_json().replace("retire-once", "no-such-invariant");
        assert!(Witness::from_json(&json).is_err());
    }

    #[test]
    fn json_escapes_survive() {
        let w = Witness {
            version: 1,
            model: "rt".to_string(),
            n_tiles: 2,
            n_workers: 1,
            mutation: Some("quote\"back\\slash\nnewline\ttab".to_string()),
            plan: FaultPlan::none(),
            choices: vec![],
            invariant: Invariant::OutcomeConsistent,
            detail: "α × β".to_string(),
            schedules_explored: 1,
        };
        assert_eq!(Witness::from_json(&w.to_json()).unwrap(), w);
    }
}
