//! Static and dynamic analysis for the hetchol execution engines.
//!
//! Two tools live here (DESIGN.md §4):
//!
//! * **The linter** ([`Linter`]) — a diagnostic engine over schedules and
//!   traces. Where `Schedule::validate` is a fail-fast referee, the linter
//!   reports *every* finding with a stable rule id and severity
//!   ([`Report`]), covering the structural rules plus bound consistency
//!   (a makespan below a lower bound is an impossible result), hint
//!   conformance, `dmda`/`dmdas` priority inversions, idle-gap anomalies
//!   and replay divergence. Reports serialize to JSON for CI.
//!
//! * **The race checker** ([`explore`]) — a loom-lite interleaving
//!   explorer that drives the real runtime's worker threads through every
//!   (sleep-set-pruned) schedule of lock/wait/notify decisions, turning
//!   lost wakeups into deterministic, reportable deadlocks.
//!
//! * **The model checker** ([`mc`]) — a source-DPOR upgrade of the race
//!   checker that also explores fault nondeterminism (worker deaths,
//!   transient task failures), checks recovery invariants at every
//!   quiescent state, and serializes minimized, replayable witnesses.
//!
//! * **The happens-before recorder** ([`hb`]) — a passive FastTrack-style
//!   vector-clock race detector plus lockdep-style lock-order cycle
//!   detection over the same shim event stream, for whole-process runs
//!   (including the serve layer) at real speed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod diag;
pub mod hb;
pub mod lint;
pub mod mc;
pub mod race;

pub use diag::{Diagnostic, Report, Rule, Severity};
pub use hb::{HbReport, LockCycle, RaceCandidate, RaceSide};
pub use lint::{race_report, Linter, QueueDiscipline};
pub use mc::{
    check_model, check_recovery, explore_dpor, explore_runtime_dpor, replay_model, replay_witness,
    resilient_runner, trace_invariants, Invariant, McReport, ModelReplay, ModelReport,
    RecoveryScenario, Replay, Violation, Witness,
};
pub use race::{explore, explore_runtime, Deadlock, ExploreConfig, ExploreReport, RoundRobin};
