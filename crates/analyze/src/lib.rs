//! Static and dynamic analysis for the hetchol execution engines.
//!
//! Two tools live here (DESIGN.md §4):
//!
//! * **The linter** ([`Linter`]) — a diagnostic engine over schedules and
//!   traces. Where `Schedule::validate` is a fail-fast referee, the linter
//!   reports *every* finding with a stable rule id and severity
//!   ([`Report`]), covering the structural rules plus bound consistency
//!   (a makespan below a lower bound is an impossible result), hint
//!   conformance, `dmda`/`dmdas` priority inversions, idle-gap anomalies
//!   and replay divergence. Reports serialize to JSON for CI.
//!
//! * **The race checker** ([`explore`]) — a loom-lite interleaving
//!   explorer that drives the real runtime's worker threads through every
//!   (sleep-set-pruned) schedule of lock/wait/notify decisions, turning
//!   lost wakeups into deterministic, reportable deadlocks.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod diag;
pub mod lint;
pub mod race;

pub use diag::{Diagnostic, Report, Rule, Severity};
pub use lint::{Linter, QueueDiscipline};
pub use race::{explore, explore_runtime, Deadlock, ExploreConfig, ExploreReport, RoundRobin};
