//! Model-checking the threaded runtime's worker protocol.
//!
//! These tests run the *real* `hetchol_rt::execute_workload` worker threads
//! under the interleaving explorer. They live in their own integration
//! binary because the exploration hook registry is process-global; the
//! explorer serializes sessions internally, so the tests may still run on
//! the default multi-threaded test harness.

use hetchol_analyze::race::{explore, explore_runtime, ExploreConfig, RoundRobin};
use hetchol_core::dag::TaskGraph;
use hetchol_core::profiles::TimingProfile;

/// The 4-task chain POTRF(0) → TRSM(1,0) → SYRK(1,1) → POTRF(1): small
/// enough to exhaust, serial enough that a worker must park and be woken.
fn chain() -> TaskGraph {
    let g = TaskGraph::cholesky(2);
    assert_eq!(g.len(), 4);
    g
}

#[test]
fn explorer_exhausts_two_worker_chain() {
    let report = explore_runtime(&chain(), 2, ExploreConfig::default());
    assert!(
        report.is_clean(),
        "correct runtime must have no race findings: {report:?}"
    );
    assert!(
        report.complete,
        "exploration must cover the whole tree: {report:?}"
    );
    // More than one interleaving must actually have been driven.
    assert!(
        report.schedules_run > 1,
        "only {} schedule(s) explored",
        report.schedules_run
    );
}

#[test]
fn explorer_clean_without_sleep_sets() {
    // Cross-check the sleep-set pruning: the raw (unpruned) tree must
    // reach the same verdict, and cannot cover fewer schedules.
    let pruned = explore_runtime(&chain(), 2, ExploreConfig::default());
    let raw_cfg = ExploreConfig {
        sleep_sets: false,
        max_schedules: 50_000,
        ..ExploreConfig::default()
    };
    let raw = explore_runtime(&chain(), 2, raw_cfg);
    assert!(raw.is_clean(), "raw exploration found findings: {raw:?}");
    assert!(
        !raw.complete || raw.schedules_run >= pruned.schedules_run,
        "pruned tree larger than raw tree: {} vs {}",
        pruned.schedules_run,
        raw.schedules_run
    );
}

#[test]
fn explorer_handles_three_workers() {
    // cholesky(3) has parallel TRSMs/SYRKs: some real concurrency.
    let graph = TaskGraph::cholesky(3);
    let cfg = ExploreConfig {
        max_schedules: 2_000,
        ..ExploreConfig::default()
    };
    let report = explore_runtime(&graph, 3, cfg);
    assert!(report.is_clean(), "findings on correct runtime: {report:?}");
    assert!(report.schedules_run > 1);
}

#[test]
fn lost_wakeup_mutation_is_detected() {
    // Reintroduce the classic bug: the worker loop skips `notify_all`
    // after dispatching successors. In the interleaving where the other
    // worker checked its queue *before* the successor was enqueued and
    // then went to sleep, nobody ever wakes it — the explorer must find
    // that schedule and report it as a deadlock.
    use hetchol_rt::runtime::{execute_with_mutated, Mutations};
    let graph = chain();
    let profile = TimingProfile::mirage_homogeneous();
    let report = explore(2, ExploreConfig::default(), || {
        let mut sched = RoundRobin;
        let r = execute_with_mutated(
            |_| Ok::<(), std::convert::Infallible>(()),
            &graph,
            &mut sched,
            &profile,
            2,
            Mutations {
                drop_release_notify: true,
                ..Default::default()
            },
        )
        .expect("no-op tasks cannot fail");
        assert_eq!(r.trace.events.len(), graph.len());
    });
    assert!(
        !report.deadlocks.is_empty(),
        "the seeded lost wakeup was not detected: {report:?}"
    );
    let dl = &report.deadlocks[0];
    assert_eq!(dl.parked.len(), 2, "both workers should be stuck: {dl:?}");
    assert!(
        dl.parked.iter().any(|(_, what)| what.contains("condvar")),
        "at least one worker should be stuck in a condvar wait: {dl:?}"
    );
}

#[test]
fn single_worker_has_one_schedule() {
    // One thread ⇒ no choice points with more than one candidate; the
    // tree collapses to a single run.
    let report = explore_runtime(&chain(), 1, ExploreConfig::default());
    assert!(report.is_clean(), "{report:?}");
    assert!(report.complete);
    assert_eq!(report.schedules_run, 1);
}
