//! Integration tests for the model checker: DPOR pruning strength, fault
//! exhaustion, seeded-mutation detection and witness replay determinism.

use hetchol_analyze::{
    check_recovery, explore_runtime, explore_runtime_dpor, replay_witness, resilient_runner,
    ExploreConfig, Invariant, RecoveryScenario, RoundRobin, Witness,
};
use hetchol_core::dag::TaskGraph;
use hetchol_core::fault::{ConfigError, FaultPlan, RetryPolicy};
use hetchol_core::profiles::TimingProfile;
use hetchol_rt::runtime::{execute_resilient_mutated, Mutations};
use hetchol_rt::{FnWorkload, RtResult};

fn cfg() -> ExploreConfig {
    ExploreConfig::default()
}

/// The PR 2 chain scenario: DPOR must explore strictly fewer branches
/// than the sleep-set baseline, with identical (clean, complete) verdicts.
#[test]
fn dpor_explores_strictly_fewer_branches_than_sleep_sets() {
    let graph = TaskGraph::cholesky(2);
    let sleep = explore_runtime(&graph, 2, cfg());
    let dpor = explore_runtime_dpor(&graph, 2, cfg());
    assert!(sleep.is_clean() && sleep.complete, "{sleep:?}");
    assert!(dpor.is_clean() && dpor.complete, "{dpor:?}");
    assert!(
        dpor.schedules_run < sleep.schedules_run,
        "DPOR must prune strictly more than sleep sets: dpor={} sleep={}",
        dpor.schedules_run,
        sleep.schedules_run
    );
}

/// Exhaustive verification of the stock resilient runtime on the 2-worker,
/// 4-task Cholesky chain under every single-fault plan: no violation, and
/// every plan's tree fully covered.
#[test]
fn recovery_checker_exhausts_two_worker_chain_with_faults() {
    let n_tasks = TaskGraph::cholesky(2).len();
    let scenario = RecoveryScenario {
        n_tiles: 2,
        n_workers: 2,
        mutation: None,
    };
    let space = FaultPlan::choice_space(n_tasks, 2);
    let report = check_recovery(&scenario, &space, cfg(), resilient_runner(2, 2));
    assert!(
        report.is_clean(),
        "stock runtime must verify clean: {:?} {:?}",
        report.witness,
        report.failures
    );
    assert!(
        report.exhausted,
        "the fault × interleaving space must be covered"
    );
    assert_eq!(report.plans, space.len());
    assert!(report.schedules_run >= space.len());
}

fn mutated_runner(
    n_tiles: usize,
    n_workers: usize,
) -> impl FnMut(&FaultPlan) -> Result<RtResult, ConfigError> {
    let graph = TaskGraph::cholesky(n_tiles);
    let profile = TimingProfile::mirage_homogeneous();
    let policy = RetryPolicy::default();
    move |plan| {
        let mut sched = RoundRobin;
        let workload = FnWorkload(|_| Ok::<(), std::convert::Infallible>(()));
        execute_resilient_mutated(
            &workload,
            &graph,
            &mut sched,
            &profile,
            n_workers,
            plan,
            &policy,
            Mutations {
                skip_dead_requeue: true,
                ..Default::default()
            },
        )
    }
}

/// The seeded recovery bug — a dead worker's queue is dropped instead of
/// re-dispatched — must be found as an invariant violation whose witness
/// round-trips through JSON and replays deterministically to the same
/// violation. The stock runtime stays clean on the identical fault space.
#[test]
fn skip_dead_requeue_mutation_is_found_and_witness_replays() {
    let n_tasks = TaskGraph::cholesky(3).len();
    let scenario = RecoveryScenario {
        n_tiles: 3,
        n_workers: 2,
        mutation: Some("skip-dead-requeue".to_string()),
    };
    // Targeted fault space: kill worker 1 at every progress point. The bug
    // needs a death that catches a non-empty queue, which only a DAG wide
    // enough to double-book a worker (cholesky(3), round-robin) exhibits.
    let space: Vec<FaultPlan> = (0..n_tasks as u32)
        .map(|k| FaultPlan::new().kill_worker(1, k))
        .collect();
    let report = check_recovery(&scenario, &space, cfg(), mutated_runner(3, 2));
    let w = report
        .witness
        .expect("the seeded recovery bug must be found");
    assert_eq!(
        w.invariant,
        Invariant::Deadlock,
        "stranded tasks park the survivors forever: {}",
        w.detail
    );
    assert!(!w.plan.is_empty(), "only a fault exposes this bug");

    // Round-trip the witness through its JSON format, then replay twice:
    // both replays must reproduce the identical violation.
    let parsed = Witness::from_json(&w.to_json()).expect("witness JSON round-trips");
    assert_eq!(parsed, w);
    let r1 = replay_witness(&parsed, cfg(), mutated_runner(3, 2));
    let r2 = replay_witness(&parsed, cfg(), mutated_runner(3, 2));
    assert!(r1.reproduced, "first replay diverged: {:?}", r1.observed);
    assert!(r2.reproduced, "second replay diverged: {:?}", r2.observed);
    assert_eq!(r1.observed, r2.observed, "replay must be deterministic");

    // Fixing the mutation (the stock runtime) verifies clean on the same
    // scenario and fault space.
    let stock = RecoveryScenario {
        n_tiles: 3,
        n_workers: 2,
        mutation: None,
    };
    let clean = check_recovery(&stock, &space, cfg(), resilient_runner(3, 2));
    assert!(
        clean.is_clean(),
        "stock runtime flagged: {:?} {:?}",
        clean.witness,
        clean.failures
    );
    assert!(clean.exhausted);
}

/// Three workers, fault-free: DPOR still covers the tree and agrees with
/// the sleep-set explorer's verdict.
#[test]
fn dpor_handles_three_workers() {
    let graph = TaskGraph::cholesky(2);
    let report = explore_runtime_dpor(&graph, 3, cfg());
    assert!(report.is_clean(), "{report:?}");
    assert!(report.complete);
}
