//! The explorer swaps the process-global panic hook for the duration of a
//! session; a user-installed hook must survive every exploration exit
//! path. Kept in its own test binary: integration tests in one binary run
//! concurrently, and another test's live exploration would race the
//! assertions on the global hook.

use hetchol_analyze::{explore_runtime, explore_runtime_dpor, ExploreConfig};
use hetchol_core::dag::TaskGraph;
use std::panic;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

#[test]
fn user_panic_hook_survives_explorations() {
    let hits = Arc::new(AtomicUsize::new(0));
    {
        let hits = hits.clone();
        panic::set_hook(Box::new(move |_| {
            hits.fetch_add(1, Ordering::SeqCst);
        }));
    }

    // One sleep-set exploration and one DPOR exploration, both clean, plus
    // a bounded one (early exit via the schedule budget): every path must
    // restore the hook on the way out.
    let graph = TaskGraph::cholesky(2);
    assert!(explore_runtime(&graph, 2, ExploreConfig::default()).is_clean());
    assert!(explore_runtime_dpor(&graph, 2, ExploreConfig::default()).is_clean());
    let bounded = ExploreConfig {
        max_schedules: 1,
        ..ExploreConfig::default()
    };
    assert!(!explore_runtime(&graph, 2, bounded).complete);

    // Our hook must be back in place: a caught panic goes through it.
    let before = hits.load(Ordering::SeqCst);
    let _ = panic::catch_unwind(|| panic!("probe"));
    let after = hits.load(Ordering::SeqCst);
    let _ = panic::take_hook(); // restore the default for other tests
    assert_eq!(
        after,
        before + 1,
        "the user-installed panic hook was not restored after exploration"
    );
}
